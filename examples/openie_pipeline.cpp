// End-to-end XKG construction: synthetic world -> KG + text corpus ->
// Open IE extraction -> entity linking -> extended knowledge graph ->
// mined relaxation rules -> queries that only the extension can answer.
//
//   ./build/examples/openie_pipeline [num_persons]

#include <cstdio>
#include <cstdlib>

#include "core/trinit.h"
#include "synth/corpus_generator.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace trinit;

  synth::WorldSpec spec;
  spec.seed = 2016;  // the paper's year
  spec.num_persons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;
  spec.num_universities = spec.num_persons / 8 + 3;
  spec.num_institutes = spec.num_persons / 15 + 3;
  spec.num_cities = spec.num_persons / 5 + 5;
  spec.num_countries = 6;
  spec.num_prizes = 6;
  spec.num_fields = 8;
  spec.predicates = synth::WorldSpec::DefaultPredicates();

  std::printf("== 1. Generating ground-truth world ==\n");
  synth::World world = synth::KgGenerator::Generate(spec);
  size_t held_out = 0;
  for (const synth::Fact& f : world.facts) held_out += !f.in_kg;
  std::printf("  %zu entities, %zu facts (%zu held out of the KG)\n",
              world.entities.size(), world.facts.size(), held_out);

  std::printf("== 2. Verbalizing the corpus ==\n");
  auto docs = synth::CorpusGenerator::Generate(world);
  std::printf("  %zu documents; sample: \"%.90s...\"\n", docs.size(),
              docs.front().text.c_str());

  std::printf("== 3-5. Open IE + linking + XKG + rule mining ==\n");
  core::Trinit::BuildReport report;
  auto engine = core::Trinit::FromWorld(world, {}, &report);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("  corpus:     %zu docs, %zu sentences\n",
              report.corpus_documents, report.corpus_sentences);
  std::printf("  extractor:  %zu raw extractions\n", report.extractions);
  std::printf("  XKG:        %s KG triples + %s extraction triples\n",
              WithThousands(static_cast<long long>(report.kg_triples))
                  .c_str(),
              WithThousands(
                  static_cast<long long>(report.extraction_triples))
                  .c_str());
  std::printf("  rule miner: %zu relaxation rules (%zu synonym, %zu "
              "inversion, %zu expansion)\n",
              report.rules_mined,
              engine->rules().CountOfKind(relax::RuleKind::kSynonym),
              engine->rules().CountOfKind(relax::RuleKind::kInversion),
              engine->rules().CountOfKind(relax::RuleKind::kExpansion));

  std::printf("== 6. Querying a held-out fact ==\n");
  // Find a person whose prize fact was held out of the KG.
  size_t won_prize = world.PredicateIndex("wonPrize");
  const synth::Fact* target = nullptr;
  for (const synth::Fact& f : world.facts) {
    if (f.predicate == won_prize && !f.in_kg) {
      target = &f;
      break;
    }
  }
  if (target == nullptr) {
    std::printf("  (no held-out prize facts in this world)\n");
    return 0;
  }
  std::string query_text =
      world.entities[target->subject].name + " wonPrize ?x";
  std::printf("  query: %s\n", query_text.c_str());
  std::printf("  ground truth: %s\n",
              world.entities[target->object].name.c_str());

  auto result = engine->Query(query_text, 3);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->answers.empty()) {
    std::printf("  no answers (try a larger world)\n");
  }
  for (size_t i = 0; i < result->answers.size(); ++i) {
    std::printf("  #%zu %s\n", i + 1,
                engine->RenderAnswer(*result, i).c_str());
  }
  if (!result->answers.empty()) {
    std::printf("\nBest answer explained:\n%s",
                engine->Explain(*result, 0).ToString().c_str());
  }
  return 0;
}
