// Quickstart: build a small extended knowledge graph, add relaxation
// rules, and ask the paper's Figure 2 questions.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/trinit.h"
#include "xkg/xkg_builder.h"

namespace {

trinit::xkg::Xkg BuildSampleXkg() {
  trinit::xkg::XkgBuilder b;
  // The curated KG of Figure 1.
  b.AddKgFact("AlbertEinstein", "bornIn", "Ulm");
  b.AddKgFact("Ulm", "locatedIn", "Germany");
  b.AddKgFact("AlbertEinstein", "bornOn", "1879-03-14", true);
  b.AddKgFact("AlfredKleiner", "hasStudent", "AlbertEinstein");
  b.AddKgFact("AlbertEinstein", "affiliation", "IAS");
  b.AddKgFact("PrincetonUniversity", "member", "IvyLeague");
  // The Open IE extension of Figure 3.
  b.AddExtraction("AlbertEinstein", true, "won Nobel for",
                  "discovery of the photoelectric effect", false, 0.8f,
                  {1, 0,
                   "Einstein won a Nobel for his discovery of the "
                   "photoelectric effect.",
                   0.8});
  b.AddExtraction("IAS", true, "housed in", "PrincetonUniversity", true,
                  0.9f, {2, 3, "The IAS is housed in Princeton.", 0.9});
  b.AddExtraction("AlbertEinstein", true, "lectured at",
                  "PrincetonUniversity", true, 0.7f,
                  {3, 1, "Einstein lectured at Princeton University.", 0.7});
  auto result = b.Build();
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void Ask(const trinit::core::Trinit& engine, const char* question,
         const char* query) {
  std::printf("\n\"%s\"\n  query: %s\n", question, query);
  // The request/response front door: per-request k, timings included.
  auto request = trinit::core::QueryRequest::Text(query, 3);
  auto response = engine.Execute(request);
  if (!response.ok()) {
    std::printf("  error: %s\n", response.status().ToString().c_str());
    return;
  }
  const auto& result = response->result();
  if (result.answers.empty()) {
    std::printf("  (no answers, %.2f ms)\n", response->wall_ms);
    return;
  }
  for (size_t i = 0; i < result.answers.size(); ++i) {
    std::printf("  #%zu %s%s\n", i + 1,
                engine.RenderAnswer(result, i).c_str(),
                result.answers[i].used_relaxation() ? "  [relaxed]" : "");
  }
  std::printf("  (%.2f ms)\n", response->wall_ms);
}

}  // namespace

int main() {
  auto engine = trinit::core::Trinit::Open(BuildSampleXkg());
  if (!engine.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // The relaxation rules of Figure 4 (users can define their own).
  trinit::Status s = engine->AddManualRules(
      "rule2: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0\n"
      "rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y "
      "@ 0.8\n"
      "rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7\n"
      "geo: ?x bornIn ?y => ?x bornIn ?z ; ?z locatedIn ?y @ 0.9\n");
  if (!s.ok()) {
    std::fprintf(stderr, "rules failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("TriniT quickstart — %zu triples (%zu KG + %zu Open IE), "
              "%zu relaxation rules\n",
              engine->xkg().store().size(), engine->xkg().kg_triple_count(),
              engine->xkg().extraction_triple_count(),
              engine->rules().size());

  Ask(*engine, "Who was born in Germany?", "?x bornIn Germany");
  Ask(*engine, "Who was the advisor of Albert Einstein?",
      "AlbertEinstein hasAdvisor ?x");
  Ask(*engine, "Ivy League university Einstein was affiliated with",
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
      "IvyLeague");
  Ask(*engine, "What did Albert Einstein win a Nobel prize for?",
      "AlbertEinstein 'won nobel for' ?x");

  return 0;
}
