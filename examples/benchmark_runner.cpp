// Batch benchmark driver: generate (or load) a world, freeze its XKG and
// evaluation workload to TSV artifacts, and score TriniT against the
// baselines — the reproducible-artifact workflow a downstream user needs
// to run this reproduction on their own terms.
//
//   ./build/examples/benchmark_runner [out_dir] [num_queries] [seed]
//
// Produces in out_dir (default /tmp/trinit_bench):
//   xkg.tsv        the extended knowledge graph
//   rules.tsv      the mined relaxation rules
//   workload.tsv   queries + graded judgments
// and prints the evaluation table.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "baselines/exact_engine.h"
#include "baselines/keyword_engine.h"
#include "core/trinit.h"
#include "eval/runner.h"
#include "eval/workload_io.h"
#include "query/parser.h"
#include "relax/rule_io.h"
#include "util/string_util.h"
#include "util/table.h"
#include "xkg/tsv_io.h"

int main(int argc, char** argv) {
  using namespace trinit;

  std::string out_dir = argc > 1 ? argv[1] : "/tmp/trinit_bench";
  size_t num_queries =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 70;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2016;
  std::filesystem::create_directories(out_dir);

  // 1. World + engine.
  synth::WorldSpec spec;
  spec.seed = seed;
  spec.num_persons = 220;
  spec.num_universities = 22;
  spec.num_institutes = 12;
  spec.num_cities = 30;
  spec.num_countries = 8;
  spec.num_prizes = 8;
  spec.num_fields = 10;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  synth::World world = synth::KgGenerator::Generate(spec);

  core::Trinit::BuildReport report;
  auto engine = core::Trinit::FromWorld(world, {}, &report);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("XKG: %zu KG + %zu extraction triples, %zu rules mined\n",
              report.kg_triples, report.extraction_triples,
              report.rules_mined);

  // 2. Freeze artifacts.
  Status s = xkg::XkgTsv::Save(engine->xkg(), out_dir + "/xkg.tsv");
  if (!s.ok()) std::fprintf(stderr, "xkg save: %s\n", s.ToString().c_str());
  s = relax::RuleIo::Save(engine->rules(), out_dir + "/rules.tsv");
  if (!s.ok()) std::fprintf(stderr, "rules save: %s\n", s.ToString().c_str());

  eval::WorkloadGenerator::Options wopts;
  wopts.num_queries = num_queries;
  eval::Workload workload = eval::WorkloadGenerator::Generate(world, wopts);
  s = eval::WorkloadIo::Save(workload, out_dir + "/workload.tsv");
  if (!s.ok()) {
    std::fprintf(stderr, "workload save: %s\n", s.ToString().c_str());
  }
  std::printf("artifacts frozen under %s (%zu queries)\n\n",
              out_dir.c_str(), workload.queries.size());

  // 3. Systems under test.
  xkg::XkgBuilder kg_builder;
  synth::KgGenerator::PopulateKg(world, &kg_builder);
  auto kg_only = kg_builder.Build();
  if (!kg_only.ok()) return 1;
  baselines::ExactEngine kg_exact(*kg_only, {});
  baselines::KeywordEngine keyword(engine->xkg(), {});

  // Every system implements core::Engine, so the harness is just names
  // and pointers — the runner drives them uniformly.
  std::vector<eval::EngineUnderTest> systems = {
      {"TriniT", &engine.value(), {}},
      {"KG exact", &kg_exact, {}},
      {"Keyword", &keyword, {}},
  };

  // 4. Score (the workload round-trips through its artifact to prove the
  // file is usable).
  auto reloaded = eval::WorkloadIo::Load(out_dir + "/workload.tsv");
  const eval::Workload& wl = reloaded.ok() ? *reloaded : workload;
  auto reports = eval::Runner::Run(wl, systems, 10);
  AsciiTable table({"system", "NDCG@5", "MAP", "P@1", "answered"});
  for (const auto& r : reports) {
    table.AddRow({r.name, FormatDouble(r.ndcg5, 3), FormatDouble(r.map, 3),
                  FormatDouble(r.p1, 3), FormatDouble(r.answered, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
