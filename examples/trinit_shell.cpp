// Interactive exploratory-querying shell — the closest analogue of the
// demo's browser UI (paper §5): pose extended triple-pattern queries,
// inspect ranked answers with explanations, add relaxation rules, get
// reformulation suggestions.
//
//   ./build/examples/trinit_shell          # synthetic world
//   ./build/examples/trinit_shell file.tsv # load an XKG dump
//
// Commands:
//   <query>            e.g.  ?x bornIn Germania  or
//                            SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn Ulmhof_0
//   .rule <rule>       add a relaxation rule, e.g.
//                      .rule ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0
//   .rules             list loaded rules
//   .explain <rank>    explain answer <rank> of the last query
//   .k <n>             set the number of answers
//   .timeout <ms>      per-query wall-clock budget (0 = unlimited)
//   .stats             XKG statistics
//   .metrics [prom|json]
//                      scrape the engine's metrics registry (Prometheus
//                      text by default, see docs/OBSERVABILITY.md)
//   .slowlog           dump the slow-query log (requests slower than
//                      ObsOptions::slow_query_ms, with plan + span tree)
//   .save <path>       write a binary snapshot of the serving state
//   .load <path> [mmap|copy] [trusted]
//                      replace the engine from a snapshot (instant
//                      cold start: no rebuild, no re-mining); `mmap`
//                      serves fixed-width sections zero-copy, `trusted`
//                      additionally skips checksums and defers
//                      provenance decode (see storage/snapshot.h)
//   .quit

#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "core/trinit.h"
#include "obs/exposition.h"
#include "query/parser.h"
#include "synth/kg_generator.h"
#include "util/string_util.h"
#include "xkg/tsv_io.h"

namespace {

using trinit::core::Trinit;

void PrintStats(const Trinit& engine) {
  const auto& xkg = engine.xkg();
  const auto* sharded = xkg.sharded();
  std::printf("XKG: %zu triples (%zu KG + %zu extraction), %zu terms, "
              "%zu relaxation rules, %zu shard%s\n",
              xkg.store().size(), xkg.kg_triple_count(),
              xkg.extraction_triple_count(), xkg.dict().size(),
              engine.rules().size(),
              sharded == nullptr ? size_t{1} : sharded->shard_count(),
              sharded == nullptr ? " (unsharded)" : "s");
}

void PrintCache(const Trinit& engine) {
  const auto c = engine.serving_cache().counters();
  std::printf(
      "serving cache: generation %llu\n"
      "  answers: %zu hits / %zu misses, %zu entries, %zu evictions\n"
      "  plans:   %zu hits / %zu misses, %zu entries, %zu invalidated\n",
      static_cast<unsigned long long>(c.generation), c.answer_hits,
      c.answer_misses, c.answer_entries, c.answer_evictions, c.plan_hits,
      c.plan_misses, c.plan_entries, c.plan_invalidated);
}

void PrintSlowLog(const Trinit& engine) {
  const auto& log = engine.slow_query_log();
  if (!log.enabled()) {
    std::printf("  slow-query log disabled (slow_query_ms <= 0)\n");
    return;
  }
  const auto entries = log.Entries();
  std::printf("  slow-query log: %zu of %llu kept (threshold %.1f ms, "
              "capacity %zu)\n",
              entries.size(),
              static_cast<unsigned long long>(log.total_recorded()),
              log.threshold_ms(), log.capacity());
  for (const auto& entry : entries) {
    std::printf("  #%llu  %.2f ms  gen %llu%s%s\n      %s\n",
                static_cast<unsigned long long>(entry.sequence),
                entry.wall_ms,
                static_cast<unsigned long long>(entry.generation),
                entry.answer_hit ? "  [cache hit]" : "",
                entry.deadline_hit ? "  [deadline]" : "",
                entry.query.c_str());
    if (!entry.plan.empty()) {
      std::printf("      plan: %s\n", entry.plan.c_str());
    }
    std::printf("%s", entry.span.ToPretty().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  trinit::Result<Trinit> engine = [&]() -> trinit::Result<Trinit> {
    if (argc > 1) {
      auto xkg = trinit::xkg::XkgTsv::Load(argv[1]);
      if (!xkg.ok()) return xkg.status();
      return Trinit::Open(std::move(xkg).value());
    }
    trinit::synth::WorldSpec spec = trinit::synth::WorldSpec::Scaled(3000);
    trinit::synth::World world =
        trinit::synth::KgGenerator::Generate(spec);
    return Trinit::FromWorld(world);
  }();
  if (!engine.ok()) {
    std::fprintf(stderr, "startup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  std::printf("TriniT shell — exploratory querying of extended knowledge "
              "graphs\n");
  PrintStats(*engine);
  std::printf("Type a query, or .help for commands.\n");

  int k = 10;
  double timeout_ms = 0.0;
  std::optional<trinit::topk::TopKResult> last_result;
  std::optional<trinit::query::Query> last_query;

  std::string line;
  while (std::printf("trinit> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string_view input = trinit::Trim(line);
    if (input.empty()) continue;

    if (input == ".quit" || input == ".exit") break;
    if (input == ".help") {
      std::printf("  <query> | .rule <rule> | .add <fact> | .rules | "
                  ".explain <rank> | .complete <prefix> | .k <n> | "
                  ".timeout <ms> | .stats | .cache | .metrics [prom|json] | "
                  ".slowlog | .save <path> | "
                  ".load <path> [mmap|copy] [trusted] [prefetch] | .quit\n");
      continue;
    }
    if (input == ".stats") {
      PrintStats(*engine);
      continue;
    }
    if (input == ".cache") {
      PrintCache(*engine);
      continue;
    }
    if (input == ".metrics" || input.rfind(".metrics ", 0) == 0) {
      std::string_view format =
          input == ".metrics" ? "prom" : trinit::Trim(input.substr(9));
      const trinit::obs::MetricsSnapshot snapshot = engine->MetricsSnapshot();
      if (format == "prom" || format.empty()) {
        std::printf("%s", trinit::obs::RenderPrometheus(snapshot).c_str());
      } else if (format == "json") {
        std::printf("%s\n", trinit::obs::RenderJson(snapshot).c_str());
      } else {
        std::printf("  unknown .metrics format '%s' (want prom|json)\n",
                    std::string(format).c_str());
      }
      continue;
    }
    if (input == ".slowlog") {
      PrintSlowLog(*engine);
      continue;
    }
    if (input.rfind(".complete ", 0) == 0) {
      auto completions =
          engine->autocomplete().Complete(input.substr(10), 8);
      if (completions.empty()) std::printf("  (no completions)\n");
      for (const auto& c : completions) {
        std::printf("  %-40s (%s, %d occurrences)\n", c.text.c_str(),
                    trinit::rdf::TermKindName(c.kind),
                    static_cast<int>(c.score));
      }
      continue;
    }
    if (input == ".rules") {
      for (const auto& rule : engine->rules().rules()) {
        std::printf("  [%s] %s\n", trinit::relax::RuleKindName(rule.kind),
                    rule.ToString().c_str());
      }
      continue;
    }
    if (input.rfind(".k ", 0) == 0) {
      k = std::atoi(std::string(input.substr(3)).c_str());
      if (k <= 0) k = 10;
      std::printf("  k = %d\n", k);
      continue;
    }
    if (input.rfind(".timeout ", 0) == 0) {
      timeout_ms = std::atof(std::string(input.substr(9)).c_str());
      if (timeout_ms < 0) timeout_ms = 0.0;
      std::printf("  timeout = %s\n",
                  timeout_ms > 0 ? (std::to_string(timeout_ms) + " ms").c_str()
                                 : "unlimited");
      continue;
    }
    if (input.rfind(".rule ", 0) == 0) {
      trinit::Status s =
          engine->AddManualRules(std::string(input.substr(6)));
      std::printf("  %s\n", s.ok() ? "rule added" : s.ToString().c_str());
      continue;
    }
    if (input.rfind(".add ", 0) == 0) {
      // Extend the KG with a ground fact (paper §1: "allows users to
      // extend the KG to make up for missing knowledge").
      trinit::Status s = engine->ExtendKg(std::string(input.substr(5)));
      std::printf("  %s\n",
                  s.ok() ? "fact added (XKG rebuilt)" : s.ToString().c_str());
      continue;
    }
    if (input.rfind(".save ", 0) == 0) {
      std::string path(trinit::Trim(input.substr(6)));
      trinit::Status s = engine->Save(path);
      if (s.ok()) {
        std::printf("  snapshot written to %s\n", path.c_str());
      } else {
        std::printf("  %s\n", s.ToString().c_str());
      }
      continue;
    }
    if (input.rfind(".load ", 0) == 0) {
      // `.load <path> [mmap|copy] [trusted] [prefetch]` — trailing
      // keywords pick the snapshot load mode, verification level, and
      // readahead hinting.
      std::string_view rest = trinit::Trim(input.substr(6));
      trinit::core::TrinitOptions options;
      std::string path;
      {
        size_t space = rest.find(' ');
        path = std::string(rest.substr(0, space));
        std::string_view flags =
            space == std::string_view::npos ? "" : rest.substr(space);
        bool bad_flag = false;
        while (!(flags = trinit::Trim(flags)).empty()) {
          size_t end = flags.find(' ');
          std::string_view flag = flags.substr(0, end);
          flags = end == std::string_view::npos ? "" : flags.substr(end);
          if (flag == "mmap") {
            options.snapshot_read.mode = trinit::storage::LoadMode::kMapped;
          } else if (flag == "copy") {
            options.snapshot_read.mode = trinit::storage::LoadMode::kCopy;
          } else if (flag == "trusted") {
            options.snapshot_read.verify =
                trinit::rdf::SnapshotValidation::kTrusted;
          } else if (flag == "prefetch") {
            options.snapshot_read.prefetch = true;
          } else {
            std::printf(
                "  unknown .load flag '%s' (want mmap|copy|trusted|prefetch)\n",
                std::string(flag).c_str());
            bad_flag = true;
            break;
          }
        }
        if (bad_flag) continue;
      }
      trinit::storage::LoadReport report;
      auto loaded = Trinit::Open(path, options, &report);
      if (!loaded.ok()) {
        std::printf("  %s\n", loaded.status().ToString().c_str());
        continue;
      }
      engine = std::move(loaded);
      last_result.reset();
      last_query.reset();
      std::printf("  snapshot loaded: %zu terms, %zu triples, %zu rules, "
                  "%zu score shapes pre-built, %zu index rebuilds, "
                  "%zu shard%s\n",
                  report.terms, report.triples, report.rules,
                  report.score_shapes_restored, report.index_rebuilds,
                  report.shard_count == 0 ? size_t{1} : report.shard_count,
                  report.shard_count == 0 ? " (unsharded)" : "s");
      std::printf("  load mode: %s%s, sections %zu mapped / %zu decoded, "
                  "codecs %zu raw / %zu varint\n",
                  report.mapped ? "mmap" : "copy",
                  report.provenance_deferred ? " (provenance deferred)" : "",
                  report.sections_mapped, report.sections_decoded,
                  report.sections_raw, report.sections_varint);
      std::printf("  bytes: %zu file, %zu touched at open (%.1f%%), "
                  "~%zu resident, %zu prefetch-hinted\n",
                  report.bytes, report.bytes_touched,
                  report.bytes == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(report.bytes_touched) /
                            static_cast<double>(report.bytes),
                  report.resident_bytes, report.bytes_prefetched);
      PrintStats(*engine);
      continue;
    }
    if (input.rfind(".explain ", 0) == 0) {
      if (!last_result.has_value()) {
        std::printf("  no previous query\n");
        continue;
      }
      size_t rank =
          static_cast<size_t>(std::atoi(std::string(input.substr(9)).c_str()));
      if (rank < 1 || rank > last_result->answers.size()) {
        std::printf("  rank out of range\n");
        continue;
      }
      std::printf("%s",
                  engine->Explain(*last_result, rank - 1).ToString().c_str());
      continue;
    }

    // Anything else is a query.
    auto parsed =
        trinit::query::Parser::Parse(input, &engine->xkg().dict());
    if (!parsed.ok()) {
      std::printf("  %s\n", parsed.status().ToString().c_str());
      continue;
    }
    trinit::core::QueryRequest request =
        trinit::core::QueryRequest::Parsed(*parsed, k);
    request.timeout_ms = timeout_ms;
    request.trace = true;
    auto response = engine->Execute(request);
    if (!response.ok()) {
      std::printf("  %s\n", response.status().ToString().c_str());
      continue;
    }
    // The body may be shared with the engine's answer cache; copy it
    // for `.explain` and adopt the per-request stats (zero on a hit).
    trinit::topk::TopKResult result = response->result();
    result.stats = response->stats;
    if (result.answers.empty()) {
      std::printf("  no answers\n");
    }
    for (size_t i = 0; i < result.answers.size(); ++i) {
      std::printf("  #%zu  %-50s score %.3f%s\n", i + 1,
                  engine->RenderAnswer(result, i).c_str(),
                  result.answers[i].score,
                  result.answers[i].used_relaxation() ? "  [relaxed]"
                                                      : "");
    }
    std::printf("  (%.2f ms, %zu/%zu relaxations opened, %zu items "
                "pulled%s%s; .explain <rank> for provenance)\n",
                response->wall_ms, result.stats.alternatives_opened,
                result.stats.alternatives_total, result.stats.items_pulled,
                response->serving.answer_hit ? "; ANSWER CACHE HIT" : "",
                response->deadline_hit ? "; TIMEOUT — partial answers"
                                       : "");
    // Laziness trace: how much of the score-ordered index lists the run
    // actually decoded vs left untouched.
    std::printf("  trace:");
    for (const auto& counter : response->counters) {
      std::printf(" %s=%.0f", counter.name.c_str(), counter.value);
    }
    for (const auto& timing : response->stages) {
      std::printf(" %s_ms=%.2f", timing.stage.c_str(), timing.millis);
    }
    std::printf("\n");
    // Structured span tree of the same request (the machine-readable
    // form is response->trace_json()).
    if (response->span.has_value()) {
      std::printf("%s", response->span->ToPretty().c_str());
    }
    // Query plan: the cost-based pattern order with estimated vs actual
    // per-pattern cardinalities.
    if (!result.plan.empty()) {
      std::printf("  plan:");
      for (const auto& step : result.plan) {
        std::printf(" p%zu(est=%.0f pulled=%zu)", step.pattern,
                    step.estimated, step.pulled);
      }
      std::printf("\n");
    }
    for (const auto& suggestion : engine->Suggest(*parsed, result)) {
      std::printf("  suggestion: %s\n", suggestion.message.c_str());
    }
    last_query = std::move(*parsed);
    last_result = std::move(result);
  }
  return 0;
}
