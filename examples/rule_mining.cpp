// Demonstrates the relaxation-rule miners and the paper's weight
// formula w(p1 -> p2) = |args(p1) ∩ args(p2)| / |args(p2)| (paper §3).
//
//   ./build/examples/rule_mining

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/trinit.h"
#include "relax/bridge_miner.h"
#include "relax/inversion_miner.h"
#include "relax/manual_rules.h"
#include "relax/synonym_miner.h"
#include "synth/kg_generator.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace trinit;

  synth::WorldSpec spec;
  spec.seed = 7;
  spec.num_persons = 120;
  spec.num_universities = 12;
  spec.num_institutes = 8;
  spec.num_cities = 20;
  spec.num_countries = 5;
  spec.num_prizes = 5;
  spec.num_fields = 8;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  synth::World world = synth::KgGenerator::Generate(spec);

  auto engine = core::Trinit::FromWorld(world);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("Mined %zu relaxation rules from the XKG.\n\n",
              engine->rules().size());

  // Group and print the heaviest rules per kind, Figure-4 style.
  for (relax::RuleKind kind :
       {relax::RuleKind::kSynonym, relax::RuleKind::kInversion,
        relax::RuleKind::kExpansion}) {
    std::vector<const relax::Rule*> rules;
    for (const relax::Rule& r : engine->rules().rules()) {
      if (r.kind == kind) rules.push_back(&r);
    }
    std::sort(rules.begin(), rules.end(),
              [](const relax::Rule* a, const relax::Rule* b) {
                return a->weight > b->weight;
              });
    std::printf("-- %s rules (%zu) --\n", relax::RuleKindName(kind),
                rules.size());
    AsciiTable table({"#", "rule", "weight"});
    for (size_t i = 0; i < rules.size() && i < 8; ++i) {
      table.AddRow({std::to_string(i + 1), rules[i]->ToString(),
                    FormatDouble(rules[i]->weight, 3)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // Plug in a custom operator through the paper's API.
  class TypeRelaxOperator : public relax::RelaxationOperator {
   public:
    std::string name() const override { return "drop-type-constraint"; }
    Status Generate(const xkg::Xkg&, relax::RuleSet* rules) override {
      auto rule = relax::ParseManualRule(
          "drop-type: ?x type ?t ; ?x inField ?f => ?x inField ?f @ 0.6",
          1);
      TRINIT_RETURN_IF_ERROR(rule.status());
      return rules->Add(std::move(rule).value());
    }
  };
  TypeRelaxOperator op;
  if (engine->RunOperator(op).ok()) {
    std::printf("Operator '%s' registered 1 additional rule "
                "(RelaxationOperator API, paper §3).\n",
                op.name().c_str());
  }
  return 0;
}
