// Deep walkthrough of the paper's running example: every Figure 2
// query, with and without relaxation, plus full answer explanations and
// query suggestions — the demo experience (paper §5) as a CLI.
//
//   ./build/examples/einstein_exploration

#include <cstdio>

#include "core/trinit.h"
#include "query/parser.h"
#include "xkg/xkg_builder.h"

namespace {

using trinit::core::Trinit;

trinit::xkg::Xkg BuildPaperXkg() {
  trinit::xkg::XkgBuilder b;
  b.AddKgFact("AlbertEinstein", "bornIn", "Ulm");
  b.AddKgFact("Ulm", "locatedIn", "Germany");
  b.AddKgFact("AlbertEinstein", "bornOn", "1879-03-14", true);
  b.AddKgFact("AlfredKleiner", "hasStudent", "AlbertEinstein");
  b.AddKgFact("AlbertEinstein", "affiliation", "IAS");
  b.AddKgFact("PrincetonUniversity", "member", "IvyLeague");
  b.AddKgFact("Germany", "type", "country");
  b.AddKgFact("Ulm", "type", "city");
  b.AddExtraction("AlbertEinstein", true, "won Nobel for",
                  "discovery of the photoelectric effect", false, 0.8f,
                  {1, 0,
                   "Einstein won a Nobel for his discovery of the "
                   "photoelectric effect.",
                   0.8});
  b.AddExtraction("IAS", true, "housed in", "PrincetonUniversity", true,
                  0.9f, {2, 3, "The IAS is housed in Princeton.", 0.9});
  b.AddExtraction("AlbertEinstein", true, "lectured at",
                  "PrincetonUniversity", true, 0.7f,
                  {3, 1, "Einstein lectured at Princeton University.", 0.7});
  b.AddExtraction("AlbertEinstein", true, "met his teacher", "Prof. Kleiner",
                  false, 0.5f,
                  {4, 2, "Einstein met his teacher Prof. Kleiner.", 0.5});
  auto r = b.Build();
  if (!r.ok()) std::exit(1);
  return std::move(r).value();
}

void Explore(Trinit& engine, const char* user, const char* question,
             const char* query_text) {
  std::printf("\n================================================\n");
  std::printf("User %s: \"%s\"\n", user, question);
  std::printf("Query: %s\n", query_text);

  auto parsed =
      trinit::query::Parser::Parse(query_text, &engine.xkg().dict());
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return;
  }

  // First: what a strict SPARQL endpoint would return.
  trinit::core::TrinitOptions strict = engine.options();
  auto exact = [&]() {
    trinit::topk::ProcessorOptions opts;
    opts.k = 5;
    opts.enable_relaxation = false;
    trinit::relax::RuleSet no_rules;
    trinit::topk::TopKProcessor processor(engine.xkg(), no_rules, {}, opts);
    return processor.Answer(*parsed);
  }();
  std::printf("  without relaxation: %zu answer(s)\n",
              exact.ok() ? exact->answers.size() : 0);

  // Then TriniT.
  auto result = engine.Answer(*parsed, 5);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("  with TriniT:        %zu answer(s)\n",
              result->answers.size());
  for (size_t i = 0; i < result->answers.size(); ++i) {
    std::printf("\n%s", engine.Explain(*result, i).ToString().c_str());
  }

  auto suggestions = engine.Suggest(*parsed, *result);
  if (!suggestions.empty()) {
    std::printf("\n  Suggestions:\n");
    for (const auto& suggestion : suggestions) {
      std::printf("   - %s\n", suggestion.message.c_str());
    }
  }
}

}  // namespace

int main() {
  auto engine = Trinit::Open(BuildPaperXkg());
  if (!engine.ok()) return 1;
  if (!engine
           ->AddManualRules(
               "rule1: ?x bornIn ?y ; ?y type country => ?x bornIn ?z ; "
               "?z type city ; ?z locatedIn ?y @ 1.0\n"
               "rule2: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0\n"
               "rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z "
               "'housed in' ?y @ 0.8\n"
               "rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7\n"
               "geo: ?x bornIn ?y => ?x bornIn ?z ; ?z locatedIn ?y @ "
               "0.9\n")
           .ok()) {
    return 1;
  }

  std::printf("TriniT — exploratory querying of the Figure 1+3 XKG\n");

  Explore(*engine, "A", "Who was born in Germany?", "?x bornIn Germany");
  Explore(*engine, "B", "Who was the advisor of Albert Einstein?",
          "AlbertEinstein hasAdvisor ?x");
  Explore(*engine, "C", "Ivy League university Einstein was affiliated "
          "with",
          "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
          "IvyLeague");
  Explore(*engine, "D", "What did Albert Einstein win a Nobel prize for?",
          "AlbertEinstein 'won nobel for' ?x");

  return 0;
}
