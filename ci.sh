#!/usr/bin/env bash
# CI entry point. Stages:
#
#   lint       tools/lint.py over the tree (mutex wrappers, discarded
#              Status, include style, header guards, [[nodiscard]]
#              ratchet) plus its own unit tests — fails the run before
#              anything is compiled
#   format     clang-format --dry-run -Werror over the source tree
#              (skipped with a notice when clang-format is not installed)
#   tidy       clang-tidy (.clang-tidy: bugprone-*, concurrency-*,
#              performance-*) over src/ — advisory: findings print but
#              do not fail CI yet; skipped when clang-tidy is missing
#   build+test the tier-1 verify line (cmake + ctest). Under clang the
#              build also enforces -Werror=thread-safety (the
#              TRINIT_GUARDED_BY annotations become a hard gate).
#   metrics scrape  pipe a query + `.metrics prom` through trinit_shell
#              and validate the exposition with tools/promcheck.py
#   snapshot   save a binary snapshot of a TSV-built engine, reload it,
#              and re-run the query checks (bench_p4's gates: answers
#              and work counters byte-identical, zero index rebuilds)
#   bench smoke  every microbenchmark once, minimal measuring time
#   release perf P1/P2/P3/P4/P5 exhibits in an -O2 build; each bench
#              enforces its own invariants (byte-identical answers,
#              work saved)
#   bench gate fresh work counters vs the committed BENCH_*.json; fails
#              on any >10% regression in probes/pulls/decodes
#   sanitize   (only with --sanitize) a second build dir under
#              -fsanitize=address,undefined running the full ctest suite
#   tsan       (only with --tsan) a third build dir under
#              -fsanitize=thread running the full ctest suite, including
#              the contended stress tests (tests/integration/
#              contended_stress_test.cc) written to exhaust the locking
#              model in docs/CONCURRENCY.md
#
# Usage: ./ci.sh [--sanitize] [--tsan] [build_dir]
set -euo pipefail

SANITIZE=0
TSAN=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    --tsan) TSAN=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
ROOT="$(cd "$(dirname "$0")" && pwd)"

echo "== lint (tools/lint.py + self-tests) =="
python3 "$ROOT/tools/lint_test.py" 2>&1 | tail -n 1
python3 "$ROOT/tools/lint.py" --root "$ROOT"

echo "== format check =="
if command -v clang-format > /dev/null 2>&1; then
  # shellcheck disable=SC2046  # word-splitting the file list is the point
  clang-format --dry-run -Werror \
    $(find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" "$ROOT/examples" \
        -name '*.h' -o -name '*.cc' -o -name '*.cpp')
  echo "format OK"
else
  echo "clang-format not installed; skipping (style still enforced on"
  echo "machines that have it — see .clang-format)"
fi

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$ROOT"

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== metrics scrape (.metrics prom through tools/promcheck.py) =="
# One query then a registry scrape: the exposition must parse as valid
# Prometheus text (HELP/TYPE per family, cumulative le-ordered buckets
# ending in +Inf == _count). Guards the .metrics surface end to end.
printf '?x bornIn Germania\n.metrics prom\n.quit\n' \
  | "$BUILD_DIR/examples/trinit_shell" \
  | python3 "$ROOT/tools/promcheck.py"

echo "== clang-tidy (advisory) =="
if command -v clang-tidy > /dev/null 2>&1; then
  # Advisory for now: print findings without failing the run. The check
  # set lives in .clang-tidy (bugprone-*, concurrency-*, performance-*);
  # compile_commands.json comes from the configure above.
  # shellcheck disable=SC2046
  clang-tidy -p "$BUILD_DIR" \
    $(find "$ROOT/src" -name '*.cc') || true
else
  echo "clang-tidy not installed; skipping (see .clang-tidy for the"
  echo "check set enforced on machines that have it)"
fi

echo "== snapshot round-trip (save, reload, re-run query checks) =="
# bench_p4 exits non-zero unless the snapshot-loaded engine answers the
# query mix byte-identically to the TSV-built engine with identical
# work counters and zero index rebuilds. The JSON written here is a
# scratch copy; the gated one comes from the release build below.
"$BUILD_DIR/bench/bench_p4_coldstart" --counters-only \
  "$BUILD_DIR/BENCH_P4_roundtrip.json"

echo "== bench smoke =="
# Keep CI honest about the hot path without paying for a full bench run:
# every microbenchmark once, minimal measuring time.
if [ -x "$BUILD_DIR/bench/bench_m1_micro" ]; then
  "$BUILD_DIR/bench/bench_m1_micro" \
    --benchmark_min_time=0.01 --benchmark_repetitions=1
else
  echo "bench_m1_micro not built (google-benchmark missing); skipping"
fi

echo "== release perf (P1: lazy streaming; P2: planned join; P3: serving cache; P4: snapshot cold start; P5: sharded scatter-gather) =="
# Optimized build for the latency exhibits — the perf trajectory is
# tracked in BENCH_P1/P2/P3.json. Each bench exits non-zero if its
# optimization stops saving work or answers diverge. The JSONs are
# written counters-only: wall-times are machine-local noise, the work
# counters are what cross-machine comparisons can trust (latencies
# still print to stdout). Fresh JSONs land in the release dir first so
# the bench gate below can diff them against the committed baselines.
RELEASE_DIR="${BUILD_DIR}-release"
cmake -B "$RELEASE_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" \
  -DTRINIT_BUILD_TESTS=OFF -DTRINIT_BUILD_EXAMPLES=OFF
cmake --build "$RELEASE_DIR" -j --target bench_p1_latency \
  --target bench_p2_join --target bench_p3_serving \
  --target bench_p4_coldstart --target bench_p5_shard
"$RELEASE_DIR/bench/bench_p1_latency" --counters-only "$RELEASE_DIR/BENCH_P1.json"
"$RELEASE_DIR/bench/bench_p2_join" --counters-only "$RELEASE_DIR/BENCH_P2.json"
"$RELEASE_DIR/bench/bench_p3_serving" --counters-only "$RELEASE_DIR/BENCH_P3.json"
"$RELEASE_DIR/bench/bench_p4_coldstart" --counters-only "$RELEASE_DIR/BENCH_P4.json"
"$RELEASE_DIR/bench/bench_p5_shard" --counters-only "$RELEASE_DIR/BENCH_P5.json"

echo "== bench gate (fresh counters vs committed baselines) =="
python3 "$ROOT/bench/check_regression.py" \
  "$ROOT/BENCH_P1.json" "$RELEASE_DIR/BENCH_P1.json" \
  "$ROOT/BENCH_P2.json" "$RELEASE_DIR/BENCH_P2.json" \
  "$ROOT/BENCH_P3.json" "$RELEASE_DIR/BENCH_P3.json" \
  "$ROOT/BENCH_P4.json" "$RELEASE_DIR/BENCH_P4.json" \
  "$ROOT/BENCH_P5.json" "$RELEASE_DIR/BENCH_P5.json"
# Promote fresh counters to the working tree only when they are not
# worse than the baselines (strict tolerance-0 pass). Promoting
# within-tolerance regressions would let the 10% gate ratchet backwards
# one small regression at a time; a PR that intentionally trades
# counters away must update the committed BENCH_*.json by hand.
for p in P1 P2 P3 P4 P5; do
  if python3 "$ROOT/bench/check_regression.py" --tolerance 0 \
      "$ROOT/BENCH_$p.json" "$RELEASE_DIR/BENCH_$p.json" > /dev/null; then
    cp "$RELEASE_DIR/BENCH_$p.json" "$ROOT/BENCH_$p.json"
  else
    echo "BENCH_$p.json: fresh counters within tolerance but worse than" \
         "baseline; NOT promoted (update the committed file deliberately" \
         "if the regression is intended)"
  fi
done

if [ "$SANITIZE" -eq 1 ]; then
  echo "== sanitize (asan+ubsan ctest) =="
  SAN_DIR="${BUILD_DIR}-sanitize"
  SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
  cmake -B "$SAN_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS" \
    -DTRINIT_BUILD_BENCHES=OFF -DTRINIT_BUILD_EXAMPLES=OFF
  cmake --build "$SAN_DIR" -j
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$(nproc)"
fi

if [ "$TSAN" -eq 1 ]; then
  echo "== tsan (-fsanitize=thread ctest) =="
  TSAN_DIR="${BUILD_DIR}-tsan"
  TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -O1 -g"
  cmake -B "$TSAN_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
    -DTRINIT_BUILD_BENCHES=OFF -DTRINIT_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_DIR" -j
  # halt_on_error: a single race fails the run loudly instead of
  # scrolling past; second_deadlock_stack gives both sides of any
  # lock-order report.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)"
fi

echo "CI OK"
