#!/usr/bin/env bash
# CI entry point: the tier-1 verify line plus a smoke run of the
# microbenchmarks. Usage: ./ci.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")" && pwd)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$ROOT"

echo "== build =="
cmake --build "$BUILD_DIR" -j

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== bench smoke =="
# Keep CI honest about the hot path without paying for a full bench run:
# every microbenchmark once, minimal measuring time.
if [ -x "$BUILD_DIR/bench/bench_m1_micro" ]; then
  "$BUILD_DIR/bench/bench_m1_micro" \
    --benchmark_min_time=0.01 --benchmark_repetitions=1
else
  echo "bench_m1_micro not built (google-benchmark missing); skipping"
fi

echo "== release perf (P1: lazy vs eager streaming; P2: planned join) =="
# Optimized build for the latency exhibits — the perf trajectory is
# tracked in BENCH_P1.json (PR 2 on) and BENCH_P2.json (PR 3 on). Both
# benches exit non-zero if their optimization stops saving work or
# answers diverge. The JSONs are written counters-only: wall-times are
# machine-local noise, the work counters are what cross-machine
# comparisons can trust (latencies still print to stdout).
RELEASE_DIR="${BUILD_DIR}-release"
cmake -B "$RELEASE_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" \
  -DTRINIT_BUILD_TESTS=OFF -DTRINIT_BUILD_EXAMPLES=OFF
cmake --build "$RELEASE_DIR" -j --target bench_p1_latency --target bench_p2_join
"$RELEASE_DIR/bench/bench_p1_latency" --counters-only "$ROOT/BENCH_P1.json"
"$RELEASE_DIR/bench/bench_p2_join" --counters-only "$ROOT/BENCH_P2.json"

echo "CI OK"
