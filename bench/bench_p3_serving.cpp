// Exhibit P3 — the engine-level serving cache (PR 4).
//
// TriniT's serving story assumes a long-lived endpoint answering many
// exploratory queries over one XKG. The serving cache amortizes two
// things across requests: compiled join plans (keyed by structural
// signature + XKG generation) and complete top-k results (a bounded
// LRU keyed by canonical query + config + generation). This bench runs
// a repeated-structure request mix — a handful of query shapes, each
// instantiated with several constants — through three engines over the
// same world:
//
//   serving  — full serving cache (plans + answers; production)
//   planonly — plan cache only (answer reuse off: every request still
//              joins, but planning is amortized across the workload)
//   uncached — serving cache disabled (the pre-PR-4 behavior: every
//              request plans and joins from scratch)
//
// and replays the mix for several passes. Pass 0 is cold; later passes
// are the warm serving path. Reported: per-pass pull/plan/answer
// counters and cold-vs-warm latency. Gates (exit non-zero):
//
//   * ranked answers byte-identical across engines and passes,
//   * every warm-pass request on `serving` is an answer-cache hit with
//     ZERO rank-join pulls,
//   * plan-cache hit rate on the repeated-structure mix (planonly
//     engine, all passes) >= 90%.
//
// PR 10 adds two observability exhibits: the hot-path cost of the
// always-on metrics registry (the same mix on two plan-cache-only
// engines, `obs.metrics` on vs off, min-of-reps; reported as
// `metrics_overhead_pct` and gated < 3% by bench/check_regression.py)
// and the slow-query log's ring invariant (a tiny threshold makes
// every request "slow"; after `requests > capacity` the ring must hold
// exactly the newest `capacity` records in order — gated here).
//
//   ./build/bench/bench_p3_serving [--counters-only] [out.json]
//                                  (default: BENCH_P3.json)
//
// --counters-only omits machine-local wall-times from the JSON so
// cross-machine comparisons see only deterministic work counters.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "query/parser.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using trinit::bench::AnswerBytes;
using trinit::bench::Percentile;

struct PassCounters {
  size_t items_pulled = 0;
  size_t combinations_tried = 0;
  size_t plan_hits = 0;    // per-request attribution, summed
  size_t plan_misses = 0;
  size_t answer_hits = 0;  // requests served from the answer cache
  std::vector<double> ms;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace trinit;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, "BENCH_P3.json");
  constexpr int kPasses = 3;
  constexpr int kK = 5;

  std::printf("[P3] engine-level serving cache: cross-request plan + "
              "answer reuse\n\n");

  synth::World world = bench::EvalWorld(2016);

  core::TrinitOptions serving_options;  // defaults: full cache
  core::TrinitOptions planonly_options;
  planonly_options.serving.cache_answers = false;
  core::TrinitOptions uncached_options;
  uncached_options.serving.enabled = false;

  struct EngineUnderTest {
    const char* name;
    Result<core::Trinit> engine;
  };
  EngineUnderTest engines[] = {
      {"serving", core::Trinit::FromWorld(world, serving_options)},
      {"planonly", core::Trinit::FromWorld(world, planonly_options)},
      {"uncached", core::Trinit::FromWorld(world, uncached_options)},
  };
  constexpr size_t kNumEngines = 3;
  for (const auto& e : engines) {
    if (!e.engine.ok()) {
      std::fprintf(stderr, "engine build failed: %s\n",
                   e.engine.status().ToString().c_str());
      return 1;
    }
  }
  const xkg::Xkg& xkg = engines[0].engine->xkg();

  // Repeated-structure mix: few shapes, many constants. Exactly the
  // exploratory-session workload — same question about different
  // entities — where structural plan reuse pays on every request and
  // answer reuse pays on every repeat.
  const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
  const auto& cities = world.OfClass(synth::EntityClass::kCity);
  constexpr size_t kConstantsPerShape = 6;
  std::vector<std::string> requests_text;
  for (size_t i = 0; i < kConstantsPerShape; ++i) {
    requests_text.push_back("SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
                            world.entities[cities[i]].name);
    requests_text.push_back("SELECT ?x WHERE ?x wonPrize ?p ; ?x affiliation " +
                            world.entities[unis[i]].name);
    requests_text.push_back("SELECT ?a ?b WHERE ?a hasAdvisor ?b ; "
                            "?b affiliation " +
                            world.entities[unis[i + 1]].name);
    requests_text.push_back("?x bornIn " + world.entities[cities[i + 1]].name);
  }
  std::printf("world: %zu triples; mix: %zu requests (4 shapes x %zu "
              "constants), %d passes, k=%d\n\n",
              xkg.store().size(), requests_text.size(), kConstantsPerShape,
              kPasses, kK);

  // [engine][pass] counters; [engine][request] answer bytes of pass 0.
  std::vector<std::vector<PassCounters>> passes(
      kNumEngines, std::vector<PassCounters>(kPasses));
  std::vector<std::vector<std::string>> cold_bytes(kNumEngines);
  bool answers_match = true;
  bool warm_zero_pulls = true;
  bool warm_all_hits = true;

  for (size_t e = 0; e < kNumEngines; ++e) {
    const core::Trinit& engine = *engines[e].engine;
    for (int pass = 0; pass < kPasses; ++pass) {
      PassCounters& pc = passes[e][pass];
      for (size_t qi = 0; qi < requests_text.size(); ++qi) {
        core::QueryRequest request =
            core::QueryRequest::Text(requests_text[qi], kK);
        WallTimer timer;
        auto response = engine.Execute(request);
        pc.ms.push_back(timer.ElapsedMillis());
        if (!response.ok()) {
          std::fprintf(stderr, "execute failed: %s\n",
                       response.status().ToString().c_str());
          return 1;
        }
        const auto& stats = response->stats;
        pc.items_pulled += stats.items_pulled;
        pc.combinations_tried += stats.combinations_tried;
        pc.plan_hits += stats.plan_cache_hits;
        pc.plan_misses += stats.plan_cache_misses;
        if (response->serving.answer_hit) ++pc.answer_hits;

        std::string bytes = AnswerBytes(response->result());
        if (pass == 0) {
          cold_bytes[e].push_back(bytes);
          if (e > 0 && bytes != cold_bytes[0][qi]) answers_match = false;
        } else {
          // Warm passes must reproduce the cold answers byte for byte —
          // cached or recomputed.
          if (bytes != cold_bytes[e][qi]) answers_match = false;
          if (e == 0) {
            if (!response->serving.answer_hit) warm_all_hits = false;
            if (stats.items_pulled != 0) warm_zero_pulls = false;
          }
        }
      }
    }
  }

  // Plan-cache hit rate over the whole mix, per engine (per-request
  // attributed counters, so `uncached` shows its private per-request
  // caches and `serving` only counts passes that actually planned).
  auto hit_rate = [&](size_t e) {
    size_t hits = 0, misses = 0;
    for (const PassCounters& pc : passes[e]) {
      hits += pc.plan_hits;
      misses += pc.plan_misses;
    }
    return hits + misses == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(hits + misses);
  };
  const double planonly_rate = hit_rate(1);
  const double uncached_rate = hit_rate(2);

  // ------------------------------------------------------------------
  // Metrics-registry overhead (PR 10). Two fresh engines with answer
  // caching off — every request pays full planning + join work, the
  // worst case for per-request instrumentation — one with the registry
  // live, one with `obs.metrics = false` (every handle unbound, the
  // compiled-out cost model at runtime). Reps interleave the engines
  // and keep the per-engine minimum, which sheds scheduler noise much
  // better than means on a shared box.
  constexpr int kOverheadReps = 8;
  core::TrinitOptions obs_on_options;
  obs_on_options.serving.cache_answers = false;
  core::TrinitOptions obs_off_options;
  obs_off_options.serving.cache_answers = false;
  obs_off_options.obs.metrics = false;
  Result<core::Trinit> obs_on = core::Trinit::FromWorld(world, obs_on_options);
  Result<core::Trinit> obs_off =
      core::Trinit::FromWorld(world, obs_off_options);
  if (!obs_on.ok() || !obs_off.ok()) {
    std::fprintf(stderr, "overhead engine build failed\n");
    return 1;
  }
  bool overhead_requests_ok = true;
  auto run_mix_ms = [&](const core::Trinit& engine) {
    WallTimer timer;
    for (const std::string& text : requests_text) {
      auto response = engine.Execute(core::QueryRequest::Text(text, kK));
      if (!response.ok()) overhead_requests_ok = false;
    }
    return timer.ElapsedMillis();
  };
  // One untimed pass each: plan caches and lazy score shapes warm up
  // outside the measurement.
  (void)run_mix_ms(*obs_on);
  (void)run_mix_ms(*obs_off);
  double best_on_ms = std::numeric_limits<double>::infinity();
  double best_off_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    best_on_ms = std::min(best_on_ms, run_mix_ms(*obs_on));
    best_off_ms = std::min(best_off_ms, run_mix_ms(*obs_off));
  }
  const double metrics_overhead_pct =
      best_off_ms <= 0.0 ? 0.0
                         : 100.0 * (best_on_ms - best_off_ms) / best_off_ms;
  std::printf("metrics overhead: mix best-of-%d %.3f ms with registry vs "
              "%.3f ms without (%+.2f%%)\n",
              kOverheadReps, best_on_ms, best_off_ms, metrics_overhead_pct);

  // ------------------------------------------------------------------
  // Slow-query-log ring invariant (PR 10): a microsecond threshold
  // records every request; after a full mix (more requests than
  // capacity) the ring must hold exactly the newest `capacity` records
  // with contiguous ascending sequence numbers.
  constexpr size_t kSlowLogCapacity = 8;
  core::TrinitOptions slowlog_options;
  slowlog_options.obs.slow_query_ms = 1e-6;
  slowlog_options.obs.slow_log_capacity = kSlowLogCapacity;
  Result<core::Trinit> slowlog_engine =
      core::Trinit::FromWorld(world, slowlog_options);
  if (!slowlog_engine.ok()) {
    std::fprintf(stderr, "slowlog engine build failed\n");
    return 1;
  }
  for (const std::string& text : requests_text) {
    auto response =
        slowlog_engine->Execute(core::QueryRequest::Text(text, kK));
    if (!response.ok()) overhead_requests_ok = false;
  }
  const obs::SlowQueryLog& slow_log = slowlog_engine->slow_query_log();
  const std::vector<obs::SlowQueryRecord> slow_entries = slow_log.Entries();
  bool slowlog_capacity_ok =
      slow_entries.size() == kSlowLogCapacity &&
      slow_log.total_recorded() == requests_text.size();
  for (size_t i = 0; slowlog_capacity_ok && i < slow_entries.size(); ++i) {
    const uint64_t want =
        slow_log.total_recorded() - kSlowLogCapacity + 1 + i;
    if (slow_entries[i].sequence != want) slowlog_capacity_ok = false;
  }
  std::printf("slow-query log: %zu of %llu kept at capacity %zu — %s\n\n",
              slow_entries.size(),
              static_cast<unsigned long long>(slow_log.total_recorded()),
              kSlowLogCapacity, slowlog_capacity_ok ? "ok" : "VIOLATION");

  AsciiTable table({"engine", "pass", "p50 ms", "pulls", "probes",
                    "plan hit/miss", "answer hits"});
  for (size_t e = 0; e < kNumEngines; ++e) {
    for (int pass = 0; pass < kPasses; ++pass) {
      const PassCounters& pc = passes[e][pass];
      table.AddRow({engines[e].name, std::to_string(pass),
                    FormatDouble(Percentile(pc.ms, 0.5), 3),
                    std::to_string(pc.items_pulled),
                    std::to_string(pc.combinations_tried),
                    std::to_string(pc.plan_hits) + "/" +
                        std::to_string(pc.plan_misses),
                    std::to_string(pc.answer_hits)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  const serve::ServingCache::Counters sc =
      engines[0].engine->serving_cache().counters();
  std::printf(
      "serving cache: %zu answer entries, %zu evictions; %zu plan "
      "entries\nplan hit rate over the mix: planonly %.3f, uncached "
      "(per-request caches) %.3f\n",
      sc.answer_entries, sc.answer_evictions, sc.plan_entries,
      planonly_rate, uncached_rate);

  FILE* json = std::fopen(args.out_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"p3_serving\",\n  \"k\": %d,\n"
               "  \"passes\": %d,\n  \"requests\": %zu,\n"
               "  \"world_triples\": %zu,\n  \"counters_only\": %s,\n"
               "  \"engines\": [\n",
               kK, kPasses, requests_text.size(), xkg.store().size(),
               args.counters_only ? "true" : "false");
  for (size_t e = 0; e < kNumEngines; ++e) {
    std::fprintf(json, "    {\"engine\": \"%s\", \"passes\": [\n",
                 engines[e].name);
    for (int pass = 0; pass < kPasses; ++pass) {
      const PassCounters& pc = passes[e][pass];
      std::fprintf(json, "      {\"pass\": %d, ", pass);
      if (!args.counters_only) {
        std::fprintf(json, "\"p50_ms\": %.4f, ", Percentile(pc.ms, 0.5));
      }
      std::fprintf(json,
                   "\"items_pulled\": %zu, \"combinations_tried\": %zu, "
                   "\"plan_hits\": %zu, \"plan_misses\": %zu, "
                   "\"answer_hits\": %zu}%s\n",
                   pc.items_pulled, pc.combinations_tried, pc.plan_hits,
                   pc.plan_misses, pc.answer_hits,
                   pass + 1 < kPasses ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", e + 1 < kNumEngines ? "," : "");
  }
  // metrics_overhead_pct is wall-derived but survives --counters-only:
  // as a same-machine same-binary ratio it is what the regression gate
  // checks, not an absolute latency.
  std::fprintf(json,
               "  ],\n  \"totals\": {\"planonly_plan_hit_rate\": %.4f, "
               "\"answer_cache_entries\": %zu, "
               "\"answer_cache_evictions\": %zu, "
               "\"warm_all_answer_hits\": %s, "
               "\"warm_zero_pulls\": %s, \"answers_match\": %s, "
               "\"metrics_overhead_pct\": %.2f, "
               "\"slowlog_capacity\": %zu, "
               "\"slowlog_capacity_ok\": %s}\n}\n",
               planonly_rate, sc.answer_entries, sc.answer_evictions,
               warm_all_hits ? "true" : "false",
               warm_zero_pulls ? "true" : "false",
               answers_match ? "true" : "false", metrics_overhead_pct,
               kSlowLogCapacity, slowlog_capacity_ok ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", args.out_path);

  if (!answers_match) {
    std::fprintf(stderr, "P3 REGRESSION: cached answers diverged from "
                         "uncached execution\n");
    return 1;
  }
  if (!warm_all_hits || !warm_zero_pulls) {
    std::fprintf(stderr, "P3 REGRESSION: warm-pass requests were not all "
                         "zero-pull answer-cache hits\n");
    return 1;
  }
  if (planonly_rate < 0.90) {
    std::fprintf(stderr,
                 "P3 REGRESSION: plan-cache hit rate %.3f < 0.90 on the "
                 "repeated-structure mix\n",
                 planonly_rate);
    return 1;
  }
  if (!slowlog_capacity_ok || !overhead_requests_ok) {
    std::fprintf(stderr,
                 "P3 REGRESSION: slow-query log broke its bounded-ring "
                 "contract (or an observability-pass request failed)\n");
    return 1;
  }
  return 0;
}
