// Exhibit P5 — sharded scatter-gather serving.
//
// The XKG is hash-partitioned by subject into S in-process shards, each
// with its own score-ordered posting lists and statistics; every leaf
// stream becomes a merge over per-shard segments under one global
// threshold, so the decomposition is *exact*: answers, scores, and
// total pulls are byte-identical at any shard count. What sharding buys
// is balance — the work any single shard (a node, in the multi-machine
// reading) performs: this bench runs the P2 multi-pattern query mix at
// S in {1, 2, 4, 8} over the same world and reports, per shard count,
// the total pulls (must not change) and the hottest shard's pulls
// (must shrink as S grows).
//
//   ./build/bench/bench_p5_shard [--counters-only] [out.json]
//                                (default: BENCH_P5.json)
//
// --counters-only omits the machine-local p50/p95 wall-times from the
// JSON so cross-machine comparisons see only deterministic counters.
//
// Exit code is non-zero if answers or total pulls diverge across shard
// counts, or if the hottest shard at S=4 still pulls more than half of
// the unsharded total (the scatter failed to spread the work).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using trinit::bench::AnswerBytes;
using trinit::bench::JsonEscape;
using trinit::bench::Percentile;

constexpr size_t kShardCounts[] = {1, 2, 4, 8};
constexpr size_t kNumConfigs = 4;

struct Side {
  std::vector<double> ms;
  std::string answer_bytes;
  size_t items_pulled = 0;
  size_t shard_pulls_max = 0;  // hottest shard of this one query
};

}  // namespace

int main(int argc, char** argv) {
  using namespace trinit;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, "BENCH_P5.json");
  const bool counters_only = args.counters_only;
  const char* out_path = args.out_path;
  constexpr int kReps = 9;
  constexpr int kK = 5;

  std::printf("[P5] sharded scatter-gather serving (subject-hash XKG)\n\n");

  synth::World world = bench::EvalWorld(2016);
  std::vector<core::Trinit> engines;
  engines.reserve(kNumConfigs);
  for (size_t shard_count : kShardCounts) {
    core::TrinitOptions options;
    options.shard_count = shard_count;
    // Every rep must run the rank-join for real: the answer cache would
    // serve reps 2..N for free and zero their counters.
    options.serving.enabled = false;
    auto engine = core::Trinit::FromWorld(world, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "FromWorld(S=%zu) failed: %s\n", shard_count,
                   engine.status().ToString().c_str());
      return 1;
    }
    engines.push_back(std::move(engine).value());
  }
  std::printf("world: %zu triples, %zu relaxation rules, k=%d, %d reps\n\n",
              engines[0].xkg().store().size(), engines[0].rules().size(), kK,
              kReps);

  const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
  const auto& cities = world.OfClass(synth::EntityClass::kCity);
  const auto& persons = world.OfClass(synth::EntityClass::kPerson);
  // The P2 multi-pattern mix: every query joins 2-3 streams.
  std::vector<std::string> queries = {
      "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
          world.entities[cities[0]].name,
      "SELECT ?x WHERE ?x wonPrize ?p ; ?x affiliation " +
          world.entities[unis[0]].name,
      "SELECT ?x ?c WHERE ?x wonPrize ?p ; ?x bornIn ?c ; ?c locatedIn "
      "?country",
      "SELECT ?x WHERE ?x ?r ?y ; ?x hasAdvisor " +
          world.entities[persons[1]].name,
      "SELECT ?x ?u WHERE ?x affiliation ?u ; ?u campusIn " +
          world.entities[cities[1]].name + " ; ?x bornIn ?b",
      "SELECT ?a ?b WHERE ?a hasAdvisor ?b ; ?b affiliation " +
          world.entities[unis[1]].name,
  };

  AsciiTable table({"query", "S=1 p50", "S=4 p50", "pulls", "S=2 max",
                    "S=4 max", "S=8 max"});
  size_t total_pulled[kNumConfigs] = {0, 0, 0, 0};
  // Per-shard pulls accumulated across the whole mix, per shard count —
  // the balance figure a per-query max would overstate.
  std::vector<size_t> mix_shard_pulled[kNumConfigs];
  bool answers_match = true;
  bool pulls_match = true;

  FILE* json = std::fopen(out_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"p5_shard\",\n  \"k\": %d,\n"
               "  \"reps\": %d,\n  \"world_triples\": %zu,\n"
               "  \"counters_only\": %s,\n  \"queries\": [\n",
               kK, kReps, engines[0].xkg().store().size(),
               counters_only ? "true" : "false");

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::string& text = queries[qi];
    Side sides[kNumConfigs];
    for (int rep = 0; rep < kReps; ++rep) {
      for (size_t c = 0; c < kNumConfigs; ++c) {
        WallTimer timer;
        auto response = engines[c].Execute(core::QueryRequest::Text(text, kK));
        sides[c].ms.push_back(timer.ElapsedMillis());
        if (!response.ok()) {
          std::fprintf(stderr, "query failed (S=%zu): %s\n", kShardCounts[c],
                       response.status().ToString().c_str());
          return 1;
        }
        if (rep + 1 < kReps) continue;  // stats are deterministic
        sides[c].answer_bytes = AnswerBytes(response->result());
        sides[c].items_pulled = response->stats.items_pulled;
        const std::vector<size_t>& per_shard =
            response->stats.per_shard_pulled;
        for (size_t i = 0; i < per_shard.size(); ++i) {
          sides[c].shard_pulls_max =
              std::max(sides[c].shard_pulls_max, per_shard[i]);
          if (mix_shard_pulled[c].size() <= i) {
            mix_shard_pulled[c].resize(i + 1, 0);
          }
          mix_shard_pulled[c][i] += per_shard[i];
        }
      }
    }

    for (size_t c = 1; c < kNumConfigs; ++c) {
      if (sides[c].answer_bytes != sides[0].answer_bytes) {
        answers_match = false;
      }
      if (sides[c].items_pulled != sides[0].items_pulled) pulls_match = false;
    }

    std::fprintf(json, "    {\"query\": \"%s\",\n", JsonEscape(text).c_str());
    for (size_t c = 0; c < kNumConfigs; ++c) {
      total_pulled[c] += sides[c].items_pulled;
      std::fprintf(json, "     \"s%zu\": {", kShardCounts[c]);
      if (!counters_only) {
        std::fprintf(json, "\"p50_ms\": %.4f, \"p95_ms\": %.4f, ",
                     Percentile(sides[c].ms, 0.5),
                     Percentile(sides[c].ms, 0.95));
      }
      std::fprintf(json, "\"items_pulled\": %zu, \"shard_pulls_max\": %zu}%s\n",
                   sides[c].items_pulled, sides[c].shard_pulls_max,
                   c + 1 < kNumConfigs ? "," : "}");
    }
    std::fprintf(json, "%s\n", qi + 1 < queries.size() ? "    ," : "");

    std::string label = text.size() > 34 ? text.substr(0, 31) + "..." : text;
    table.AddRow({label, FormatDouble(Percentile(sides[0].ms, 0.5), 2),
                  FormatDouble(Percentile(sides[2].ms, 0.5), 2),
                  std::to_string(sides[0].items_pulled),
                  std::to_string(sides[1].shard_pulls_max),
                  std::to_string(sides[2].shard_pulls_max),
                  std::to_string(sides[3].shard_pulls_max)});
  }

  size_t mix_max[kNumConfigs] = {0, 0, 0, 0};
  for (size_t c = 0; c < kNumConfigs; ++c) {
    for (size_t pulled : mix_shard_pulled[c]) {
      mix_max[c] = std::max(mix_max[c], pulled);
    }
  }
  const double s4_balance =
      total_pulled[0] == 0 ? 0.0
                           : static_cast<double>(mix_max[2]) /
                                 static_cast<double>(total_pulled[0]);
  std::fprintf(json,
               "  ],\n  \"totals\": {\"s1_items_pulled\": %zu, "
               "\"s2_max_shard_pulled\": %zu, "
               "\"s4_max_shard_pulled\": %zu, "
               "\"s8_max_shard_pulled\": %zu, "
               "\"s4_balance\": %.4f, "
               "\"pulls_match\": %s, \"answers_match\": %s}\n}\n",
               total_pulled[0], mix_max[1], mix_max[2], mix_max[3],
               s4_balance, pulls_match ? "true" : "false",
               answers_match ? "true" : "false");
  std::fclose(json);

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "totals: %zu pulls at every S; hottest shard %zu (S=2) %zu (S=4) "
      "%zu (S=8); S=4 balance %.2f; answers %s\n",
      total_pulled[0], mix_max[1], mix_max[2], mix_max[3], s4_balance,
      answers_match ? "identical" : "DIVERGED");
  std::printf("wrote %s\n", out_path);

  if (!answers_match) {
    std::fprintf(stderr, "P5 REGRESSION: answers diverged across shard "
                         "counts\n");
    return 1;
  }
  if (!pulls_match) {
    std::fprintf(stderr, "P5 REGRESSION: total pulls changed under "
                         "sharding (the merge is no longer exact)\n");
    return 1;
  }
  // The scatter must actually spread the work: at S=4 the hottest shard
  // may own at most half the unsharded mix total.
  if (2 * mix_max[2] > total_pulled[0]) {
    std::fprintf(stderr,
                 "P5 REGRESSION: hottest S=4 shard pulled %zu of %zu "
                 "(> 50%%)\n",
                 mix_max[2], total_pulled[0]);
    return 1;
  }
  return 0;
}
