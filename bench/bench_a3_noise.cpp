// Exhibit A3 (our ablation) — robustness to extraction-pipeline quality.
// The paper's XKG triples "come with substantially lower confidence than
// the facts of the original KG" (§2); this bench degrades the extractor
// and the entity linker and measures how retrieval quality responds,
// quantifying how much the scoring model's confidence attenuation buys.

#include <cstdio>

#include "bench_util.h"
#include "eval/runner.h"
#include "openie/pipeline.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace trinit;

double Ndcg5(const synth::World& world, const eval::Workload& workload,
             openie::Extractor::Options extractor_options,
             openie::Linker::Options linker_options) {
  xkg::XkgBuilder builder;
  synth::KgGenerator::PopulateKg(world, &builder);
  auto docs = synth::CorpusGenerator::Generate(world);
  openie::Pipeline pipeline(
      openie::Extractor(extractor_options),
      openie::Pipeline::LinkerForWorld(world, linker_options));
  pipeline.Run(docs, &builder);
  auto xkg = builder.Build();
  if (!xkg.ok()) return -1.0;
  auto engine = core::Trinit::Open(std::move(xkg).value());
  if (!engine.ok()) return -1.0;

  eval::EngineUnderTest sut;
  sut.name = "sut";
  sut.engine = &engine.value();
  return eval::Runner::Run(workload, {sut}, 10)[0].ndcg5;
}

}  // namespace

int main() {
  std::printf("[A3] pipeline-noise ablation (NDCG@5 on the E1 "
              "workload)\n\n");

  synth::World world = bench::EvalWorld();
  eval::WorkloadGenerator::Options wopts;
  wopts.num_queries = 40;
  eval::Workload workload = eval::WorkloadGenerator::Generate(world, wopts);

  openie::Extractor::Options clean_extractor;
  openie::Linker::Options clean_linker;

  openie::Extractor::Options sloppy_extractor;
  sloppy_extractor.max_relation_tokens = 12;
  sloppy_extractor.base_confidence = 0.45;
  sloppy_extractor.min_confidence = 0.05;

  openie::Linker::Options timid_linker;
  timid_linker.dominance_threshold = 0.95;  // links almost nothing
  openie::Linker::Options reckless_linker;
  reckless_linker.dominance_threshold = 0.05;  // links everything

  struct Config {
    const char* name;
    openie::Extractor::Options extractor;
    openie::Linker::Options linker;
  } configs[] = {
      {"clean pipeline", clean_extractor, clean_linker},
      {"sloppy extractor", sloppy_extractor, clean_linker},
      {"timid linker (few links)", clean_extractor, timid_linker},
      {"reckless linker (wrong links)", clean_extractor, reckless_linker},
      {"sloppy + reckless", sloppy_extractor, reckless_linker},
  };

  AsciiTable table({"pipeline condition", "NDCG@5", "delta vs clean"});
  double clean = -1.0;
  for (const Config& config : configs) {
    double ndcg = Ndcg5(world, workload, config.extractor, config.linker);
    if (clean < 0) clean = ndcg;
    table.AddRow({config.name, FormatDouble(ndcg, 3),
                  FormatDouble(ndcg - clean, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: under-linking (timid) hurts most — unlinked "
              "arguments stay tokens and stop joining with KG entities. "
              "Aggressive linking and sloppy extraction cost little and "
              "can even help recall: wrong, low-confidence triples are "
              "kept but attenuated by the scoring model, so they only "
              "surface when nothing better exists. That asymmetry "
              "(recall cheap, precision recoverable by ranking) is the "
              "design bet behind extending the KG with noisy Open IE "
              "output (paper §2).\n");
  return 0;
}
