// Exhibit F6 — Figure 6 of the paper (screenshot): the TriniT answer
// explanation. Reproduces the explanation of the user-C answer: the KG
// triples, the XKG triple with its source sentence, and the relaxation
// rule that was invoked.

#include <cstdio>

#include "bench_util.h"
#include "query/parser.h"

int main() {
  using namespace trinit;

  std::printf("[F6] Figure 6: TriniT answer explanation (headless)\n\n");

  core::Trinit engine = bench::OpenPaperEngine();
  auto q = query::Parser::Parse(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
      "IvyLeague",
      &engine.xkg().dict());
  if (!q.ok()) return 1;
  auto result = engine.Answer(*q, 5);
  if (!result.ok() || result->answers.empty()) {
    std::fprintf(stderr, "expected an answer for user C\n");
    return 1;
  }

  for (size_t rank = 0; rank < result->answers.size(); ++rank) {
    std::printf("%s\n", engine.Explain(*result, rank).ToString().c_str());
  }

  std::printf("paper's explanation shows: (i) contributing KG triples, "
              "(ii) contributing XKG triples with provenance, (iii) the "
              "invoked relaxation rules — all three sections rendered "
              "above.\n");
  return 0;
}
