// Exhibit F1 — Figure 1 of the paper: the sample knowledge graph.
// Prints the same SPO rows the figure shows, then verifies the triple
// store serves every pattern shape over them.

#include <cstdio>

#include "bench_util.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace trinit;

  xkg::Xkg xkg = bench::BuildPaperXkg();

  std::printf("[F1] Figure 1: sample knowledge graph\n\n");
  AsciiTable table({"Subject", "Predicate", "Object"});
  for (rdf::TripleId id = 0; id < xkg.store().size(); ++id) {
    if (!xkg.IsKgTriple(id)) continue;
    const rdf::Triple& t = xkg.store().triple(id);
    const auto& d = xkg.dict();
    table.AddRow({std::string(d.label(t.s)), std::string(d.label(t.p)),
                  std::string(d.label(t.o))});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("store: %zu triples (%zu KG + %zu extension), %zu terms\n",
              xkg.store().size(), xkg.kg_triple_count(),
              xkg.extraction_triple_count(), xkg.dict().size());

  // All 8 pattern shapes resolve via permutation indexes.
  const auto& d = xkg.dict();
  rdf::TermId einstein = d.Find(rdf::TermKind::kResource, "AlbertEinstein");
  rdf::TermId born_in = d.Find(rdf::TermKind::kResource, "bornIn");
  rdf::TermId ulm = d.Find(rdf::TermKind::kResource, "Ulm");
  AsciiTable shapes({"pattern shape", "example", "matches"});
  struct Shape {
    const char* name;
    rdf::TermId s, p, o;
  } probes[] = {
      {"(?,?,?)", rdf::kNullTerm, rdf::kNullTerm, rdf::kNullTerm},
      {"(s,?,?)", einstein, rdf::kNullTerm, rdf::kNullTerm},
      {"(?,p,?)", rdf::kNullTerm, born_in, rdf::kNullTerm},
      {"(?,?,o)", rdf::kNullTerm, rdf::kNullTerm, ulm},
      {"(s,p,?)", einstein, born_in, rdf::kNullTerm},
      {"(s,?,o)", einstein, rdf::kNullTerm, ulm},
      {"(?,p,o)", rdf::kNullTerm, born_in, ulm},
      {"(s,p,o)", einstein, born_in, ulm},
  };
  for (const Shape& probe : probes) {
    shapes.AddRow({probe.name,
                   d.DebugLabel(probe.s) + " " + d.DebugLabel(probe.p) +
                       " " + d.DebugLabel(probe.o),
                   std::to_string(
                       xkg.store().MatchCount(probe.s, probe.p, probe.o))});
  }
  std::printf("\npermutation-index coverage:\n%s", shapes.ToString().c_str());
  return 0;
}
