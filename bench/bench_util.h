#ifndef TRINIT_BENCH_BENCH_UTIL_H_
#define TRINIT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/trinit.h"
#include "synth/kg_generator.h"
#include "xkg/xkg_builder.h"

namespace trinit::bench {

/// Byte-comparable rendering of a ranked answer list: projection values
/// and nano-rounded scores, rank order preserved. The equality
/// definition behind every "byte-identical answers" bench gate (P2,
/// P3) — single-sourced so the exhibits cannot drift apart.
inline std::string AnswerBytes(const topk::TopKResult& result) {
  std::ostringstream os;
  for (const auto& ans : result.answers) {
    for (size_t i = 0; i < result.projection.size(); ++i) {
      os << ans.binding.Get(static_cast<query::VarId>(i)) << ',';
    }
    os << std::llround(ans.score * 1e9) << ';';
  }
  return os.str();
}

/// Backslash-escapes quotes/backslashes for a JSON string value.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Nearest-rank percentile (`pct` in [0,1]) over a copy of `samples`.
inline double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(pct * (samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

/// The shared CLI surface of the JSON-writing benches:
/// `[--counters-only] [out.json]`. `--counters-only` strips the
/// machine-local p50/p95 wall-times from the JSON so cross-machine
/// comparisons see only deterministic work counters.
struct BenchArgs {
  bool counters_only = false;
  const char* out_path;
};
inline BenchArgs ParseBenchArgs(int argc, char** argv,
                                const char* default_out) {
  BenchArgs args;
  args.out_path = default_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--counters-only") {
      args.counters_only = true;
    } else {
      args.out_path = argv[i];
    }
  }
  return args;
}

/// The paper's Figure 1 KG + Figure 3 extension + rule-1 type facts
/// (same data as tests/testing/paper_world.h; duplicated here so bench
/// binaries only depend on src/).
inline xkg::Xkg BuildPaperXkg() {
  xkg::XkgBuilder b;
  b.AddKgFact("AlbertEinstein", "bornIn", "Ulm");
  b.AddKgFact("Ulm", "locatedIn", "Germany");
  b.AddKgFact("AlbertEinstein", "bornOn", "1879-03-14", true);
  b.AddKgFact("AlfredKleiner", "hasStudent", "AlbertEinstein");
  b.AddKgFact("AlbertEinstein", "affiliation", "IAS");
  b.AddKgFact("PrincetonUniversity", "member", "IvyLeague");
  b.AddKgFact("Germany", "type", "country");
  b.AddKgFact("Ulm", "type", "city");
  b.AddExtraction("AlbertEinstein", true, "won Nobel for",
                  "discovery of the photoelectric effect", false, 0.8f,
                  {1, 0,
                   "Einstein won a Nobel for his discovery of the "
                   "photoelectric effect.",
                   0.8});
  b.AddExtraction("IAS", true, "housed in", "PrincetonUniversity", true,
                  0.9f, {2, 3, "The IAS is housed in Princeton.", 0.9});
  b.AddExtraction("AlbertEinstein", true, "lectured at",
                  "PrincetonUniversity", true, 0.7f,
                  {3, 1, "Einstein lectured at Princeton University.", 0.7});
  b.AddExtraction("AlbertEinstein", true, "met his teacher", "Prof. Kleiner",
                  false, 0.5f,
                  {4, 2, "Einstein met his teacher Prof. Kleiner.", 0.5});
  auto r = b.Build();
  if (!r.ok()) {
    std::fprintf(stderr, "paper world build failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

/// The Figure 4 rules plus the type-free geographic expansion.
inline constexpr const char* kPaperRulesText =
    "rule1: ?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z type city "
    "; ?z locatedIn ?y @ 1.0\n"
    "rule2: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0\n"
    "rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y "
    "@ 0.8\n"
    "rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7\n"
    "geo: ?x bornIn ?y => ?x bornIn ?z ; ?z locatedIn ?y @ 0.9\n";

/// A paper-world TriniT engine with the Figure 4 rules loaded.
inline core::Trinit OpenPaperEngine() {
  auto engine = core::Trinit::Open(BuildPaperXkg());
  if (!engine.ok()) std::exit(1);
  if (!engine->AddManualRules(kPaperRulesText).ok()) std::exit(1);
  return std::move(engine).value();
}

/// A synthetic world sized for evaluation benches: large enough for 70
/// distinct queries, small enough that a 4-system sweep stays fast.
inline synth::World EvalWorld(uint64_t seed = 2016) {
  synth::WorldSpec spec;
  spec.seed = seed;
  spec.num_persons = 220;
  spec.num_universities = 22;
  spec.num_institutes = 12;
  spec.num_cities = 30;
  spec.num_countries = 8;
  spec.num_prizes = 8;
  spec.num_fields = 10;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  return synth::KgGenerator::Generate(spec);
}

}  // namespace trinit::bench

#endif  // TRINIT_BENCH_BENCH_UTIL_H_
