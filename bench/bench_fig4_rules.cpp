// Exhibit F4 — Figure 4 of the paper: relaxation rules and their
// weights. Prints the figure's manual rules, then demonstrates the
// paper's mined-weight formula w(p1->p2) = |args(p1) ∩ args(p2)| /
// |args(p2)| on a controlled world and on a full synthetic XKG.

#include <cstdio>

#include "bench_util.h"
#include "relax/manual_rules.h"
#include "relax/synonym_miner.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace trinit;

  std::printf("[F4] Figure 4: examples of relaxation rules\n\n");
  auto rules = relax::ParseManualRules(bench::kPaperRulesText);
  if (!rules.ok()) return 1;
  AsciiTable manual({"#", "Original => Replacement", "Weight"});
  int i = 1;
  for (const relax::Rule& rule : *rules) {
    if (rule.name == "geo") continue;  // not in the figure
    manual.AddRow({std::to_string(i++), rule.ToString(),
                   FormatDouble(rule.weight, 1)});
  }
  std::printf("%s\n", manual.ToString().c_str());

  // Controlled mined-weight check: affiliation and 'works at' share 3
  // of 'works at's 4 argument pairs -> w = 0.75 exactly.
  {
    xkg::XkgBuilder b;
    b.AddKgFact("E1", "affiliation", "U1");
    b.AddKgFact("E2", "affiliation", "U1");
    b.AddKgFact("E3", "affiliation", "U2");
    b.AddKgFact("E4", "affiliation", "U2");
    auto ext = [&](const char* s, const char* o) {
      b.AddExtraction(s, true, "works at", o, true, 0.8f,
                      {1, 0, std::string(s) + " works at " + o + ".", 0.8});
    };
    ext("E1", "U1");
    ext("E2", "U1");
    ext("E3", "U2");
    ext("E9", "U3");
    auto xkg = b.Build();
    if (!xkg.ok()) return 1;
    relax::SynonymMiner::Options opts;
    opts.min_weight = 0.0;
    opts.min_overlap = 1;
    relax::SynonymMiner miner(opts);
    relax::RuleSet mined;
    if (!miner.Generate(*xkg, &mined).ok()) return 1;

    std::printf("mined-weight formula check (|args ∩| / |args(p2)|):\n");
    AsciiTable check({"rule", "expected", "mined"});
    for (const relax::Rule& rule : mined.rules()) {
      std::string expected =
          rule.name == "syn:affiliation->works at" ||
                  rule.name == "syn:works at->affiliation"
              ? "0.750"
              : "-";
      check.AddRow({rule.ToString(), expected,
                    FormatDouble(rule.weight, 3)});
    }
    std::printf("%s\n", check.ToString().c_str());
  }

  // Full synthetic XKG: top mined rules per kind.
  synth::World world = bench::EvalWorld();
  auto engine = core::Trinit::FromWorld(world);
  if (!engine.ok()) return 1;
  std::printf("rules mined from the full synthetic XKG: %zu "
              "(synonym %zu, inversion %zu, expansion %zu)\n",
              engine->rules().size(),
              engine->rules().CountOfKind(relax::RuleKind::kSynonym),
              engine->rules().CountOfKind(relax::RuleKind::kInversion),
              engine->rules().CountOfKind(relax::RuleKind::kExpansion));
  AsciiTable top({"kind", "heaviest mined rule", "weight"});
  for (relax::RuleKind kind :
       {relax::RuleKind::kSynonym, relax::RuleKind::kInversion,
        relax::RuleKind::kExpansion}) {
    const relax::Rule* best = nullptr;
    for (const relax::Rule& rule : engine->rules().rules()) {
      if (rule.kind != kind) continue;
      if (best == nullptr || rule.weight > best->weight) best = &rule;
    }
    if (best != nullptr) {
      top.AddRow({relax::RuleKindName(kind), best->ToString(),
                  FormatDouble(best->weight, 3)});
    }
  }
  std::printf("%s", top.ToString().c_str());
  return 0;
}
