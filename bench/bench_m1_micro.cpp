// Exhibit M1 — substrate micro-benchmarks (google-benchmark): the
// dictionary, the 6-permutation triple store, the phrase index, the
// Open IE extractor, and the end-to-end per-query cost of the top-k
// processor on the paper world.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "openie/extractor.h"
#include "query/parser.h"
#include "text/phrase_index.h"
#include "util/random.h"

namespace {

using namespace trinit;

void BM_DictionaryIntern(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rdf::Dictionary dict;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          dict.InternResource("entity_" + std::to_string(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DictionaryIntern)->Arg(1000)->Arg(10000);

void BM_DictionaryLookup(benchmark::State& state) {
  rdf::Dictionary dict;
  for (int i = 0; i < state.range(0); ++i) {
    dict.InternResource("entity_" + std::to_string(i));
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Find(
        rdf::TermKind::kResource,
        "entity_" + std::to_string(i++ % state.range(0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryLookup)->Arg(10000);

rdf::TripleStore BuildRandomStore(size_t n, uint64_t seed) {
  Rng rng(seed);
  rdf::TripleStoreBuilder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.Add(static_cast<rdf::TermId>(1 + rng.Uniform(n / 4 + 1)),
                static_cast<rdf::TermId>(1 + rng.Uniform(64)),
                static_cast<rdf::TermId>(1 + rng.Uniform(n / 4 + 1)));
  }
  auto r = builder.Build();
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

void BM_TripleStoreBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildRandomStore(static_cast<size_t>(state.range(0)), 42));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TripleStoreBuild)->Arg(10000)->Arg(100000);

void BM_TripleStoreMatchByPredicate(benchmark::State& state) {
  rdf::TripleStore store =
      BuildRandomStore(static_cast<size_t>(state.range(0)), 42);
  Rng rng(7);
  for (auto _ : state) {
    rdf::TermId p = static_cast<rdf::TermId>(1 + rng.Uniform(64));
    benchmark::DoNotOptimize(store.Match(rdf::kNullTerm, p, rdf::kNullTerm));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleStoreMatchByPredicate)->Arg(100000);

void BM_TripleStorePointLookup(benchmark::State& state) {
  rdf::TripleStore store =
      BuildRandomStore(static_cast<size_t>(state.range(0)), 42);
  Rng rng(9);
  for (auto _ : state) {
    const rdf::Triple& t = store.triple(
        static_cast<rdf::TripleId>(rng.Uniform(store.size())));
    benchmark::DoNotOptimize(store.Find(t.s, t.p, t.o));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleStorePointLookup)->Arg(100000);

void BM_PhraseIndexFindSimilar(benchmark::State& state) {
  rdf::Dictionary dict;
  Rng rng(5);
  const char* verbs[] = {"works", "lectured", "won", "born", "located"};
  const char* nouns[] = {"prize", "university", "institute", "city",
                         "award"};
  for (int i = 0; i < 5000; ++i) {
    dict.InternToken(std::string(verbs[rng.Uniform(5)]) + " at the " +
                     nouns[rng.Uniform(5)] + " " + std::to_string(i % 97));
  }
  text::PhraseIndex index = text::PhraseIndex::Build(dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.FindSimilar("won the prize", 0.3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhraseIndexFindSimilar);

void BM_OpenIeExtract(benchmark::State& state) {
  openie::Extractor extractor;
  const std::string sentence =
      "In 1921, Anna Keller won the Keller Prize for work on physics, "
      "according to several sources.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.ExtractSentence(sentence));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenIeExtract);

void BM_PaperWorldQuery(benchmark::State& state) {
  core::Trinit engine = bench::OpenPaperEngine();
  auto q = query::Parser::Parse(
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
      "IvyLeague",
      &engine.xkg().dict());
  if (!q.ok()) std::abort();
  for (auto _ : state) {
    auto r = engine.Answer(*q, 5);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PaperWorldQuery);

}  // namespace

BENCHMARK_MAIN();
