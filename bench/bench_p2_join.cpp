// Exhibit P2 — cost-ordered plans + hash-partitioned rank-join state.
//
// The planning layer compiles each query into a cost-based pattern
// order with precomputed pair join-key signatures; the join engine
// partitions its seen items by those signatures so a Combine probe
// touches only join-compatible candidates. This bench runs a
// multi-pattern query mix through three configurations of the same
// processor:
//
//   planned  — cost order + hash-partitioned probing (production)
//   parser   — parser pattern order + hash-partitioned probing
//   seed     — parser pattern order + linear seen-scans (the seed
//              implementation this PR replaces)
//
// and reports p50/p95 latency plus the deterministic probe counters
// (`combinations_tried` = candidates examined). Answer sets must be
// byte-identical across all three; the property tests prove it at
// scale, the bench refuses to report numbers for diverging runs.
//
//   ./build/bench/bench_p2_join [--counters-only] [out.json]
//                               (default: BENCH_P2.json)
//
// --counters-only omits the machine-local p50/p95 wall-times from the
// JSON so cross-machine comparisons see only deterministic counters.
//
// Exit code is non-zero if answers diverge or hash-partitioned probing
// fails to reduce probe work per pulled item vs. the seed linear scan.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "query/parser.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using trinit::bench::AnswerBytes;
using trinit::bench::JsonEscape;
using trinit::bench::Percentile;

struct Config {
  const char* name;
  bool cost_order;
  trinit::topk::JoinEngine::ProbeMode probe;
};

struct Side {
  std::vector<double> ms;
  trinit::topk::TopKResult result;  // last run (stats deterministic)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace trinit;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, "BENCH_P2.json");
  const bool counters_only = args.counters_only;
  const char* out_path = args.out_path;
  constexpr int kReps = 9;
  constexpr int kK = 5;

  std::printf(
      "[P2] cost-ordered plans + hash-partitioned rank-join state\n\n");

  synth::World world = bench::EvalWorld(2016);
  auto engine = core::Trinit::FromWorld(world);
  if (!engine.ok()) return 1;
  const xkg::Xkg& xkg = engine->xkg();
  const relax::RuleSet& rules = engine->rules();
  std::printf("world: %zu triples, %zu relaxation rules, k=%d, %d reps\n\n",
              xkg.store().size(), rules.size(), kK, kReps);

  const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
  const auto& cities = world.OfClass(synth::EntityClass::kCity);
  const auto& persons = world.OfClass(synth::EntityClass::kPerson);
  // Multi-pattern mix: every query joins 2-3 streams, several with the
  // wide pattern written *first* so parser order starts badly.
  std::vector<std::string> queries = {
      "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
          world.entities[cities[0]].name,
      "SELECT ?x WHERE ?x wonPrize ?p ; ?x affiliation " +
          world.entities[unis[0]].name,
      "SELECT ?x ?c WHERE ?x wonPrize ?p ; ?x bornIn ?c ; ?c locatedIn "
      "?country",
      "SELECT ?x WHERE ?x ?r ?y ; ?x hasAdvisor " +
          world.entities[persons[1]].name,
      "SELECT ?x ?u WHERE ?x affiliation ?u ; ?u campusIn " +
          world.entities[cities[1]].name + " ; ?x bornIn ?b",
      "SELECT ?a ?b WHERE ?a hasAdvisor ?b ; ?b affiliation " +
          world.entities[unis[1]].name,
  };

  const Config configs[] = {
      {"planned", true, topk::JoinEngine::ProbeMode::kHashPartition},
      {"parser", false, topk::JoinEngine::ProbeMode::kHashPartition},
      {"seed", false, topk::JoinEngine::ProbeMode::kLinear},
  };
  constexpr size_t kNumConfigs = 3;

  std::vector<topk::TopKProcessor> processors;
  processors.reserve(kNumConfigs);
  for (const Config& config : configs) {
    topk::ProcessorOptions opts;
    opts.k = kK;
    opts.use_cost_order = config.cost_order;
    opts.join.probe_mode = config.probe;
    processors.emplace_back(xkg, rules, scoring::ScorerOptions{}, opts);
  }

  AsciiTable table({"query", "planned p50", "seed p50", "planned tried",
                    "parser tried", "seed tried", "pulls", "probe/pull",
                    "seed probe/pull"});
  size_t total_tried[kNumConfigs] = {0, 0, 0};
  size_t total_pulled[kNumConfigs] = {0, 0, 0};
  bool answers_match = true;

  FILE* json = std::fopen(out_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"p2_join\",\n  \"k\": %d,\n"
               "  \"reps\": %d,\n  \"world_triples\": %zu,\n"
               "  \"counters_only\": %s,\n  \"queries\": [\n",
               kK, kReps, xkg.store().size(),
               counters_only ? "true" : "false");

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::string& text = queries[qi];
    auto q = query::Parser::Parse(text, &xkg.dict());
    if (!q.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   q.status().ToString().c_str());
      return 1;
    }

    Side sides[kNumConfigs];
    for (int rep = 0; rep < kReps; ++rep) {
      for (size_t c = 0; c < kNumConfigs; ++c) {
        WallTimer timer;
        auto r = processors[c].Answer(*q);
        sides[c].ms.push_back(timer.ElapsedMillis());
        if (!r.ok()) return 1;
        sides[c].result = std::move(r).value();
      }
    }

    std::string baseline = AnswerBytes(sides[0].result);
    for (size_t c = 1; c < kNumConfigs; ++c) {
      if (AnswerBytes(sides[c].result) != baseline) answers_match = false;
    }

    std::fprintf(json, "    {\"query\": \"%s\",\n",
                 JsonEscape(text).c_str());
    for (size_t c = 0; c < kNumConfigs; ++c) {
      const auto& stats = sides[c].result.stats;
      total_tried[c] += stats.combinations_tried;
      total_pulled[c] += stats.items_pulled;
      std::fprintf(json, "     \"%s\": {", configs[c].name);
      if (!counters_only) {
        std::fprintf(json, "\"p50_ms\": %.4f, \"p95_ms\": %.4f, ",
                     Percentile(sides[c].ms, 0.5),
                     Percentile(sides[c].ms, 0.95));
      }
      std::fprintf(json,
                   "\"items_pulled\": %zu, \"combinations_tried\": %zu, "
                   "\"combinations_emitted\": %zu, "
                   "\"partition_probes\": %zu, "
                   "\"partition_fallbacks\": %zu}%s\n",
                   stats.items_pulled, stats.combinations_tried,
                   stats.combinations_emitted, stats.partition_probes,
                   stats.partition_fallbacks,
                   c + 1 < kNumConfigs ? "," : "}");
    }
    std::fprintf(json, "%s\n", qi + 1 < queries.size() ? "    ," : "");

    const auto& planned = sides[0].result.stats;
    const auto& seed = sides[2].result.stats;
    auto per_pull = [](size_t tried, size_t pulled) {
      return pulled == 0 ? 0.0
                         : static_cast<double>(tried) /
                               static_cast<double>(pulled);
    };
    std::string label =
        text.size() > 34 ? text.substr(0, 31) + "..." : text;
    table.AddRow({label, FormatDouble(Percentile(sides[0].ms, 0.5), 2),
                  FormatDouble(Percentile(sides[2].ms, 0.5), 2),
                  std::to_string(planned.combinations_tried),
                  std::to_string(sides[1].result.stats.combinations_tried),
                  std::to_string(seed.combinations_tried),
                  std::to_string(planned.items_pulled),
                  FormatDouble(
                      per_pull(planned.combinations_tried,
                               planned.items_pulled), 2),
                  FormatDouble(per_pull(seed.combinations_tried,
                                        seed.items_pulled), 2)});
  }

  double planned_per_pull =
      total_pulled[0] == 0 ? 0.0
                           : static_cast<double>(total_tried[0]) /
                                 static_cast<double>(total_pulled[0]);
  double seed_per_pull =
      total_pulled[2] == 0 ? 0.0
                           : static_cast<double>(total_tried[2]) /
                                 static_cast<double>(total_pulled[2]);
  std::fprintf(json,
               "  ],\n  \"totals\": {\"planned_combinations_tried\": %zu, "
               "\"parser_combinations_tried\": %zu, "
               "\"seed_combinations_tried\": %zu, "
               "\"planned_items_pulled\": %zu, "
               "\"seed_items_pulled\": %zu, "
               "\"planned_tried_per_pull\": %.4f, "
               "\"seed_tried_per_pull\": %.4f, "
               "\"answers_match\": %s}\n}\n",
               total_tried[0], total_tried[1], total_tried[2],
               total_pulled[0], total_pulled[2], planned_per_pull,
               seed_per_pull, answers_match ? "true" : "false");
  std::fclose(json);

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "totals: planned tried %zu (%.2f/pull), parser tried %zu, seed "
      "tried %zu (%.2f/pull); answers %s\n",
      total_tried[0], planned_per_pull, total_tried[1], total_tried[2],
      seed_per_pull, answers_match ? "identical" : "DIVERGED");
  std::printf("wrote %s\n", out_path);

  if (!answers_match || planned_per_pull >= seed_per_pull) {
    std::fprintf(stderr,
                 "P2 REGRESSION: hash-partitioned probing did not reduce "
                 "probe work per pull\n");
    return 1;
  }
  // Cost ordering must not quietly make probing worse than not planning
  // at all; a 2x margin keeps the gate robust to mix jitter.
  if (static_cast<double>(total_tried[0]) >
      2.0 * static_cast<double>(total_tried[1])) {
    std::fprintf(stderr,
                 "P2 REGRESSION: cost ordering more than doubled probe "
                 "work vs parser order\n");
    return 1;
  }
  return 0;
}
