// Exhibit P4 — binary snapshot cold start (PR 5).
//
// A serving replica must come up fast: the TSV path re-parses the dump,
// re-interns every term, re-sorts the canonical triple array plus five
// permutation indexes, lazily re-sorts every score-ordered shape the
// workload touches, and re-mines the relaxation rules — on every start.
// The snapshot path (`storage::SnapshotWriter/Reader`) loads the same
// serving state verbatim: no sort, no mining, no TSV parse, lazy-shape
// laziness state preserved.
//
// This bench builds one producer engine over the synthetic eval world,
// warms the lazy index shapes with a query mix, then cold-starts two
// fresh engines — one from the TSV dump, one from the snapshot — and
// replays the mix on both. Gates (exit non-zero):
//
//   * ranked answers byte-identical between the two cold-start paths,
//   * per-query work counters (pulls/decodes/probes) identical,
//   * the snapshot path performs ZERO index rebuilds (and its restored
//     shape count equals the producer's at save time, before and after
//     the replay),
//   * TSV cold-start work >= 5x snapshot cold-start work, measured in
//     deterministic rebuild counters (index rows sorted + rules mined +
//     TSV rows parsed vs. snapshot index rebuilds).
//
//   ./build/bench/bench_p4_coldstart [--counters-only] [out.json]
//                                    (default: BENCH_P4.json)
//
// --counters-only omits machine-local wall-times from the JSON so
// cross-machine comparisons see only deterministic work counters.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/mapped_file.h"
#include "storage/snapshot.h"
#include "util/timer.h"
#include "xkg/tsv_io.h"

namespace {

using trinit::bench::AnswerBytes;

struct MixCounters {
  size_t items_pulled = 0;
  size_t items_decoded = 0;
  size_t combinations_tried = 0;
  size_t partition_probes = 0;
};

struct MixRun {
  MixCounters counters;
  std::vector<std::string> bytes;  // per-query AnswerBytes
  bool ok = true;
};

MixRun RunMix(const trinit::core::Trinit& engine,
              const std::vector<std::string>& queries, int k) {
  MixRun run;
  for (const std::string& text : queries) {
    auto response =
        engine.Execute(trinit::core::QueryRequest::Text(text, k));
    if (!response.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   response.status().ToString().c_str());
      run.ok = false;
      return run;
    }
    run.counters.items_pulled += response->stats.items_pulled;
    run.counters.items_decoded += response->stats.items_decoded;
    run.counters.combinations_tried += response->stats.combinations_tried;
    run.counters.partition_probes += response->stats.partition_probes;
    run.bytes.push_back(AnswerBytes(response->result()));
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace trinit;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, "BENCH_P4.json");
  constexpr int kK = 5;

  std::printf("[P4] binary snapshot cold start: TSV rebuild vs verbatim "
              "index load\n\n");

  synth::World world = bench::EvalWorld(2016);
  auto producer = core::Trinit::FromWorld(world);
  if (!producer.ok()) {
    std::fprintf(stderr, "producer build failed: %s\n",
                 producer.status().ToString().c_str());
    return 1;
  }

  // The exploratory mix (same shapes as P3): it touches several lazy
  // score-ordered shapes, which the snapshot must preserve pre-built.
  const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
  const auto& cities = world.OfClass(synth::EntityClass::kCity);
  std::vector<std::string> queries;
  for (size_t i = 0; i < 4; ++i) {
    queries.push_back("SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
                      world.entities[cities[i]].name);
    queries.push_back("SELECT ?x WHERE ?x wonPrize ?p ; ?x affiliation " +
                      world.entities[unis[i]].name);
    queries.push_back("?x bornIn " + world.entities[cities[i + 1]].name);
  }
  // PID-unique scratch paths so concurrent runs (two ci.sh invocations
  // on one machine) cannot clobber or delete each other's files; the
  // guard removes them on every exit path, not just success.
  const std::string scratch =
      "/tmp/trinit_bench_p4." + std::to_string(::getpid());
  const std::string tsv_path = scratch + ".tsv";
  const std::string snap_path = scratch + ".trinit";
  struct ScratchGuard {
    const std::string& tsv;
    const std::string& snap;
    ~ScratchGuard() {
      std::remove(tsv.c_str());
      std::remove(snap.c_str());
    }
  } scratch_guard{tsv_path, snap_path};
  if (!xkg::XkgTsv::Save(producer->xkg(), tsv_path).ok()) {
    std::fprintf(stderr, "tsv dump failed\n");
    return 1;
  }

  // ------------------------------------------------ TSV cold start
  WallTimer tsv_timer;
  auto tsv_xkg = xkg::XkgTsv::Load(tsv_path);
  if (!tsv_xkg.ok()) {
    std::fprintf(stderr, "tsv load failed: %s\n",
                 tsv_xkg.status().ToString().c_str());
    return 1;
  }
  auto tsv_engine = core::Trinit::Open(std::move(tsv_xkg).value());
  if (!tsv_engine.ok()) return 1;
  const double tsv_ms = tsv_timer.ElapsedMillis();

  MixRun tsv_run = RunMix(*tsv_engine, queries, kK);
  if (!tsv_run.ok) return 1;
  const size_t n = tsv_engine->xkg().store().size();
  // Deterministic rebuild work the TSV path paid: every row through a
  // cold-start sort (canonical SPO + 5 permutations + every lazy shape
  // the mix forced), the rules it re-mined, the TSV rows it re-parsed.
  const size_t tsv_shape_builds =
      tsv_engine->xkg().store().score_shapes_built();
  const size_t tsv_index_rows_sorted = n * (1 + 5) + tsv_shape_builds * n;
  const size_t tsv_rules_mined = tsv_engine->rules().size();
  const size_t tsv_rows_parsed = n;  // one T row per triple (plus P rows)
  const size_t tsv_work =
      tsv_index_rows_sorted + tsv_rules_mined + tsv_rows_parsed;

  // The snapshot is taken of the warmed TSV-built engine itself (same
  // dictionary ids), so the loaded engine must be byte-identical to it
  // and must inherit its materialized shapes.
  if (!tsv_engine->Save(snap_path).ok()) {
    std::fprintf(stderr, "snapshot save failed\n");
    return 1;
  }
  const size_t shapes_at_save = tsv_shape_builds;

  // ------------------------------------------- snapshot cold start
  WallTimer snap_timer;
  storage::LoadReport report;
  auto snap_engine = core::Trinit::Open(snap_path, {}, &report);
  if (!snap_engine.ok()) {
    std::fprintf(stderr, "snapshot open failed: %s\n",
                 snap_engine.status().ToString().c_str());
    return 1;
  }
  const double snap_ms = snap_timer.ElapsedMillis();
  const size_t snap_shapes_at_load =
      snap_engine->xkg().store().score_shapes_built();

  MixRun snap_run = RunMix(*snap_engine, queries, kK);
  if (!snap_run.ok) return 1;
  const size_t snap_shapes_after_mix =
      snap_engine->xkg().store().score_shapes_built();
  const size_t snap_work = report.index_rebuilds;  // nothing re-sorted

  // --------------------------------------- load-mode x codec matrix
  // One varint-coded snapshot of the same engine, then every load
  // mode / verification / codec combination replays the mix. Gates:
  // the codec must at least halve the file, a trusted mmap open must
  // touch under 10% of the file's bytes before the first query, and
  // every combination must answer byte-identically with identical
  // work counters.
  const std::string varint_path = scratch + ".varint.trinit";
  struct VarintGuard {
    const std::string& path;
    ~VarintGuard() { std::remove(path.c_str()); }
  } varint_guard{varint_path};
  if (!storage::SnapshotWriter::Write(
           tsv_engine->xkg(), tsv_engine->rules(),
           tsv_engine->serving_cache().generation(), varint_path,
           {storage::SectionCodec::kVarintDelta, storage::kSnapshotVersion})
           .ok()) {
    std::fprintf(stderr, "varint snapshot save failed\n");
    return 1;
  }

  struct Combo {
    const char* label;
    const std::string& path;
    storage::ReadOptions options;
  };
  const storage::ReadOptions copy_full{storage::LoadMode::kCopy,
                                       rdf::SnapshotValidation::kFull};
  const storage::ReadOptions mmap_full{storage::LoadMode::kMapped,
                                       rdf::SnapshotValidation::kFull};
  const storage::ReadOptions mmap_trusted{storage::LoadMode::kMapped,
                                          rdf::SnapshotValidation::kTrusted};
  const Combo combos[] = {
      {"raw/mmap", snap_path, mmap_full},
      {"raw/mmap-trusted", snap_path, mmap_trusted},
      {"varint/copy", varint_path, copy_full},
      {"varint/mmap", varint_path, mmap_full},
      {"varint/mmap-trusted", varint_path, mmap_trusted},
  };
  bool matrix_match = true;
  size_t varint_bytes = 0;
  storage::LoadReport trusted_report;  // raw/mmap-trusted open
  double trusted_ms = 0.0;
  for (const Combo& combo : combos) {
    core::TrinitOptions options;
    options.snapshot_read = combo.options;
    WallTimer combo_timer;
    storage::LoadReport combo_report;
    auto combo_engine = core::Trinit::Open(combo.path, options,
                                           &combo_report);
    const double combo_ms = combo_timer.ElapsedMillis();
    if (!combo_engine.ok()) {
      std::fprintf(stderr, "%s open failed: %s\n", combo.label,
                   combo_engine.status().ToString().c_str());
      return 1;
    }
    MixRun combo_run = RunMix(*combo_engine, queries, kK);
    if (!combo_run.ok) return 1;
    const bool match =
        combo_run.bytes == tsv_run.bytes &&
        combo_run.counters.items_pulled == tsv_run.counters.items_pulled &&
        combo_run.counters.items_decoded ==
            tsv_run.counters.items_decoded &&
        combo_run.counters.combinations_tried ==
            tsv_run.counters.combinations_tried &&
        combo_run.counters.partition_probes ==
            tsv_run.counters.partition_probes;
    if (!match) {
      std::fprintf(stderr, "P4 REGRESSION: %s diverged from the "
                           "TSV-built engine\n",
                   combo.label);
      matrix_match = false;
    }
    std::printf("%-18s open %6.2f ms, touched %zu/%zu bytes, "
                "sections %zu mapped / %zu decoded%s\n",
                combo.label, combo_ms, combo_report.bytes_touched,
                combo_report.bytes, combo_report.sections_mapped,
                combo_report.sections_decoded,
                combo_report.provenance_deferred
                    ? ", provenance deferred"
                    : "");
    if (combo.path == varint_path) varint_bytes = combo_report.bytes;
    if (&combo == &combos[1]) {
      trusted_report = combo_report;
      trusted_ms = combo_ms;
    }
  }
  const bool mmap_supported = storage::MappedFile::Supported();
  const bool codec_2x = report.bytes >= 2 * varint_bytes;
  // bytes_touched is meaningful only when the trusted open actually
  // mapped (platforms without mmap fall back to the fully-read path).
  const bool mmap_touch_10pct =
      !mmap_supported ||
      10 * trusted_report.bytes_touched < trusted_report.bytes;

  // ------------------------------------------------------- verdicts
  bool answers_match = tsv_run.bytes == snap_run.bytes;
  bool counters_match =
      tsv_run.counters.items_pulled == snap_run.counters.items_pulled &&
      tsv_run.counters.items_decoded == snap_run.counters.items_decoded &&
      tsv_run.counters.combinations_tried ==
          snap_run.counters.combinations_tried &&
      tsv_run.counters.partition_probes ==
          snap_run.counters.partition_probes;
  bool no_rebuild = report.index_rebuilds == 0 &&
                    snap_shapes_at_load == shapes_at_save &&
                    snap_shapes_after_mix == shapes_at_save;
  bool work_saved = tsv_work >= 5 * std::max<size_t>(snap_work, 1);

  std::printf("world: %zu triples, %zu terms, %zu rules\n", n,
              tsv_engine->xkg().dict().size(), tsv_rules_mined);
  std::printf("cold start: TSV %.2f ms, snapshot %.2f ms (%.1fx)\n",
              tsv_ms, snap_ms, snap_ms > 0 ? tsv_ms / snap_ms : 0.0);
  std::printf("rebuild work: TSV %zu (index rows sorted %zu + rules %zu "
              "+ rows parsed %zu), snapshot %zu; shapes %zu saved -> %zu "
              "restored\n",
              tsv_work, tsv_index_rows_sorted, tsv_rules_mined,
              tsv_rows_parsed, snap_work, shapes_at_save,
              snap_shapes_at_load);
  std::printf("codec: raw %zu B, varint+delta %zu B (%.2fx smaller); "
              "trusted mmap open %.2f ms touched %.1f%% of file\n",
              report.bytes, varint_bytes,
              varint_bytes > 0
                  ? static_cast<double>(report.bytes) /
                        static_cast<double>(varint_bytes)
                  : 0.0,
              trusted_ms,
              trusted_report.bytes > 0
                  ? 100.0 * static_cast<double>(trusted_report.bytes_touched) /
                        static_cast<double>(trusted_report.bytes)
                  : 0.0);
  std::printf("mix: pulls %zu/%zu decodes %zu/%zu probes %zu/%zu "
              "(tsv/snapshot)\n\n",
              tsv_run.counters.items_pulled, snap_run.counters.items_pulled,
              tsv_run.counters.items_decoded,
              snap_run.counters.items_decoded,
              tsv_run.counters.combinations_tried,
              snap_run.counters.combinations_tried);

  FILE* json = std::fopen(args.out_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"p4_coldstart\",\n  \"k\": %d,\n"
               "  \"queries\": %zu,\n  \"world_triples\": %zu,\n"
               "  \"counters_only\": %s,\n  \"paths\": [\n",
               kK, queries.size(), n, args.counters_only ? "true" : "false");
  const struct {
    const char* name;
    const MixCounters& counters;
    double cold_ms;
    size_t work;
  } paths[] = {
      {"tsv", tsv_run.counters, tsv_ms, tsv_work},
      {"snapshot", snap_run.counters, snap_ms, snap_work},
  };
  for (size_t i = 0; i < 2; ++i) {
    std::fprintf(json, "    {\"path\": \"%s\", ", paths[i].name);
    if (!args.counters_only) {
      std::fprintf(json, "\"cold_start_ms\": %.3f, ", paths[i].cold_ms);
    }
    std::fprintf(json,
                 "\"coldstart_work\": %zu, \"items_pulled\": %zu, "
                 "\"items_decoded\": %zu, \"combinations_tried\": %zu, "
                 "\"partition_probes\": %zu}%s\n",
                 paths[i].work, paths[i].counters.items_pulled,
                 paths[i].counters.items_decoded,
                 paths[i].counters.combinations_tried,
                 paths[i].counters.partition_probes, i == 0 ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"totals\": {\"tsv_index_rows_sorted\": %zu, "
               "\"tsv_rules_mined\": %zu, \"snapshot_index_rebuilds\": "
               "%zu, \"shapes_at_save\": %zu, \"shapes_restored\": %zu, "
               "\"snapshot_bytes\": %zu, \"snapshot_bytes_varint\": %zu, "
               "\"mmap_supported\": %s, \"mmap_bytes_touched\": %zu, "
               "\"mmap_resident_bytes\": %zu, \"answers_match\": %s, "
               "\"counters_match\": %s, \"no_rebuild\": %s, "
               "\"work_saved_5x\": %s, \"codec_2x\": %s, "
               "\"mmap_touch_10pct\": %s, \"matrix_match\": %s}\n}\n",
               tsv_index_rows_sorted, tsv_rules_mined,
               report.index_rebuilds, shapes_at_save, snap_shapes_at_load,
               report.bytes, varint_bytes,
               mmap_supported ? "true" : "false",
               trusted_report.bytes_touched, trusted_report.resident_bytes,
               answers_match ? "true" : "false",
               counters_match ? "true" : "false",
               no_rebuild ? "true" : "false",
               work_saved ? "true" : "false", codec_2x ? "true" : "false",
               mmap_touch_10pct ? "true" : "false",
               matrix_match ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", args.out_path);

  if (!answers_match) {
    std::fprintf(stderr, "P4 REGRESSION: snapshot-loaded answers diverged "
                         "from the TSV-built engine\n");
    return 1;
  }
  if (!counters_match) {
    std::fprintf(stderr, "P4 REGRESSION: pull/probe/decode counters "
                         "diverged between cold-start paths\n");
    return 1;
  }
  if (!no_rebuild) {
    std::fprintf(stderr, "P4 REGRESSION: snapshot load rebuilt index "
                         "state (%zu rebuilds; shapes %zu saved, %zu "
                         "loaded, %zu after mix)\n",
                 report.index_rebuilds, shapes_at_save, snap_shapes_at_load,
                 snap_shapes_after_mix);
    return 1;
  }
  if (!work_saved) {
    std::fprintf(stderr, "P4 REGRESSION: TSV rebuild work %zu is not "
                         ">= 5x snapshot work %zu\n",
                 tsv_work, snap_work);
    return 1;
  }
  if (!codec_2x) {
    std::fprintf(stderr, "P4 REGRESSION: varint+delta snapshot (%zu B) "
                         "is not >= 2x smaller than raw (%zu B)\n",
                 varint_bytes, report.bytes);
    return 1;
  }
  if (!mmap_touch_10pct) {
    std::fprintf(stderr, "P4 REGRESSION: trusted mmap open touched %zu "
                         "of %zu file bytes (>= 10%%)\n",
                 trusted_report.bytes_touched, trusted_report.bytes);
    return 1;
  }
  if (!matrix_match) return 1;
  return 0;
}
