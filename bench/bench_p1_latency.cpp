// Exhibit P1 — lazy score-ordered streaming vs eager materialization.
//
// The per-pattern index lists are now genuinely lazy: a LeafStream
// iterates the score-ordered posting lists incrementally and decodes
// only what the rank-join's threshold forces it to. This bench runs the
// same query mix through the lazy TopKProcessor and the eager
// ExhaustiveProcessor (identical rewrite space, identical answers —
// property-tested), reports p50/p95 latency per query, and writes
// BENCH_P1.json so CI tracks the perf trajectory from this PR on.
//
//   ./build/bench/bench_p1_latency [--counters-only] [out.json]
//                                  (default: BENCH_P1.json)
//
// --counters-only omits the machine-local p50/p95 wall-times from the
// JSON so cross-machine comparisons see only deterministic work
// counters (the stdout table still shows latencies).
//
// Exit code is non-zero if the lazy processor fails to pull fewer items
// than the eager one in aggregate or their answers diverge.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "query/parser.h"
#include "topk/exhaustive_processor.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using trinit::bench::JsonEscape;
using trinit::bench::Percentile;

struct Side {
  std::vector<double> ms;
  trinit::topk::TopKResult result;  // last run (stats are deterministic)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace trinit;
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, "BENCH_P1.json");
  const bool counters_only = args.counters_only;
  const char* out_path = args.out_path;
  constexpr int kReps = 9;
  constexpr int kK = 5;

  std::printf("[P1] lazy score-ordered streaming vs eager materialization\n\n");

  synth::World world = bench::EvalWorld(2016);
  auto engine = core::Trinit::FromWorld(world);
  if (!engine.ok()) return 1;
  const xkg::Xkg& xkg = engine->xkg();
  const relax::RuleSet& rules = engine->rules();
  std::printf("world: %zu triples, %zu relaxation rules, k=%d, %d reps\n\n",
              xkg.store().size(), rules.size(), kK, kReps);

  const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
  const auto& cities = world.OfClass(synth::EntityClass::kCity);
  const auto& persons = world.OfClass(synth::EntityClass::kPerson);
  std::vector<std::string> queries = {
      "?x 'works at' " + world.entities[unis[0]].name,
      world.entities[persons[0]].name + " hasAdvisor ?x",
      "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
          world.entities[cities[0]].name,
      "?x wonPrize ?p",
      "?x bornIn " + world.entities[cities[1]].name,
      "?s ?p " + world.entities[unis[1]].name,
  };

  topk::ProcessorOptions opts;
  opts.k = kK;
  topk::TopKProcessor lazy(xkg, rules, {}, opts);
  topk::ExhaustiveProcessor eager(xkg, rules, {}, opts);

  AsciiTable table({"query", "lazy p50", "lazy p95", "eager p50",
                    "eager p95", "lazy pulls", "eager pulls",
                    "lazy decoded", "eager decoded", "skipped"});
  size_t lazy_pulls = 0, eager_pulls = 0;
  size_t lazy_decoded = 0, eager_decoded = 0, lazy_skipped = 0;
  bool answers_match = true;

  FILE* json = std::fopen(out_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"p1_latency\",\n  \"k\": %d,\n"
               "  \"reps\": %d,\n  \"world_triples\": %zu,\n"
               "  \"counters_only\": %s,\n"
               "  \"queries\": [\n",
               kK, kReps, xkg.store().size(),
               counters_only ? "true" : "false");

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::string& text = queries[qi];
    auto q = query::Parser::Parse(text, &xkg.dict());
    if (!q.ok()) return 1;

    Side lz, eg;
    for (int rep = 0; rep < kReps; ++rep) {
      WallTimer t1;
      auto r1 = lazy.Answer(*q);
      lz.ms.push_back(t1.ElapsedMillis());
      WallTimer t2;
      auto r2 = eager.Answer(*q);
      eg.ms.push_back(t2.ElapsedMillis());
      if (!r1.ok() || !r2.ok()) return 1;
      lz.result = std::move(r1).value();
      eg.result = std::move(r2).value();
    }

    // Identical top-k score sequences (the property tests prove this at
    // scale; the bench refuses to report numbers for diverging runs).
    if (lz.result.answers.size() != eg.result.answers.size()) {
      answers_match = false;
    } else {
      for (size_t i = 0; i < lz.result.answers.size(); ++i) {
        if (std::abs(lz.result.answers[i].score -
                     eg.result.answers[i].score) > 1e-9) {
          answers_match = false;
        }
      }
    }

    const auto& ls = lz.result.stats;
    const auto& es = eg.result.stats;
    lazy_pulls += ls.items_pulled;
    eager_pulls += es.items_pulled;
    lazy_decoded += ls.items_decoded;
    eager_decoded += es.items_decoded;
    lazy_skipped += ls.items_skipped;

    std::string label =
        text.size() > 34 ? text.substr(0, 31) + "..." : text;
    table.AddRow({label, FormatDouble(Percentile(lz.ms, 0.5), 2),
                  FormatDouble(Percentile(lz.ms, 0.95), 2),
                  FormatDouble(Percentile(eg.ms, 0.5), 2),
                  FormatDouble(Percentile(eg.ms, 0.95), 2),
                  std::to_string(ls.items_pulled),
                  std::to_string(es.items_pulled),
                  std::to_string(ls.items_decoded),
                  std::to_string(es.items_decoded),
                  std::to_string(ls.items_skipped)});

    std::fprintf(json, "    {\"query\": \"%s\",\n     \"lazy\": {",
                 JsonEscape(text).c_str());
    if (!counters_only) {
      std::fprintf(json, "\"p50_ms\": %.4f, \"p95_ms\": %.4f, ",
                   Percentile(lz.ms, 0.5), Percentile(lz.ms, 0.95));
    }
    std::fprintf(json,
                 "\"items_pulled\": %zu, \"items_decoded\": %zu, "
                 "\"items_skipped\": %zu, \"alternatives_opened\": %zu},\n"
                 "     \"eager\": {",
                 ls.items_pulled, ls.items_decoded, ls.items_skipped,
                 ls.alternatives_opened);
    if (!counters_only) {
      std::fprintf(json, "\"p50_ms\": %.4f, \"p95_ms\": %.4f, ",
                   Percentile(eg.ms, 0.5), Percentile(eg.ms, 0.95));
    }
    std::fprintf(json,
                 "\"items_pulled\": %zu, \"items_decoded\": %zu, "
                 "\"alternatives_opened\": %zu}}%s\n",
                 es.items_pulled, es.items_decoded, es.alternatives_opened,
                 qi + 1 < queries.size() ? "," : "");
  }

  std::fprintf(json,
               "  ],\n  \"totals\": {\"lazy_items_pulled\": %zu, "
               "\"eager_items_pulled\": %zu, \"lazy_items_decoded\": %zu, "
               "\"eager_items_decoded\": %zu, \"lazy_items_skipped\": %zu, "
               "\"answers_match\": %s}\n}\n",
               lazy_pulls, eager_pulls, lazy_decoded, eager_decoded,
               lazy_skipped, answers_match ? "true" : "false");
  std::fclose(json);

  std::printf("%s\n", table.ToString().c_str());
  std::printf("totals: lazy pulled %zu / decoded %zu (skipped %zu); "
              "eager pulled %zu / decoded %zu; answers %s\n",
              lazy_pulls, lazy_decoded, lazy_skipped, eager_pulls,
              eager_decoded, answers_match ? "identical" : "DIVERGED");
  std::printf("wrote %s\n", out_path);

  if (!answers_match || lazy_pulls >= eager_pulls ||
      lazy_decoded >= eager_decoded) {
    std::fprintf(stderr, "P1 REGRESSION: laziness did not save work\n");
    return 1;
  }
  return 0;
}
