// Exhibit F3 — Figure 3 of the paper: the knowledge-graph extension
// produced by Open IE. Runs the actual extractor + linker over the
// paper's example sentences and prints the resulting extension triples.

#include <cstdio>

#include "bench_util.h"
#include "openie/pipeline.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace trinit;

  // The sentences behind Figure 3 (the photoelectric sentence is quoted
  // in §2 of the paper; the rest are inferred from the figure rows).
  std::vector<synth::Document> docs = {
      {0,
       "Einstein won a Nobel for his discovery of the photoelectric "
       "effect."},
      {1, "The IAS is housed in Princeton University."},
      {2, "Einstein lectured at Princeton University."},
      {3, "Einstein met his teacher Prof. Kleiner."},
  };

  // Linker knowing the KG entities (what FACC1 gave the paper).
  openie::Linker linker;
  linker.AddAlias("Einstein", "AlbertEinstein", 1.0);
  linker.AddAlias("Albert Einstein", "AlbertEinstein", 1.0);
  linker.AddAlias("IAS", "IAS", 0.9);
  linker.AddAlias("Princeton University", "PrincetonUniversity", 0.8);
  linker.AddAlias("Princeton", "PrincetonUniversity", 0.6);

  xkg::XkgBuilder builder;
  openie::Pipeline pipeline(openie::Extractor{}, std::move(linker));
  openie::Pipeline::Stats stats = pipeline.Run(docs, &builder);
  auto xkg = builder.Build();
  if (!xkg.ok()) return 1;

  std::printf("[F3] Figure 3: sample knowledge-graph extension (Open IE "
              "output)\n\n");
  AsciiTable table({"Subject", "Predicate", "Object", "conf", "source"});
  for (rdf::TripleId id = 0; id < xkg->store().size(); ++id) {
    const rdf::Triple& t = xkg->store().triple(id);
    const auto& d = xkg->dict();
    const auto& prov = xkg->ProvenanceFor(id);
    table.AddRow({d.DebugLabel(t.s), d.DebugLabel(t.p), d.DebugLabel(t.o),
                  FormatDouble(t.confidence, 2),
                  prov.empty() ? "-"
                               : "doc " + std::to_string(prov[0].doc_id)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("pipeline: %zu sentences -> %zu extractions (%zu arguments "
              "linked to entities, %zu kept as tokens)\n",
              stats.sentences, stats.extractions, stats.arguments_linked,
              stats.arguments_token);
  std::printf("\npaper's figure rows — AlbertEinstein 'won Nobel for' "
              "'discovery of the photoelectric effect'; IAS 'housed in' "
              "PrincetonUniversity; AlbertEinstein 'lectured at' "
              "PrincetonUniversity; AlbertEinstein 'met his teacher' "
              "'Prof. Kleiner' — all reproduced above modulo phrase "
              "normalization.\n");
  return 0;
}
