// Exhibit A2 (our ablation) — the scoring model's components (paper §4):
// tf-like evidence counts, idf-like selectivity, extraction confidence,
// and max-vs-sum combination over derivations. Each switch is disabled
// in turn on the E1 workload.
//
// All five configurations are query-time knobs, so one engine serves the
// whole sweep through per-request option overrides — no per-configuration
// rebuild (this bench is also the regression canary for that API).

#include <cstdio>

#include "bench_util.h"
#include "eval/runner.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace trinit;

  std::printf("[A2] scoring-component ablation (NDCG@5 on the E1 "
              "workload)\n\n");

  synth::World world = bench::EvalWorld();
  eval::WorkloadGenerator::Options wopts;
  wopts.num_queries = 40;
  eval::Workload workload = eval::WorkloadGenerator::Generate(world, wopts);

  auto engine = core::Trinit::FromWorld(world);
  if (!engine.ok()) return 1;

  struct Config {
    const char* name;
    bool tf, idf, confidence, max_over_derivations;
  } configs[] = {
      {"full scoring model", true, true, true, true},
      {"- tf (evidence counts)", false, true, true, true},
      {"- idf (selectivity)", true, false, true, true},
      {"- extraction confidence", true, true, false, true},
      {"sum over derivations", true, true, true, false},
  };

  // One shared engine, one request template per configuration.
  std::vector<eval::EngineUnderTest> systems;
  for (const Config& config : configs) {
    eval::EngineUnderTest sut;
    sut.name = config.name;
    sut.engine = &engine.value();
    scoring::ScorerOptions scorer;
    scorer.use_tf = config.tf;
    scorer.use_idf = config.idf;
    scorer.use_confidence = config.confidence;
    sut.base.scorer = scorer;
    topk::ProcessorOptions processor;
    processor.join.max_over_derivations = config.max_over_derivations;
    sut.base.processor = processor;
    systems.push_back(std::move(sut));
  }
  auto reports = eval::Runner::Run(workload, systems, 10);

  AsciiTable table({"configuration", "NDCG@5", "delta vs full"});
  double full = reports[0].ndcg5;
  for (const auto& report : reports) {
    table.AddRow({report.name, FormatDouble(report.ndcg5, 3),
                  FormatDouble(report.ndcg5 - full, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("the language-model components are complementary; the "
              "paper's choice of max over derivation sequences keeps "
              "duplicate derivations from inflating scores.\n");
  return 0;
}
