// Exhibit A2 (our ablation) — the scoring model's components (paper §4):
// tf-like evidence counts, idf-like selectivity, extraction confidence,
// and max-vs-sum combination over derivations. Each switch is disabled
// in turn on the E1 workload.

#include <cstdio>

#include "bench_util.h"
#include "eval/runner.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace trinit;

double Ndcg5For(const core::Trinit& engine,
                const eval::Workload& workload) {
  eval::SystemUnderTest system{
      "sut",
      [&](const eval::EvalQuery& q, int k) -> std::vector<std::string> {
        auto r = engine.Query(q.text, k);
        if (!r.ok()) return {};
        return eval::KeysFromResult(engine.xkg(), *r);
      }};
  return eval::Runner::Run(workload, {system}, 10)[0].ndcg5;
}

}  // namespace

int main() {
  std::printf("[A2] scoring-component ablation (NDCG@5 on the E1 "
              "workload)\n\n");

  synth::World world = bench::EvalWorld();
  eval::WorkloadGenerator::Options wopts;
  wopts.num_queries = 40;
  eval::Workload workload = eval::WorkloadGenerator::Generate(world, wopts);

  struct Config {
    const char* name;
    bool tf, idf, confidence, max_over_derivations;
  } configs[] = {
      {"full scoring model", true, true, true, true},
      {"- tf (evidence counts)", false, true, true, true},
      {"- idf (selectivity)", true, false, true, true},
      {"- extraction confidence", true, true, false, true},
      {"sum over derivations", true, true, true, false},
  };

  AsciiTable table({"configuration", "NDCG@5", "delta vs full"});
  double full = -1.0;
  for (const Config& config : configs) {
    core::TrinitOptions options;
    options.scorer.use_tf = config.tf;
    options.scorer.use_idf = config.idf;
    options.scorer.use_confidence = config.confidence;
    options.processor.join.max_over_derivations =
        config.max_over_derivations;
    auto engine = core::Trinit::FromWorld(world, options);
    if (!engine.ok()) return 1;
    double ndcg = Ndcg5For(*engine, workload);
    if (full < 0) full = ndcg;
    table.AddRow({config.name, FormatDouble(ndcg, 3),
                  FormatDouble(ndcg - full, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("the language-model components are complementary; the "
              "paper's choice of max over derivation sequences keeps "
              "duplicate derivations from inflating scores.\n");
  return 0;
}
