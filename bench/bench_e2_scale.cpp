// Exhibit E2 — the paper's system setting (§5): "Our XKG consists of a
// total of 440 million distinct triples: about 50 million from Yago2s,
// our KG, and 390 million from the extractions from ClueWeb" — a
// ~1:7.8 KG:extraction ratio.
//
// We sweep scaled-down worlds, report the achieved composition and the
// cost of building and querying the XKG at each scale.

#include <cstdio>

#include "bench_util.h"
#include "query/parser.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace trinit;

  std::printf("[E2] XKG composition and scaling (paper: 50M KG + 390M "
              "extraction = 440M triples, ratio 7.8)\n\n");

  AsciiTable table({"target", "entities", "KG triples", "ext triples",
                    "ratio", "build s", "rules", "query ms (p50-ish)"});

  for (size_t target : {2000, 8000, 24000}) {
    synth::WorldSpec spec = synth::WorldSpec::Scaled(target, /*seed=*/3);
    // Crank the corpus so the extraction layer dominates, as in the
    // paper's 1:7.8 composition.
    spec.sentences_per_fact = 4.0;
    synth::World world = synth::KgGenerator::Generate(spec);

    WallTimer build_timer;
    core::Trinit::BuildReport report;
    auto engine = core::Trinit::FromWorld(world, {}, &report);
    if (!engine.ok()) return 1;
    double build_s = build_timer.ElapsedSeconds();

    // Query cost: a two-pattern join with relaxation over this XKG.
    const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
    std::string query_text = "?x 'works at' " +
                             world.entities[unis[0]].name;
    WallTimer query_timer;
    const int reps = 5;
    for (int i = 0; i < reps; ++i) {
      auto r = engine->Query(query_text, 10);
      if (!r.ok()) return 1;
    }
    double query_ms = query_timer.ElapsedMillis() / reps;

    double ratio =
        report.kg_triples > 0
            ? static_cast<double>(report.extraction_triples) /
                  static_cast<double>(report.kg_triples)
            : 0.0;
    table.AddRow(
        {WithThousands(static_cast<long long>(target)),
         WithThousands(static_cast<long long>(world.entities.size())),
         WithThousands(static_cast<long long>(report.kg_triples)),
         WithThousands(static_cast<long long>(report.extraction_triples)),
         FormatDouble(ratio, 2), FormatDouble(build_s, 2),
         std::to_string(report.rules_mined), FormatDouble(query_ms, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check: the extraction layer grows into a multiple "
              "of the KG layer as corpus redundancy rises, approaching "
              "the paper's text-dominated composition.\n");
  return 0;
}
