// Exhibit E3 — the paper's top-k claim (§4): "It is crucial to avoid
// exploring the entire space of possible rewritings, as this can be
// prohibitively expensive. TriniT uses a top-k approach ... invoking a
// relaxation only when it can contribute to the top-k answers."
//
// We run the incremental processor against the exhaustive comparator on
// the same queries and rewrite space, sweeping k and the rule budget,
// and report latency plus how much of the rewrite space each one paid
// for. (Both return identical answers — property-tested.)

#include <cstdio>

#include "bench_util.h"
#include "query/parser.h"
#include "topk/exhaustive_processor.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace trinit;

  std::printf("[E3] incremental top-k vs exhaustive rewriting\n\n");

  synth::World world = bench::EvalWorld(7);
  auto engine = core::Trinit::FromWorld(world);
  if (!engine.ok()) return 1;
  const xkg::Xkg& xkg = engine->xkg();
  const relax::RuleSet& rules = engine->rules();
  std::printf("world: %zu triples, %zu relaxation rules\n\n",
              xkg.store().size(), rules.size());

  // Query mix: token-predicate lookups and joins on the synthetic world.
  const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
  const auto& cities = world.OfClass(synth::EntityClass::kCity);
  const auto& persons = world.OfClass(synth::EntityClass::kPerson);
  std::vector<std::string> queries = {
      "?x 'works at' " + world.entities[unis[0]].name,
      world.entities[persons[0]].name + " hasAdvisor ?x",
      "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " +
          world.entities[cities[0]].name,
      "?x wonPrize ?p",
  };

  AsciiTable table({"k", "query", "inc ms", "exh ms", "speedup",
                    "inc opened", "exh opened", "inc pulls", "exh pulls"});
  for (int k : {1, 5, 20}) {
    for (const std::string& text : queries) {
      auto q = query::Parser::Parse(text, &xkg.dict());
      if (!q.ok()) return 1;

      topk::ProcessorOptions opts;
      opts.k = k;
      topk::TopKProcessor incremental(xkg, rules, {}, opts);
      topk::ExhaustiveProcessor exhaustive(xkg, rules, {}, opts);

      WallTimer t1;
      auto inc = incremental.Answer(*q);
      double inc_ms = t1.ElapsedMillis();
      WallTimer t2;
      auto exh = exhaustive.Answer(*q);
      double exh_ms = t2.ElapsedMillis();
      if (!inc.ok() || !exh.ok()) return 1;

      std::string label = text.size() > 38 ? text.substr(0, 35) + "..."
                                           : text;
      table.AddRow({std::to_string(k), label, FormatDouble(inc_ms, 1),
                    FormatDouble(exh_ms, 1),
                    FormatDouble(exh_ms / std::max(inc_ms, 1e-3), 1) + "x",
                    std::to_string(inc->stats.alternatives_opened),
                    std::to_string(exh->stats.alternatives_opened),
                    std::to_string(inc->stats.items_pulled),
                    std::to_string(exh->stats.items_pulled)});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check: the incremental processor opens a fraction "
              "of the relaxation alternatives and pulls far fewer "
              "index-list items, with the gap widening for small k — "
              "the paper's rationale for incremental merging.\n");
  return 0;
}
