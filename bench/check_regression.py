#!/usr/bin/env python3
"""Bench regression gate: diff freshly produced BENCH_*.json work
counters against the committed baselines and fail on any regression
beyond a tolerance.

The tracked counters are the deterministic *work* numbers the perf PRs
bought — probes (combinations_tried, partition_probes), pulls
(items_pulled), and decodes (items_decoded). Wall-times are machine
noise and are never compared (the benches' --counters-only mode strips
them from the JSON anyway).

Usage:
    check_regression.py [--tolerance PCT] BASELINE.json FRESH.json \
        [BASELINE2 FRESH2 ...]

Exit code 1 if any tracked counter in a fresh file exceeds its baseline
by more than the tolerance (default 10%; counters going *down* or
appearing/disappearing with a changed bench shape are not failures — a
reshaped bench must commit its new baseline in the same change).
`--tolerance 0` is the strict not-worse check ci.sh uses to decide
whether fresh counters may be promoted to the committed baselines — the
gate would otherwise ratchet *backwards* one sub-tolerance regression
at a time.
"""

import json
import sys

TRACKED = {
    "items_pulled",
    "items_decoded",
    "combinations_tried",
    "partition_probes",
}


def counters(node, path=""):
    """Yields (path, value) for every tracked counter in a JSON tree."""
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            if key in TRACKED and isinstance(value, (int, float)):
                yield sub, value
            else:
                yield from counters(value, sub)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from counters(value, f"{path}[{i}]")


def check_invariants(fresh_path):
    """Absolute gates on the fresh P4 snapshot-size/IO fields.

    The counter diff above is relative (fresh vs baseline); these two
    properties are absolute claims the storage layer makes and must
    hold in every fresh run: the varint+delta codec shrinks the
    snapshot at least 2x vs raw, and a trusted mmap open touches under
    10% of the file's bytes before the first query. Old baselines (and
    benches other than P4) simply lack the fields — that is not a
    failure, the gate only tightens once the fields exist.
    """
    with open(fresh_path) as f:
        totals = json.load(f).get("totals", {})
    if not isinstance(totals, dict):
        return True
    name = fresh_path.split("/")[-1]
    ok = True
    raw = totals.get("snapshot_bytes")
    varint = totals.get("snapshot_bytes_varint")
    if isinstance(raw, int) and isinstance(varint, int) and varint > 0:
        if raw < 2 * varint:
            print(f"[bench-gate] {name}: FAIL — varint snapshot "
                  f"({varint} B) is not >= 2x smaller than raw ({raw} B)")
            ok = False
    touched = totals.get("mmap_bytes_touched")
    if (isinstance(raw, int) and isinstance(touched, int) and
            totals.get("mmap_supported") is True):
        if 10 * touched >= raw:
            print(f"[bench-gate] {name}: FAIL — trusted mmap open "
                  f"touched {touched} of {raw} file bytes (>= 10%)")
            ok = False
    # P5 sharded scatter-gather: the decomposition must stay exact
    # (identical answers and total pulls at every shard count) and must
    # actually spread the work — the hottest S=4 shard may own at most
    # half of the unsharded mix total.
    for key in ("answers_match", "pulls_match"):
        if totals.get(key) is False:
            print(f"[bench-gate] {name}: FAIL — {key} is false")
            ok = False
    s1_pulled = totals.get("s1_items_pulled")
    s4_max = totals.get("s4_max_shard_pulled")
    if isinstance(s1_pulled, int) and isinstance(s4_max, int) and \
            s1_pulled > 0:
        if 2 * s4_max > s1_pulled:
            print(f"[bench-gate] {name}: FAIL — hottest S=4 shard "
                  f"pulled {s4_max} of {s1_pulled} unsharded pulls "
                  f"(> 50%)")
            ok = False
    # P3 observability (PR 10): the always-on metrics registry must
    # cost the hot path less than 3% (min-of-reps, registry on vs
    # `obs.metrics = false` — the docs/OBSERVABILITY.md contract), and
    # the slow-query log must honor its bounded-ring capacity.
    overhead = totals.get("metrics_overhead_pct")
    if isinstance(overhead, (int, float)) and overhead >= 3.0:
        print(f"[bench-gate] {name}: FAIL — metrics registry costs the "
              f"hot path {overhead:.2f}% (>= 3% contract)")
        ok = False
    if totals.get("slowlog_capacity_ok") is False:
        print(f"[bench-gate] {name}: FAIL — slow-query log broke its "
              f"bounded-ring capacity contract")
        ok = False
    return ok


def check_pair(baseline_path, fresh_path, tolerance):
    with open(baseline_path) as f:
        baseline = dict(counters(json.load(f)))
    with open(fresh_path) as f:
        fresh = dict(counters(json.load(f)))

    regressions = []
    compared = 0
    for path, base_value in baseline.items():
        if path not in fresh:
            continue  # bench reshaped; the new baseline ships with it
        fresh_value = fresh[path]
        compared += 1
        limit = base_value * (1.0 + tolerance)
        if fresh_value > limit and fresh_value > base_value:
            regressions.append((path, base_value, fresh_value))

    name = baseline_path.split("/")[-1]
    if compared == 0:
        # A bench rename/bug that drops every tracked counter must not
        # read as success — promotion would then overwrite the baseline
        # with a counter-less file and neuter the gate permanently.
        print(f"[bench-gate] {name}: FAIL — no tracked counters in "
              f"common between baseline ({len(baseline)}) and fresh "
              f"({len(fresh)}); a reshaped bench must keep the work "
              f"counters comparable or update the baseline deliberately")
        return False
    if regressions:
        print(f"[bench-gate] {name}: {len(regressions)} regression(s) "
              f"out of {compared} counters:")
        for path, base_value, fresh_value in regressions:
            pct = 100.0 * (fresh_value - base_value) / base_value \
                if base_value else float("inf")
            print(f"  {path}: {base_value} -> {fresh_value} (+{pct:.1f}%)")
        return False
    print(f"[bench-gate] {name}: OK ({compared} counters within "
          f"{tolerance:.0%})")
    return True


def main(argv):
    tolerance = 0.10
    args = argv[1:]
    if args and args[0] == "--tolerance":
        tolerance = float(args[1]) / 100.0
        args = args[2:]
    if len(args) < 2 or len(args) % 2 != 0:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for i in range(0, len(args), 2):
        ok &= check_pair(args[i], args[i + 1], tolerance)
        ok &= check_invariants(args[i + 1])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
