// Exhibit E1 — the paper's quantitative evaluation (§4): "On a
// challenging set of 70 entity-relationship queries, we achieve an
// average NDCG at rank 5 of 0.775, with the next best state-of-the-art
// system achieving 0.419."
//
// We regenerate the experiment on the synthetic world: 70 ER queries
// with programmatic qrels, TriniT against three baselines. The absolute
// numbers differ (different KG, different judges); the *shape* — TriniT
// far ahead of every non-relaxing system — is the reproduction target.

#include <cstdio>

#include "baselines/exact_engine.h"
#include "baselines/keyword_engine.h"
#include "bench_util.h"
#include "eval/runner.h"
#include "query/parser.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace trinit;

  std::printf("[E1] NDCG@5 on 70 entity-relationship queries\n\n");

  synth::World world = bench::EvalWorld();
  auto engine = core::Trinit::FromWorld(world);
  if (!engine.ok()) return 1;

  // KG-only condition: same world, extraction layer withheld.
  xkg::XkgBuilder kg_builder;
  synth::KgGenerator::PopulateKg(world, &kg_builder);
  auto kg_only = kg_builder.Build();
  if (!kg_only.ok()) return 1;

  baselines::ExactEngine kg_exact(*kg_only, {});
  baselines::ExactEngine xkg_exact(engine->xkg(), {});
  baselines::KeywordEngine keyword(engine->xkg(), {});

  eval::WorkloadGenerator::Options wopts;
  wopts.num_queries = 70;
  eval::Workload workload = eval::WorkloadGenerator::Generate(world, wopts);
  std::printf("workload: %zu queries, %zu judged answers\n\n",
              workload.queries.size(),
              [&] {
                size_t n = 0;
                for (const auto& q : workload.queries) {
                  n += workload.qrels.RelevantCount(q.id);
                }
                return n;
              }());

  // All four systems ride the unified core::Engine interface: each row
  // is a display name + engine pointer, parsing and key extraction are
  // the runner's job.
  std::vector<eval::EngineUnderTest> systems = {
      {"TriniT (relax + XKG)", &engine.value(), {}},
      {"XKG exact (no relax)", &xkg_exact, {}},
      {"KG exact (SPARQL-ish)", &kg_exact, {}},
      {"Keyword (SLQ-ish)", &keyword, {}},
  };

  auto reports = eval::Runner::Run(workload, systems, 10);

  AsciiTable table({"system", "NDCG@5", "NDCG@10", "MAP", "P@1", "MRR",
                    "answered", "ms/query"});
  for (const auto& report : reports) {
    table.AddRow({report.name, FormatDouble(report.ndcg5, 3),
                  FormatDouble(report.ndcg10, 3),
                  FormatDouble(report.map, 3), FormatDouble(report.p1, 3),
                  FormatDouble(report.mrr, 3),
                  FormatDouble(report.answered, 2),
                  FormatDouble(report.mean_latency_ms, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Per-archetype breakdown for the winning system.
  const auto& trinit_report = reports[0];
  AsciiTable archetypes({"archetype", "TriniT NDCG@5"});
  for (size_t i = 0; i < trinit_report.archetypes.size(); ++i) {
    archetypes.AddRow({trinit_report.archetypes[i],
                       FormatDouble(trinit_report.ndcg5_by_archetype[i],
                                    3)});
  }
  std::printf("%s\n", archetypes.ToString().c_str());

  double ratio = reports[0].ndcg5 /
                 std::max({reports[1].ndcg5, reports[2].ndcg5,
                           reports[3].ndcg5, 1e-9});
  std::printf("paper: TriniT 0.775 vs next best 0.419 (1.85x). "
              "measured: %.3f vs %.3f (%.2fx next best).\n",
              reports[0].ndcg5,
              std::max({reports[1].ndcg5, reports[2].ndcg5,
                        reports[3].ndcg5}),
              ratio);
  return 0;
}
