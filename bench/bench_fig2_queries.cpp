// Exhibit F2 — Figure 2 of the paper: the four users' questions and
// queries. Reproduces the failure of plain-KG matching and the rescue
// by relaxation / the XKG, printing one row per user.

#include <cstdio>

#include "bench_util.h"
#include "query/parser.h"
#include "util/table.h"

int main() {
  using namespace trinit;

  core::Trinit engine = bench::OpenPaperEngine();

  struct Case {
    const char* user;
    const char* question;
    const char* query;
    const char* paper_outcome;
  } cases[] = {
      {"A", "Who was born in Germany?", "?x bornIn Germany",
       "empty: KG stores cities"},
      {"B", "Who was the advisor of Albert Einstein?",
       "AlbertEinstein hasAdvisor ?x", "empty: KG models hasStudent"},
      {"C", "Ivy League university Einstein was affiliated with",
       "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
       "IvyLeague",
       "empty: IAS-Princeton link only in text"},
      {"D", "What did Albert Einstein win a Nobel prize for?",
       "AlbertEinstein 'won nobel for' ?x",
       "KG lacks the predicate entirely"},
  };

  std::printf("[F2] Figure 2: questions and queries — plain KG vs "
              "TriniT\n\n");
  AsciiTable table({"user", "query", "plain", "TriniT", "top answer",
                    "relaxed?"});
  for (const Case& c : cases) {
    // Plain: strict matching, no relaxation rules.
    relax::RuleSet no_rules;
    topk::ProcessorOptions plain_opts;
    plain_opts.k = 3;
    plain_opts.enable_relaxation = false;
    topk::TopKProcessor plain(engine.xkg(), no_rules, {}, plain_opts);
    auto q = query::Parser::Parse(c.query, &engine.xkg().dict());
    if (!q.ok()) return 1;
    auto plain_result = plain.Answer(*q);
    auto trinit_result = engine.Answer(*q, 3);
    if (!plain_result.ok() || !trinit_result.ok()) return 1;

    std::string top = "-";
    std::string relaxed = "-";
    if (!trinit_result->answers.empty()) {
      top = engine.RenderAnswer(*trinit_result, 0);
      relaxed =
          trinit_result->answers[0].used_relaxation() ? "yes" : "no";
    }
    table.AddRow({c.user, c.query,
                  std::to_string(plain_result->answers.size()),
                  std::to_string(trinit_result->answers.size()), top,
                  relaxed});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper: users A-C get empty results from strict matching; "
              "relaxation + XKG recover all four.\n");
  return 0;
}
