// Exhibit A1 (our ablation) — contribution of each relaxation-rule
// family to retrieval quality. The paper motivates mined predicate
// rewrites, inversions, and expansions (Figure 4); this bench toggles
// each miner off and re-runs the E1 workload.

#include <cstdio>

#include "bench_util.h"
#include "eval/runner.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace trinit;

double Ndcg5For(const synth::World& world, const eval::Workload& workload,
                const core::TrinitOptions& options,
                bool enable_relaxation) {
  auto engine = core::Trinit::FromWorld(world, options);
  if (!engine.ok()) return -1.0;
  eval::EngineUnderTest sut;
  sut.name = "sut";
  sut.engine = &engine.value();
  // The relaxation toggle is a per-request override — the engine itself
  // is configured identically to the full condition.
  sut.base.enable_relaxation = enable_relaxation;
  auto reports = eval::Runner::Run(workload, {sut}, 10);
  return reports[0].ndcg5;
}

}  // namespace

int main() {
  std::printf("[A1] relaxation-operator ablation (NDCG@5 on the E1 "
              "workload)\n\n");

  synth::World world = bench::EvalWorld();
  eval::WorkloadGenerator::Options wopts;
  wopts.num_queries = 40;  // trimmed for a 5-configuration sweep
  eval::Workload workload = eval::WorkloadGenerator::Generate(world, wopts);

  struct Config {
    const char* name;
    bool synonyms, inversions, expansions, relaxation;
  } configs[] = {
      {"full TriniT", true, true, true, true},
      {"- synonym miner", false, true, true, true},
      {"- inversion miner", true, false, true, true},
      {"- expansion miner", true, true, false, true},
      {"- all relaxation", true, true, true, false},
  };

  AsciiTable table({"configuration", "NDCG@5", "delta vs full"});
  double full = -1.0;
  for (const Config& config : configs) {
    core::TrinitOptions options;
    options.mine_synonyms = config.synonyms;
    options.mine_inversions = config.inversions;
    options.mine_expansions = config.expansions;
    double ndcg = Ndcg5For(world, workload, options, config.relaxation);
    if (full < 0) full = ndcg;
    table.AddRow({config.name, FormatDouble(ndcg, 3),
                  FormatDouble(ndcg - full, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("shape check: every family contributes; disabling all "
              "relaxation collapses quality toward the exact-match "
              "baseline of E1.\n");
  return 0;
}
