// Exhibit F5 — Figure 5 of the paper (screenshot): the TriniT query
// interface. Headless reproduction of the same session: the user C
// affiliation query with user-supplied rules 3 and 4, a result-count
// setting, and the ranked answer list.

#include <cstdio>

#include "bench_util.h"
#include "query/parser.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace trinit;

  std::printf("[F5] Figure 5: TriniT query interface (headless)\n\n");

  // The screenshot shows: triple patterns, user-defined relaxation
  // rules (rules 3 and 4 of Figure 4), and the number of results.
  auto engine = core::Trinit::Open(bench::BuildPaperXkg());
  if (!engine.ok()) return 1;

  const char* user_rules =
      "rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y "
      "@ 0.8\n"
      "rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7\n";
  const char* query_text =
      "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member "
      "IvyLeague";
  const int num_results = 10;

  std::printf("query patterns:\n  AlbertEinstein  affiliation  ?x\n"
              "  ?x  member  IvyLeague\n");
  std::printf("user relaxation rules:\n%s", user_rules);
  std::printf("number of results: %d\n\n", num_results);

  if (!engine->AddManualRules(user_rules).ok()) return 1;
  auto q = query::Parser::Parse(query_text, &engine->xkg().dict());
  if (!q.ok()) return 1;
  auto result = engine->Answer(*q, num_results);
  if (!result.ok()) return 1;

  AsciiTable answers({"rank", "?x", "score", "via relaxation"});
  for (size_t i = 0; i < result->answers.size(); ++i) {
    answers.AddRow({std::to_string(i + 1),
                    engine->RenderAnswer(*result, i),
                    FormatDouble(result->answers[i].score, 3),
                    result->answers[i].used_relaxation() ? "yes" : "no"});
  }
  std::printf("answers:\n%s\n", answers.ToString().c_str());

  std::printf("processing: %zu/%zu per-pattern relaxations opened, %zu "
              "index-list items pulled, %zu join combinations\n",
              result->stats.alternatives_opened,
              result->stats.alternatives_total,
              result->stats.items_pulled,
              result->stats.combinations_emitted);

  // The interface also offers auto-completion; emulate the lookup that
  // backs it.
  std::printf("\nauto-completion for \"Prince\": ");
  engine->xkg().dict().ForEach([&](rdf::TermId id) {
    std::string_view label = engine->xkg().dict().label(id);
    if (label.rfind("Prince", 0) == 0) {
      std::printf("%.*s ", static_cast<int>(label.size()), label.data());
    }
  });
  std::printf("\n");
  return 0;
}
