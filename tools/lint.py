#!/usr/bin/env python3
"""Repo lint: the concurrency/correctness rules ci.sh enforces on every PR.

Rules (each finding prints as ``path:line: [rule] message``):

  mutex-member      ``std::mutex`` / ``std::shared_mutex`` (and friends)
                    or ``std::lock_guard``-style raw guards in src/ —
                    library code must use the annotated ``trinit::Mutex``
                    / ``MutexLock`` wrappers (util/mutex.h) so Clang
                    Thread Safety Analysis can see every lock.
  nodiscard-ratchet ``util::Status`` / ``util::Result`` must stay
                    declared ``[[nodiscard]]`` (silently dropped errors
                    are a latent-bug class; the compiler does the
                    per-call-site work, this rule stops the attribute
                    from quietly disappearing).
  discarded-status  a bare-statement call of a function whose every
                    declaration in src/ returns Status/Result (the
                    textual complement of [[nodiscard]] for code built
                    without warnings-as-errors). Intentional discards
                    are written ``(void)Foo();``.
  naked-new         ``new`` / ``malloc`` / ``free`` outside the smart-
                    pointer factories — ownership must be typed.
  pointer-punning   ``reinterpret_cast`` in src/ outside src/storage/ —
                    type punning is the storage layer's privilege (mmap
                    section views, with layout static_asserts alongside);
                    everywhere else it is a strict-aliasing hazard.
  adhoc-atomic      ``std::atomic`` in src/ outside src/obs/ — lock-free
                    state belongs in the metrics registry's audited cells
                    (src/obs/metrics.h documents the memory-ordering
                    rules); ad-hoc atomics scattered through the engine
                    are how ordering bugs hide. Pre-existing sites are
                    allowlisted; new ones need a written reason there.
  include-style     project includes are quote-form paths rooted at
                    src/ (or tests/, bench/, examples/ for those trees);
                    no ``../`` escapes, no angle-form project headers.
  header-guard      every header carries an include guard (or
                    ``#pragma once``).

Findings can be suppressed by ``tools/lint_allowlist.txt`` entries of
the form ``rule path/relative/to/repo`` — the committed allowlist is the
ratchet: it only ever shrinks.

Usage: lint.py [--root REPO] [--allowlist FILE] [files...]
Exits non-zero iff un-allowlisted findings exist.
"""

import argparse
import os
import re
import sys

CXX_DIRS = ("src", "tests", "bench", "examples")
CXX_EXTS = (".h", ".cc", ".cpp")

PUNNING_RE = re.compile(r"\breinterpret_cast\b")
ATOMIC_RE = re.compile(r"\bstd::atomic(?:_\w+)?\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_)?(?:shared_)?(?:timed_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b")
NAKED_NEW_RE = re.compile(r"(?:^|[^_\w.])new\s+[A-Za-z_(]")
MALLOC_RE = re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')
GUARD_RE = re.compile(r"^\s*#\s*(?:ifndef\s+\w+|pragma\s+once)")
# A function declaration that returns Status or Result<...>; captures the
# name. Indented enough to be a member or free declaration.
STATUS_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|friend\s+|\[\[nodiscard\]\]\s+)*"
    r"(?:util::|trinit::)?(?:Status|Result<[^;=]*>)\s+(\w+)\s*\(")
ANY_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|friend\s+|constexpr\s+|inline\s+|"
    r"\[\[nodiscard\]\]\s+)*"
    r"((?:[\w:]+(?:<[^;={}]*>)?(?:[&*\s]|::)+))(\w+)\s*\(")
# A bare statement `obj.Foo(...)` / `Foo(...);` — no assignment, return,
# condition, or (void) cast in front. The optional receiver prefix
# deliberately excludes parentheses: a paren means the line is a
# continuation or a wrapping call (macro, EXPECT_*), not a bare discard.
BARE_CALL_RE = re.compile(r"^\s*(?:[\w\]\[.>*-]+(?:\.|->))?(\w+)\(")


def strip_comments_and_strings(line, in_block):
    """Returns (code-only text, still-in-block-comment) for one line."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            break
        if c == "/" and nxt == "*":
            in_block = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(" ")  # keep column alignment cheapness; content gone
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def code_lines(path):
    """Yields (1-based line number, comment/string-stripped text)."""
    in_block = False
    with open(path, encoding="utf-8", errors="replace") as f:
        for lineno, line in enumerate(f, start=1):
            raw = line.rstrip("\n")
            # Preprocessor directives keep their "string" content — an
            # #include path is exactly what include-style inspects.
            if not in_block and raw.lstrip().startswith("#"):
                yield lineno, raw.split("//", 1)[0]
                continue
            code, in_block = strip_comments_and_strings(raw, in_block)
            yield lineno, code


def collect_status_returners(root, files):
    """Names whose every src/ declaration returns Status/Result.

    A name also declared with a different return type anywhere in src/
    (e.g. an overload returning void) is dropped: the textual check only
    fires where it cannot be wrong about the return type.
    """
    status_names = set()
    other_names = set()
    for path in files:
        rel = os.path.relpath(path, root)
        if not rel.startswith("src" + os.sep) or not rel.endswith(".h"):
            continue
        for _, code in code_lines(path):
            m = STATUS_DECL_RE.match(code)
            if m:
                status_names.add(m.group(1))
                continue
            m = ANY_DECL_RE.match(code)
            if m and "(" not in m.group(1):
                ret = m.group(1).strip()
                if ret and not ret.startswith(("return", "if", "for",
                                              "while", "else")):
                    other_names.add(m.group(2))
    return status_names - other_names


CONTROL_PREFIXES = ("if", "for", "while", "switch", "return", "case",
                    "else", "do", "co_return", "co_await")


def check_file(root, path, status_names, findings):
    rel = os.path.relpath(path, root)
    is_header = rel.endswith(".h")
    in_src = rel.startswith("src" + os.sep)
    saw_guard = False
    saw_code = False
    # True when the next code line begins a new statement (the previous
    # one ended in ; { or }) — the only place a bare discard can start.
    at_statement_start = True

    for lineno, code in code_lines(path):
        stripped = code.strip()
        if not stripped:
            continue
        if is_header and not saw_guard and GUARD_RE.match(code):
            saw_guard = True
        if not stripped.startswith("#"):
            saw_code = True

        if in_src and rel != os.path.join("src", "util", "mutex.h"):
            m = RAW_MUTEX_RE.search(code)
            if m:
                findings.append((rel, lineno, "mutex-member",
                                 f"raw {m.group(0)} — use the annotated "
                                 "trinit::Mutex/MutexLock wrappers "
                                 "(src/util/mutex.h)"))

        if in_src and not rel.startswith(os.path.join("src", "storage") +
                                         os.sep):
            if PUNNING_RE.search(code):
                findings.append((rel, lineno, "pointer-punning",
                                 "reinterpret_cast outside src/storage/ — "
                                 "keep type punning confined to the "
                                 "storage layer's checked view helpers"))

        if in_src and not rel.startswith(os.path.join("src", "obs") +
                                         os.sep):
            if ATOMIC_RE.search(code):
                findings.append((rel, lineno, "adhoc-atomic",
                                 "std::atomic outside src/obs/ — use the "
                                 "metrics registry's cells or an annotated "
                                 "Mutex (docs/CONCURRENCY.md has the "
                                 "ordering rules)"))

        if in_src:
            if NAKED_NEW_RE.search(code):
                findings.append((rel, lineno, "naked-new",
                                 "naked `new` — use std::make_unique/"
                                 "make_shared or a container"))
            if MALLOC_RE.search(code):
                findings.append((rel, lineno, "naked-new",
                                 "C allocation call — use RAII ownership"))

        m = INCLUDE_RE.match(code)
        if m:
            inc = m.group(1)
            target = inc[1:-1]
            if "../" in target:
                findings.append((rel, lineno, "include-style",
                                 f"relative include {inc} — include "
                                 "project headers by their src/-rooted "
                                 "path"))
            elif inc.startswith('"'):
                roots = ["src"]
                top = rel.split(os.sep)[0]
                if top in ("tests", "bench", "examples"):
                    roots.append(top)
                if not any(os.path.exists(os.path.join(root, r, target))
                           for r in roots):
                    findings.append((rel, lineno, "include-style",
                                     f"quoted include {inc} does not "
                                     f"resolve under {' or '.join(roots)}/"))
            else:
                if os.path.exists(os.path.join(root, "src", target)):
                    findings.append((rel, lineno, "include-style",
                                     f"project header included angle-form "
                                     f"{inc} — use quotes"))

        if at_statement_start and (in_src or rel.split(os.sep)[0]
                                   in ("tests", "bench", "examples")):
            m = BARE_CALL_RE.match(code)
            if (m and m.group(1) in status_names
                    and stripped.endswith(";")
                    and "=" not in code
                    and "(void)" not in code
                    and not any(stripped.startswith(p)
                                for p in CONTROL_PREFIXES)):
                findings.append((rel, lineno, "discarded-status",
                                 f"return value of Status/Result-returning "
                                 f"`{m.group(1)}` discarded — handle it or "
                                 "cast to (void) with a reason"))
        if not stripped.startswith("#"):
            at_statement_start = stripped[-1] in ";{}" or stripped.endswith(
                ":")

    if is_header and saw_code and not saw_guard:
        findings.append((rel, 1, "header-guard",
                         "header has neither an include guard nor "
                         "#pragma once"))


def check_nodiscard_ratchet(root, findings):
    for rel, cls in ((os.path.join("src", "util", "status.h"), "Status"),
                     (os.path.join("src", "util", "result.h"), "Result")):
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        text = open(path, encoding="utf-8").read()
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, text):
            findings.append((rel, 1, "nodiscard-ratchet",
                             f"class {cls} must be declared "
                             "`class [[nodiscard]] " + cls + "`"))


def load_allowlist(path):
    allowed = set()
    if not path or not os.path.exists(path):
        return allowed
    for raw in open(path, encoding="utf-8"):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            print(f"lint: malformed allowlist entry: {raw.rstrip()}",
                  file=sys.stderr)
            sys.exit(2)
        allowed.add((parts[0], parts[1]))
    return allowed


def gather_files(root, explicit):
    if explicit:
        return [os.path.abspath(f) for f in explicit]
    files = []
    for d in CXX_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            for name in sorted(names):
                if name.endswith(CXX_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/lint_allowlist.txt under root)")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: the tree)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root or
                           os.path.join(os.path.dirname(__file__), ".."))
    allowlist_path = args.allowlist
    if allowlist_path is None:
        allowlist_path = os.path.join(root, "tools", "lint_allowlist.txt")
    allowed = load_allowlist(allowlist_path)

    files = gather_files(root, args.files)
    status_names = collect_status_returners(root, files)

    findings = []
    check_nodiscard_ratchet(root, findings)
    for path in files:
        check_file(root, path, status_names, findings)

    kept = []
    used = set()
    for rel, lineno, rule, msg in findings:
        key = (rule, rel.replace(os.sep, "/"))
        if key in allowed:
            used.add(key)
            continue
        kept.append((rel, lineno, rule, msg))

    for key in sorted(allowed - used):
        print(f"lint: stale allowlist entry (nothing to suppress): "
              f"{key[0]} {key[1]} — ratchet it out", file=sys.stderr)

    for rel, lineno, rule, msg in kept:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if kept:
        print(f"lint: {len(kept)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint OK ({len(files)} files, "
          f"{len(status_names)} Status-returning names tracked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
