#!/usr/bin/env python3
"""Unit tests for tools/lint.py: every rule must fire on a known-bad
snippet and stay quiet on the idiomatic spelling, and the allowlist must
suppress (and report staleness) correctly.

Run directly (``python3 tools/lint_test.py``) or through ctest (the
``lint_selftest`` test registered in CMakeLists.txt).
"""

import os
import shutil
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from io import StringIO

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint  # noqa: E402


GUARD = "#ifndef X_H_\n#define X_H_\n"
GUARD_END = "#endif  // X_H_\n"


class LintRepo:
    """A throwaway repo layout for one lint invocation."""

    def __init__(self):
        self.root = tempfile.mkdtemp(prefix="lint_test_")
        for d in ("src/util", "tests", "bench", "examples", "tools"):
            os.makedirs(os.path.join(self.root, d), exist_ok=True)
        # Minimal nodiscard-clean Status/Result so only the rule under
        # test fires.
        self.write("src/util/status.h",
                   GUARD + "class [[nodiscard]] Status {};\n" + GUARD_END)
        self.write("src/util/result.h",
                   GUARD + "template <typename T>\n"
                   "class [[nodiscard]] Result {};\n" + GUARD_END)
        self.write("src/util/mutex.h",
                   GUARD + "#include <mutex>\n"
                   "class Mutex { std::timed_mutex mu_; };\n" + GUARD_END)

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)

    def allow(self, *entries):
        self.write("tools/lint_allowlist.txt",
                   "".join(f"{rule} {path}\n" for rule, path in entries))

    def run(self):
        out, err = StringIO(), StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            rc = lint.main(["--root", self.root])
        return rc, out.getvalue(), err.getvalue()

    def cleanup(self):
        shutil.rmtree(self.root, ignore_errors=True)


class LintRuleTest(unittest.TestCase):
    def setUp(self):
        self.repo = LintRepo()
        self.addCleanup(self.repo.cleanup)

    def assert_fires(self, rule, path_fragment=None):
        rc, out, _ = self.repo.run()
        self.assertEqual(rc, 1, f"expected a finding, got:\n{out}")
        self.assertIn(f"[{rule}]", out)
        if path_fragment:
            self.assertIn(path_fragment, out)
        return out

    def assert_clean(self):
        rc, out, _ = self.repo.run()
        self.assertEqual(rc, 0, f"expected clean, got:\n{out}")

    # ------------------------------------------------------ mutex-member
    def test_raw_mutex_member_fires(self):
        self.repo.write("src/bad_mutex.h",
                        GUARD + "#include <mutex>\n"
                        "struct S { std::mutex mu; };\n" + GUARD_END)
        self.assert_fires("mutex-member", "src/bad_mutex.h")

    def test_raw_lock_guard_fires(self):
        self.repo.write("src/bad_guard.cc",
                        "void f() { std::lock_guard<std::mutex> l(m); }\n")
        self.assert_fires("mutex-member", "src/bad_guard.cc")

    def test_shared_timed_mutex_fires(self):
        self.repo.write("src/bad_shared.h",
                        GUARD + "struct S { std::shared_timed_mutex mu; };\n"
                        + GUARD_END)
        self.assert_fires("mutex-member", "src/bad_shared.h")

    def test_wrapper_and_comments_clean(self):
        # util/mutex.h itself (written in setUp) wraps std::timed_mutex;
        # mentions in comments and tests/ are fine too.
        self.repo.write("src/good.h",
                        GUARD + "// std::mutex is banned; use Mutex.\n"
                        "struct S { int x; };\n" + GUARD_END)
        self.repo.write("tests/uses_std_mutex_test.cc",
                        "#include <mutex>\nstd::mutex test_only;\n")
        self.assert_clean()

    # ------------------------------------------------- nodiscard-ratchet
    def test_removed_nodiscard_fires(self):
        self.repo.write("src/util/status.h",
                        GUARD + "class Status {};\n" + GUARD_END)
        self.assert_fires("nodiscard-ratchet", "src/util/status.h")

    # -------------------------------------------------- discarded-status
    def test_bare_status_call_fires(self):
        self.repo.write("src/api.h",
                        GUARD + "Status Mutate(int x);\n" + GUARD_END)
        self.repo.write("src/use.cc", "void f() {\n  Mutate(1);\n}\n")
        self.assert_fires("discarded-status", "src/use.cc")

    def test_member_call_on_receiver_fires(self):
        self.repo.write("src/api.h",
                        GUARD + "struct E {\n"
                        "  Status ExtendKg(int);\n"
                        "};\n" + GUARD_END)
        self.repo.write("src/use.cc",
                        "void f(E* e) {\n  e->ExtendKg(2);\n}\n")
        self.assert_fires("discarded-status", "src/use.cc")

    def test_handled_and_void_cast_clean(self):
        self.repo.write("src/api.h",
                        GUARD + "Status Mutate(int x);\n"
                        "Result<int> Load(int x);\n" + GUARD_END)
        self.repo.write(
            "src/use.cc",
            "void f() {\n"
            "  Status s = Mutate(1);\n"
            "  (void)Mutate(2);  // shutdown path, failure is fine\n"
            "  if (!Mutate(3).ok()) return;\n"
            "  CHECK_OK(\n"
            "      Mutate(4));\n"  # continuation line, not a discard
            "  return Mutate(5);\n"
            "}\n")
        self.assert_clean()

    def test_ambiguous_name_not_tracked(self):
        # `Add` returns Status in one class and void in another: the
        # textual rule must not guess.
        self.repo.write("src/api.h",
                        GUARD + "struct A { Status Add(int); };\n"
                        "struct B { void Add(int); };\n" + GUARD_END)
        self.repo.write("src/use.cc", "void f(B* b) {\n  b->Add(1);\n}\n")
        self.assert_clean()

    # ------------------------------------------------------- naked-new
    def test_naked_new_fires(self):
        self.repo.write("src/leaky.cc", "int* f() { return new int(3); }\n")
        self.assert_fires("naked-new", "src/leaky.cc")

    def test_malloc_fires(self):
        self.repo.write("src/leaky.cc",
                        "void* f() { return malloc(16); }\n")
        self.assert_fires("naked-new", "src/leaky.cc")

    def test_make_unique_and_words_clean(self):
        self.repo.write("src/fine.cc",
                        "#include <memory>\n"
                        "auto f() { return std::make_unique<int>(3); }\n"
                        "int renew_count;  // 'new' inside a word\n")
        self.assert_clean()

    # ------------------------------------------------- pointer-punning
    def test_reinterpret_cast_outside_storage_fires(self):
        self.repo.write("src/rdf/puns.cc",
                        "const int* f(const char* p) {"
                        " return reinterpret_cast<const int*>(p); }\n")
        self.assert_fires("pointer-punning", "src/rdf/puns.cc")

    def test_reinterpret_cast_in_storage_and_tests_clean(self):
        # src/storage/ owns the checked mmap view helpers; tests and
        # bench code are outside the rule's scope entirely.
        self.repo.write("src/storage/views.cc",
                        "const int* f(const char* p) {"
                        " return reinterpret_cast<const int*>(p); }\n")
        self.repo.write("tests/pun_test.cc",
                        "auto f(char* p) {"
                        " return reinterpret_cast<int*>(p); }\n")
        self.assert_clean()

    # ------------------------------------------------------ adhoc-atomic
    def test_atomic_outside_obs_fires(self):
        self.repo.write("src/rdf/counterful.h",
                        GUARD + "#include <atomic>\n"
                        "struct S { std::atomic<int> hits{0}; };\n"
                        + GUARD_END)
        self.assert_fires("adhoc-atomic", "src/rdf/counterful.h")

    def test_atomic_fence_fires(self):
        self.repo.write("src/rdf/fence.cc",
                        "#include <atomic>\n"
                        "void f() {"
                        " std::atomic_thread_fence(std::memory_order_seq_cst);"
                        " }\n")
        self.assert_fires("adhoc-atomic", "src/rdf/fence.cc")

    def test_atomic_in_obs_and_tests_clean(self):
        # src/obs/ is the audited home of lock-free cells; tests and
        # bench code are outside the rule's scope, as are comments.
        self.repo.write("src/obs/cells.h",
                        GUARD + "#include <atomic>\n"
                        "struct C { std::atomic<unsigned> v{0}; };\n"
                        + GUARD_END)
        self.repo.write("src/rdf/commented.cc",
                        "// std::atomic is banned here; see src/obs/.\n"
                        "int f() { return 1; }\n")
        self.repo.write("tests/atomic_test.cc",
                        "#include <atomic>\nstd::atomic<int> test_only;\n")
        self.assert_clean()

    def test_atomic_allowlist_suppresses(self):
        self.repo.write("src/core/engine.cc",
                        "#include <atomic>\n"
                        "std::atomic<long> next{0};\n")
        self.repo.allow(("adhoc-atomic", "src/core/engine.cc"))
        self.assert_clean()

    # ---------------------------------------------------- include-style
    def test_relative_include_fires(self):
        self.repo.write("src/a.cc", '#include "../tests/helper.h"\n')
        self.assert_fires("include-style", "src/a.cc")

    def test_unresolvable_quoted_include_fires(self):
        self.repo.write("src/a.cc", '#include "nope/missing.h"\n')
        self.assert_fires("include-style", "src/a.cc")

    def test_angle_project_header_fires(self):
        self.repo.write("src/util/hash.h", GUARD + GUARD_END)
        self.repo.write("src/a.cc", "#include <util/hash.h>\n")
        self.assert_fires("include-style", "src/a.cc")

    def test_good_includes_clean(self):
        self.repo.write("src/util/hash.h", GUARD + GUARD_END)
        self.repo.write("src/a.cc",
                        "#include <vector>\n"
                        '#include "util/hash.h"\n')
        self.repo.write("tests/t_test.cc",
                        '#include "util/hash.h"\n'
                        '#include "testing/world.h"\n')
        self.repo.write("tests/testing/world.h", GUARD + GUARD_END)
        self.assert_clean()

    # ----------------------------------------------------- header-guard
    def test_missing_guard_fires(self):
        self.repo.write("src/naked.h", "struct S { int x; };\n")
        self.assert_fires("header-guard", "src/naked.h")

    def test_pragma_once_clean(self):
        self.repo.write("src/pragma.h",
                        "#pragma once\nstruct S { int x; };\n")
        self.assert_clean()

    # -------------------------------------------------------- allowlist
    def test_allowlist_suppresses(self):
        self.repo.write("src/leaky.cc", "int* f() { return new int(3); }\n")
        self.repo.allow(("naked-new", "src/leaky.cc"))
        self.assert_clean()

    def test_allowlist_is_per_rule(self):
        self.repo.write("src/leaky.cc",
                        "int* f() { return new int(3); }\n"
                        '#include "../x.h"\n')
        self.repo.allow(("naked-new", "src/leaky.cc"))
        out = self.assert_fires("include-style", "src/leaky.cc")
        self.assertNotIn("[naked-new]", out)

    def test_stale_allowlist_entry_reported(self):
        self.repo.allow(("naked-new", "src/gone.cc"))
        rc, _, err = self.repo.run()
        self.assertEqual(rc, 0)  # stale entries warn, not fail
        self.assertIn("stale allowlist entry", err)


if __name__ == "__main__":
    unittest.main()
