#!/usr/bin/env python3
"""Validates Prometheus text exposition (format 0.0.4) read from stdin.

ci.sh pipes trinit_shell's ``.metrics prom`` output through this to keep
the scrape endpoint honest: every metric must carry ``# HELP`` and
``# TYPE`` lines, every sample must parse, histograms must emit
monotonically non-decreasing cumulative buckets ordered by ``le`` and
ending in ``le="+Inf"`` whose count equals ``_count``. Interactive noise
around the block (the ``trinit> `` prompts, query echo) is stripped; the
checked block runs from the first ``# HELP`` line to the last
metric-shaped line.

Usage: promcheck.py [--min-metrics N] < exposition.txt
Exits 0 iff the block validates (and has at least N metrics, default 10).
"""

import argparse
import math
import re
import sys

NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
HELP_RE = re.compile(rf"^# HELP ({NAME_RE}) (.*)$")
TYPE_RE = re.compile(rf"^# TYPE ({NAME_RE}) (counter|gauge|histogram|"
                     r"summary|untyped)$")
SAMPLE_RE = re.compile(
    rf"^({NAME_RE})(?:\{{([^}}]*)\}})? ([^ ]+)(?: \d+)?$")
LABEL_RE = re.compile(rf'({NAME_RE})="((?:[^"\\]|\\.)*)"')


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def fail(lineno, message):
    print(f"promcheck: line {lineno}: {message}", file=sys.stderr)
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-metrics", type=int, default=10,
                        help="minimum # TYPE'd metric families expected")
    args = parser.parse_args(argv)

    # Strip interactive noise: shell prompts prefix lines ("trinit> # HELP
    # ..."), and the exposition block is surrounded by query output.
    lines = []
    for raw in sys.stdin:
        line = raw.rstrip("\n")
        while line.startswith("trinit> "):
            line = line[len("trinit> "):]
        lines.append(line)
    start = next((i for i, l in enumerate(lines) if l.startswith("# HELP")),
                 None)
    if start is None:
        print("promcheck: no '# HELP' line found in input", file=sys.stderr)
        return 1

    helped = set()
    typed = {}  # name -> type
    # histogram name -> {"buckets": [(le, count)], "count": n, "sum": s}
    histograms = {}
    sample_names = set()

    for offset, line in enumerate(lines[start:]):
        lineno = start + offset + 1
        if not line or line.startswith("  "):
            break  # left the exposition block (indented shell output)
        if line.startswith("# HELP"):
            m = HELP_RE.match(line)
            if not m:
                return fail(lineno, f"malformed HELP line: {line!r}")
            if m.group(1) in helped:
                return fail(lineno, f"duplicate HELP for {m.group(1)}")
            helped.add(m.group(1))
            continue
        if line.startswith("# TYPE"):
            m = TYPE_RE.match(line)
            if not m:
                return fail(lineno, f"malformed TYPE line: {line!r}")
            name, kind = m.group(1), m.group(2)
            if name in typed:
                return fail(lineno, f"duplicate TYPE for {name}")
            if name not in helped:
                return fail(lineno, f"TYPE before HELP for {name}")
            typed[name] = kind
            if kind == "histogram":
                histograms[name] = {"buckets": [], "count": None,
                                    "sum": None}
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            break  # left the exposition block
        name, labels_text, value_text = m.group(1), m.group(2), m.group(3)
        value = parse_value(value_text)
        if value is None:
            return fail(lineno, f"unparseable sample value: {line!r}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in histograms:
                base = name[:-len(suffix)]
        if base not in typed:
            return fail(lineno, f"sample for undeclared metric: {name}")
        sample_names.add(base)
        if base in histograms:
            hist = histograms[base]
            if name.endswith("_bucket"):
                labels = dict(LABEL_RE.findall(labels_text or ""))
                if "le" not in labels:
                    return fail(lineno, f"bucket without le label: {line!r}")
                le = parse_value(labels["le"])
                if le is None:
                    return fail(lineno, f"unparseable le: {labels['le']!r}")
                hist["buckets"].append((lineno, le, value))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = (lineno, value)
            else:
                return fail(lineno,
                            f"bare sample for histogram {base}: {line!r}")
        elif name != base:
            return fail(lineno, f"suffixed sample for non-histogram: {name}")

    for name in typed:
        if name not in sample_names:
            return fail(0, f"metric {name} declared but has no samples")

    for name, hist in histograms.items():
        buckets = hist["buckets"]
        if not buckets:
            return fail(0, f"histogram {name} has no buckets")
        prev_le, prev_count = -math.inf, 0
        for lineno, le, count in buckets:
            if le <= prev_le:
                return fail(lineno, f"{name} buckets out of le order")
            if count < prev_count:
                return fail(lineno,
                            f"{name} cumulative bucket counts decrease")
            prev_le, prev_count = le, count
        if buckets[-1][1] != math.inf:
            return fail(buckets[-1][0],
                        f"{name} last bucket is not le=\"+Inf\"")
        if hist["count"] is None or hist["sum"] is None:
            return fail(0, f"histogram {name} missing _count or _sum")
        if buckets[-1][2] != hist["count"][1]:
            return fail(hist["count"][0],
                        f"{name} +Inf bucket ({buckets[-1][2]:.0f}) != "
                        f"_count ({hist['count'][1]:.0f})")

    if len(typed) < args.min_metrics:
        print(f"promcheck: only {len(typed)} metric families, expected "
              f">= {args.min_metrics}", file=sys.stderr)
        return 1

    kinds = {}
    for kind in typed.values():
        kinds[kind] = kinds.get(kind, 0) + 1
    summary = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
    print(f"promcheck OK ({len(typed)} metric families: {summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
