#include "obs/trace_span.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace trinit::obs {
namespace {

void AppendPretty(const TraceSpan& span, size_t depth, std::string* out) {
  out->append(depth * 2, ' ');
  out->append(span.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %.3fms", span.duration_ms);
  out->append(buf);
  if (depth > 0) {
    std::snprintf(buf, sizeof(buf), " @%.3fms", span.start_ms);
    out->append(buf);
  }
  if (!span.counters.empty()) {
    out->append(" [");
    bool first = true;
    for (const auto& [key, value] : span.counters) {
      if (!first) out->push_back(' ');
      first = false;
      out->append(key);
      out->push_back('=');
      out->append(FormatJsonNumber(value));
    }
    out->push_back(']');
  }
  out->push_back('\n');
  for (const TraceSpan& child : span.children) {
    AppendPretty(child, depth + 1, out);
  }
}

void AppendJson(const TraceSpan& span, std::string* out) {
  out->append("{\"name\":\"");
  AppendJsonEscaped(span.name, out);
  out->append("\",\"start_ms\":");
  out->append(FormatJsonNumber(span.start_ms));
  out->append(",\"duration_ms\":");
  out->append(FormatJsonNumber(span.duration_ms));
  out->append(",\"counters\":[");
  bool first = true;
  for (const auto& [key, value] : span.counters) {
    if (!first) out->push_back(',');
    first = false;
    out->append("[\"");
    AppendJsonEscaped(key, out);
    out->append("\",");
    out->append(FormatJsonNumber(value));
    out->push_back(']');
  }
  out->append("],\"children\":[");
  first = true;
  for (const TraceSpan& child : span.children) {
    if (!first) out->push_back(',');
    first = false;
    AppendJson(child, out);
  }
  out->append("]}");
}

}  // namespace

void AppendJsonEscaped(const std::string& text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string FormatJsonNumber(double value) {
  if (!std::isfinite(value)) return "0";  // JSON has no Inf/NaN literals
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

TraceSpan& TraceSpan::AddChild(std::string child_name, double child_start_ms,
                               double child_duration_ms) {
  TraceSpan child;
  child.name = std::move(child_name);
  child.start_ms = child_start_ms;
  child.duration_ms = child_duration_ms;
  children.push_back(std::move(child));
  return children.back();
}

std::string TraceSpan::ToJson() const {
  std::string out;
  AppendJson(*this, &out);
  return out;
}

std::string TraceSpan::ToPretty() const {
  std::string out;
  AppendPretty(*this, 0, &out);
  return out;
}

}  // namespace trinit::obs
