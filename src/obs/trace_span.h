#ifndef TRINIT_OBS_TRACE_SPAN_H_
#define TRINIT_OBS_TRACE_SPAN_H_

#include <string>
#include <utility>
#include <vector>

/// Structured per-request tracing (PR 10): a hierarchical span tree
/// replacing the flat stage-timing list as the engine's deep
/// diagnostic. Spans are plain value types built *after* the work they
/// describe (the engine keeps its cheap `WallTimer` readings during
/// execution and assembles the tree at the end of `Execute`), so
/// tracing adds no synchronization to the hot path.
///
/// Schema (docs/OBSERVABILITY.md):
///
///   span := { name, start_ms, duration_ms,
///             counters: [[key, value]...], children: [span...] }
///
/// `start_ms` is the offset from the *root* span's start, so a child's
/// absolute position never depends on walking parents. Counters are an
/// ordered key/value list (not a map) — emission order is part of the
/// contract the S=1-vs-S=4 uniformity test pins.
namespace trinit::obs {

struct TraceSpan {
  std::string name;
  double start_ms = 0.0;     ///< offset from the root span's start
  double duration_ms = 0.0;  ///< this span's wall time
  std::vector<std::pair<std::string, double>> counters;
  std::vector<TraceSpan> children;

  /// Appends and returns the new child (valid until the next append).
  TraceSpan& AddChild(std::string child_name, double child_start_ms,
                      double child_duration_ms);

  void AddCounter(std::string key, double value) {
    counters.emplace_back(std::move(key), value);
  }

  /// Compact single-line JSON matching the schema above. Counter values
  /// that are whole numbers render without a fraction.
  std::string ToJson() const;

  /// Human-oriented multi-line rendering for trinit_shell:
  ///   execute 12.4ms [items_pulled=311 ...]
  ///     parse 0.1ms @0.0ms
  ///     ...
  std::string ToPretty() const;
};

/// JSON string escaping shared by span and exposition rendering.
void AppendJsonEscaped(const std::string& text, std::string* out);

/// Formats a counter value: integral values without a fraction
/// ("311"), fractional ones with enough digits to round-trip reading
/// ("0.125").
std::string FormatJsonNumber(double value);

}  // namespace trinit::obs

#endif  // TRINIT_OBS_TRACE_SPAN_H_
