#include "obs/slow_query_log.h"

#include <utility>

namespace trinit::obs {

void SlowQueryLog::Record(SlowQueryRecord record) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  record.sequence = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<SlowQueryRecord> SlowQueryLog::Entries() const {
  MutexLock lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: storage order is oldest-first
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

}  // namespace trinit::obs
