#include "obs/exposition.h"

#include <cmath>

#include "obs/trace_span.h"

namespace trinit::obs {
namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Prometheus sample value: integers bare, +Inf spelled "+Inf".
std::string PromNumber(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return FormatJsonNumber(value);
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& metric : snapshot.metrics) {
    out.append("# HELP ").append(metric.name).push_back(' ');
    // HELP text is raw UTF-8 with backslash and newline escaped.
    for (const char c : metric.help) {
      if (c == '\\') {
        out.append("\\\\");
      } else if (c == '\n') {
        out.append("\\n");
      } else {
        out.push_back(c);
      }
    }
    out.push_back('\n');
    out.append("# TYPE ").append(metric.name).push_back(' ');
    out.append(KindName(metric.kind));
    out.push_back('\n');
    if (metric.kind == MetricKind::kHistogram) {
      for (const auto& bucket : metric.buckets) {
        out.append(metric.name).append("_bucket{le=\"");
        out.append(PromNumber(bucket.le));
        out.append("\"} ");
        out.append(FormatJsonNumber(static_cast<double>(bucket.count)));
        out.push_back('\n');
      }
      out.append(metric.name).append("_sum ");
      out.append(PromNumber(metric.sum));
      out.push_back('\n');
      out.append(metric.name).append("_count ");
      out.append(FormatJsonNumber(static_cast<double>(metric.count)));
      out.push_back('\n');
    } else {
      out.append(metric.name).push_back(' ');
      out.append(PromNumber(metric.value));
      out.push_back('\n');
    }
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& metric : snapshot.metrics) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendJsonEscaped(metric.name, &out);
    out.append("\",\"kind\":\"");
    out.append(KindName(metric.kind));
    out.append("\",\"help\":\"");
    AppendJsonEscaped(metric.help, &out);
    out.push_back('"');
    if (metric.kind == MetricKind::kHistogram) {
      out.append(",\"count\":");
      out.append(FormatJsonNumber(static_cast<double>(metric.count)));
      out.append(",\"sum\":");
      out.append(FormatJsonNumber(metric.sum));
      out.append(",\"buckets\":[");
      bool first_bucket = true;
      for (const auto& bucket : metric.buckets) {
        if (!first_bucket) out.push_back(',');
        first_bucket = false;
        out.append("{\"le\":");
        if (std::isinf(bucket.le)) {
          out.append("\"+Inf\"");
        } else {
          out.append(FormatJsonNumber(bucket.le));
        }
        out.append(",\"count\":");
        out.append(FormatJsonNumber(static_cast<double>(bucket.count)));
        out.push_back('}');
      }
      out.push_back(']');
    } else {
      out.append(",\"value\":");
      out.append(FormatJsonNumber(metric.value));
    }
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

}  // namespace trinit::obs
