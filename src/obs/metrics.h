#ifndef TRINIT_OBS_METRICS_H_
#define TRINIT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// Always-on engine metrics (PR 10): a registry of named counters,
/// gauges, and fixed-bucket histograms whose *increment* path is
/// lock-free relaxed atomics — cheap enough for every untraced request
/// — while registration and scraping go through an ordinary mutex.
///
/// This header is the one place in src/ allowed to name `std::atomic`
/// directly (tools/lint.py's `adhoc-atomic` rule): every aggregate
/// counter the engine keeps must be a registry metric so a scrape can
/// see it. The few non-metric atomics that remain (generation counters,
/// publication flags) are individually allowlisted.
///
/// Handles (`Counter`, `Gauge`, `Histogram`) are trivially copyable
/// values wrapping a pointer into registry-owned storage; a
/// default-constructed ("unbound") handle is a no-op on every
/// operation, which is how `ObsOptions::metrics = false` turns the
/// whole subsystem off at a single-branch cost per site. Building with
/// `-DTRINIT_OBS_COMPILED_OUT` removes even that branch (the bodies
/// compile to nothing); see docs/OBSERVABILITY.md for the overhead
/// contract and bench_p3_serving for the measurement that gates it.
///
/// Memory ordering (docs/CONCURRENCY.md): increments and reads are
/// `memory_order_relaxed`. Each metric is monotone and exact in
/// isolation, but one scrape is NOT a cross-metric atomic cut — two
/// counters bumped by the same request may be observed one-with,
/// one-without. Handles must be bound before the owning structure is
/// shared across threads (the engine binds under its exclusive state
/// lock or before construction returns).
namespace trinit::obs {

/// Observability knobs of one engine (`core::TrinitOptions::obs`).
struct ObsOptions {
  /// Master switch. False leaves every handle unbound: all increment
  /// sites degrade to a null check, `MetricsSnapshot()` reports every
  /// metric as zero, and `QueryResponse::serving` cumulative counters
  /// stay zero. The runtime stand-in for TRINIT_OBS_COMPILED_OUT.
  bool metrics = true;

  /// Requests slower than this (end-to-end `Execute` wall time, ms)
  /// are recorded in the slow-query log with their full span tree;
  /// <= 0 disables the log.
  double slow_query_ms = 250.0;

  /// Bounded ring capacity of the slow-query log; oldest records are
  /// overwritten. 0 disables the log.
  size_t slow_log_capacity = 64;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

namespace internal {

/// Stripes per counter: enough to keep `ExecuteBatch` workers off each
/// other's cache lines, small enough that a scrape's stripe sum is
/// trivial. Must be a power of two (the stripe index masks with it).
inline constexpr size_t kCounterStripes = 4;

struct alignas(64) CounterCell {
  std::atomic<uint64_t> value{0};
};

struct CounterCells {
  CounterCell stripes[kCounterStripes];
};

struct GaugeCell {
  std::atomic<int64_t> value{0};
};

struct HistogramCells {
  std::vector<double> bounds;  ///< ascending finite upper bounds
  /// Per-bucket observation counts, size bounds.size() + 1 (the last
  /// is the implicit +Inf bucket).
  std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  std::atomic<uint64_t> count{0};
  /// Sum of observed values as raw IEEE-754 bits, accumulated by CAS
  /// (`AddToDoubleBits`) so the sum stays lock-free without a mutex.
  std::atomic<uint64_t> sum_bits{0};
};

/// This thread's counter stripe (a cached hash of the thread id).
size_t StripeIndex();

/// Lock-free `cell += delta` where `cell` holds double bits.
void AddToDoubleBits(std::atomic<uint64_t>& cell, double delta);

}  // namespace internal

/// Monotone counter handle. Unbound (default) is a no-op.
class Counter {
 public:
  Counter() = default;

  /// Relaxed, lock-free, striped; `n == 0` is a no-op.
  void Increment(uint64_t n = 1) const {
#ifndef TRINIT_OBS_COMPILED_OUT
    if (cells_ == nullptr || n == 0) return;
    cells_->stripes[internal::StripeIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Sum over stripes (relaxed reads); 0 when unbound. Exact for this
  /// counter, but not an atomic cut across counters.
  uint64_t Value() const;

  bool bound() const { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(internal::CounterCells* cells) : cells_(cells) {}
  internal::CounterCells* cells_ = nullptr;
};

/// Point-in-time gauge handle (single relaxed atomic). Unbound is a
/// no-op (`Add` returns 0).
class Gauge {
 public:
  Gauge() = default;

  /// Adds `delta` and returns the post-add value (0 when unbound).
  int64_t Add(int64_t delta) const {
#ifndef TRINIT_OBS_COMPILED_OUT
    if (cell_ == nullptr) return 0;
    return cell_->value.fetch_add(delta, std::memory_order_relaxed) + delta;
#else
    (void)delta;
    return 0;
#endif
  }

  void Set(int64_t value) const {
#ifndef TRINIT_OBS_COMPILED_OUT
    if (cell_ != nullptr) cell_->value.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// Monotone max: raises the gauge to `candidate` if it is higher
  /// (CAS loop) — the high-water-mark primitive.
  void UpdateMax(int64_t candidate) const;

  int64_t Value() const;

  bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(internal::GaugeCell* cell) : cell_(cell) {}
  internal::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. Unbound is a no-op.
class Histogram {
 public:
  Histogram() = default;

  /// Counts `value` into its bucket (first upper bound >= value, +Inf
  /// catch-all) and accumulates the sum. Relaxed, lock-free.
  void Observe(double value) const;

  bool bound() const { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal::HistogramCells* cells) : cells_(cells) {}
  internal::HistogramCells* cells_ = nullptr;
};

/// RAII in-flight marker: `gauge += 1` on construction (recording the
/// post-increment value as a candidate high-water mark on `peak`),
/// `gauge -= 1` on destruction — the engine's concurrent-reader gauge.
class GaugeGuard {
 public:
  GaugeGuard(Gauge gauge, Gauge peak) : gauge_(gauge) {
    peak.UpdateMax(gauge_.Add(1));
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;
  ~GaugeGuard() { gauge_.Add(-1); }

 private:
  Gauge gauge_;
};

/// Stable, renderer-independent snapshot of every registered metric
/// (registration order preserved). `obs::RenderPrometheus` /
/// `RenderJson` (obs/exposition.h) turn it into wire formats.
struct MetricsSnapshot {
  struct Bucket {
    double le = 0.0;     ///< upper bound; infinity for the last bucket
    uint64_t count = 0;  ///< cumulative observations <= le
  };
  struct Metric {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;  ///< counter/gauge value
    // Histogram-only fields.
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<Bucket> buckets;  ///< cumulative; last is +Inf

    /// Histogram quantile estimate (linear interpolation within the
    /// winning bucket; the +Inf bucket answers with the largest finite
    /// bound). 0 for empty histograms and non-histogram kinds.
    double Quantile(double q) const;
  };

  std::vector<Metric> metrics;

  const Metric* Find(std::string_view name) const;
};

/// Named metric registry: one per engine. Registration is idempotent
/// by name (re-registering returns a handle to the same cells) and
/// mutex-guarded; it happens at engine construction, never on the
/// request path. `Snapshot` takes the same mutex to walk the
/// definition list, reading cell values relaxed — increments are never
/// blocked by a scrape.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter RegisterCounter(const std::string& name, const std::string& help);
  Gauge RegisterGauge(const std::string& name, const std::string& help);
  /// `bounds` are ascending finite bucket upper bounds; the +Inf
  /// catch-all is implicit. On re-registration the original bounds win.
  Histogram RegisterHistogram(const std::string& name,
                              const std::string& help,
                              std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  size_t size() const;

 private:
  struct Def {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<internal::CounterCells> counter;
    std::unique_ptr<internal::GaugeCell> gauge;
    std::unique_ptr<internal::HistogramCells> histogram;
  };

  /// Existing def for `name` (checking the kind matches), or a fresh
  /// one appended to `defs_`.
  Def& DefFor(const std::string& name, const std::string& help,
              MetricKind kind) TRINIT_REQUIRES(mu_);

  mutable Mutex mu_;
  /// unique_ptr elements give every Def a stable address: handles keep
  /// raw cell pointers while the vector grows.
  std::vector<std::unique_ptr<Def>> defs_ TRINIT_GUARDED_BY(mu_);
  std::unordered_map<std::string, size_t> index_ TRINIT_GUARDED_BY(mu_);
};

}  // namespace trinit::obs

#endif  // TRINIT_OBS_METRICS_H_
