#ifndef TRINIT_OBS_SLOW_QUERY_LOG_H_
#define TRINIT_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_span.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

/// Bounded ring of the engine's slowest requests (PR 10): any `Execute`
/// whose wall time crosses `ObsOptions::slow_query_ms` is recorded with
/// everything a post-hoc diagnosis needs — canonical query, executed
/// plan order, the full uniform counter set, and the span tree — then
/// dumped by trinit_shell's `.slowlog`. Capacity is fixed at
/// construction; the ring overwrites oldest-first and
/// `total_recorded()` keeps the lifetime count so a dump can say "8 of
/// 131 kept".
///
/// Cost model: `ShouldRecord` is one branch on the already-measured
/// wall time — the untraced fast path never takes the log's mutex.
/// Only actually-slow requests (already paying >= threshold
/// milliseconds of query work) pay the record's copy + lock.
namespace trinit::obs {

/// One recorded slow request.
struct SlowQueryRecord {
  uint64_t sequence = 0;  ///< lifetime ordinal (1-based) of this record
  std::string query;      ///< canonical query text
  double wall_ms = 0.0;
  uint64_t generation = 0;  ///< XKG generation that served it
  bool answer_hit = false;  ///< served from the answer cache
  bool deadline_hit = false;
  /// Execution-ordered plan, rendered "p2(est=5 pulled=3) ..." (empty
  /// for cache hits and planless runs).
  std::string plan;
  /// The uniform request counter set (same keys as a traced response).
  std::vector<std::pair<std::string, double>> counters;
  TraceSpan span;  ///< full span tree of the request
};

class SlowQueryLog {
 public:
  /// `threshold_ms <= 0` or `capacity == 0` disables the log.
  SlowQueryLog(double threshold_ms, size_t capacity)
      : threshold_ms_(threshold_ms), capacity_(capacity) {}
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool enabled() const { return threshold_ms_ > 0.0 && capacity_ > 0; }
  double threshold_ms() const { return threshold_ms_; }
  size_t capacity() const { return capacity_; }

  /// The fast-path gate: true iff this wall time must be recorded.
  bool ShouldRecord(double wall_ms) const {
    return enabled() && wall_ms >= threshold_ms_;
  }

  /// Appends (stamping `record.sequence`), overwriting the oldest entry
  /// once the ring is full.
  void Record(SlowQueryRecord record);

  /// Current contents, oldest first. Size never exceeds `capacity()`.
  std::vector<SlowQueryRecord> Entries() const;

  /// Lifetime number of records ever written (>= Entries().size()).
  uint64_t total_recorded() const;

 private:
  const double threshold_ms_;
  const size_t capacity_;

  mutable Mutex mu_;
  /// Ring storage: grows to `capacity_` then wraps at `next_`.
  std::vector<SlowQueryRecord> ring_ TRINIT_GUARDED_BY(mu_);
  size_t next_ TRINIT_GUARDED_BY(mu_) = 0;
  uint64_t total_ TRINIT_GUARDED_BY(mu_) = 0;
};

}  // namespace trinit::obs

#endif  // TRINIT_OBS_SLOW_QUERY_LOG_H_
