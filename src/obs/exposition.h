#ifndef TRINIT_OBS_EXPOSITION_H_
#define TRINIT_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"

/// Wire renderings of a `MetricsSnapshot` (PR 10): the Prometheus text
/// exposition format (scraped by ci.sh through tools/promcheck.py and
/// printed by trinit_shell's `.metrics prom`) and a JSON object for
/// programmatic consumers (`.metrics json`). Both are pure functions of
/// the snapshot — rendering never touches the live registry.
namespace trinit::obs {

/// Prometheus text format, version 0.0.4:
///
///   # HELP trinit_engine_requests_total Requests executed.
///   # TYPE trinit_engine_requests_total counter
///   trinit_engine_requests_total 42
///
/// Histograms emit cumulative `_bucket{le="..."}` series (ending in
/// le="+Inf"), `_sum`, and `_count`.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// JSON: {"metrics":[{"name":...,"kind":"counter","help":...,
/// "value":N} | {..."kind":"histogram","count":N,"sum":N,
/// "buckets":[{"le":N|"+Inf","count":N}...]}]}
std::string RenderJson(const MetricsSnapshot& snapshot);

}  // namespace trinit::obs

#endif  // TRINIT_OBS_EXPOSITION_H_
