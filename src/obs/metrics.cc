#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

namespace trinit::obs {
namespace internal {

size_t StripeIndex() {
  // One hash per thread lifetime; the mask assumes kCounterStripes is a
  // power of two.
  static_assert((kCounterStripes & (kCounterStripes - 1)) == 0);
  thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kCounterStripes - 1);
  return stripe;
}

void AddToDoubleBits(std::atomic<uint64_t>& cell, double delta) {
  uint64_t observed = cell.load(std::memory_order_relaxed);
  while (true) {
    const double current = std::bit_cast<double>(observed);
    const uint64_t desired = std::bit_cast<uint64_t>(current + delta);
    if (cell.compare_exchange_weak(observed, desired,
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace internal

uint64_t Counter::Value() const {
  if (cells_ == nullptr) return 0;
  uint64_t total = 0;
  for (const auto& stripe : cells_->stripes) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::UpdateMax(int64_t candidate) const {
#ifndef TRINIT_OBS_COMPILED_OUT
  if (cell_ == nullptr) return;
  int64_t observed = cell_->value.load(std::memory_order_relaxed);
  while (observed < candidate &&
         !cell_->value.compare_exchange_weak(observed, candidate,
                                             std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
#else
  (void)candidate;
#endif
}

int64_t Gauge::Value() const {
  return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
}

void Histogram::Observe(double value) const {
#ifndef TRINIT_OBS_COMPILED_OUT
  if (cells_ == nullptr) return;
  // First bound >= value; everything past the last bound lands in the
  // +Inf bucket at index bounds.size().
  const auto it = std::lower_bound(cells_->bounds.begin(),
                                   cells_->bounds.end(), value);
  const size_t bucket = static_cast<size_t>(it - cells_->bounds.begin());
  cells_->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cells_->count.fetch_add(1, std::memory_order_relaxed);
  internal::AddToDoubleBits(cells_->sum_bits, value);
#else
  (void)value;
#endif
}

double MetricsSnapshot::Metric::Quantile(double q) const {
  if (kind != MetricKind::kHistogram || count == 0 || buckets.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t previous_cumulative = 0;
  double previous_bound = 0.0;
  for (const Bucket& bucket : buckets) {
    if (static_cast<double>(bucket.count) >= rank && bucket.count > 0) {
      if (std::isinf(bucket.le)) {
        // Unbounded tail: the largest finite bound is the best honest
        // answer (matches Prometheus' histogram_quantile convention).
        return previous_bound;
      }
      const uint64_t in_bucket = bucket.count - previous_cumulative;
      if (in_bucket == 0) return bucket.le;
      const double fraction =
          (rank - static_cast<double>(previous_cumulative)) /
          static_cast<double>(in_bucket);
      return previous_bound +
             (bucket.le - previous_bound) * std::clamp(fraction, 0.0, 1.0);
    }
    previous_cumulative = bucket.count;
    if (!std::isinf(bucket.le)) previous_bound = bucket.le;
  }
  return previous_bound;
}

const MetricsSnapshot::Metric* MetricsSnapshot::Find(
    std::string_view name) const {
  for (const Metric& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

MetricsRegistry::Def& MetricsRegistry::DefFor(const std::string& name,
                                              const std::string& help,
                                              MetricKind kind) {
  if (const auto it = index_.find(name); it != index_.end()) {
    Def& def = *defs_[it->second];
    // Kind mismatch on re-registration is a programming error; keep the
    // original def so the first registration's handles stay valid.
    return def;
  }
  auto def = std::make_unique<Def>();
  def->name = name;
  def->help = help;
  def->kind = kind;
  index_.emplace(name, defs_.size());
  defs_.push_back(std::move(def));
  return *defs_.back();
}

Counter MetricsRegistry::RegisterCounter(const std::string& name,
                                         const std::string& help) {
  MutexLock lock(mu_);
  Def& def = DefFor(name, help, MetricKind::kCounter);
  if (def.kind != MetricKind::kCounter) return Counter();
  if (def.counter == nullptr) {
    def.counter = std::make_unique<internal::CounterCells>();
  }
  return Counter(def.counter.get());
}

Gauge MetricsRegistry::RegisterGauge(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  Def& def = DefFor(name, help, MetricKind::kGauge);
  if (def.kind != MetricKind::kGauge) return Gauge();
  if (def.gauge == nullptr) {
    def.gauge = std::make_unique<internal::GaugeCell>();
  }
  return Gauge(def.gauge.get());
}

Histogram MetricsRegistry::RegisterHistogram(const std::string& name,
                                             const std::string& help,
                                             std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  MutexLock lock(mu_);
  Def& def = DefFor(name, help, MetricKind::kHistogram);
  if (def.kind != MetricKind::kHistogram) return Histogram();
  if (def.histogram == nullptr) {
    def.histogram = std::make_unique<internal::HistogramCells>();
    def.histogram->bounds = std::move(bounds);
    def.histogram->buckets = std::make_unique<std::atomic<uint64_t>[]>(
        def.histogram->bounds.size() + 1);
  }
  return Histogram(def.histogram.get());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(defs_.size());
  for (const auto& def : defs_) {
    MetricsSnapshot::Metric metric;
    metric.name = def->name;
    metric.help = def->help;
    metric.kind = def->kind;
    switch (def->kind) {
      case MetricKind::kCounter:
        metric.value = static_cast<double>(Counter(def->counter.get()).Value());
        break;
      case MetricKind::kGauge:
        metric.value = static_cast<double>(Gauge(def->gauge.get()).Value());
        break;
      case MetricKind::kHistogram: {
        const internal::HistogramCells& cells = *def->histogram;
        metric.count = cells.count.load(std::memory_order_relaxed);
        metric.sum = std::bit_cast<double>(
            cells.sum_bits.load(std::memory_order_relaxed));
        uint64_t cumulative = 0;
        metric.buckets.reserve(cells.bounds.size() + 1);
        for (size_t i = 0; i <= cells.bounds.size(); ++i) {
          cumulative += cells.buckets[i].load(std::memory_order_relaxed);
          MetricsSnapshot::Bucket bucket;
          bucket.le = i < cells.bounds.size()
                          ? cells.bounds[i]
                          : std::numeric_limits<double>::infinity();
          bucket.count = cumulative;
          metric.buckets.push_back(bucket);
        }
        // Concurrent observers may have bumped a bucket between our
        // count read and the bucket walk; report a count that is never
        // below the cumulative total so `_count >= last bucket` holds.
        metric.count = std::max(metric.count, cumulative);
        break;
      }
    }
    snapshot.metrics.push_back(std::move(metric));
  }
  return snapshot;
}

size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return defs_.size();
}

}  // namespace trinit::obs
