#include "suggest/suggester.h"

#include <algorithm>
#include <set>

#include "text/phrase.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace trinit::suggest {

Suggester::Suggester(const xkg::Xkg& xkg, Options options)
    : xkg_(&xkg), options_(options) {
  xkg.dict().ForEach([this, &xkg](rdf::TermId id) {
    if (xkg.dict().kind(id) != rdf::TermKind::kResource) return;
    for (const std::string& w :
         text::PhraseTokens(xkg.dict().label(id))) {
      if (!text::Tokenizer::IsStopword(w)) {
        resource_words_[w].push_back(id);
      }
    }
  });
}

void Suggester::SuggestForTokenPredicate(
    const query::Term& term, std::vector<Suggestion>* out) const {
  rdf::TermId token = term.id != rdf::kNullTerm
                          ? term.id
                          : xkg_->dict().Find(rdf::TermKind::kToken,
                                              term.text);
  if (token == rdf::kNullTerm) return;
  const auto& stats = xkg_->stats();
  const auto& token_args = stats.Args(token);
  if (token_args.empty()) return;

  for (rdf::TermId p : stats.predicates()) {
    if (p == token) continue;
    if (xkg_->dict().kind(p) != rdf::TermKind::kResource) continue;
    size_t overlap = stats.ArgsOverlap(token, p);
    double share =
        static_cast<double>(overlap) / static_cast<double>(token_args.size());
    if (share < options_.min_predicate_overlap) continue;
    Suggestion s;
    s.kind = Suggestion::Kind::kTokenPredicateToResource;
    s.replacement = std::string(xkg_->dict().label(p));
    s.score = share;
    s.message = "matches of '" + term.text +
                "' overlap the KG predicate `" + s.replacement + "` (" +
                FormatDouble(100 * share, 0) +
                "% of its argument pairs); consider using it in future "
                "queries";
    out->push_back(std::move(s));
  }
}

void Suggester::SuggestForTokenEntity(const query::Term& term,
                                      std::vector<Suggestion>* out) const {
  // Candidate resources sharing a label word with the phrase.
  std::set<rdf::TermId> candidates;
  for (const std::string& w : text::ContentTokens(term.text)) {
    auto it = resource_words_.find(w);
    if (it == resource_words_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  for (rdf::TermId id : candidates) {
    double sim = text::JaccardSimilarity(
        text::ContentTokens(term.text),
        text::ContentTokens(text::NormalizePhrase(
            std::string(xkg_->dict().label(id)))));
    if (sim < options_.min_entity_similarity) continue;
    Suggestion s;
    s.kind = Suggestion::Kind::kTokenEntityToResource;
    s.replacement = std::string(xkg_->dict().label(id));
    s.score = sim;
    s.message = "'" + term.text + "' closely matches the KG resource `" +
                s.replacement + "`; using the canonical resource enables "
                "exact joins";
    out->push_back(std::move(s));
  }
}

void Suggester::SuggestRuleFeedback(
    const std::vector<topk::Answer>& answers,
    std::vector<Suggestion>* out) const {
  std::set<std::string> seen;
  for (const topk::Answer& answer : answers) {
    for (const topk::DerivationStep& step : answer.derivation) {
      for (const relax::Rule* rule : step.rules) {
        if (!seen.insert(rule->name).second) continue;
        Suggestion s;
        s.kind = Suggestion::Kind::kRuleFeedback;
        s.replacement = rule->name;
        s.score = rule->weight;
        s.message = "relaxation rule `" + rule->name + "` (" +
                    rule->ToString() +
                    ") contributed answers; the KG models this "
                    "information differently than your query assumed";
        out->push_back(std::move(s));
      }
    }
  }
}

std::vector<Suggestion> Suggester::Suggest(
    const query::Query& query,
    const std::vector<topk::Answer>& answers) const {
  std::vector<Suggestion> out;
  for (const query::TriplePattern& pattern : query.patterns()) {
    if (pattern.p.kind == query::Term::Kind::kToken) {
      SuggestForTokenPredicate(pattern.p, &out);
    }
    for (const query::Term* slot : {&pattern.s, &pattern.o}) {
      if (slot->kind == query::Term::Kind::kToken) {
        SuggestForTokenEntity(*slot, &out);
      }
    }
  }
  SuggestRuleFeedback(answers, &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     return a.score > b.score;
                   });
  if (out.size() > options_.max_suggestions) {
    out.resize(options_.max_suggestions);
  }
  return out;
}

}  // namespace trinit::suggest
