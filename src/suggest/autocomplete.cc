#include "suggest/autocomplete.h"

#include <algorithm>
#include <set>

#include "text/phrase.h"
#include "util/string_util.h"

namespace trinit::suggest {
namespace {

double OccurrenceScore(const xkg::Xkg& xkg, rdf::TermId term) {
  const rdf::TripleStore& store = xkg.store();
  size_t n = store.Match(term, rdf::kNullTerm, rdf::kNullTerm).size() +
             store.Match(rdf::kNullTerm, term, rdf::kNullTerm).size() +
             store.Match(rdf::kNullTerm, rdf::kNullTerm, term).size();
  return static_cast<double>(n);
}

std::string Render(const rdf::Dictionary& dict, rdf::TermId term) {
  return dict.DebugLabel(term);
}

}  // namespace

Autocomplete::Autocomplete(const xkg::Xkg& xkg) : xkg_(&xkg) {
  const rdf::Dictionary& dict = xkg.dict();
  dict.ForEach([this, &dict](rdf::TermId id) {
    // Index by full lower-cased label and by each word of it, so both
    // "princ" -> PrincetonUniversity and "univ" -> University_of_X work.
    std::string lowered = ToLower(dict.label(id));
    std::set<std::string> words;
    words.insert(lowered);
    for (const std::string& w : text::PhraseTokens(lowered)) {
      words.insert(w);
    }
    for (const std::string& w : words) {
      entries_.push_back(Entry{w, id});
    }
  });
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.word != b.word) return a.word < b.word;
              return a.term < b.term;
            });
}

std::vector<Completion> Autocomplete::CompleteImpl(
    std::string_view prefix, size_t limit, bool predicates_only) const {
  std::string needle = ToLower(prefix);
  if (needle.empty()) return {};

  auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), needle,
      [](const Entry& e, const std::string& p) { return e.word < p; });

  std::set<rdf::TermId> seen;
  std::vector<Completion> out;
  for (auto it = begin; it != entries_.end(); ++it) {
    if (!StartsWith(it->word, needle)) break;
    if (!seen.insert(it->term).second) continue;
    if (predicates_only &&
        xkg_->stats().ForPredicate(it->term) == nullptr) {
      continue;
    }
    Completion c;
    c.term = it->term;
    c.kind = xkg_->dict().kind(it->term);
    c.text = Render(xkg_->dict(), it->term);
    c.score = OccurrenceScore(*xkg_, it->term);
    out.push_back(std::move(c));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Completion& a, const Completion& b) {
                     return a.score > b.score;
                   });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<Completion> Autocomplete::Complete(std::string_view prefix,
                                               size_t limit) const {
  return CompleteImpl(prefix, limit, /*predicates_only=*/false);
}

std::vector<Completion> Autocomplete::CompletePredicate(
    std::string_view prefix, size_t limit) const {
  return CompleteImpl(prefix, limit, /*predicates_only=*/true);
}

}  // namespace trinit::suggest
