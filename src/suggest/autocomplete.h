#ifndef TRINIT_SUGGEST_AUTOCOMPLETE_H_
#define TRINIT_SUGGEST_AUTOCOMPLETE_H_

#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/graph_stats.h"
#include "xkg/xkg.h"

namespace trinit::suggest {

/// One completion candidate.
struct Completion {
  rdf::TermId term = rdf::kNullTerm;
  std::string text;      ///< query-syntax rendering (tokens quoted)
  rdf::TermKind kind = rdf::TermKind::kResource;
  double score = 0.0;    ///< popularity (occurrence count in the XKG)
};

/// Prefix completion over the XKG vocabulary — "user input is eased by
/// auto-completion, guiding users towards meaningful query
/// formulations" (paper §5).
///
/// Terms are indexed case-insensitively by every word they contain
/// ("Princeton" completes to `PrincetonUniversity` and to
/// `University_of_Princeton` alike), and ranked by how often they occur
/// in the XKG — popular vocabulary first, exactly what a user groping
/// for labels needs.
class Autocomplete {
 public:
  /// Builds the index over `xkg`'s dictionary and statistics.
  explicit Autocomplete(const xkg::Xkg& xkg);

  /// Completions whose label (or any word of it) starts with `prefix`
  /// (case-insensitive), best-first, at most `limit`.
  std::vector<Completion> Complete(std::string_view prefix,
                                   size_t limit = 10) const;

  /// Completions restricted to terms that occur as predicates — for the
  /// P field of the query interface.
  std::vector<Completion> CompletePredicate(std::string_view prefix,
                                            size_t limit = 10) const;

  size_t indexed_terms() const { return entries_.size(); }

 private:
  struct Entry {
    std::string word;  ///< lower-cased index word
    rdf::TermId term;
  };

  std::vector<Completion> CompleteImpl(std::string_view prefix,
                                       size_t limit,
                                       bool predicates_only) const;

  const xkg::Xkg* xkg_;
  std::vector<Entry> entries_;  ///< sorted by word for prefix ranges
};

}  // namespace trinit::suggest

#endif  // TRINIT_SUGGEST_AUTOCOMPLETE_H_
