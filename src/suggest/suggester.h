#ifndef TRINIT_SUGGEST_SUGGESTER_H_
#define TRINIT_SUGGEST_SUGGESTER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "topk/answer.h"
#include "xkg/xkg.h"

namespace trinit::suggest {

/// One query-reformulation suggestion (paper §5, "Query Suggestion").
struct Suggestion {
  enum class Kind {
    /// A token predicate's matches overlap a canonical KG predicate's
    /// matches: "consider predicate `affiliation` instead of 'works
    /// at'".
    kTokenPredicateToResource,
    /// A token entity phrase strongly resembles a KG resource label:
    /// "consider resource `PrincetonUniversity` instead of
    /// 'princeton'".
    kTokenEntityToResource,
    /// A relaxation rule contributed answers: tell the user so they
    /// learn the KG's structure ("a predicate inversion rule was
    /// invoked").
    kRuleFeedback,
  };

  Kind kind = Kind::kRuleFeedback;
  std::string message;       ///< human-readable suggestion
  std::string replacement;   ///< suggested term/predicate label, if any
  double score = 0.0;        ///< confidence/overlap strength
};

/// Computes suggestions from the query and its answers, following the
/// paper: "when TriniT determines that matches for these tokens have a
/// significant overlap with matches for highly related KG resources ...
/// these resources are suggested to the user for use in future
/// queries"; "when a structural relaxation rule ... contributes to the
/// final answer set, TriniT informs the user".
class Suggester {
 public:
  struct Options {
    double min_predicate_overlap = 0.2;  ///< args-overlap share needed
    double min_entity_similarity = 0.5;  ///< label similarity needed
    size_t max_suggestions = 8;
  };

  explicit Suggester(const xkg::Xkg& xkg) : Suggester(xkg, Options()) {}
  Suggester(const xkg::Xkg& xkg, Options options);

  std::vector<Suggestion> Suggest(
      const query::Query& query,
      const std::vector<topk::Answer>& answers) const;

 private:
  void SuggestForTokenPredicate(const query::Term& term,
                                std::vector<Suggestion>* out) const;
  void SuggestForTokenEntity(const query::Term& term,
                             std::vector<Suggestion>* out) const;
  void SuggestRuleFeedback(const std::vector<topk::Answer>& answers,
                           std::vector<Suggestion>* out) const;

  const xkg::Xkg* xkg_;
  Options options_;
  // Inverted index over resource-label words, for entity suggestions.
  std::unordered_map<std::string, std::vector<rdf::TermId>>
      resource_words_;
};

}  // namespace trinit::suggest

#endif  // TRINIT_SUGGEST_SUGGESTER_H_
