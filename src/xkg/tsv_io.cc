#include "xkg/tsv_io.h"

#include <cstdlib>

#include "util/string_util.h"
#include "util/tsv.h"
#include "xkg/xkg_builder.h"

namespace trinit::xkg {
namespace {

std::string EncodeTerm(const rdf::Dictionary& dict, rdf::TermId id) {
  switch (dict.kind(id)) {
    case rdf::TermKind::kResource:
      return "R:" + std::string(dict.label(id));
    case rdf::TermKind::kToken:
      return "K:" + std::string(dict.label(id));
    case rdf::TermKind::kLiteral:
      return "L:" + std::string(dict.label(id));
  }
  return "?:";
}

Result<rdf::TermId> DecodeTerm(rdf::Dictionary& dict, const std::string& enc,
                               size_t line) {
  if (enc.size() < 2 || enc[1] != ':') {
    return Status::ParseError("line " + std::to_string(line) +
                              ": bad term encoding '" + enc + "'");
  }
  std::string_view label(enc);
  label.remove_prefix(2);
  switch (enc[0]) {
    case 'R':
      return dict.InternResource(label);
    case 'K':
      return dict.InternToken(label);
    case 'L':
      return dict.InternLiteral(label);
    default:
      return Status::ParseError("line " + std::to_string(line) +
                                ": unknown term kind '" + enc.substr(0, 1) +
                                "'");
  }
}

struct PendingTriple {
  rdf::TermId s = rdf::kNullTerm, p = rdf::kNullTerm, o = rdf::kNullTerm;
  float confidence = 1.0f;
  uint32_t count = 1;
  bool valid = false;
  std::vector<Provenance> provenance;
};

Result<Xkg> LoadImpl(
    const std::function<Status(
        const std::function<Status(size_t, const std::vector<std::string>&)>&)>&
        source) {
  XkgBuilder builder;
  PendingTriple pending;

  auto flush = [&builder](PendingTriple& t) {
    if (!t.valid) return;
    if (t.provenance.empty()) {
      // KG fact; `count` copies collapse in the store anyway.
      builder.AddKgFact(t.s, t.p, t.o);
    } else {
      for (Provenance& prov : t.provenance) {
        builder.AddExtraction(t.s, t.p, t.o, t.confidence, std::move(prov));
      }
    }
    t = PendingTriple{};
  };

  Status st = source([&](size_t line, const std::vector<std::string>& f)
                         -> Status {
    if (f.empty()) return Status::Ok();
    if (f[0] == "T") {
      flush(pending);
      if (f.size() < 4) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": T row needs s, p, o");
      }
      TRINIT_ASSIGN_OR_RETURN(pending.s,
                              DecodeTerm(builder.dict(), f[1], line));
      TRINIT_ASSIGN_OR_RETURN(pending.p,
                              DecodeTerm(builder.dict(), f[2], line));
      TRINIT_ASSIGN_OR_RETURN(pending.o,
                              DecodeTerm(builder.dict(), f[3], line));
      pending.confidence =
          f.size() > 4 ? static_cast<float>(std::atof(f[4].c_str())) : 1.0f;
      pending.count = f.size() > 5
                          ? static_cast<uint32_t>(std::atoll(f[5].c_str()))
                          : 1;
      pending.valid = true;
      return Status::Ok();
    }
    if (f[0] == "P") {
      if (!pending.valid) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": P row without preceding T row");
      }
      if (f.size() < 5) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": P row needs doc, sentence_idx, conf, "
                                  "sentence");
      }
      Provenance prov;
      prov.doc_id = static_cast<uint32_t>(std::atoll(f[1].c_str()));
      prov.sentence_idx = static_cast<uint32_t>(std::atoll(f[2].c_str()));
      prov.extraction_confidence = std::atof(f[3].c_str());
      prov.sentence = f[4];
      pending.provenance.push_back(std::move(prov));
      return Status::Ok();
    }
    return Status::ParseError("line " + std::to_string(line) +
                              ": unknown row tag '" + f[0] + "'");
  });
  TRINIT_RETURN_IF_ERROR(st);
  flush(pending);
  return builder.Build();
}

}  // namespace

Status XkgTsv::Save(const Xkg& xkg, const std::string& path) {
  TsvWriter writer(path);
  TRINIT_RETURN_IF_ERROR(writer.status());
  writer.WriteComment("TriniT XKG dump");
  writer.WriteComment(
      "triples: " + std::to_string(xkg.store().size()) + " (kg " +
      std::to_string(xkg.kg_triple_count()) + ", extraction " +
      std::to_string(xkg.extraction_triple_count()) + ")");
  const rdf::Dictionary& dict = xkg.dict();
  for (rdf::TripleId id = 0; id < xkg.store().size(); ++id) {
    const rdf::Triple& t = xkg.store().triple(id);
    writer.WriteRow({"T", EncodeTerm(dict, t.s), EncodeTerm(dict, t.p),
                     EncodeTerm(dict, t.o),
                     FormatDouble(t.confidence, 6),
                     std::to_string(t.count)});
    for (const Provenance& prov : xkg.ProvenanceFor(id)) {
      writer.WriteRow({"P", std::to_string(prov.doc_id),
                       std::to_string(prov.sentence_idx),
                       FormatDouble(prov.extraction_confidence, 6),
                       prov.sentence});
    }
  }
  return writer.Close();
}

Result<Xkg> XkgTsv::Load(const std::string& path) {
  return LoadImpl([&path](const auto& row_fn) {
    return TsvReader::ForEachRow(path, row_fn);
  });
}

Result<Xkg> XkgTsv::LoadFromString(const std::string& content) {
  return LoadImpl([&content](const auto& row_fn) {
    return TsvReader::ForEachRowInString(content, row_fn);
  });
}

}  // namespace trinit::xkg
