#ifndef TRINIT_XKG_XKG_BUILDER_H_
#define TRINIT_XKG_XKG_BUILDER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rdf/dictionary.h"
#include "util/result.h"
#include "xkg/xkg.h"

namespace trinit::xkg {

/// Accumulates curated KG facts and Open IE extraction triples, then
/// freezes them into an immutable `Xkg` (dictionary, 6-permutation triple
/// index plus score-ordered posting lists per pattern shape — the lazy
/// top-k access path, see `rdf::ScoreOrderIndex` — graph statistics,
/// phrase index, provenance store).
class XkgBuilder {
 public:
  XkgBuilder();

  XkgBuilder(const XkgBuilder&) = delete;
  XkgBuilder& operator=(const XkgBuilder&) = delete;
  XkgBuilder(XkgBuilder&&) = default;
  XkgBuilder& operator=(XkgBuilder&&) = default;

  /// Seeds a builder with every triple (and provenance record) of an
  /// existing XKG, so the graph can be *extended* and rebuilt — the
  /// demo's "allows users to extend the KG to make up for missing
  /// knowledge" (paper §1). Rebuilding is O(n log n); the store itself
  /// stays immutable.
  static XkgBuilder FromXkg(const Xkg& xkg);

  /// Dictionary being populated; callers may intern terms directly (the
  /// synthetic generators do) as long as they do it before Build().
  rdf::Dictionary& dict() { return *dict_; }

  /// Adds a curated KG fact. Labels are interned as resources, except
  /// that `object_literal=true` interns the object as a literal.
  void AddKgFact(std::string_view s, std::string_view p, std::string_view o,
                 bool object_literal = false);

  /// Adds a curated KG fact from already-interned ids.
  void AddKgFact(rdf::TermId s, rdf::TermId p, rdf::TermId o);

  /// Adds one extraction-layer triple with provenance. Slots may be any
  /// mix of resources and token terms (ids must already be interned).
  void AddExtraction(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                     float confidence, Provenance provenance);

  /// Convenience overload interning S/O as resources when `s_is_entity` /
  /// `o_is_entity`, as normalized tokens otherwise; P is interned as a
  /// normalized token.
  void AddExtraction(std::string_view s, bool s_is_entity,
                     std::string_view p, std::string_view o, bool o_is_entity,
                     float confidence, Provenance provenance);

  size_t pending_kg() const { return kg_pending_; }
  size_t pending_extractions() const { return provenance_pending_.size(); }

  /// Freezes everything into an `Xkg`. The builder must not be reused.
  Result<Xkg> Build();

 private:
  std::unique_ptr<rdf::Dictionary> dict_;
  rdf::TripleStoreBuilder store_builder_;
  // Extraction provenance, resolved to triple ids at Build time.
  std::vector<std::pair<rdf::Triple, Provenance>> provenance_pending_;
  size_t kg_pending_ = 0;
  uint32_t next_source_ = 1;  // 0 is kKgSource
};

}  // namespace trinit::xkg

#endif  // TRINIT_XKG_XKG_BUILDER_H_
