#include "xkg/xkg.h"

#include <utility>

namespace trinit::xkg {

Result<Xkg> Xkg::FromParts(std::unique_ptr<rdf::Dictionary> dict,
                           rdf::TripleStore store, rdf::GraphStats stats,
                           size_t kg_triple_count, ProvenanceMap provenance) {
  if (dict == nullptr) {
    return Status::InvalidArgument("FromParts: null dictionary");
  }
  if (kg_triple_count > store.size()) {
    return Status::InvalidArgument("snapshot kg_triple_count " +
                                   std::to_string(kg_triple_count) +
                                   " exceeds triple count " +
                                   std::to_string(store.size()));
  }
  for (const rdf::Triple& t : store.triples()) {
    if (!dict->Contains(t.s) || !dict->Contains(t.p) || !dict->Contains(t.o)) {
      return Status::InvalidArgument(
          "snapshot triple references a term id outside the dictionary");
    }
  }
  for (const auto& [id, records] : provenance) {
    if (id >= store.size()) {
      return Status::InvalidArgument(
          "snapshot provenance references triple id out of range");
    }
    if (records.empty()) {
      return Status::InvalidArgument(
          "snapshot provenance entry with no records");
    }
  }
  Xkg xkg;
  xkg.dict_ = std::move(dict);
  xkg.store_ = std::move(store);
  xkg.stats_ = std::make_unique<rdf::GraphStats>(std::move(stats));
  xkg.phrase_index_ =
      std::make_unique<text::PhraseIndex>(text::PhraseIndex::Build(*xkg.dict_));
  xkg.provenance_ = std::move(provenance);
  xkg.kg_triple_count_ = kg_triple_count;
  return xkg;
}

Result<Xkg> Xkg::FromPartsLazyProvenance(
    std::unique_ptr<rdf::Dictionary> dict, rdf::TripleStore store,
    rdf::GraphStats stats, size_t kg_triple_count,
    std::function<Result<ProvenanceMap>()> loader) {
  if (loader == nullptr) {
    return Status::InvalidArgument("FromPartsLazyProvenance: null loader");
  }
  auto xkg = FromParts(std::move(dict), std::move(store), std::move(stats),
                       kg_triple_count, {});
  if (!xkg.ok()) return xkg;
  auto lazy = std::make_unique<LazyProvenance>();
  lazy->loader = std::move(loader);
  xkg.value().lazy_provenance_ = std::move(lazy);
  return xkg;
}

void Xkg::InstallSharding(size_t shard_count) {
  if (shard_count <= 1) {
    sharded_.reset();
    return;
  }
  sharded_ = std::make_unique<rdf::ShardedStore>(
      rdf::ShardedStore::Build(store_, shard_count));
  // The planner consumes merged per-shard stats from here on. The merge
  // is bit-identical to GraphStats::Compute over the whole store
  // (property-tested), so plans do not change with the shard count.
  stats_ = std::make_unique<rdf::GraphStats>(sharded_->MergedStats());
}

const Xkg::ProvenanceMap& Xkg::DecodedProvenance() const {
  if (lazy_provenance_ == nullptr) return provenance_;
  LazyProvenance* lazy = lazy_provenance_.get();
  std::call_once(lazy->once, [lazy] {
    auto decoded = lazy->loader();
    if (decoded.ok()) {
      lazy->map = std::move(decoded).value();
    } else {
      lazy->status = decoded.status();
    }
    lazy->loader = nullptr;  // release captured backing references
  });
  return lazy->map;
}

Status Xkg::provenance_status() const {
  DecodedProvenance();
  return lazy_provenance_ == nullptr ? Status::Ok() : lazy_provenance_->status;
}

const std::vector<Provenance>& Xkg::ProvenanceFor(rdf::TripleId id) const {
  const ProvenanceMap& map = DecodedProvenance();
  auto it = map.find(id);
  return it == map.end() ? empty_provenance_ : it->second;
}

std::string Xkg::RenderTriple(rdf::TripleId id) const {
  const rdf::Triple& t = store_.triple(id);
  return dict_->DebugLabel(t.s) + " --" + dict_->DebugLabel(t.p) + "--> " +
         dict_->DebugLabel(t.o);
}

}  // namespace trinit::xkg
