#include "xkg/xkg.h"

#include <utility>

namespace trinit::xkg {

Result<Xkg> Xkg::FromParts(
    std::unique_ptr<rdf::Dictionary> dict, rdf::TripleStore store,
    rdf::GraphStats stats, size_t kg_triple_count,
    std::unordered_map<rdf::TripleId, std::vector<Provenance>> provenance) {
  if (dict == nullptr) {
    return Status::InvalidArgument("FromParts: null dictionary");
  }
  if (kg_triple_count > store.size()) {
    return Status::InvalidArgument("snapshot kg_triple_count " +
                                   std::to_string(kg_triple_count) +
                                   " exceeds triple count " +
                                   std::to_string(store.size()));
  }
  for (const rdf::Triple& t : store.triples()) {
    if (!dict->Contains(t.s) || !dict->Contains(t.p) || !dict->Contains(t.o)) {
      return Status::InvalidArgument(
          "snapshot triple references a term id outside the dictionary");
    }
  }
  for (const auto& [id, records] : provenance) {
    if (id >= store.size()) {
      return Status::InvalidArgument(
          "snapshot provenance references triple id out of range");
    }
    if (records.empty()) {
      return Status::InvalidArgument(
          "snapshot provenance entry with no records");
    }
  }
  Xkg xkg;
  xkg.dict_ = std::move(dict);
  xkg.store_ = std::move(store);
  xkg.stats_ = std::make_unique<rdf::GraphStats>(std::move(stats));
  xkg.phrase_index_ =
      std::make_unique<text::PhraseIndex>(text::PhraseIndex::Build(*xkg.dict_));
  xkg.provenance_ = std::move(provenance);
  xkg.kg_triple_count_ = kg_triple_count;
  return xkg;
}

const std::vector<Provenance>& Xkg::ProvenanceFor(rdf::TripleId id) const {
  auto it = provenance_.find(id);
  return it == provenance_.end() ? empty_provenance_ : it->second;
}

std::string Xkg::RenderTriple(rdf::TripleId id) const {
  const rdf::Triple& t = store_.triple(id);
  return dict_->DebugLabel(t.s) + " --" + dict_->DebugLabel(t.p) + "--> " +
         dict_->DebugLabel(t.o);
}

}  // namespace trinit::xkg
