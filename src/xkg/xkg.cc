#include "xkg/xkg.h"

namespace trinit::xkg {

const std::vector<Provenance>& Xkg::ProvenanceFor(rdf::TripleId id) const {
  auto it = provenance_.find(id);
  return it == provenance_.end() ? empty_provenance_ : it->second;
}

std::string Xkg::RenderTriple(rdf::TripleId id) const {
  const rdf::Triple& t = store_.triple(id);
  return dict_->DebugLabel(t.s) + " --" + dict_->DebugLabel(t.p) + "--> " +
         dict_->DebugLabel(t.o);
}

}  // namespace trinit::xkg
