#ifndef TRINIT_XKG_XKG_H_
#define TRINIT_XKG_XKG_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/graph_stats.h"
#include "rdf/sharded_store.h"
#include "rdf/triple_store.h"
#include "text/phrase_index.h"

namespace trinit::xkg {

/// Provenance record for one supporting extraction of a triple
/// (paper §5: answer explanation shows "the XKG triples that contributed
/// to an answer and their provenance").
struct Provenance {
  uint32_t doc_id = 0;        ///< document the extraction came from
  uint32_t sentence_idx = 0;  ///< sentence offset within the document
  std::string sentence;       ///< the supporting sentence text
  double extraction_confidence = 1.0;
};

/// The Extended Knowledge Graph: curated KG triples plus Open IE
/// extraction triples, sharing one dictionary and one triple index.
///
/// Immutable once built (see `XkgBuilder`). The paper's instance combined
/// ~50M Yago2s triples with ~390M ClueWeb extractions; ours is built from
/// the synthetic world at configurable scale preserving that ratio.
class Xkg {
 public:
  Xkg(const Xkg&) = delete;
  Xkg& operator=(const Xkg&) = delete;
  Xkg(Xkg&&) = default;
  Xkg& operator=(Xkg&&) = default;

  using ProvenanceMap =
      std::unordered_map<rdf::TripleId, std::vector<Provenance>>;

  /// Reassembles an XKG from snapshot-restored parts — the storage
  /// layer's load path (everything else builds through `XkgBuilder`).
  /// The phrase index is derived data and is rebuilt from `dict` (an
  /// O(tokens) hash build, no sorts); every triple's term ids and every
  /// provenance triple id are bounds-checked so a corrupt snapshot
  /// yields a typed error instead of out-of-range indexing later.
  static Result<Xkg> FromParts(std::unique_ptr<rdf::Dictionary> dict,
                               rdf::TripleStore store, rdf::GraphStats stats,
                               size_t kg_triple_count,
                               ProvenanceMap provenance);

  /// Deferred-provenance variant for the trusted mmap load path:
  /// `loader` decodes the snapshot's PROV section on the first
  /// `ProvenanceFor` call (thread-safe, once) instead of at open time —
  /// provenance is only read by `Explain`, so a replica that never
  /// explains never touches those file bytes. A loader failure (the
  /// deferred decode hit corrupt bytes) makes every triple's provenance
  /// empty rather than failing the query path; the typed error is kept
  /// and exposed through `provenance_status()`.
  static Result<Xkg> FromPartsLazyProvenance(
      std::unique_ptr<rdf::Dictionary> dict, rdf::TripleStore store,
      rdf::GraphStats stats, size_t kg_triple_count,
      std::function<Result<ProvenanceMap>()> loader);

  /// Parks an opaque keepalive that must outlive this XKG's index
  /// views — the storage layer hands over the snapshot file mapping
  /// when index arrays alias it (see docs/CONCURRENCY.md, "Mapping
  /// lifetime"). `ExtendKg` rebuilds into owned vectors and drops the
  /// old XKG, releasing the mapping with it (copy-on-write).
  void AttachBacking(std::shared_ptr<const void> backing) {
    backing_ = std::move(backing);
  }

  /// Ok unless a deferred provenance decode failed (see
  /// `FromPartsLazyProvenance`); triggers the decode.
  Status provenance_status() const;

  const rdf::Dictionary& dict() const { return *dict_; }
  const rdf::TripleStore& store() const { return store_; }
  const rdf::GraphStats& stats() const { return *stats_; }
  const text::PhraseIndex& phrase_index() const { return *phrase_index_; }

  /// The hash-partitioned serving decomposition, or nullptr when the
  /// engine serves unsharded (shard_count <= 1) — the single branch the
  /// query layer takes. When set, `stats()` is the merge of the
  /// per-shard stats (bit-identical to the unsharded compute).
  const rdf::ShardedStore* sharded() const { return sharded_.get(); }

  /// Partitions the store into `shard_count` shards and swaps the
  /// planner-visible stats for the per-shard merge (`<= 1` removes any
  /// existing decomposition instead). Call before serving begins — this
  /// mutates state the `const` query paths read, so the engine invokes
  /// it only under its exclusive state lock (construction, ExtendKg
  /// rebuild).
  void InstallSharding(size_t shard_count);

  /// Installs a snapshot-restored decomposition (the storage load path).
  /// Unlike `InstallSharding` this keeps the persisted global stats the
  /// snapshot already carries — the writer saved the merge, so
  /// re-merging would only redo work.
  void AdoptSharding(rdf::ShardedStore sharded) {
    sharded_ = std::make_unique<rdf::ShardedStore>(std::move(sharded));
  }

  /// Forwards first-touch score-shape sort instrumentation to the
  /// global store and (when sharded) every shard index. Mutates state
  /// the `const` query paths read — like `InstallSharding`, call only
  /// under the engine's exclusive context (construction, ExtendKg
  /// rebuild, after any re-sharding).
  void BindScoreMetrics(obs::Histogram sort_ms, obs::Counter builds) {
    store_.BindScoreMetrics(sort_ms, builds);
    if (sharded_ != nullptr) sharded_->BindScoreMetrics(sort_ms, builds);
  }

  /// True iff the triple has curated-KG provenance.
  bool IsKgTriple(rdf::TripleId id) const {
    return store_.triple(id).source == rdf::kKgSource;
  }

  /// Number of distinct triples with curated-KG provenance.
  size_t kg_triple_count() const { return kg_triple_count_; }

  /// Number of distinct triples that exist only through extraction.
  size_t extraction_triple_count() const {
    return store_.size() - kg_triple_count_;
  }

  /// Supporting extractions of a triple, empty for pure-KG triples.
  const std::vector<Provenance>& ProvenanceFor(rdf::TripleId id) const;

  /// Human-readable one-line rendering "S --P--> O" of a triple.
  std::string RenderTriple(rdf::TripleId id) const;

 private:
  friend class XkgBuilder;
  Xkg() = default;

  /// Deferred PROV-section decode state. Heap-allocated so the
  /// once_flag keeps a stable address across moves of the owning Xkg
  /// (same idiom as ScoreOrderIndex::ShapeIndex); the once_flag itself
  /// is the publication protocol — `map`/`status` are written only
  /// inside the once-body and immutable after, so post-once reads are
  /// wait-free (documented in docs/CONCURRENCY.md, exercised under
  /// `ci.sh --tsan`).
  struct LazyProvenance {
    std::once_flag once;
    std::function<Result<ProvenanceMap>()> loader;
    ProvenanceMap map;
    Status status = Status::Ok();
  };

  /// Runs the deferred decode (at most once) and returns the map.
  const ProvenanceMap& DecodedProvenance() const;

  std::unique_ptr<rdf::Dictionary> dict_;
  rdf::TripleStore store_;
  std::unique_ptr<rdf::GraphStats> stats_;
  std::unique_ptr<rdf::ShardedStore> sharded_;  // null = unsharded
  std::unique_ptr<text::PhraseIndex> phrase_index_;
  ProvenanceMap provenance_;
  std::unique_ptr<LazyProvenance> lazy_provenance_;  // null = eager
  std::vector<Provenance> empty_provenance_;
  // Keepalive for memory the index structures may view (the snapshot
  // mapping); destroyed last-ish by member order, after no views
  // remain reachable. Never dereferenced.
  std::shared_ptr<const void> backing_;
  size_t kg_triple_count_ = 0;
};

}  // namespace trinit::xkg

#endif  // TRINIT_XKG_XKG_H_
