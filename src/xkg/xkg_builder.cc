#include "xkg/xkg_builder.h"

#include "text/phrase.h"
#include "util/logging.h"

namespace trinit::xkg {

XkgBuilder::XkgBuilder() : dict_(std::make_unique<rdf::Dictionary>()) {}

XkgBuilder XkgBuilder::FromXkg(const Xkg& xkg) {
  XkgBuilder builder;
  const rdf::Dictionary& src = xkg.dict();
  // Re-intern every term; ids may shift but labels are authoritative.
  auto reintern = [&builder, &src](rdf::TermId id) {
    return builder.dict_->Intern(src.kind(id), src.label(id));
  };
  for (rdf::TripleId id = 0; id < xkg.store().size(); ++id) {
    const rdf::Triple& t = xkg.store().triple(id);
    rdf::TermId s = reintern(t.s), p = reintern(t.p), o = reintern(t.o);
    const auto& provenance = xkg.ProvenanceFor(id);
    if (xkg.IsKgTriple(id)) {
      builder.AddKgFact(s, p, o);
    }
    for (const Provenance& prov : provenance) {
      builder.AddExtraction(s, p, o, t.confidence, prov);
    }
  }
  return builder;
}

void XkgBuilder::AddKgFact(std::string_view s, std::string_view p,
                           std::string_view o, bool object_literal) {
  rdf::TermId sid = dict_->InternResource(s);
  rdf::TermId pid = dict_->InternResource(p);
  rdf::TermId oid = object_literal ? dict_->InternLiteral(o)
                                   : dict_->InternResource(o);
  AddKgFact(sid, pid, oid);
}

void XkgBuilder::AddKgFact(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
  store_builder_.Add(s, p, o, /*confidence=*/1.0f, /*count=*/1,
                     rdf::kKgSource);
  ++kg_pending_;
}

void XkgBuilder::AddExtraction(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                               float confidence, Provenance provenance) {
  rdf::Triple t{s, p, o, confidence, /*count=*/1, next_source_++};
  store_builder_.Add(t);
  provenance_pending_.emplace_back(t, std::move(provenance));
}

void XkgBuilder::AddExtraction(std::string_view s, bool s_is_entity,
                               std::string_view p, std::string_view o,
                               bool o_is_entity, float confidence,
                               Provenance provenance) {
  rdf::TermId sid = s_is_entity
                        ? dict_->InternResource(s)
                        : dict_->InternToken(text::NormalizePhrase(s));
  rdf::TermId pid = dict_->InternToken(text::NormalizePhrase(p));
  rdf::TermId oid = o_is_entity
                        ? dict_->InternResource(o)
                        : dict_->InternToken(text::NormalizePhrase(o));
  AddExtraction(sid, pid, oid, confidence, std::move(provenance));
}

Result<Xkg> XkgBuilder::Build() {
  Xkg xkg;
  TRINIT_ASSIGN_OR_RETURN(xkg.store_, store_builder_.Build());
  xkg.dict_ = std::move(dict_);

  // Count triples whose best provenance is the curated KG and attach
  // extraction provenance records to their final triple ids.
  for (const rdf::Triple& t : xkg.store_.triples()) {
    if (t.source == rdf::kKgSource) ++xkg.kg_triple_count_;
  }
  for (auto& [triple, prov] : provenance_pending_) {
    rdf::TripleId id = xkg.store_.Find(triple.s, triple.p, triple.o);
    TRINIT_CHECK(id != rdf::kInvalidTriple);
    xkg.provenance_[id].push_back(std::move(prov));
  }
  provenance_pending_.clear();

  xkg.stats_ = std::make_unique<rdf::GraphStats>(
      rdf::GraphStats::Compute(xkg.store_));
  xkg.phrase_index_ = std::make_unique<text::PhraseIndex>(
      text::PhraseIndex::Build(*xkg.dict_));
  return xkg;
}

}  // namespace trinit::xkg
