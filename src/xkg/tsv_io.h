#ifndef TRINIT_XKG_TSV_IO_H_
#define TRINIT_XKG_TSV_IO_H_

#include <string>

#include "util/result.h"
#include "xkg/xkg.h"

namespace trinit::xkg {

/// Serialization of an XKG as a single TSV file, in the spirit of the
/// N-Triples-like TSV dumps Yago2s ships as.
///
/// Row formats (tab-separated):
///   T  <s> <p> <o> <confidence> <count>          -- one per triple
///   P  <doc_id> <sentence_idx> <conf> <sentence>  -- provenance of the
///                                                    preceding T row
/// Terms are encoded with a kind prefix: `R:Label` (resource),
/// `K:token phrase` (token), `L:literal`. A T row with confidence 1 and
/// no preceding provenance is a curated KG fact; rows followed by P rows
/// are extraction triples.
class XkgTsv {
 public:
  /// Writes `xkg` to `path`, overwriting.
  static Status Save(const Xkg& xkg, const std::string& path);

  /// Reads an XKG previously written by Save (or hand-authored).
  static Result<Xkg> Load(const std::string& path);

  /// Parses XKG TSV content from a string (tests, embedded fixtures).
  static Result<Xkg> LoadFromString(const std::string& content);
};

}  // namespace trinit::xkg

#endif  // TRINIT_XKG_TSV_IO_H_
