#ifndef TRINIT_STORAGE_MAPPED_FILE_H_
#define TRINIT_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <span>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace trinit::storage {

/// RAII read-only memory mapping of one file — the zero-copy substrate
/// of `SnapshotReader`'s mmap load mode. The mapping is private and
/// read-only, so N replica processes opening the same snapshot share
/// one physical copy of its clean pages through the page cache.
///
/// Platform story: POSIX `mmap` where available; `Map` returns
/// Unimplemented elsewhere and callers fall back to the copying read
/// path (`Supported()` lets them ask first). The mapping's base
/// address is page-aligned, so the 8-aligned TRNTSNAP section offsets
/// stay 8-aligned in memory.
///
/// Lifetime: spans returned by `bytes()` alias the mapping and die
/// with it. The storage layer parks the MappedFile behind a
/// `shared_ptr` inside the loaded `xkg::Xkg`, so index views cannot
/// outlive their pages (see docs/CONCURRENCY.md, "Mapping lifetime").
/// Truncating the snapshot file on disk while it is mapped is outside
/// the contract (SIGBUS on access, as with any mmap consumer);
/// `SnapshotWriter`'s write-temp-then-rename discipline never
/// truncates a live file in place.
class MappedFile {
 public:
  /// Maps `path` read-only. IoError when the file cannot be opened or
  /// mapped; Unimplemented on platforms without mmap. An empty file
  /// maps successfully to an empty span.
  static Result<MappedFile> Map(const std::string& path);

  /// True when this build has an mmap implementation.
  static bool Supported();

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// The mapped bytes; valid until destruction.
  std::span<const char> bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }

  /// Hints the kernel (posix_madvise WILLNEED) to start readahead on
  /// `[offset, offset + length)`, rounded out to page boundaries.
  /// Purely advisory: returns true when the hint was issued, false on
  /// platforms without madvise or when the kernel declined — callers
  /// must not change behavior on the answer beyond reporting it.
  bool AdviseWillNeed(size_t offset, size_t length) const;

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace trinit::storage

#endif  // TRINIT_STORAGE_MAPPED_FILE_H_
