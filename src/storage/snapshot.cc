#include "storage/snapshot.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/graph_stats.h"
#include "rdf/sharded_store.h"
#include "rdf/triple_store.h"
#include "storage/mapped_file.h"
#include "storage/varint.h"
#include "util/hash.h"
#include "util/owned_span.h"

namespace trinit::storage {
namespace {

// ------------------------------------------------------------- layout

// Section ids (stable across format versions). Every section a version
// defines is present exactly once; the reader rejects files missing any
// of them. SHARDS exists only in v3+ files (an unsharded save carries
// it with a zero shard count, so the per-version count stays fixed).
enum SectionId : uint32_t {
  kMeta = 1,
  kDictionary = 2,
  kTriples = 3,
  kPermutations = 4,
  kScoreShapes = 5,
  kGraphStats = 6,
  kProvenance = 7,
  kRules = 8,
  kShards = 9,
};
constexpr uint32_t NumSectionsFor(uint32_t version) {
  return version >= 3 ? 9 : 8;
}

// Written after the magic; a big-endian reader sees it byte-swapped and
// rejects the file instead of mis-decoding every integer. It also
// guards the mmap view path: raw section records are only aliased in
// place on a machine whose byte order matches the writer's.
constexpr uint32_t kEndianTag = 0x01020304u;

constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4 + 4;  // 32
constexpr size_t kTableEntryBytes = 4 + 4 + 8 + 8 + 8;  // 32

// The raw TRIPLES section is viewed in place as `rdf::Triple` records
// in mapped mode; these assert the in-memory layout matches the wire
// layout (s, p, o, confidence-bits, count, source — 24 bytes).
static_assert(sizeof(rdf::Triple) == 24);
static_assert(std::is_trivially_copyable_v<rdf::Triple>);
static_assert(offsetof(rdf::Triple, s) == 0);
static_assert(offsetof(rdf::Triple, p) == 4);
static_assert(offsetof(rdf::Triple, o) == 8);
static_assert(offsetof(rdf::Triple, confidence) == 12);
static_assert(offsetof(rdf::Triple, count) == 16);
static_assert(offsetof(rdf::Triple, source) == 20);

// Likewise for the STATS (s, o) pair arrays.
using ArgPair = std::pair<rdf::TermId, rdf::TermId>;
static_assert(sizeof(ArgPair) == 8);
static_assert(std::is_standard_layout_v<ArgPair>);
static_assert(offsetof(ArgPair, first) == 0);
static_assert(offsetof(ArgPair, second) == 4);

// --------------------------------------------------------- encoding

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}
void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(out, bits);
}
void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}
void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}
// Zero-pads a v2 section payload to the next 8-byte boundary, keeping
// every u64 field of the *next* record 8-aligned relative to the
// (8-aligned) section start — the precondition for viewing arrays in
// place.
void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

// Little-endian loads at absolute positions, for the mapped-view
// walkers (the copying decoders go through Cursor). Callers bounds-check.
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Bounds-checked forward reader over one section payload. Every
/// accessor fails (returns false) instead of reading past the end, so
/// hostile bytes can at worst produce a typed error, never UB.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadF32(float* v) {
    uint32_t bits;
    if (!ReadU32(&bits)) return false;
    std::memcpy(v, &bits, 4);
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool ReadStr(std::string* v) {
    uint32_t len;
    if (!ReadU32(&len) || remaining() < len) return false;
    v->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  /// Reads `n` fixed-width values; fails before allocating when the
  /// section cannot possibly hold them (corrupt huge counts must not
  /// trigger an OOM before the bounds check).
  template <typename T>
  bool ReadArray(size_t n, size_t elem_bytes, std::vector<T>* out,
                 bool (Cursor::*read_one)(T*)) {
    if (remaining() / elem_bytes < n) return false;
    out->resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (!(this->*read_one)(&(*out)[i])) return false;
    }
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what) {
  return Status::ParseError("snapshot corrupt: " + what);
}

/// One parsed section-table entry.
struct SectionRef {
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
  SectionCodec codec = SectionCodec::kRaw;
};

std::span<const char> SectionSpan(std::span<const char> file,
                                  const SectionRef& s) {
  return file.subspan(static_cast<size_t>(s.offset),
                      static_cast<size_t>(s.length));
}

/// Aliases `count` records of T starting at file offset `offset`.
/// Bounds are the caller's job (walkers check before advancing); the
/// runtime alignment check is the last line of defense for a hostile
/// offset table — misalignment is corruption, never UB.
template <typename T>
bool MakeView(std::span<const char> file, uint64_t offset, uint64_t count,
              std::span<const T>* out) {
  const char* p = file.data() + offset;
  if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0) return false;
  *out = std::span<const T>(reinterpret_cast<const T*>(p),
                            static_cast<size_t>(count));
  return true;
}

/// Reads a zigzag delta whose magnitude must fit the 32-bit id space;
/// bounding it here keeps the running accumulators far from signed
/// overflow on hostile input.
bool GetSmallZigzag(const char* data, size_t size, size_t* pos, int64_t* d) {
  uint64_t raw;
  if (!GetVarint(data, size, pos, &raw)) return false;
  if (raw > (uint64_t{1} << 33)) return false;
  *d = ZigzagDecode(raw);
  return true;
}

// ----------------------------------------------------- section writers

std::string EncodeMeta(const xkg::Xkg& xkg, const relax::RuleSet& rules,
                       uint32_t version, uint64_t prov_records) {
  std::string out;
  PutU64(&out, xkg.kg_triple_count());
  PutU64(&out, xkg.dict().size());
  PutU64(&out, xkg.store().size());
  PutU64(&out, rules.size());
  // v2: the PROV record count lives in META so a trusted mapped load
  // can report it without touching the (deferred) PROV section.
  if (version >= 2) PutU64(&out, prov_records);
  return out;
}

std::string EncodeDictionary(const rdf::Dictionary& dict) {
  std::string out;
  PutU64(&out, dict.size());
  dict.ForEach([&](rdf::TermId id) {
    PutU8(&out, static_cast<uint8_t>(dict.kind(id)));
    PutStr(&out, dict.label(id));
  });
  return out;
}

std::string EncodeTriples(const rdf::TripleStore& store) {
  std::string out;
  PutU64(&out, store.size());
  for (const rdf::Triple& t : store.triples()) {
    PutU32(&out, t.s);
    PutU32(&out, t.p);
    PutU32(&out, t.o);
    PutF32(&out, t.confidence);
    PutU32(&out, t.count);
    PutU32(&out, t.source);
  }
  return out;
}

// Triples are SPO-sorted, so `s` is nondecreasing (plain varint delta)
// while `p`/`o` jitter around their previous values (zigzag). The
// confidence delta is taken on the float's bit pattern — runs of equal
// confidence (the common case) cost one byte.
std::string EncodeTriplesVarint(const rdf::TripleStore& store) {
  std::string out;
  PutVarint(&out, store.size());
  uint32_t ps = 0, pp = 0, po = 0, pc = 0;
  for (const rdf::Triple& t : store.triples()) {
    uint32_t bits;
    std::memcpy(&bits, &t.confidence, 4);
    PutVarint(&out, t.s - ps);
    PutZigzag(&out, static_cast<int64_t>(t.p) - pp);
    PutZigzag(&out, static_cast<int64_t>(t.o) - po);
    PutZigzag(&out, static_cast<int64_t>(bits) - pc);
    PutVarint(&out, t.count);
    PutVarint(&out, t.source);
    ps = t.s;
    pp = t.p;
    po = t.o;
    pc = bits;
  }
  return out;
}

// v1: u32 num, then per perm u64 n + n*u32 ids (unaligned after the
// first odd-sized array — decode-only).
// v2: u32 num + u32 reserved, per perm u64 n + ids, zero-padded to 8
// so every array is viewable in place.
std::string EncodePermutationsRaw(const rdf::TripleStore& store,
                                  uint32_t version) {
  std::string out;
  PutU32(&out,
         static_cast<uint32_t>(rdf::TripleStore::kNumIndexPermutations));
  if (version >= 2) PutU32(&out, 0);
  for (size_t i = 0; i < rdf::TripleStore::kNumIndexPermutations; ++i) {
    // Zero-copy: the span aliases the store's own array.
    std::span<const rdf::TripleId> perm = store.IndexPermutation(i);
    PutU64(&out, perm.size());
    for (rdf::TripleId id : perm) PutU32(&out, id);
    if (version >= 2) PadTo8(&out);
  }
  return out;
}

std::string EncodePermutationsVarint(const rdf::TripleStore& store) {
  std::string out;
  PutVarint(&out, rdf::TripleStore::kNumIndexPermutations);
  for (size_t i = 0; i < rdf::TripleStore::kNumIndexPermutations; ++i) {
    std::span<const rdf::TripleId> perm = store.IndexPermutation(i);
    PutVarint(&out, perm.size());
    int64_t prev = 0;
    for (rdf::TripleId id : perm) {
      PutZigzag(&out, static_cast<int64_t>(id) - prev);
      prev = id;
    }
  }
  return out;
}

// v1: u32 num, per shape u32 shape + u64 n + ids + masses (unaligned —
// decode-only). v2: u32 num + u32 reserved, per shape u32 shape +
// u32 reserved + u64 n + ids + pad + (n+1) u64 masses, viewable.
std::string EncodeScoreShapesRaw(const rdf::TripleStore& store,
                                 uint32_t version) {
  std::string out;
  std::vector<rdf::ScoreOrderIndex::ShapeView> shapes =
      store.BuiltScoreShapes();
  PutU32(&out, static_cast<uint32_t>(shapes.size()));
  if (version >= 2) PutU32(&out, 0);
  for (const rdf::ScoreOrderIndex::ShapeView& shape : shapes) {
    PutU32(&out, shape.shape);
    if (version >= 2) PutU32(&out, 0);
    PutU64(&out, shape.ids.size());
    for (rdf::TripleId id : shape.ids) PutU32(&out, id);
    if (version >= 2) PadTo8(&out);
    for (uint64_t mass : shape.prefix_mass) PutU64(&out, mass);
  }
  return out;
}

std::string EncodeScoreShapesVarint(const rdf::TripleStore& store) {
  std::string out;
  std::vector<rdf::ScoreOrderIndex::ShapeView> shapes =
      store.BuiltScoreShapes();
  PutVarint(&out, shapes.size());
  for (const rdf::ScoreOrderIndex::ShapeView& shape : shapes) {
    PutVarint(&out, shape.shape);
    PutVarint(&out, shape.ids.size());
    int64_t prev = 0;
    for (rdf::TripleId id : shape.ids) {
      PutZigzag(&out, static_cast<int64_t>(id) - prev);
      prev = id;
    }
    // Prefix masses are nondecreasing by construction: plain deltas.
    uint64_t prev_mass = 0;
    for (uint64_t mass : shape.prefix_mass) {
      PutVarint(&out, mass - prev_mass);
      prev_mass = mass;
    }
  }
  return out;
}

std::string EncodeGraphStatsRaw(const rdf::GraphStats& stats) {
  std::string out;
  PutU64(&out, stats.predicates().size());
  for (rdf::TermId p : stats.predicates()) {
    const rdf::GraphStats::PredicateStats* ps = stats.ForPredicate(p);
    PutU32(&out, p);
    PutU32(&out, ps->triple_count);
    PutU64(&out, ps->evidence_count);
    PutU32(&out, ps->distinct_subjects);
    PutU32(&out, ps->distinct_objects);
    const auto& args = stats.Args(p);
    PutU64(&out, args.size());
    for (const auto& [s, o] : args) {
      PutU32(&out, s);
      PutU32(&out, o);
    }
  }
  return out;
}

// Predicates are strictly ascending; each predicate's (s,o) pairs are
// sorted lexicographically, so `first` takes plain varint deltas and
// `second` zigzag deltas.
std::string EncodeGraphStatsVarint(const rdf::GraphStats& stats) {
  std::string out;
  PutVarint(&out, stats.predicates().size());
  uint64_t prev_p = 0;
  for (rdf::TermId p : stats.predicates()) {
    const rdf::GraphStats::PredicateStats* ps = stats.ForPredicate(p);
    PutVarint(&out, p - prev_p);
    prev_p = p;
    PutVarint(&out, ps->triple_count);
    PutVarint(&out, ps->evidence_count);
    PutVarint(&out, ps->distinct_subjects);
    PutVarint(&out, ps->distinct_objects);
    const auto& args = stats.Args(p);
    PutVarint(&out, args.size());
    uint64_t prev_first = 0;
    int64_t prev_second = 0;
    for (const auto& [s, o] : args) {
      PutVarint(&out, s - prev_first);
      PutZigzag(&out, static_cast<int64_t>(o) - prev_second);
      prev_first = s;
      prev_second = o;
    }
  }
  return out;
}

// v3: the engine's scatter-gather decomposition, always raw so the
// mapped path serves every per-shard subsection as a view. u32 shard
// count (0 = saved unsharded) + u32 reserved; then per shard, all
// 8-aligned relative to the section start: u64 member count + u32
// member ids + pad, u32 built-shape count + u32 reserved, per shape the
// SCORE v2 layout (u32 shape + u32 reserved + u64 n + u32 ids + pad +
// (n+1) u64 prefix masses), then u64 stats length + one STATS block in
// the raw layout (whose size is a multiple of 8, preserving alignment).
std::string EncodeShardsRaw(const xkg::Xkg& xkg) {
  std::string out;
  const rdf::ShardedStore* sharded = xkg.sharded();
  const uint32_t count =
      sharded == nullptr ? 0 : static_cast<uint32_t>(sharded->shard_count());
  PutU32(&out, count);
  PutU32(&out, 0);
  for (uint32_t i = 0; i < count; ++i) {
    const std::span<const rdf::TripleId> members = sharded->members(i);
    PutU64(&out, members.size());
    for (rdf::TripleId id : members) PutU32(&out, id);
    PadTo8(&out);
    const std::vector<rdf::ScoreOrderIndex::ShapeView> shapes =
        sharded->BuiltScoreShapes(i);
    PutU32(&out, static_cast<uint32_t>(shapes.size()));
    PutU32(&out, 0);
    for (const rdf::ScoreOrderIndex::ShapeView& shape : shapes) {
      PutU32(&out, shape.shape);
      PutU32(&out, 0);
      PutU64(&out, shape.ids.size());
      for (rdf::TripleId id : shape.ids) PutU32(&out, id);
      PadTo8(&out);
      for (uint64_t mass : shape.prefix_mass) PutU64(&out, mass);
    }
    const std::string stats = EncodeGraphStatsRaw(sharded->shard_stats(i));
    PutU64(&out, stats.size());
    out += stats;
  }
  return out;
}

std::string EncodeProvenanceRaw(const xkg::Xkg& xkg, uint64_t* records_out) {
  std::string out;
  std::string body;
  uint64_t entries = 0;
  for (rdf::TripleId id = 0; id < xkg.store().size(); ++id) {
    const std::vector<xkg::Provenance>& records = xkg.ProvenanceFor(id);
    if (records.empty()) continue;
    ++entries;
    PutU32(&body, id);
    PutU32(&body, static_cast<uint32_t>(records.size()));
    for (const xkg::Provenance& prov : records) {
      PutU32(&body, prov.doc_id);
      PutU32(&body, prov.sentence_idx);
      PutF64(&body, prov.extraction_confidence);
      PutStr(&body, prov.sentence);
      ++*records_out;
    }
  }
  PutU64(&out, entries);
  out += body;
  return out;
}

// PROV dominates snapshot bytes and its cost is sentence text, which
// plain delta coding cannot touch. The varint codec therefore
// deduplicates sentences into a sorted front-coded table (shared
// prefix length + suffix) and stores per-record sentence *references*;
// numeric fields take varints, confidence as a zigzag wraparound delta
// of the f64 bit pattern (runs of equal confidence cost one byte).
std::string EncodeProvenanceVarint(const xkg::Xkg& xkg,
                                   uint64_t* records_out) {
  struct Entry {
    rdf::TripleId id;
    const std::vector<xkg::Provenance>* records;
  };
  std::vector<Entry> entries;
  std::vector<std::string_view> sentences;
  for (rdf::TripleId id = 0; id < xkg.store().size(); ++id) {
    const std::vector<xkg::Provenance>& records = xkg.ProvenanceFor(id);
    if (records.empty()) continue;
    entries.push_back({id, &records});
    for (const xkg::Provenance& prov : records) {
      sentences.push_back(prov.sentence);
    }
  }
  std::sort(sentences.begin(), sentences.end());
  sentences.erase(std::unique(sentences.begin(), sentences.end()),
                  sentences.end());
  std::unordered_map<std::string_view, uint64_t> sentence_index;
  sentence_index.reserve(sentences.size());
  for (uint64_t i = 0; i < sentences.size(); ++i) {
    sentence_index.emplace(sentences[i], i);
  }

  std::string out;
  PutVarint(&out, entries.size());
  PutVarint(&out, sentences.size());
  std::string_view prev;
  for (std::string_view s : sentences) {
    size_t lcp = 0;
    const size_t max = std::min(prev.size(), s.size());
    while (lcp < max && prev[lcp] == s[lcp]) ++lcp;
    PutVarint(&out, lcp);
    PutVarint(&out, s.size() - lcp);
    out.append(s.substr(lcp));
    prev = s;
  }
  uint64_t prev_id_plus1 = 0;
  uint64_t prev_bits = 0;
  for (const Entry& e : entries) {
    // Entry ids are strictly ascending: delta of (id + 1) is >= 1, and
    // the decoder rejects 0 (a duplicate) structurally.
    PutVarint(&out, uint64_t{e.id} + 1 - prev_id_plus1);
    prev_id_plus1 = uint64_t{e.id} + 1;
    PutVarint(&out, e.records->size());
    for (const xkg::Provenance& prov : *e.records) {
      uint64_t bits;
      std::memcpy(&bits, &prov.extraction_confidence, 8);
      PutVarint(&out, prov.doc_id);
      PutVarint(&out, prov.sentence_idx);
      PutZigzag(&out, static_cast<int64_t>(bits - prev_bits));
      prev_bits = bits;
      PutVarint(&out, sentence_index.at(prov.sentence));
      ++*records_out;
    }
  }
  return out;
}

void EncodeTerm(std::string* out, const query::Term& term) {
  PutU8(out, static_cast<uint8_t>(term.kind));
  PutStr(out, term.text);  // ids are cache; re-resolved after load
}

std::string EncodeRules(const relax::RuleSet& rules) {
  std::string out;
  PutU64(&out, rules.size());
  for (const relax::Rule& rule : rules.rules()) {
    PutStr(&out, rule.name);
    PutU8(&out, static_cast<uint8_t>(rule.kind));
    PutF64(&out, rule.weight);
    for (const std::vector<query::TriplePattern>* side :
         {&rule.lhs, &rule.rhs}) {
      PutU32(&out, static_cast<uint32_t>(side->size()));
      for (const query::TriplePattern& pattern : *side) {
        EncodeTerm(&out, pattern.s);
        EncodeTerm(&out, pattern.p);
        EncodeTerm(&out, pattern.o);
      }
    }
  }
  return out;
}

// ----------------------------------------------------- section readers

Status DecodeDictionary(Cursor* c, rdf::Dictionary* dict) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("dictionary count");
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t kind;
    std::string label;
    if (!c->ReadU8(&kind) || !c->ReadStr(&label)) {
      return Corrupt("dictionary entry " + std::to_string(i));
    }
    if (kind > static_cast<uint8_t>(rdf::TermKind::kLiteral)) {
      return Corrupt("dictionary term kind " + std::to_string(kind));
    }
    // Interning in id order reproduces the original ids; a duplicate
    // (kind, label) pair collapses and breaks the sequence — corrupt.
    rdf::TermId id = dict->Intern(static_cast<rdf::TermKind>(kind), label);
    if (id != static_cast<rdf::TermId>(i + 1)) {
      return Corrupt("duplicate dictionary entry '" + label + "'");
    }
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after dictionary");
  return Status::Ok();
}

Status DecodeTriples(Cursor* c, std::vector<rdf::Triple>* triples) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("triple count");
  if (c->remaining() / 24 < count) return Corrupt("triple section short");
  triples->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    rdf::Triple& t = (*triples)[i];
    if (!c->ReadU32(&t.s) || !c->ReadU32(&t.p) || !c->ReadU32(&t.o) ||
        !c->ReadF32(&t.confidence) || !c->ReadU32(&t.count) ||
        !c->ReadU32(&t.source)) {
      return Corrupt("triple " + std::to_string(i));
    }
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after triples");
  return Status::Ok();
}

Status DecodeTriplesVarint(std::span<const char> d,
                           std::vector<rdf::Triple>* triples) {
  const char* data = d.data();
  const size_t size = d.size();
  size_t pos = 0;
  uint64_t count;
  if (!GetVarint(data, size, &pos, &count)) return Corrupt("triple count");
  // Each triple is at least 6 varint bytes; reject a hostile count
  // before allocating.
  if ((size - pos) / 6 < count) return Corrupt("triple section short");
  triples->resize(count);
  uint64_t ps = 0;
  int64_t pp = 0, po = 0, pc = 0;
  for (uint64_t i = 0; i < count; ++i) {
    rdf::Triple& t = (*triples)[i];
    uint64_t ds, cnt, src;
    int64_t dp, dobj, dc;
    if (!GetVarint(data, size, &pos, &ds) ||
        !GetSmallZigzag(data, size, &pos, &dp) ||
        !GetSmallZigzag(data, size, &pos, &dobj) ||
        !GetSmallZigzag(data, size, &pos, &dc) ||
        !GetVarint(data, size, &pos, &cnt) ||
        !GetVarint(data, size, &pos, &src) || ds > UINT32_MAX) {
      return Corrupt("triple " + std::to_string(i));
    }
    ps += ds;
    pp += dp;
    po += dobj;
    pc += dc;
    if (ps > UINT32_MAX || pp < 0 || pp > UINT32_MAX || po < 0 ||
        po > UINT32_MAX || pc < 0 || pc > UINT32_MAX || cnt > UINT32_MAX ||
        src > UINT32_MAX) {
      return Corrupt("triple field out of range");
    }
    t.s = static_cast<uint32_t>(ps);
    t.p = static_cast<uint32_t>(pp);
    t.o = static_cast<uint32_t>(po);
    const uint32_t bits = static_cast<uint32_t>(pc);
    std::memcpy(&t.confidence, &bits, 4);
    t.count = static_cast<uint32_t>(cnt);
    t.source = static_cast<uint32_t>(src);
  }
  if (pos != size) return Corrupt("trailing bytes after triples");
  return Status::Ok();
}

/// Raw TRIPLES, both formats (identical layout): decode, or view the
/// 24-byte records in place when `view`.
Status LoadTriplesRaw(std::span<const char> file, const SectionRef& s,
                      bool view, util::OwnedSpan<rdf::Triple>* out,
                      size_t* framing) {
  if (view) {
    if (s.length < 8) return Corrupt("triple count");
    const uint64_t count = LoadU64(file.data() + s.offset);
    if ((s.length - 8) / 24 != count || (s.length - 8) % 24 != 0) {
      return Corrupt("triple section size");
    }
    std::span<const rdf::Triple> t;
    if (!MakeView(file, s.offset + 8, count, &t)) {
      return Corrupt("misaligned triple records");
    }
    *out = util::OwnedSpan<rdf::Triple>::View(t);
    if (framing != nullptr) *framing += 8;
    return Status::Ok();
  }
  Cursor c(file.data() + s.offset, static_cast<size_t>(s.length));
  std::vector<rdf::Triple> triples;
  TRINIT_RETURN_IF_ERROR(DecodeTriples(&c, &triples));
  *out = std::move(triples);
  return Status::Ok();
}

Status DecodePermutationsV1(Cursor* c,
                            rdf::TripleStore::IndexSnapshot* indexes) {
  uint32_t num;
  if (!c->ReadU32(&num)) return Corrupt("permutation count");
  // Each permutation carries at least its u64 size; a hostile count
  // must fail here, not in a gigantic resize (bad_alloc is not a typed
  // error).
  if (c->remaining() / 8 < num) return Corrupt("permutation section short");
  indexes->perms.resize(num);
  for (uint32_t p = 0; p < num; ++p) {
    uint64_t n;
    std::vector<rdf::TripleId> ids;
    if (!c->ReadU64(&n)) return Corrupt("permutation size");
    if (!c->ReadArray(n, 4, &ids, &Cursor::ReadU32)) {
      return Corrupt("permutation " + std::to_string(p));
    }
    indexes->perms[p] = std::move(ids);
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after permutations");
  return Status::Ok();
}

/// v2 raw PERMS: walk the aligned layout, viewing each array in place
/// (`view`) or copying it out.
Status LoadPermutationsV2Raw(std::span<const char> file, const SectionRef& s,
                             bool view,
                             rdf::TripleStore::IndexSnapshot* indexes,
                             size_t* framing) {
  const char* base = file.data();
  uint64_t pos = s.offset;
  const uint64_t end = s.offset + s.length;
  if (end - pos < 8) return Corrupt("permutation header");
  const uint32_t num = LoadU32(base + pos);
  const uint32_t reserved = LoadU32(base + pos + 4);
  pos += 8;
  if (reserved != 0) return Corrupt("permutation reserved word");
  if ((end - pos) / 8 < num) return Corrupt("permutation section short");
  indexes->perms.clear();
  indexes->perms.reserve(num);
  for (uint32_t p = 0; p < num; ++p) {
    if (end - pos < 8) return Corrupt("permutation size");
    const uint64_t n = LoadU64(base + pos);
    pos += 8;
    if ((end - pos) / 4 < n) return Corrupt("permutation " + std::to_string(p));
    if (view) {
      std::span<const rdf::TripleId> ids;
      if (!MakeView(file, pos, n, &ids)) {
        return Corrupt("misaligned permutation array");
      }
      indexes->perms.push_back(util::OwnedSpan<rdf::TripleId>::View(ids));
    } else {
      std::vector<rdf::TripleId> ids(n);
      if (n > 0) std::memcpy(ids.data(), base + pos, n * 4);
      indexes->perms.emplace_back(std::move(ids));
    }
    pos += n * 4;
    const uint64_t pad = (8 - ((pos - s.offset) % 8)) % 8;
    if (end - pos < pad) return Corrupt("permutation padding");
    pos += pad;
  }
  if (pos != end) return Corrupt("trailing bytes after permutations");
  if (view && framing != nullptr) *framing += 8 + 8 * size_t{num};
  return Status::Ok();
}

Status DecodePermutationsVarint(std::span<const char> d,
                                rdf::TripleStore::IndexSnapshot* indexes) {
  const char* data = d.data();
  const size_t size = d.size();
  size_t pos = 0;
  uint64_t num;
  if (!GetVarint(data, size, &pos, &num)) return Corrupt("permutation count");
  if (size - pos < num) return Corrupt("permutation section short");
  indexes->perms.clear();
  indexes->perms.reserve(num);
  for (uint64_t p = 0; p < num; ++p) {
    uint64_t n;
    if (!GetVarint(data, size, &pos, &n)) return Corrupt("permutation size");
    if (size - pos < n) return Corrupt("permutation " + std::to_string(p));
    std::vector<rdf::TripleId> ids(n);
    int64_t prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
      int64_t delta;
      if (!GetSmallZigzag(data, size, &pos, &delta)) {
        return Corrupt("permutation " + std::to_string(p));
      }
      prev += delta;
      if (prev < 0 || prev > UINT32_MAX) {
        return Corrupt("permutation id out of range");
      }
      ids[i] = static_cast<uint32_t>(prev);
    }
    indexes->perms.emplace_back(std::move(ids));
  }
  if (pos != size) return Corrupt("trailing bytes after permutations");
  return Status::Ok();
}

Status DecodeScoreShapesV1(Cursor* c,
                           rdf::TripleStore::IndexSnapshot* indexes) {
  uint32_t num;
  if (!c->ReadU32(&num)) return Corrupt("score shape count");
  // Each shape carries at least its u32 id + u64 size + u64 zeroth
  // prefix mass; bound the count before allocating (see above).
  if (c->remaining() / 20 < num) return Corrupt("score shape section short");
  indexes->score_shapes.resize(num);
  uint32_t seen_shapes = 0;  // bitmask; shape ids are < 32
  for (uint32_t i = 0; i < num; ++i) {
    rdf::ScoreOrderIndex::ShapeSnapshot& shape = indexes->score_shapes[i];
    uint64_t n;
    std::vector<rdf::TripleId> ids;
    std::vector<uint64_t> prefix_mass;
    if (!c->ReadU32(&shape.shape) || !c->ReadU64(&n) ||
        !c->ReadArray(n, 4, &ids, &Cursor::ReadU32) ||
        !c->ReadArray(n + 1, 8, &prefix_mass, &Cursor::ReadU64)) {
      return Corrupt("score shape " + std::to_string(i));
    }
    shape.ids = std::move(ids);
    shape.prefix_mass = std::move(prefix_mass);
    // Duplicates are corruption, not a "restored twice" precondition
    // failure (that status code is reserved for version mismatch).
    if (shape.shape >= 32 || (seen_shapes & (1u << shape.shape)) != 0) {
      return Corrupt("duplicate or out-of-range score shape id " +
                     std::to_string(shape.shape));
    }
    seen_shapes |= 1u << shape.shape;
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after score shapes");
  return Status::Ok();
}

Status LoadScoreShapesV2Raw(std::span<const char> file, const SectionRef& s,
                            bool view,
                            rdf::TripleStore::IndexSnapshot* indexes,
                            size_t* framing) {
  const char* base = file.data();
  uint64_t pos = s.offset;
  const uint64_t end = s.offset + s.length;
  if (end - pos < 8) return Corrupt("score shape header");
  const uint32_t num = LoadU32(base + pos);
  const uint32_t reserved = LoadU32(base + pos + 4);
  pos += 8;
  if (reserved != 0) return Corrupt("score shape reserved word");
  // Each shape carries at least a 16-byte header plus the zeroth
  // prefix mass.
  if ((end - pos) / 24 < num) return Corrupt("score shape section short");
  indexes->score_shapes.clear();
  indexes->score_shapes.resize(num);
  uint32_t seen_shapes = 0;
  for (uint32_t i = 0; i < num; ++i) {
    rdf::ScoreOrderIndex::ShapeSnapshot& shape = indexes->score_shapes[i];
    if (end - pos < 16) return Corrupt("score shape " + std::to_string(i));
    shape.shape = LoadU32(base + pos);
    const uint32_t rsvd = LoadU32(base + pos + 4);
    const uint64_t n = LoadU64(base + pos + 8);
    pos += 16;
    if (rsvd != 0) return Corrupt("score shape reserved word");
    if (shape.shape >= 32 || (seen_shapes & (1u << shape.shape)) != 0) {
      return Corrupt("duplicate or out-of-range score shape id " +
                     std::to_string(shape.shape));
    }
    seen_shapes |= 1u << shape.shape;
    if ((end - pos) / 4 < n) return Corrupt("score shape ids");
    if (view) {
      std::span<const rdf::TripleId> ids;
      if (!MakeView(file, pos, n, &ids)) {
        return Corrupt("misaligned score shape ids");
      }
      shape.ids = util::OwnedSpan<rdf::TripleId>::View(ids);
    } else {
      std::vector<rdf::TripleId> ids(n);
      if (n > 0) std::memcpy(ids.data(), base + pos, n * 4);
      shape.ids = std::move(ids);
    }
    pos += n * 4;
    const uint64_t pad = (8 - ((pos - s.offset) % 8)) % 8;
    if (end - pos < pad) return Corrupt("score shape padding");
    pos += pad;
    if ((end - pos) / 8 < n + 1) return Corrupt("score shape mass");
    if (view) {
      std::span<const uint64_t> mass;
      if (!MakeView(file, pos, n + 1, &mass)) {
        return Corrupt("misaligned score shape mass");
      }
      shape.prefix_mass = util::OwnedSpan<uint64_t>::View(mass);
    } else {
      std::vector<uint64_t> mass(n + 1);
      std::memcpy(mass.data(), base + pos, (n + 1) * 8);
      shape.prefix_mass = std::move(mass);
    }
    pos += (n + 1) * 8;
  }
  if (pos != end) return Corrupt("trailing bytes after score shapes");
  if (view && framing != nullptr) *framing += 8 + 16 * size_t{num};
  return Status::Ok();
}

Status DecodeScoreShapesVarint(std::span<const char> d,
                               rdf::TripleStore::IndexSnapshot* indexes) {
  const char* data = d.data();
  const size_t size = d.size();
  size_t pos = 0;
  uint64_t num;
  if (!GetVarint(data, size, &pos, &num)) return Corrupt("score shape count");
  if (size - pos < num) return Corrupt("score shape section short");
  indexes->score_shapes.clear();
  indexes->score_shapes.resize(num);
  uint32_t seen_shapes = 0;
  for (uint64_t i = 0; i < num; ++i) {
    rdf::ScoreOrderIndex::ShapeSnapshot& shape = indexes->score_shapes[i];
    uint64_t shape_id, n;
    if (!GetVarint(data, size, &pos, &shape_id) ||
        !GetVarint(data, size, &pos, &n)) {
      return Corrupt("score shape " + std::to_string(i));
    }
    if (shape_id >= 32 || (seen_shapes & (1u << shape_id)) != 0) {
      return Corrupt("duplicate or out-of-range score shape id " +
                     std::to_string(shape_id));
    }
    seen_shapes |= 1u << shape_id;
    shape.shape = static_cast<uint32_t>(shape_id);
    if (size - pos < n) return Corrupt("score shape ids");
    std::vector<rdf::TripleId> ids(n);
    int64_t prev = 0;
    for (uint64_t j = 0; j < n; ++j) {
      int64_t delta;
      if (!GetSmallZigzag(data, size, &pos, &delta)) {
        return Corrupt("score shape ids");
      }
      prev += delta;
      if (prev < 0 || prev > UINT32_MAX) {
        return Corrupt("score shape id out of range");
      }
      ids[j] = static_cast<uint32_t>(prev);
    }
    std::vector<uint64_t> mass(n + 1);
    uint64_t prev_mass = 0;
    for (uint64_t j = 0; j <= n; ++j) {
      uint64_t delta;
      if (!GetVarint(data, size, &pos, &delta)) {
        return Corrupt("score shape mass");
      }
      if (delta > UINT64_MAX - prev_mass) {
        return Corrupt("score shape mass overflow");
      }
      prev_mass += delta;
      mass[j] = prev_mass;
    }
    shape.ids = std::move(ids);
    shape.prefix_mass = std::move(mass);
  }
  if (pos != size) return Corrupt("trailing bytes after score shapes");
  return Status::Ok();
}

Status DecodeGraphStatsRaw(Cursor* c, Result<rdf::GraphStats>* out) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("graph-stats count");
  std::vector<rdf::TermId> predicates;
  std::unordered_map<rdf::TermId, rdf::GraphStats::PredicateStats> stats;
  std::unordered_map<rdf::TermId, rdf::GraphStats::ArgPairs> args;
  if (c->remaining() / 32 < count) return Corrupt("graph-stats short");
  predicates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    rdf::TermId p;
    rdf::GraphStats::PredicateStats ps;
    uint64_t argn;
    if (!c->ReadU32(&p) || !c->ReadU32(&ps.triple_count) ||
        !c->ReadU64(&ps.evidence_count) ||
        !c->ReadU32(&ps.distinct_subjects) ||
        !c->ReadU32(&ps.distinct_objects) || !c->ReadU64(&argn)) {
      return Corrupt("graph-stats predicate " + std::to_string(i));
    }
    if (c->remaining() / 8 < argn) return Corrupt("graph-stats args short");
    std::vector<std::pair<rdf::TermId, rdf::TermId>> pairs(argn);
    for (uint64_t j = 0; j < argn; ++j) {
      if (!c->ReadU32(&pairs[j].first) || !c->ReadU32(&pairs[j].second)) {
        return Corrupt("graph-stats arg pair");
      }
    }
    predicates.push_back(p);
    stats.emplace(p, ps);
    args.emplace(p, std::move(pairs));
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after graph stats");
  *out = rdf::GraphStats::FromSnapshot(std::move(predicates),
                                       std::move(stats), std::move(args));
  return out->ok() ? Status::Ok() : out->status();
}

/// One raw STATS-layout block at the absolute file range [pos, end):
/// the global STATS section is one block, and the v3 SHARDS section
/// embeds one per shard. Only the 32-byte per-predicate headers are
/// walked (counted as framing when viewed); each predicate's (s,o)
/// pair array becomes a view when `view`, an owned copy otherwise.
/// Layout is identical in v1 and v2 and happens to be fully 8-aligned,
/// so this path serves every version.
Status LoadGraphStatsRawRegion(std::span<const char> file, uint64_t pos,
                               uint64_t end, bool view,
                               rdf::SnapshotValidation validation,
                               Result<rdf::GraphStats>* out,
                               size_t* framing) {
  const char* base = file.data();
  if (end - pos < 8) return Corrupt("graph-stats count");
  const uint64_t count = LoadU64(base + pos);
  pos += 8;
  if ((end - pos) / 32 < count) return Corrupt("graph-stats short");
  std::vector<rdf::TermId> predicates;
  predicates.reserve(count);
  std::unordered_map<rdf::TermId, rdf::GraphStats::PredicateStats> stats;
  std::unordered_map<rdf::TermId, rdf::GraphStats::ArgPairs> args;
  for (uint64_t i = 0; i < count; ++i) {
    if (end - pos < 32) return Corrupt("graph-stats predicate");
    const rdf::TermId p = LoadU32(base + pos);
    rdf::GraphStats::PredicateStats ps;
    ps.triple_count = LoadU32(base + pos + 4);
    ps.evidence_count = LoadU64(base + pos + 8);
    ps.distinct_subjects = LoadU32(base + pos + 16);
    ps.distinct_objects = LoadU32(base + pos + 20);
    const uint64_t argn = LoadU64(base + pos + 24);
    pos += 32;
    if ((end - pos) / 8 < argn) return Corrupt("graph-stats args short");
    rdf::GraphStats::ArgPairs pairs;
    if (view) {
      std::span<const ArgPair> viewed;
      if (!MakeView(file, pos, argn, &viewed)) {
        return Corrupt("misaligned graph-stats args");
      }
      pairs = rdf::GraphStats::ArgPairs::View(viewed);
    } else {
      std::vector<ArgPair> owned(static_cast<size_t>(argn));
      for (uint64_t j = 0; j < argn; ++j) {
        owned[j] = {LoadU32(base + pos + j * 8),
                    LoadU32(base + pos + j * 8 + 4)};
      }
      pairs = std::move(owned);
    }
    pos += argn * 8;
    if (stats.count(p) != 0) return Corrupt("duplicate graph-stats predicate");
    predicates.push_back(p);
    stats.emplace(p, ps);
    args.emplace(p, std::move(pairs));
  }
  if (pos != end) return Corrupt("trailing bytes after graph stats");
  if (view && framing != nullptr) {
    *framing += 8 + 32 * static_cast<size_t>(count);
  }
  *out = rdf::GraphStats::FromSnapshot(std::move(predicates),
                                       std::move(stats), std::move(args),
                                       validation);
  return out->ok() ? Status::Ok() : out->status();
}

Status LoadGraphStatsRawView(std::span<const char> file, const SectionRef& s,
                             rdf::SnapshotValidation validation,
                             Result<rdf::GraphStats>* out, size_t* framing) {
  return LoadGraphStatsRawRegion(file, s.offset, s.offset + s.length,
                                 /*view=*/true, validation, out, framing);
}

/// v3 SHARDS: see EncodeShardsRaw for the layout. Member-id and shape
/// arrays become views when `view`, owned copies otherwise; each
/// shard's embedded STATS block goes through LoadGraphStatsRawRegion.
/// Content invariants (partition, order, mass sums) are the job of
/// `rdf::ShardedStore::FromSnapshot` under `validation` — this walker
/// only guarantees frame safety on hostile bytes.
Status LoadShardsRaw(std::span<const char> file, const SectionRef& s,
                     bool view, rdf::SnapshotValidation validation,
                     std::vector<rdf::ShardedStore::ShardSnapshot>* shards,
                     size_t* framing) {
  const char* base = file.data();
  uint64_t pos = s.offset;
  const uint64_t end = s.offset + s.length;
  if (end - pos < 8) return Corrupt("shard header");
  const uint32_t count = LoadU32(base + pos);
  const uint32_t reserved = LoadU32(base + pos + 4);
  pos += 8;
  if (reserved != 0) return Corrupt("shard reserved word");
  size_t walked = 8;
  // Each shard carries at least its member count, shape count, and
  // stats length (24 bytes).
  if ((end - pos) / 24 < count) return Corrupt("shard section short");
  shards->clear();
  shards->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    util::OwnedSpan<rdf::TripleId> shard_members;
    if (end - pos < 8) return Corrupt("shard " + std::to_string(i));
    const uint64_t members = LoadU64(base + pos);
    pos += 8;
    walked += 8;
    if ((end - pos) / 4 < members) return Corrupt("shard members");
    if (view) {
      std::span<const rdf::TripleId> ids;
      if (!MakeView(file, pos, members, &ids)) {
        return Corrupt("misaligned shard members");
      }
      shard_members = util::OwnedSpan<rdf::TripleId>::View(ids);
    } else {
      std::vector<rdf::TripleId> ids(static_cast<size_t>(members));
      if (members > 0) std::memcpy(ids.data(), base + pos, members * 4);
      shard_members = std::move(ids);
    }
    pos += members * 4;
    uint64_t pad = (8 - ((pos - s.offset) % 8)) % 8;
    if (end - pos < pad) return Corrupt("shard padding");
    pos += pad;
    if (end - pos < 8) return Corrupt("shard shape count");
    const uint32_t num_shapes = LoadU32(base + pos);
    const uint32_t shape_rsvd = LoadU32(base + pos + 4);
    pos += 8;
    walked += 8;
    if (shape_rsvd != 0) return Corrupt("shard reserved word");
    if ((end - pos) / 24 < num_shapes) return Corrupt("shard shapes short");
    std::vector<rdf::ScoreOrderIndex::ShapeSnapshot> shard_shapes(num_shapes);
    uint32_t seen_shapes = 0;
    for (uint32_t j = 0; j < num_shapes; ++j) {
      rdf::ScoreOrderIndex::ShapeSnapshot& shape = shard_shapes[j];
      if (end - pos < 16) return Corrupt("shard shape header");
      shape.shape = LoadU32(base + pos);
      const uint32_t rsvd = LoadU32(base + pos + 4);
      const uint64_t n = LoadU64(base + pos + 8);
      pos += 16;
      walked += 16;
      if (rsvd != 0) return Corrupt("shard reserved word");
      if (shape.shape >= 32 || (seen_shapes & (1u << shape.shape)) != 0) {
        return Corrupt("duplicate or out-of-range shard shape id " +
                       std::to_string(shape.shape));
      }
      seen_shapes |= 1u << shape.shape;
      if ((end - pos) / 4 < n) return Corrupt("shard shape ids");
      if (view) {
        std::span<const rdf::TripleId> ids;
        if (!MakeView(file, pos, n, &ids)) {
          return Corrupt("misaligned shard shape ids");
        }
        shape.ids = util::OwnedSpan<rdf::TripleId>::View(ids);
      } else {
        std::vector<rdf::TripleId> ids(static_cast<size_t>(n));
        if (n > 0) std::memcpy(ids.data(), base + pos, n * 4);
        shape.ids = std::move(ids);
      }
      pos += n * 4;
      pad = (8 - ((pos - s.offset) % 8)) % 8;
      if (end - pos < pad) return Corrupt("shard shape padding");
      pos += pad;
      if ((end - pos) / 8 < n + 1) return Corrupt("shard shape mass");
      if (view) {
        std::span<const uint64_t> mass;
        if (!MakeView(file, pos, n + 1, &mass)) {
          return Corrupt("misaligned shard shape mass");
        }
        shape.prefix_mass = util::OwnedSpan<uint64_t>::View(mass);
      } else {
        std::vector<uint64_t> mass(static_cast<size_t>(n) + 1);
        std::memcpy(mass.data(), base + pos, (n + 1) * 8);
        shape.prefix_mass = std::move(mass);
      }
      pos += (n + 1) * 8;
    }
    if (end - pos < 8) return Corrupt("shard stats length");
    const uint64_t stats_len = LoadU64(base + pos);
    pos += 8;
    walked += 8;
    if (end - pos < stats_len || stats_len % 8 != 0) {
      return Corrupt("shard stats block");
    }
    Result<rdf::GraphStats> stats = Status::Internal("unset");
    size_t stats_framing = 0;
    TRINIT_RETURN_IF_ERROR(LoadGraphStatsRawRegion(
        file, pos, pos + stats_len, view, validation, &stats,
        &stats_framing));
    walked += stats_framing;
    pos += stats_len;
    shards->push_back({std::move(shard_members), std::move(shard_shapes),
                       std::move(stats).value()});
  }
  if (pos != end) return Corrupt("trailing bytes after shards");
  if (view && framing != nullptr) *framing += walked;
  return Status::Ok();
}

Status DecodeGraphStatsVarint(std::span<const char> d,
                              rdf::SnapshotValidation validation,
                              Result<rdf::GraphStats>* out) {
  const char* data = d.data();
  const size_t size = d.size();
  size_t pos = 0;
  uint64_t count;
  if (!GetVarint(data, size, &pos, &count)) return Corrupt("graph-stats count");
  // Each predicate costs at least 6 varint bytes.
  if ((size - pos) / 6 < count) return Corrupt("graph-stats short");
  std::vector<rdf::TermId> predicates;
  predicates.reserve(count);
  std::unordered_map<rdf::TermId, rdf::GraphStats::PredicateStats> stats;
  std::unordered_map<rdf::TermId, rdf::GraphStats::ArgPairs> args;
  uint64_t prev_p = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t dp, tc, ev, ds, dobj, argn;
    if (!GetVarint(data, size, &pos, &dp) ||
        !GetVarint(data, size, &pos, &tc) ||
        !GetVarint(data, size, &pos, &ev) ||
        !GetVarint(data, size, &pos, &ds) ||
        !GetVarint(data, size, &pos, &dobj) ||
        !GetVarint(data, size, &pos, &argn)) {
      return Corrupt("graph-stats predicate " + std::to_string(i));
    }
    // Predicates are strictly ascending: a zero delta is structurally
    // corrupt (and guarantees no duplicate map keys below).
    if (dp == 0 || dp > UINT32_MAX - prev_p || tc > UINT32_MAX ||
        ds > UINT32_MAX || dobj > UINT32_MAX) {
      return Corrupt("graph-stats field out of range");
    }
    prev_p += dp;
    const rdf::TermId p = static_cast<uint32_t>(prev_p);
    rdf::GraphStats::PredicateStats ps;
    ps.triple_count = static_cast<uint32_t>(tc);
    ps.evidence_count = ev;
    ps.distinct_subjects = static_cast<uint32_t>(ds);
    ps.distinct_objects = static_cast<uint32_t>(dobj);
    // Each pair costs at least 2 varint bytes.
    if ((size - pos) / 2 < argn) return Corrupt("graph-stats args short");
    std::vector<ArgPair> pairs(argn);
    uint64_t prev_first = 0;
    int64_t prev_second = 0;
    for (uint64_t j = 0; j < argn; ++j) {
      uint64_t df;
      int64_t dsec;
      if (!GetVarint(data, size, &pos, &df) ||
          !GetSmallZigzag(data, size, &pos, &dsec) ||
          df > UINT32_MAX - prev_first) {
        return Corrupt("graph-stats arg pair");
      }
      prev_first += df;
      prev_second += dsec;
      if (prev_second < 0 || prev_second > UINT32_MAX) {
        return Corrupt("graph-stats arg pair out of range");
      }
      pairs[j] = {static_cast<uint32_t>(prev_first),
                  static_cast<uint32_t>(prev_second)};
    }
    predicates.push_back(p);
    stats.emplace(p, ps);
    args.emplace(p, std::move(pairs));
  }
  if (pos != size) return Corrupt("trailing bytes after graph stats");
  *out = rdf::GraphStats::FromSnapshot(std::move(predicates),
                                       std::move(stats), std::move(args),
                                       validation);
  return out->ok() ? Status::Ok() : out->status();
}

Status DecodeProvenanceRaw(Cursor* c, xkg::Xkg::ProvenanceMap* prov,
                           size_t* records_out) {
  uint64_t entries;
  if (!c->ReadU64(&entries)) return Corrupt("provenance count");
  for (uint64_t i = 0; i < entries; ++i) {
    uint32_t triple_id, nrec;
    if (!c->ReadU32(&triple_id) || !c->ReadU32(&nrec) || nrec == 0) {
      return Corrupt("provenance entry " + std::to_string(i));
    }
    if (c->remaining() / 20 < nrec) return Corrupt("provenance short");
    if (prov->count(triple_id) != 0) {
      return Corrupt("duplicate provenance entry");
    }
    std::vector<xkg::Provenance>& records = (*prov)[triple_id];
    records.resize(nrec);
    for (uint32_t j = 0; j < nrec; ++j) {
      xkg::Provenance& p = records[j];
      if (!c->ReadU32(&p.doc_id) || !c->ReadU32(&p.sentence_idx) ||
          !c->ReadF64(&p.extraction_confidence) ||
          !c->ReadStr(&p.sentence)) {
        return Corrupt("provenance record");
      }
    }
    *records_out += nrec;
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after provenance");
  return Status::Ok();
}

Status DecodeProvenanceVarint(std::span<const char> d,
                              xkg::Xkg::ProvenanceMap* prov,
                              size_t* records_out) {
  const char* data = d.data();
  const size_t size = d.size();
  size_t pos = 0;
  uint64_t entries, uniq;
  if (!GetVarint(data, size, &pos, &entries) ||
      !GetVarint(data, size, &pos, &uniq)) {
    return Corrupt("provenance count");
  }
  // Each front-coded sentence costs at least 2 varint bytes.
  if ((size - pos) / 2 < uniq) return Corrupt("provenance sentence table");
  std::vector<std::string> sentences;
  sentences.reserve(uniq);
  std::string prev_sentence;
  for (uint64_t i = 0; i < uniq; ++i) {
    uint64_t lcp, suffix;
    if (!GetVarint(data, size, &pos, &lcp) ||
        !GetVarint(data, size, &pos, &suffix)) {
      return Corrupt("provenance sentence " + std::to_string(i));
    }
    if (lcp > prev_sentence.size() || suffix > size - pos) {
      return Corrupt("provenance sentence " + std::to_string(i));
    }
    std::string s = prev_sentence.substr(0, static_cast<size_t>(lcp));
    s.append(data + pos, static_cast<size_t>(suffix));
    pos += static_cast<size_t>(suffix);
    prev_sentence = s;
    sentences.push_back(std::move(s));
  }
  // Each entry costs at least 6 varint bytes (id delta, record count,
  // one 4-byte-minimum record).
  if ((size - pos) / 6 < entries) return Corrupt("provenance short");
  uint64_t prev_id_plus1 = 0;
  uint64_t prev_bits = 0;
  for (uint64_t i = 0; i < entries; ++i) {
    uint64_t did, nrec;
    if (!GetVarint(data, size, &pos, &did) ||
        !GetVarint(data, size, &pos, &nrec)) {
      return Corrupt("provenance entry " + std::to_string(i));
    }
    // Ids are strictly ascending (delta of id+1 is >= 1): a zero delta
    // is a duplicate, structurally corrupt.
    if (did == 0 || did > (uint64_t{1} << 32) - prev_id_plus1 || nrec == 0) {
      return Corrupt("provenance entry " + std::to_string(i));
    }
    prev_id_plus1 += did;
    const rdf::TripleId id = static_cast<uint32_t>(prev_id_plus1 - 1);
    if ((size - pos) / 4 < nrec) return Corrupt("provenance short");
    std::vector<xkg::Provenance>& records = (*prov)[id];
    records.resize(nrec);
    for (uint64_t j = 0; j < nrec; ++j) {
      xkg::Provenance& p = records[j];
      uint64_t doc, sidx, ref;
      int64_t dbits;
      if (!GetVarint(data, size, &pos, &doc) ||
          !GetVarint(data, size, &pos, &sidx) ||
          !GetZigzag(data, size, &pos, &dbits) ||
          !GetVarint(data, size, &pos, &ref) || doc > UINT32_MAX ||
          sidx > UINT32_MAX || ref >= sentences.size()) {
        return Corrupt("provenance record");
      }
      p.doc_id = static_cast<uint32_t>(doc);
      p.sentence_idx = static_cast<uint32_t>(sidx);
      // Confidence bits take wraparound deltas (unsigned arithmetic,
      // lossless for any pair of f64 bit patterns).
      prev_bits += static_cast<uint64_t>(dbits);
      std::memcpy(&p.extraction_confidence, &prev_bits, 8);
      p.sentence = sentences[ref];
    }
    *records_out += nrec;
  }
  if (pos != size) return Corrupt("trailing bytes after provenance");
  return Status::Ok();
}

Status DecodeProvenanceAny(std::span<const char> d, SectionCodec codec,
                           xkg::Xkg::ProvenanceMap* prov,
                           size_t* records_out) {
  if (codec == SectionCodec::kVarintDelta) {
    return DecodeProvenanceVarint(d, prov, records_out);
  }
  Cursor c(d.data(), d.size());
  return DecodeProvenanceRaw(&c, prov, records_out);
}

Status DecodeTerm(Cursor* c, query::Term* term) {
  uint8_t kind;
  if (!c->ReadU8(&kind) || !c->ReadStr(&term->text)) {
    return Corrupt("rule term");
  }
  if (kind > static_cast<uint8_t>(query::Term::Kind::kLiteral)) {
    return Corrupt("rule term kind " + std::to_string(kind));
  }
  term->kind = static_cast<query::Term::Kind>(kind);
  term->id = rdf::kNullTerm;  // re-resolved against the loaded dictionary
  return Status::Ok();
}

Status DecodeRules(Cursor* c, relax::RuleSet* rules) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("rule count");
  for (uint64_t i = 0; i < count; ++i) {
    relax::Rule rule;
    uint8_t kind;
    if (!c->ReadStr(&rule.name) || !c->ReadU8(&kind) ||
        !c->ReadF64(&rule.weight)) {
      return Corrupt("rule " + std::to_string(i));
    }
    if (kind > static_cast<uint8_t>(relax::RuleKind::kOperator)) {
      return Corrupt("rule kind " + std::to_string(kind));
    }
    rule.kind = static_cast<relax::RuleKind>(kind);
    for (std::vector<query::TriplePattern>* side : {&rule.lhs, &rule.rhs}) {
      uint32_t n;
      if (!c->ReadU32(&n)) return Corrupt("rule pattern count");
      if (c->remaining() / 15 < n) return Corrupt("rule patterns short");
      side->resize(n);
      for (query::TriplePattern& pattern : *side) {
        TRINIT_RETURN_IF_ERROR(DecodeTerm(c, &pattern.s));
        TRINIT_RETURN_IF_ERROR(DecodeTerm(c, &pattern.p));
        TRINIT_RETURN_IF_ERROR(DecodeTerm(c, &pattern.o));
      }
    }
    // Add() re-validates structure; a corrupt rule that decodes into an
    // invalid shape is rejected here with its own message.
    TRINIT_RETURN_IF_ERROR(rules->Add(std::move(rule)));
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after rules");
  return Status::Ok();
}

}  // namespace

// --------------------------------------------------------------- write

Status SnapshotWriter::Write(const xkg::Xkg& xkg, const relax::RuleSet& rules,
                             uint64_t generation, const std::string& path,
                             const WriteOptions& options) {
  const uint32_t version = options.format_version;
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(version));
  }
  if (version < 2 && options.codec != SectionCodec::kRaw) {
    return Status::InvalidArgument(
        "section codecs require snapshot format v2");
  }
  // A trusted-mapped engine defers provenance decode; saving forces it
  // now and must not silently persist an empty map because that decode
  // failed.
  TRINIT_RETURN_IF_ERROR(xkg.provenance_status());

  const bool varint = options.codec == SectionCodec::kVarintDelta;
  const SectionCodec bulk = options.codec;
  const rdf::TripleStore& store = xkg.store();
  uint64_t prov_records = 0;
  std::string prov = varint ? EncodeProvenanceVarint(xkg, &prov_records)
                            : EncodeProvenanceRaw(xkg, &prov_records);

  // Index arrays are encoded straight from the store's own memory
  // (span views), so the transient cost of a save is one encoded copy
  // of the state, not an intermediate export on top of it.
  struct Section {
    uint32_t id;
    SectionCodec codec;
    std::string payload;
  };
  const uint32_t num_sections = NumSectionsFor(version);
  std::vector<Section> sections;
  sections.reserve(num_sections);
  sections.push_back({kMeta, SectionCodec::kRaw,
                      EncodeMeta(xkg, rules, version, prov_records)});
  sections.push_back(
      {kDictionary, SectionCodec::kRaw, EncodeDictionary(xkg.dict())});
  sections.push_back(
      {kTriples, bulk,
       varint ? EncodeTriplesVarint(store) : EncodeTriples(store)});
  sections.push_back({kPermutations, bulk,
                      varint ? EncodePermutationsVarint(store)
                             : EncodePermutationsRaw(store, version)});
  sections.push_back({kScoreShapes, bulk,
                      varint ? EncodeScoreShapesVarint(store)
                             : EncodeScoreShapesRaw(store, version)});
  sections.push_back({kGraphStats, bulk,
                      varint ? EncodeGraphStatsVarint(xkg.stats())
                             : EncodeGraphStatsRaw(xkg.stats())});
  sections.push_back({kProvenance, bulk, std::move(prov)});
  sections.push_back({kRules, SectionCodec::kRaw, EncodeRules(rules)});
  // v3: the scatter-gather decomposition rides along (empty when the
  // engine serves unsharded — the section count stays fixed per
  // version). Writing v2 from a sharded engine simply drops it; the
  // opener re-installs sharding from its options.
  if (version >= 3) {
    sections.push_back({kShards, SectionCodec::kRaw, EncodeShardsRaw(xkg)});
  }

  // Header + table, then 8-aligned payloads — streamed section by
  // section so peak memory stays one copy of the encoded state, not
  // two.
  std::string head;
  head.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&head, version);
  PutU32(&head, kEndianTag);
  PutU64(&head, generation);
  PutU32(&head, num_sections);
  // Header checksum (low 32 bits of FNV-1a over the 28 bytes above):
  // the generation field has no section covering it, and it must not
  // load silently wrong.
  PutU32(&head, static_cast<uint32_t>(Fnv1a64(head)));

  size_t offset = kHeaderBytes + num_sections * kTableEntryBytes;
  for (const Section& sec : sections) {
    offset = (offset + 7) & ~size_t{7};
    PutU32(&head, sec.id);
    // Flag word: low byte is the section codec (0 in v1 files, which
    // is why v1 readers that required 0 here stay compatible).
    PutU32(&head, static_cast<uint32_t>(sec.codec));
    PutU64(&head, offset);
    PutU64(&head, sec.payload.size());
    PutU64(&head, Fnv1a64(sec.payload));
    offset += sec.payload.size();
  }

  // Write to a sibling temp file and rename into place: a mid-write
  // failure (disk full, crash) must not destroy a previously good
  // snapshot at `path` — replicas rely on "serialize once, load many
  // times". The rename also means a *mapped* reader of the old file
  // keeps its pages; the file is never truncated in place under a
  // live mapping.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp_path);
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    size_t written = head.size();
    for (const Section& sec : sections) {
      static constexpr char kPad[8] = {};
      const size_t pad = ((written + 7) & ~size_t{7}) - written;
      out.write(kPad, static_cast<std::streamsize>(pad));
      out.write(sec.payload.data(),
                static_cast<std::streamsize>(sec.payload.size()));
      written += pad + sec.payload.size();
    }
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IoError("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------- read

Result<LoadedSnapshot> SnapshotReader::Read(const std::string& path,
                                            const ReadOptions& options) {
  // Acquire the bytes: mmap when asked for and available, else one
  // copying read. A failed Map falls through to the copying open so
  // the caller sees the same typed error (or a successful copy load)
  // it would on a platform without mmap at all.
  std::shared_ptr<MappedFile> mapping;
  std::string owned;
  std::span<const char> file;
  bool mapped = false;
  if (options.mode == LoadMode::kMapped && MappedFile::Supported()) {
    auto m = MappedFile::Map(path);
    if (m.ok()) {
      mapping = std::make_shared<MappedFile>(std::move(m).value());
      file = mapping->bytes();
      mapped = true;
    }
  }
  if (!mapped) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return Status::IoError("cannot open: " + path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    owned.assign(static_cast<size_t>(size), '\0');
    if (!in.read(owned.data(), size)) {
      return Status::IoError("read failed: " + path);
    }
    file = std::span<const char>(owned.data(), owned.size());
  }

  // Header. Foreign files fail on the magic (InvalidArgument), old or
  // newer snapshots on the version (FailedPrecondition) — distinct
  // codes so callers can tell "not ours" from "ours, re-save it".
  if (file.size() < kHeaderBytes ||
      std::memcmp(file.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::InvalidArgument("not a TriniT snapshot: " + path);
  }
  // Cursor starts past the just-compared magic.
  Cursor header(file.data() + sizeof(kSnapshotMagic),
                file.size() - sizeof(kSnapshotMagic));
  uint32_t version, endian, section_count, header_crc;
  uint64_t generation;
  header.ReadU32(&version);
  header.ReadU32(&endian);
  header.ReadU64(&generation);
  header.ReadU32(&section_count);
  header.ReadU32(&header_crc);
  if (endian != kEndianTag) {
    return Status::InvalidArgument(
        "snapshot byte order does not match this machine");
  }
  if (version < kMinSnapshotVersion || version > kSnapshotVersion) {
    return Status::FailedPrecondition(
        "snapshot format version " + std::to_string(version) +
        "; this build reads versions " +
        std::to_string(kMinSnapshotVersion) + ".." +
        std::to_string(kSnapshotVersion) + " (re-save from source)");
  }
  // The generation lives only in the header (no section checksum covers
  // it); verify the header's own checksum before trusting it.
  if (header_crc !=
      static_cast<uint32_t>(Fnv1a64({file.data(), kHeaderBytes - 4}))) {
    return Corrupt("header checksum mismatch");
  }
  const uint32_t num_sections = NumSectionsFor(version);
  if (section_count != num_sections) {
    return Corrupt("expected " + std::to_string(num_sections) +
                   " sections, header says " +
                   std::to_string(section_count));
  }
  if (file.size() < kHeaderBytes + num_sections * kTableEntryBytes) {
    return Corrupt("truncated section table");
  }

  // Section table: bounds and codec sanity before any payload access.
  std::unordered_map<uint32_t, SectionRef> table;
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t id, flags;
    SectionRef s;
    header.ReadU32(&id);
    header.ReadU32(&flags);
    header.ReadU64(&s.offset);
    header.ReadU64(&s.length);
    header.ReadU64(&s.checksum);
    if (s.offset > file.size() || s.length > file.size() - s.offset) {
      return Corrupt("section " + std::to_string(id) +
                     " out of bounds (truncated file?)");
    }
    if (flags > 0xff) return Corrupt("reserved section flag bits set");
    if (flags > static_cast<uint32_t>(SectionCodec::kVarintDelta)) {
      return Status::FailedPrecondition(
          "section codec " + std::to_string(flags) +
          " not supported by this build (re-save from source)");
    }
    s.codec = static_cast<SectionCodec>(flags);
    if (version < 2 && s.codec != SectionCodec::kRaw) {
      return Corrupt("codec byte in a v1 snapshot");
    }
    if (s.codec != SectionCodec::kRaw &&
        (id == kMeta || id == kDictionary || id == kRules ||
         id == kShards)) {
      return Corrupt("codec on an uncompressible section " +
                     std::to_string(id));
    }
    if (!table.emplace(id, s).second) {
      return Corrupt("duplicate section " + std::to_string(id));
    }
  }
  for (uint32_t id = kMeta; id <= (version >= 3 ? kShards : kRules); ++id) {
    if (table.count(id) == 0) {
      return Corrupt("missing section " + std::to_string(id));
    }
  }
  auto cursor_for = [&](uint32_t id) {
    const SectionRef& s = table.at(id);
    return Cursor(file.data() + s.offset, static_cast<size_t>(s.length));
  };
  auto span_for = [&](uint32_t id) {
    return SectionSpan(file, table.at(id));
  };

  // Mode resolution. Views require the mapping *and* the v2 aligned
  // layouts; v1 files load through the copying decoders even when
  // mapped (no benefit, full compatibility). Trusted verification is
  // only meaningful on the view path — every other combination keeps
  // the full-verification guarantees.
  const bool use_views = mapped && version >= 2;
  const bool trusted =
      use_views && options.verify == rdf::SnapshotValidation::kTrusted;
  const rdf::SnapshotValidation validation =
      trusted ? rdf::SnapshotValidation::kTrusted
              : rdf::SnapshotValidation::kFull;

  LoadReport report;
  report.bytes = file.size();
  report.mapped = mapped;
  size_t touched = kHeaderBytes + num_sections * kTableEntryBytes;

  // Readahead hints (ReadOptions::prefetch): start paging in the
  // sections this load will serve as views, overlapping disk I/O with
  // the decode work below. Purely advisory — verification and the
  // bytes_touched accounting are identical either way.
  if (mapped && options.prefetch) {
    const bool will_view = version >= 2;
    auto advise = [&](uint32_t id) {
      const SectionRef& s = table.at(id);
      if (s.codec == SectionCodec::kRaw &&
          mapping->AdviseWillNeed(static_cast<size_t>(s.offset),
                                  static_cast<size_t>(s.length))) {
        report.bytes_prefetched += static_cast<size_t>(s.length);
      }
    };
    if (will_view) {
      advise(kTriples);
      advise(kPermutations);
      advise(kScoreShapes);
      advise(kGraphStats);
      if (version >= 3) advise(kShards);
    } else if (mapping->AdviseWillNeed(0, file.size())) {
      // v1 layouts decode by copying; the whole file is read anyway.
      report.bytes_prefetched += file.size();
    }
  }

  // Checksum pass. Full verification checksums everything (mapped or
  // not — identical guarantees). Trusted checksums only what it will
  // decode into memory anyway: META/DICT/RULES and varint sections.
  // Viewed raw sections and the deferred PROV section are skipped —
  // that is where the touched-bytes savings come from; PROV is
  // checksummed at deferred-decode time instead.
  for (const auto& [id, s] : table) {
    if (s.codec == SectionCodec::kRaw) {
      ++report.sections_raw;
    } else {
      ++report.sections_varint;
    }
    const bool deferred_prov = trusted && id == kProvenance;
    const bool fully_read =
        !trusted ||
        (!deferred_prov &&
         (id == kMeta || id == kDictionary || id == kRules ||
          s.codec == SectionCodec::kVarintDelta));
    if (fully_read) {
      if (Fnv1a64({file.data() + s.offset,
                   static_cast<size_t>(s.length)}) != s.checksum) {
        return Corrupt("checksum mismatch in section " + std::to_string(id));
      }
      touched += static_cast<size_t>(s.length);
    }
  }

  // Meta cross-checks let a truncation that happens to preserve section
  // framing still fail loudly.
  Cursor meta = cursor_for(kMeta);
  uint64_t kg_triples, dict_terms, triple_count, rule_count;
  uint64_t prov_records_meta = 0;
  if (!meta.ReadU64(&kg_triples) || !meta.ReadU64(&dict_terms) ||
      !meta.ReadU64(&triple_count) || !meta.ReadU64(&rule_count) ||
      (version >= 2 && !meta.ReadU64(&prov_records_meta)) ||
      !meta.AtEnd()) {
    return Corrupt("meta section");
  }
  ++report.sections_decoded;  // META

  auto dict = std::make_unique<rdf::Dictionary>();
  Cursor dict_cursor = cursor_for(kDictionary);
  TRINIT_RETURN_IF_ERROR(DecodeDictionary(&dict_cursor, dict.get()));
  if (dict->size() != dict_terms) return Corrupt("dictionary count vs meta");
  report.terms = dict->size();
  ++report.sections_decoded;  // DICT (hash index rebuilt by Intern)

  util::OwnedSpan<rdf::Triple> triples;
  {
    const SectionRef& s = table.at(kTriples);
    if (s.codec == SectionCodec::kVarintDelta) {
      std::vector<rdf::Triple> decoded;
      TRINIT_RETURN_IF_ERROR(DecodeTriplesVarint(span_for(kTriples),
                                                 &decoded));
      triples = std::move(decoded);
      ++report.sections_decoded;
    } else {
      TRINIT_RETURN_IF_ERROR(
          LoadTriplesRaw(file, s, use_views, &triples, &touched));
      if (use_views) {
        ++report.sections_mapped;
      } else {
        ++report.sections_decoded;
      }
    }
  }
  if (triples.size() != triple_count) return Corrupt("triple count vs meta");
  report.triples = triples.size();

  rdf::TripleStore::IndexSnapshot indexes;
  {
    const SectionRef& s = table.at(kPermutations);
    if (s.codec == SectionCodec::kVarintDelta) {
      TRINIT_RETURN_IF_ERROR(
          DecodePermutationsVarint(span_for(kPermutations), &indexes));
      ++report.sections_decoded;
    } else if (version >= 2) {
      TRINIT_RETURN_IF_ERROR(LoadPermutationsV2Raw(file, s, use_views,
                                                   &indexes, &touched));
      if (use_views) {
        ++report.sections_mapped;
      } else {
        ++report.sections_decoded;
      }
    } else {
      Cursor c = cursor_for(kPermutations);
      TRINIT_RETURN_IF_ERROR(DecodePermutationsV1(&c, &indexes));
      ++report.sections_decoded;
    }
  }
  {
    const SectionRef& s = table.at(kScoreShapes);
    if (s.codec == SectionCodec::kVarintDelta) {
      TRINIT_RETURN_IF_ERROR(
          DecodeScoreShapesVarint(span_for(kScoreShapes), &indexes));
      ++report.sections_decoded;
    } else if (version >= 2) {
      TRINIT_RETURN_IF_ERROR(LoadScoreShapesV2Raw(file, s, use_views,
                                                  &indexes, &touched));
      if (use_views) {
        ++report.sections_mapped;
      } else {
        ++report.sections_decoded;
      }
    } else {
      Cursor c = cursor_for(kScoreShapes);
      TRINIT_RETURN_IF_ERROR(DecodeScoreShapesV1(&c, &indexes));
      ++report.sections_decoded;
    }
  }
  report.permutations_restored = indexes.perms.size();
  report.score_shapes_restored = indexes.score_shapes.size();

  Result<rdf::GraphStats> stats = Status::Internal("unset");
  {
    const SectionRef& s = table.at(kGraphStats);
    if (s.codec == SectionCodec::kVarintDelta) {
      TRINIT_RETURN_IF_ERROR(DecodeGraphStatsVarint(span_for(kGraphStats),
                                                    validation, &stats));
      ++report.sections_decoded;
    } else if (use_views) {
      TRINIT_RETURN_IF_ERROR(
          LoadGraphStatsRawView(file, s, validation, &stats, &touched));
      ++report.sections_mapped;
    } else {
      Cursor c = cursor_for(kGraphStats);
      TRINIT_RETURN_IF_ERROR(DecodeGraphStatsRaw(&c, &stats));
      ++report.sections_decoded;
    }
  }

  xkg::Xkg::ProvenanceMap provenance;
  const bool defer_provenance = trusted;
  if (defer_provenance) {
    report.provenance_records = prov_records_meta;
    report.provenance_deferred = true;
    ++report.sections_mapped;
  } else {
    TRINIT_RETURN_IF_ERROR(DecodeProvenanceAny(
        span_for(kProvenance), table.at(kProvenance).codec, &provenance,
        &report.provenance_records));
    if (version >= 2 && report.provenance_records != prov_records_meta) {
      return Corrupt("provenance record count vs meta");
    }
    ++report.sections_decoded;
  }

  TRINIT_ASSIGN_OR_RETURN(
      rdf::TripleStore store,
      rdf::TripleStore::FromSnapshot(std::move(triples), std::move(indexes),
                                     validation));

  // Resident estimate: owned index bytes plus the decoded side
  // structures (section lengths stand in for the dictionary and rules;
  // provenance is measured from the decoded map). Mapped views
  // contribute nothing — their pages are shared and evictable.
  size_t prov_resident = 0;
  for (const auto& [id, records] : provenance) {
    prov_resident += sizeof(id) + records.size() * sizeof(xkg::Provenance);
    for (const xkg::Provenance& p : records) prov_resident += p.sentence.size();
  }
  report.resident_bytes =
      store.resident_bytes() + stats.value().resident_bytes() +
      static_cast<size_t>(table.at(kDictionary).length) + prov_resident +
      static_cast<size_t>(table.at(kRules).length);

  Result<xkg::Xkg> loaded = Status::Internal("unset");
  if (defer_provenance) {
    const SectionRef prov_ref = table.at(kProvenance);
    std::shared_ptr<MappedFile> keepalive = mapping;
    loaded = xkg::Xkg::FromPartsLazyProvenance(
        std::move(dict), std::move(store), std::move(stats).value(),
        static_cast<size_t>(kg_triples),
        [keepalive, prov_ref]() -> Result<xkg::Xkg::ProvenanceMap> {
          std::span<const char> data =
              SectionSpan(keepalive->bytes(), prov_ref);
          // The open skipped this section entirely; give the deferred
          // decode the same checksum guarantee the eager path had.
          if (Fnv1a64({data.data(), data.size()}) != prov_ref.checksum) {
            return Corrupt("provenance checksum (deferred decode)");
          }
          xkg::Xkg::ProvenanceMap map;
          size_t records = 0;
          TRINIT_RETURN_IF_ERROR(
              DecodeProvenanceAny(data, prov_ref.codec, &map, &records));
          return map;
        });
  } else {
    loaded = xkg::Xkg::FromParts(std::move(dict), std::move(store),
                                 std::move(stats).value(),
                                 static_cast<size_t>(kg_triples),
                                 std::move(provenance));
  }
  if (!loaded.ok()) return loaded.status();
  xkg::Xkg xkg = std::move(loaded).value();
  if (use_views) {
    // Index views (and the deferred PROV decode) alias the mapping; it
    // must live exactly as long as this XKG. ExtendKg rebuilds into
    // owned vectors and drops the old XKG — copy-on-write for free.
    xkg.AttachBacking(std::shared_ptr<const void>(mapping));
  }

  // v3: restore the scatter-gather decomposition exactly as saved —
  // no re-partitioning, no shape re-sorts, no stats recompute. Views
  // alias the mapping already parked inside the XKG above;
  // ShardedStore::FromSnapshot re-proves the partition invariants
  // under kFull. A zero shard count (saved unsharded) leaves the
  // engine's own `shard_count` option in charge.
  if (version >= 3) {
    std::vector<rdf::ShardedStore::ShardSnapshot> parts;
    TRINIT_RETURN_IF_ERROR(LoadShardsRaw(file, table.at(kShards), use_views,
                                         validation, &parts, &touched));
    if (use_views) {
      ++report.sections_mapped;
    } else {
      ++report.sections_decoded;
    }
    if (!parts.empty()) {
      TRINIT_ASSIGN_OR_RETURN(
          rdf::ShardedStore sharded,
          rdf::ShardedStore::FromSnapshot(xkg.store(), std::move(parts),
                                          validation));
      report.shard_count = sharded.shard_count();
      report.resident_bytes += sharded.resident_bytes();
      xkg.AdoptSharding(std::move(sharded));
    }
  }

  relax::RuleSet rules;
  Cursor rule_cursor = cursor_for(kRules);
  TRINIT_RETURN_IF_ERROR(DecodeRules(&rule_cursor, &rules));
  if (rules.size() != rule_count) return Corrupt("rule count vs meta");
  rules.ResolveAgainst(xkg.dict());
  report.rules = rules.size();
  ++report.sections_decoded;  // RULES

  report.bytes_touched = trusted ? touched : file.size();

  return LoadedSnapshot{std::move(xkg), std::move(rules), generation,
                        report};
}

}  // namespace trinit::storage
