#include "storage/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/graph_stats.h"
#include "rdf/triple_store.h"
#include "util/hash.h"

namespace trinit::storage {
namespace {

// ------------------------------------------------------------- layout

// Section ids of format version 1. Every section is present exactly
// once; the reader rejects files missing any of them.
enum SectionId : uint32_t {
  kMeta = 1,
  kDictionary = 2,
  kTriples = 3,
  kPermutations = 4,
  kScoreShapes = 5,
  kGraphStats = 6,
  kProvenance = 7,
  kRules = 8,
};
constexpr uint32_t kNumSections = 8;

// Written after the magic; a big-endian reader sees it byte-swapped and
// rejects the file instead of mis-decoding every integer.
constexpr uint32_t kEndianTag = 0x01020304u;

constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4 + 4;  // 32
constexpr size_t kTableEntryBytes = 4 + 4 + 8 + 8 + 8;  // 32

// --------------------------------------------------------- encoding

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}
void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(out, bits);
}
void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}
void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked forward reader over one section payload. Every
/// accessor fails (returns false) instead of reading past the end, so
/// hostile bytes can at worst produce a typed error, never UB.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadF32(float* v) {
    uint32_t bits;
    if (!ReadU32(&bits)) return false;
    std::memcpy(v, &bits, 4);
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool ReadStr(std::string* v) {
    uint32_t len;
    if (!ReadU32(&len) || remaining() < len) return false;
    v->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  /// Reads `n` fixed-width values; fails before allocating when the
  /// section cannot possibly hold them (corrupt huge counts must not
  /// trigger an OOM before the bounds check).
  template <typename T>
  bool ReadArray(size_t n, size_t elem_bytes, std::vector<T>* out,
                 bool (Cursor::*read_one)(T*)) {
    if (remaining() / elem_bytes < n) return false;
    out->resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (!(this->*read_one)(&(*out)[i])) return false;
    }
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Corrupt(const std::string& what) {
  return Status::ParseError("snapshot corrupt: " + what);
}

// ----------------------------------------------------- section writers

std::string EncodeMeta(const xkg::Xkg& xkg, const relax::RuleSet& rules) {
  std::string out;
  PutU64(&out, xkg.kg_triple_count());
  PutU64(&out, xkg.dict().size());
  PutU64(&out, xkg.store().size());
  PutU64(&out, rules.size());
  return out;
}

std::string EncodeDictionary(const rdf::Dictionary& dict) {
  std::string out;
  PutU64(&out, dict.size());
  dict.ForEach([&](rdf::TermId id) {
    PutU8(&out, static_cast<uint8_t>(dict.kind(id)));
    PutStr(&out, dict.label(id));
  });
  return out;
}

std::string EncodeTriples(const rdf::TripleStore& store) {
  std::string out;
  PutU64(&out, store.size());
  for (const rdf::Triple& t : store.triples()) {
    PutU32(&out, t.s);
    PutU32(&out, t.p);
    PutU32(&out, t.o);
    PutF32(&out, t.confidence);
    PutU32(&out, t.count);
    PutU32(&out, t.source);
  }
  return out;
}

std::string EncodePermutations(const rdf::TripleStore& store) {
  std::string out;
  PutU32(&out,
         static_cast<uint32_t>(rdf::TripleStore::kNumIndexPermutations));
  for (size_t i = 0; i < rdf::TripleStore::kNumIndexPermutations; ++i) {
    // Zero-copy: the span aliases the store's own array.
    std::span<const rdf::TripleId> perm = store.IndexPermutation(i);
    PutU64(&out, perm.size());
    for (rdf::TripleId id : perm) PutU32(&out, id);
  }
  return out;
}

std::string EncodeScoreShapes(const rdf::TripleStore& store) {
  std::string out;
  std::vector<rdf::ScoreOrderIndex::ShapeView> shapes =
      store.BuiltScoreShapes();
  PutU32(&out, static_cast<uint32_t>(shapes.size()));
  for (const rdf::ScoreOrderIndex::ShapeView& shape : shapes) {
    PutU32(&out, shape.shape);
    PutU64(&out, shape.ids.size());
    for (rdf::TripleId id : shape.ids) PutU32(&out, id);
    for (uint64_t mass : shape.prefix_mass) PutU64(&out, mass);
  }
  return out;
}

std::string EncodeGraphStats(const rdf::GraphStats& stats) {
  std::string out;
  PutU64(&out, stats.predicates().size());
  for (rdf::TermId p : stats.predicates()) {
    const rdf::GraphStats::PredicateStats* ps = stats.ForPredicate(p);
    PutU32(&out, p);
    PutU32(&out, ps->triple_count);
    PutU64(&out, ps->evidence_count);
    PutU32(&out, ps->distinct_subjects);
    PutU32(&out, ps->distinct_objects);
    const auto& args = stats.Args(p);
    PutU64(&out, args.size());
    for (const auto& [s, o] : args) {
      PutU32(&out, s);
      PutU32(&out, o);
    }
  }
  return out;
}

std::string EncodeProvenance(const xkg::Xkg& xkg) {
  std::string out;
  std::string body;
  uint64_t entries = 0;
  for (rdf::TripleId id = 0; id < xkg.store().size(); ++id) {
    const std::vector<xkg::Provenance>& records = xkg.ProvenanceFor(id);
    if (records.empty()) continue;
    ++entries;
    PutU32(&body, id);
    PutU32(&body, static_cast<uint32_t>(records.size()));
    for (const xkg::Provenance& prov : records) {
      PutU32(&body, prov.doc_id);
      PutU32(&body, prov.sentence_idx);
      PutF64(&body, prov.extraction_confidence);
      PutStr(&body, prov.sentence);
    }
  }
  PutU64(&out, entries);
  out += body;
  return out;
}

void EncodeTerm(std::string* out, const query::Term& term) {
  PutU8(out, static_cast<uint8_t>(term.kind));
  PutStr(out, term.text);  // ids are cache; re-resolved after load
}

std::string EncodeRules(const relax::RuleSet& rules) {
  std::string out;
  PutU64(&out, rules.size());
  for (const relax::Rule& rule : rules.rules()) {
    PutStr(&out, rule.name);
    PutU8(&out, static_cast<uint8_t>(rule.kind));
    PutF64(&out, rule.weight);
    for (const std::vector<query::TriplePattern>* side :
         {&rule.lhs, &rule.rhs}) {
      PutU32(&out, static_cast<uint32_t>(side->size()));
      for (const query::TriplePattern& pattern : *side) {
        EncodeTerm(&out, pattern.s);
        EncodeTerm(&out, pattern.p);
        EncodeTerm(&out, pattern.o);
      }
    }
  }
  return out;
}

// ----------------------------------------------------- section readers

Status DecodeDictionary(Cursor* c, rdf::Dictionary* dict) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("dictionary count");
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t kind;
    std::string label;
    if (!c->ReadU8(&kind) || !c->ReadStr(&label)) {
      return Corrupt("dictionary entry " + std::to_string(i));
    }
    if (kind > static_cast<uint8_t>(rdf::TermKind::kLiteral)) {
      return Corrupt("dictionary term kind " + std::to_string(kind));
    }
    // Interning in id order reproduces the original ids; a duplicate
    // (kind, label) pair collapses and breaks the sequence — corrupt.
    rdf::TermId id =
        dict->Intern(static_cast<rdf::TermKind>(kind), label);
    if (id != static_cast<rdf::TermId>(i + 1)) {
      return Corrupt("duplicate dictionary entry '" + label + "'");
    }
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after dictionary");
  return Status::Ok();
}

Status DecodeTriples(Cursor* c, std::vector<rdf::Triple>* triples) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("triple count");
  if (c->remaining() / 24 < count) return Corrupt("triple section short");
  triples->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    rdf::Triple& t = (*triples)[i];
    if (!c->ReadU32(&t.s) || !c->ReadU32(&t.p) || !c->ReadU32(&t.o) ||
        !c->ReadF32(&t.confidence) || !c->ReadU32(&t.count) ||
        !c->ReadU32(&t.source)) {
      return Corrupt("triple " + std::to_string(i));
    }
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after triples");
  return Status::Ok();
}

Status DecodePermutations(Cursor* c,
                          rdf::TripleStore::IndexSnapshot* indexes) {
  uint32_t num;
  if (!c->ReadU32(&num)) return Corrupt("permutation count");
  // Each permutation carries at least its u64 size; a hostile count
  // must fail here, not in a gigantic resize (bad_alloc is not a typed
  // error).
  if (c->remaining() / 8 < num) return Corrupt("permutation section short");
  indexes->perms.resize(num);
  for (uint32_t p = 0; p < num; ++p) {
    uint64_t n;
    if (!c->ReadU64(&n)) return Corrupt("permutation size");
    if (!c->ReadArray(n, 4, &indexes->perms[p], &Cursor::ReadU32)) {
      return Corrupt("permutation " + std::to_string(p));
    }
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after permutations");
  return Status::Ok();
}

Status DecodeScoreShapes(Cursor* c,
                         rdf::TripleStore::IndexSnapshot* indexes) {
  uint32_t num;
  if (!c->ReadU32(&num)) return Corrupt("score shape count");
  // Each shape carries at least its u32 id + u64 size + u64 zeroth
  // prefix mass; bound the count before allocating (see above).
  if (c->remaining() / 20 < num) return Corrupt("score shape section short");
  indexes->score_shapes.resize(num);
  uint32_t seen_shapes = 0;  // bitmask; shape ids are < 32
  for (uint32_t i = 0; i < num; ++i) {
    rdf::ScoreOrderIndex::ShapeSnapshot& shape = indexes->score_shapes[i];
    uint64_t n;
    if (!c->ReadU32(&shape.shape) || !c->ReadU64(&n) ||
        !c->ReadArray(n, 4, &shape.ids, &Cursor::ReadU32) ||
        !c->ReadArray(n + 1, 8, &shape.prefix_mass, &Cursor::ReadU64)) {
      return Corrupt("score shape " + std::to_string(i));
    }
    // Duplicates are corruption, not a "restored twice" precondition
    // failure (that status code is reserved for version mismatch).
    if (shape.shape >= 32 || (seen_shapes & (1u << shape.shape)) != 0) {
      return Corrupt("duplicate or out-of-range score shape id " +
                     std::to_string(shape.shape));
    }
    seen_shapes |= 1u << shape.shape;
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after score shapes");
  return Status::Ok();
}

Status DecodeGraphStats(Cursor* c, Result<rdf::GraphStats>* out) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("graph-stats count");
  std::vector<rdf::TermId> predicates;
  std::unordered_map<rdf::TermId, rdf::GraphStats::PredicateStats> stats;
  std::unordered_map<rdf::TermId,
                     std::vector<std::pair<rdf::TermId, rdf::TermId>>>
      args;
  if (c->remaining() / 32 < count) return Corrupt("graph-stats short");
  predicates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    rdf::TermId p;
    rdf::GraphStats::PredicateStats ps;
    uint64_t argn;
    if (!c->ReadU32(&p) || !c->ReadU32(&ps.triple_count) ||
        !c->ReadU64(&ps.evidence_count) ||
        !c->ReadU32(&ps.distinct_subjects) ||
        !c->ReadU32(&ps.distinct_objects) || !c->ReadU64(&argn)) {
      return Corrupt("graph-stats predicate " + std::to_string(i));
    }
    if (c->remaining() / 8 < argn) return Corrupt("graph-stats args short");
    std::vector<std::pair<rdf::TermId, rdf::TermId>> pairs(argn);
    for (uint64_t j = 0; j < argn; ++j) {
      if (!c->ReadU32(&pairs[j].first) || !c->ReadU32(&pairs[j].second)) {
        return Corrupt("graph-stats arg pair");
      }
    }
    predicates.push_back(p);
    stats.emplace(p, ps);
    args.emplace(p, std::move(pairs));
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after graph stats");
  *out = rdf::GraphStats::FromSnapshot(std::move(predicates),
                                       std::move(stats), std::move(args));
  return out->ok() ? Status::Ok() : out->status();
}

Status DecodeProvenance(
    Cursor* c,
    std::unordered_map<rdf::TripleId, std::vector<xkg::Provenance>>* prov,
    size_t* records_out) {
  uint64_t entries;
  if (!c->ReadU64(&entries)) return Corrupt("provenance count");
  for (uint64_t i = 0; i < entries; ++i) {
    uint32_t triple_id, nrec;
    if (!c->ReadU32(&triple_id) || !c->ReadU32(&nrec) || nrec == 0) {
      return Corrupt("provenance entry " + std::to_string(i));
    }
    if (c->remaining() / 20 < nrec) return Corrupt("provenance short");
    if (prov->count(triple_id) != 0) {
      return Corrupt("duplicate provenance entry");
    }
    std::vector<xkg::Provenance>& records = (*prov)[triple_id];
    records.resize(nrec);
    for (uint32_t j = 0; j < nrec; ++j) {
      xkg::Provenance& p = records[j];
      if (!c->ReadU32(&p.doc_id) || !c->ReadU32(&p.sentence_idx) ||
          !c->ReadF64(&p.extraction_confidence) ||
          !c->ReadStr(&p.sentence)) {
        return Corrupt("provenance record");
      }
    }
    *records_out += nrec;
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after provenance");
  return Status::Ok();
}

Status DecodeTerm(Cursor* c, query::Term* term) {
  uint8_t kind;
  if (!c->ReadU8(&kind) || !c->ReadStr(&term->text)) {
    return Corrupt("rule term");
  }
  if (kind > static_cast<uint8_t>(query::Term::Kind::kLiteral)) {
    return Corrupt("rule term kind " + std::to_string(kind));
  }
  term->kind = static_cast<query::Term::Kind>(kind);
  term->id = rdf::kNullTerm;  // re-resolved against the loaded dictionary
  return Status::Ok();
}

Status DecodeRules(Cursor* c, relax::RuleSet* rules) {
  uint64_t count;
  if (!c->ReadU64(&count)) return Corrupt("rule count");
  for (uint64_t i = 0; i < count; ++i) {
    relax::Rule rule;
    uint8_t kind;
    if (!c->ReadStr(&rule.name) || !c->ReadU8(&kind) ||
        !c->ReadF64(&rule.weight)) {
      return Corrupt("rule " + std::to_string(i));
    }
    if (kind > static_cast<uint8_t>(relax::RuleKind::kOperator)) {
      return Corrupt("rule kind " + std::to_string(kind));
    }
    rule.kind = static_cast<relax::RuleKind>(kind);
    for (std::vector<query::TriplePattern>* side : {&rule.lhs, &rule.rhs}) {
      uint32_t n;
      if (!c->ReadU32(&n)) return Corrupt("rule pattern count");
      if (c->remaining() / 15 < n) return Corrupt("rule patterns short");
      side->resize(n);
      for (query::TriplePattern& pattern : *side) {
        TRINIT_RETURN_IF_ERROR(DecodeTerm(c, &pattern.s));
        TRINIT_RETURN_IF_ERROR(DecodeTerm(c, &pattern.p));
        TRINIT_RETURN_IF_ERROR(DecodeTerm(c, &pattern.o));
      }
    }
    // Add() re-validates structure; a corrupt rule that decodes into an
    // invalid shape is rejected here with its own message.
    TRINIT_RETURN_IF_ERROR(rules->Add(std::move(rule)));
  }
  if (!c->AtEnd()) return Corrupt("trailing bytes after rules");
  return Status::Ok();
}

}  // namespace

// --------------------------------------------------------------- write

Status SnapshotWriter::Write(const xkg::Xkg& xkg,
                             const relax::RuleSet& rules,
                             uint64_t generation, const std::string& path) {
  // Index arrays are encoded straight from the store's own memory
  // (span views), so the transient cost of a save is one encoded copy
  // of the state, not an intermediate export on top of it.
  const std::pair<uint32_t, std::string> sections[kNumSections] = {
      {kMeta, EncodeMeta(xkg, rules)},
      {kDictionary, EncodeDictionary(xkg.dict())},
      {kTriples, EncodeTriples(xkg.store())},
      {kPermutations, EncodePermutations(xkg.store())},
      {kScoreShapes, EncodeScoreShapes(xkg.store())},
      {kGraphStats, EncodeGraphStats(xkg.stats())},
      {kProvenance, EncodeProvenance(xkg)},
      {kRules, EncodeRules(rules)},
  };

  // Header + table, then 8-aligned payloads — streamed section by
  // section so peak memory stays one copy of the encoded state, not
  // two.
  std::string head;
  head.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&head, kSnapshotVersion);
  PutU32(&head, kEndianTag);
  PutU64(&head, generation);
  PutU32(&head, kNumSections);
  // Header checksum (low 32 bits of FNV-1a over the 28 bytes above):
  // the generation field has no section covering it, and it must not
  // load silently wrong.
  PutU32(&head, static_cast<uint32_t>(Fnv1a64(head)));

  size_t offset = kHeaderBytes + kNumSections * kTableEntryBytes;
  for (const auto& [id, payload] : sections) {
    offset = (offset + 7) & ~size_t{7};
    PutU32(&head, id);
    PutU32(&head, 0);  // reserved
    PutU64(&head, offset);
    PutU64(&head, payload.size());
    PutU64(&head, Fnv1a64(payload));
    offset += payload.size();
  }

  // Write to a sibling temp file and rename into place: a mid-write
  // failure (disk full, crash) must not destroy a previously good
  // snapshot at `path` — replicas rely on "serialize once, load many
  // times".
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + tmp_path);
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    size_t written = head.size();
    for (const auto& [id, payload] : sections) {
      static constexpr char kPad[8] = {};
      const size_t pad = ((written + 7) & ~size_t{7}) - written;
      out.write(kPad, static_cast<std::streamsize>(pad));
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
      written += pad + payload.size();
    }
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IoError("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------- read

Result<LoadedSnapshot> SnapshotReader::Read(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string file(static_cast<size_t>(size), '\0');
  if (!in.read(file.data(), size)) {
    return Status::IoError("read failed: " + path);
  }

  // Header. Foreign files fail on the magic (InvalidArgument), old or
  // newer snapshots on the version (FailedPrecondition) — distinct
  // codes so callers can tell "not ours" from "ours, re-save it".
  if (file.size() < kHeaderBytes ||
      std::memcmp(file.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::InvalidArgument("not a TriniT snapshot: " + path);
  }
  // Cursor starts past the just-compared magic.
  Cursor header(file.data() + sizeof(kSnapshotMagic),
                file.size() - sizeof(kSnapshotMagic));
  uint32_t version, endian, section_count, header_crc;
  uint64_t generation;
  header.ReadU32(&version);
  header.ReadU32(&endian);
  header.ReadU64(&generation);
  header.ReadU32(&section_count);
  header.ReadU32(&header_crc);
  if (endian != kEndianTag) {
    return Status::InvalidArgument(
        "snapshot byte order does not match this machine");
  }
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "snapshot format version " + std::to_string(version) +
        "; this build reads version " + std::to_string(kSnapshotVersion) +
        " (re-save from source)");
  }
  // The generation lives only in the header (no section checksum covers
  // it); verify the header's own checksum before trusting it.
  if (header_crc !=
      static_cast<uint32_t>(Fnv1a64({file.data(), kHeaderBytes - 4}))) {
    return Corrupt("header checksum mismatch");
  }
  if (section_count != kNumSections) {
    return Corrupt("expected " + std::to_string(kNumSections) +
                   " sections, header says " +
                   std::to_string(section_count));
  }
  if (file.size() < kHeaderBytes + kNumSections * kTableEntryBytes) {
    return Corrupt("truncated section table");
  }

  // Section table: bounds, then checksums, before any payload decode.
  struct Section {
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  std::unordered_map<uint32_t, Section> table;
  for (uint32_t i = 0; i < kNumSections; ++i) {
    uint32_t id, rsvd;
    Section s;
    uint64_t checksum;
    header.ReadU32(&id);
    header.ReadU32(&rsvd);
    (void)rsvd;
    header.ReadU64(&s.offset);
    header.ReadU64(&s.length);
    header.ReadU64(&checksum);
    if (s.offset > file.size() || s.length > file.size() - s.offset) {
      return Corrupt("section " + std::to_string(id) +
                     " out of bounds (truncated file?)");
    }
    if (Fnv1a64({file.data() + s.offset,
                 static_cast<size_t>(s.length)}) != checksum) {
      return Corrupt("checksum mismatch in section " + std::to_string(id));
    }
    if (!table.emplace(id, s).second) {
      return Corrupt("duplicate section " + std::to_string(id));
    }
  }
  auto cursor_for = [&](uint32_t id) {
    const Section& s = table.at(id);
    return Cursor(file.data() + s.offset, static_cast<size_t>(s.length));
  };
  for (uint32_t id = kMeta; id <= kRules; ++id) {
    if (table.count(id) == 0) {
      return Corrupt("missing section " + std::to_string(id));
    }
  }

  // Meta cross-checks let a truncation that happens to preserve section
  // framing still fail loudly.
  Cursor meta = cursor_for(kMeta);
  uint64_t kg_triples, dict_terms, triple_count, rule_count;
  if (!meta.ReadU64(&kg_triples) || !meta.ReadU64(&dict_terms) ||
      !meta.ReadU64(&triple_count) || !meta.ReadU64(&rule_count)) {
    return Corrupt("meta section");
  }

  LoadReport report;
  report.bytes = file.size();

  auto dict = std::make_unique<rdf::Dictionary>();
  Cursor dict_cursor = cursor_for(kDictionary);
  TRINIT_RETURN_IF_ERROR(DecodeDictionary(&dict_cursor, dict.get()));
  if (dict->size() != dict_terms) return Corrupt("dictionary count vs meta");
  report.terms = dict->size();

  std::vector<rdf::Triple> triples;
  Cursor triple_cursor = cursor_for(kTriples);
  TRINIT_RETURN_IF_ERROR(DecodeTriples(&triple_cursor, &triples));
  if (triples.size() != triple_count) return Corrupt("triple count vs meta");
  report.triples = triples.size();

  rdf::TripleStore::IndexSnapshot indexes;
  Cursor perm_cursor = cursor_for(kPermutations);
  TRINIT_RETURN_IF_ERROR(DecodePermutations(&perm_cursor, &indexes));
  Cursor shape_cursor = cursor_for(kScoreShapes);
  TRINIT_RETURN_IF_ERROR(DecodeScoreShapes(&shape_cursor, &indexes));
  report.permutations_restored = indexes.perms.size();
  report.score_shapes_restored = indexes.score_shapes.size();

  Result<rdf::GraphStats> stats = Status::Internal("unset");
  Cursor stats_cursor = cursor_for(kGraphStats);
  TRINIT_RETURN_IF_ERROR(DecodeGraphStats(&stats_cursor, &stats));

  std::unordered_map<rdf::TripleId, std::vector<xkg::Provenance>> provenance;
  Cursor prov_cursor = cursor_for(kProvenance);
  TRINIT_RETURN_IF_ERROR(
      DecodeProvenance(&prov_cursor, &provenance, &report.provenance_records));

  TRINIT_ASSIGN_OR_RETURN(
      rdf::TripleStore store,
      rdf::TripleStore::FromSnapshot(std::move(triples), std::move(indexes)));

  TRINIT_ASSIGN_OR_RETURN(
      xkg::Xkg xkg,
      xkg::Xkg::FromParts(std::move(dict), std::move(store),
                          std::move(stats).value(),
                          static_cast<size_t>(kg_triples),
                          std::move(provenance)));

  relax::RuleSet rules;
  Cursor rule_cursor = cursor_for(kRules);
  TRINIT_RETURN_IF_ERROR(DecodeRules(&rule_cursor, &rules));
  if (rules.size() != rule_count) return Corrupt("rule count vs meta");
  rules.ResolveAgainst(xkg.dict());
  report.rules = rules.size();

  return LoadedSnapshot{std::move(xkg), std::move(rules), generation,
                        report};
}

}  // namespace trinit::storage
