#include "storage/mapped_file.h"

#include <algorithm>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define TRINIT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TRINIT_HAVE_MMAP 0
#endif

namespace trinit::storage {

bool MappedFile::Supported() { return TRINIT_HAVE_MMAP != 0; }

#if TRINIT_HAVE_MMAP

Result<MappedFile> MappedFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for mmap: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat: " + path);
  }
  MappedFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("mmap failed: " + path);
    }
    out.data_ = static_cast<const char*>(addr);
  }
  // The mapping holds its own reference to the file; the descriptor is
  // no longer needed (and keeping it would leak fds across N replicas).
  ::close(fd);
  return out;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

bool MappedFile::AdviseWillNeed(size_t offset, size_t length) const {
  if (data_ == nullptr || length == 0 || offset >= size_) return false;
  length = std::min(length, size_ - offset);
  // posix_madvise takes page-aligned addresses; round the start down
  // (the extra head bytes are on the same page anyway).
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t head = offset % page;
  return ::posix_madvise(
             const_cast<char*>(data_ + (offset - head)), length + head,
             POSIX_MADV_WILLNEED) == 0;
}

#else  // !TRINIT_HAVE_MMAP

Result<MappedFile> MappedFile::Map(const std::string& path) {
  return Status::Unimplemented("mmap is not available on this platform: " +
                               path);
}

MappedFile::~MappedFile() = default;

bool MappedFile::AdviseWillNeed(size_t, size_t) const { return false; }

#endif  // TRINIT_HAVE_MMAP

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    MappedFile tmp(std::move(other));
    std::swap(data_, tmp.data_);
    std::swap(size_, tmp.size_);
  }
  return *this;
}

}  // namespace trinit::storage
