#ifndef TRINIT_STORAGE_VARINT_H_
#define TRINIT_STORAGE_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace trinit::storage {

/// LEB128 varint + zigzag primitives for the snapshot codec layer
/// (`Codec::kVarintDelta`) — the classic compressed-posting-block
/// encoding of inverted-index engines, applied to the TRNTSNAP
/// sections whose arrays are sorted (delta-friendly).
///
/// Encoding: 7 payload bits per byte, LSB group first, high bit =
/// continuation. A canonical u64 takes at most 10 bytes. Decoding is
/// bounds-checked and rejects streams with more than 10 continuation
/// bytes, so hostile bytes can at worst produce a typed error upstream,
/// never UB or an unbounded scan.

inline void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Zigzag-maps a signed delta into the small-unsigned range varints
/// like: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutZigzag(std::string* out, int64_t v) {
  PutVarint(out, ZigzagEncode(v));
}

/// Reads one varint from [*pos, size). Returns false (leaving *pos
/// unspecified) on truncation or a stream longer than the canonical
/// 10 bytes.
inline bool GetVarint(const char* data, size_t size, size_t* pos,
                      uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) return false;
    const uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte may only carry the single remaining high bit; a
      // longer (non-canonical) stream is corruption.
      if (shift == 63 && byte > 1) return false;
      *v = result;
      return true;
    }
  }
  return false;
}

inline bool GetZigzag(const char* data, size_t size, size_t* pos,
                      int64_t* v) {
  uint64_t raw;
  if (!GetVarint(data, size, pos, &raw)) return false;
  *v = ZigzagDecode(raw);
  return true;
}

}  // namespace trinit::storage

#endif  // TRINIT_STORAGE_VARINT_H_
