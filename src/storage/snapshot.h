#ifndef TRINIT_STORAGE_SNAPSHOT_H_
#define TRINIT_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "relax/rule_set.h"
#include "util/result.h"
#include "util/status.h"
#include "xkg/xkg.h"

namespace trinit::storage {

/// Binary snapshot persistence of the complete TriniT serving state —
/// the engine-side answer to "real engines serialize their inverted
/// structures once and load them many times" (cf. the demo's
/// ElasticSearch backend, which persisted its postings natively, while
/// this reproduction rebuilt everything from TSV on every start).
///
/// One snapshot file holds, in this order:
///
///   header    magic "TRNTSNAP", format version, endianness tag, the
///             XKG generation at save time, section count
///   table     one entry per section: id, flags (low byte = section
///             codec), byte offset, byte length, FNV-1a 64 checksum of
///             the payload
///   sections  8-byte-aligned little-endian payloads:
///             META, DICT, TRIPLES, PERMS, SCORE, STATS, PROV, RULES,
///             and (v3) SHARDS — the engine's scatter-gather
///             decomposition: per shard, its member-id list, its
///             materialized score shapes, and its own STATS block, all
///             in the same viewable raw layouts as the global sections
///             (SHARDS is always raw — per-shard subsections stay
///             zero-copy under LoadMode::kMapped). A v3 file written
///             by an unsharded engine carries an empty SHARDS section
///             (shard count 0); a sharded snapshot restores its own
///             decomposition, overriding `TrinitOptions::shard_count`.
///
/// Two orthogonal axes extend the plain "write raw, read a copy" story:
///
/// *Load mode* (`ReadOptions::mode`). `LoadMode::kCopy` reads the file
/// into memory and decodes every section into owning structures.
/// `LoadMode::kMapped` mmaps the file read-only and serves the
/// fixed-width sections — TRIPLES records, the five PERMS arrays,
/// SCORE ids/prefix-mass arrays, STATS (s,o) pair arrays — as zero-copy
/// span views over the mapping (the page cache shares the physical
/// bytes across replicas); only the structures that need hashing or
/// pointers (DICT, STATS headers, RULES, META) are materialized. The
/// mapping is parked behind a shared_ptr inside the loaded `xkg::Xkg`,
/// so views cannot outlive their pages, and the first `ExtendKg`
/// rebuild copies into owned vectors (copy-on-write; see
/// docs/CONCURRENCY.md, "Mapping lifetime"). Mapped mode falls back to
/// the copying path when mmap is unavailable, and to decoding when a
/// section is codec-compressed or the file is format v1 (whose array
/// layouts are not alignment-safe to view).
///
/// *Section codec* (`WriteOptions::codec`, recorded per section in the
/// table's flag byte). `SectionCodec::kRaw` is byte-identical in
/// semantics to format v1. `SectionCodec::kVarintDelta` applies the
/// classic inverted-index compression — LEB128 varints over deltas of
/// the sorted arrays, zigzag for signed residuals, and a front-coded
/// sorted sentence table for provenance text — to the five bulk
/// sections (TRIPLES, PERMS, SCORE, STATS, PROV). Encoded sections are
/// always decoded into owned memory on load (codec-on trades mapped
/// zero-copy for a >=2x smaller file; pick per deployment).
///
/// Verification (`ReadOptions::verify`). `kFull` (default) checksums
/// every section and re-validates every decoded invariant in O(n) —
/// identical guarantees in both load modes. `kTrusted` is the
/// explicit opt-in for mapped serving of files this process (or a
/// trusted pipeline) wrote: only O(1) structural checks run on the
/// viewed sections, provenance decode is deferred until the first
/// `Explain`, and a cold open touches a small fraction of the file's
/// bytes (`LoadReport::bytes_touched`). Trusted mode still never
/// exhibits UB on a malformed *frame* (every offset/length/count is
/// bounds-checked before use), but corrupt array *contents* inside an
/// intact frame are served as-is — that is the contract.
///
/// Versioning policy: `kSnapshotVersion` is bumped on ANY layout
/// change; the reader accepts `kMinSnapshotVersion`..`kSnapshotVersion`
/// (FailedPrecondition otherwise) and callers re-save from the
/// TSV/world source to upgrade. v1 files (no codec byte, unaligned
/// array layouts) load correctly through the copying decode path.
/// Error taxonomy, all typed `util::Status` (never a crash, no UB on
/// hostile bytes):
///
///   kIoError            file cannot be opened/read/written
///   kInvalidArgument    not a TriniT snapshot (bad magic/endianness),
///                       or a decoded structure violates an invariant
///   kFailedPrecondition snapshot written by a different format
///                       version, or carries a codec this build does
///                       not know
///   kParseError         corrupt bytes: truncation, out-of-bounds
///                       section, checksum mismatch, malformed payload
///
/// Dictionary note: the term hash index is deliberately *not*
/// persisted — terms are a small fraction of the state (measured ~3%
/// of file bytes, ~480 terms vs ~2409 triples on the P4 world) and the
/// id-order Intern replay that rebuilds the hash doubles as the
/// section's integrity check; persisting a hash table would grow every
/// snapshot to save microseconds.

/// Newest format version this build writes and reads.
inline constexpr uint32_t kSnapshotVersion = 3;
/// Oldest format version this build still reads (and can be asked to
/// write, for compatibility tests).
inline constexpr uint32_t kMinSnapshotVersion = 1;

/// Leading 8 bytes of every TriniT snapshot file.
inline constexpr char kSnapshotMagic[8] = {'T', 'R', 'N', 'T',
                                           'S', 'N', 'A', 'P'};

/// Per-section compression codec, recorded in the section table's flag
/// byte. Values are wire format — do not renumber.
enum class SectionCodec : uint8_t {
  kRaw = 0,          ///< fixed-width little-endian records (v1 semantics)
  kVarintDelta = 1,  ///< LEB128 varint + delta/zigzag (+ front-coded
                     ///< sentence table in PROV)
};

struct WriteOptions {
  /// Codec for the five bulk sections (TRIPLES, PERMS, SCORE, STATS,
  /// PROV); META/DICT/RULES are always raw. Requires format_version 2.
  SectionCodec codec = SectionCodec::kRaw;
  /// Wire format to emit; `kMinSnapshotVersion`..`kSnapshotVersion`.
  /// Writing v1 (compat escape hatch, exercised by tests) forbids
  /// codecs.
  uint32_t format_version = kSnapshotVersion;
};

enum class LoadMode : uint8_t {
  kCopy = 0,    ///< read + decode everything into owned memory
  kMapped = 1,  ///< mmap; view fixed-width sections zero-copy
};

struct ReadOptions {
  LoadMode mode = LoadMode::kCopy;
  /// kTrusted only changes behavior in mapped mode on v2+ files; the
  /// copying path always fully verifies.
  rdf::SnapshotValidation verify = rdf::SnapshotValidation::kFull;
  /// Mapped mode only: hint the kernel (posix_madvise WILLNEED) to
  /// start readahead on the viewed bulk sections, so first-query page
  /// faults overlap with the open instead of serializing behind it.
  /// Purely advisory — answers, verification, and `bytes_touched`
  /// accounting are identical either way; `bytes_prefetched` reports
  /// how much was hinted. No effect on the copying path (which reads
  /// everything anyway).
  bool prefetch = false;
};

class SnapshotWriter {
 public:
  /// Writes `xkg` + `rules` (and the serving `generation`) to `path`,
  /// overwriting. The XKG is not mutated; lazily-built index shapes are
  /// persisted exactly as currently materialized.
  static Status Write(const xkg::Xkg& xkg, const relax::RuleSet& rules,
                      uint64_t generation, const std::string& path,
                      const WriteOptions& options);
  static Status Write(const xkg::Xkg& xkg, const relax::RuleSet& rules,
                      uint64_t generation, const std::string& path) {
    return Write(xkg, rules, generation, path, WriteOptions{});
  }
};

/// What a snapshot load actually did — the cold-start work counters
/// `bench_p4_coldstart` contrasts with a TSV rebuild.
struct LoadReport {
  size_t terms = 0;                   ///< dictionary entries restored
  size_t triples = 0;                 ///< store triples restored
  size_t permutations_restored = 0;   ///< SPO-permutation arrays, verbatim
  size_t score_shapes_restored = 0;   ///< lazy shapes restored pre-built
  size_t provenance_records = 0;
  size_t rules = 0;                   ///< rule set entries (no re-mining)
  size_t bytes = 0;                   ///< snapshot file size
  /// Index structures that had to be rebuilt (sorted) during load —
  /// always 0 on the snapshot path; the TSV cold start's contrast.
  size_t index_rebuilds = 0;

  /// True when the file was served through an mmap (LoadMode::kMapped
  /// and the platform supports it).
  bool mapped = false;
  /// True when provenance decode was deferred to first use (trusted
  /// mapped mode).
  bool provenance_deferred = false;
  /// Estimate of distinct file bytes this load actually read (header,
  /// table, checksummed/decoded sections, and the framing words of
  /// viewed sections). Equals `bytes` on every fully-verifying path;
  /// a small fraction of it on the trusted mapped path.
  size_t bytes_touched = 0;
  /// Estimate of private (per-process) bytes held by the loaded state:
  /// owned index arrays + decoded dictionary/provenance/rules. Mapped
  /// views contribute 0 — their pages are shared and evictable.
  size_t resident_bytes = 0;
  size_t sections_mapped = 0;   ///< sections served as views (+ deferred)
  size_t sections_decoded = 0;  ///< sections materialized into memory
  size_t sections_raw = 0;      ///< table codec bytes: SectionCodec::kRaw
  size_t sections_varint = 0;   ///< table codec bytes: kVarintDelta
  /// Shards of the restored scatter-gather decomposition (0 when the
  /// snapshot was saved unsharded or predates v3).
  size_t shard_count = 0;
  /// Bytes covered by madvise(WILLNEED) readahead hints
  /// (`ReadOptions::prefetch` on a mapped load); 0 otherwise.
  size_t bytes_prefetched = 0;
};

/// A successfully loaded snapshot: the serving state plus the XKG
/// generation stamped at save time (seed for a coherent serving cache).
struct LoadedSnapshot {
  xkg::Xkg xkg;
  relax::RuleSet rules;
  uint64_t generation = 0;
  LoadReport report;
};

class SnapshotReader {
 public:
  /// Reads a snapshot previously written by `SnapshotWriter::Write`.
  /// Rejects foreign, truncated, corrupt, and version-mismatched files
  /// with the typed errors documented above.
  static Result<LoadedSnapshot> Read(const std::string& path,
                                     const ReadOptions& options);
  static Result<LoadedSnapshot> Read(const std::string& path) {
    return Read(path, ReadOptions{});
  }
};

}  // namespace trinit::storage

#endif  // TRINIT_STORAGE_SNAPSHOT_H_
