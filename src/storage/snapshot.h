#ifndef TRINIT_STORAGE_SNAPSHOT_H_
#define TRINIT_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "relax/rule_set.h"
#include "util/result.h"
#include "util/status.h"
#include "xkg/xkg.h"

namespace trinit::storage {

/// Binary snapshot persistence of the complete TriniT serving state —
/// the engine-side answer to "real engines serialize their inverted
/// structures once and load them many times" (cf. the demo's
/// ElasticSearch backend, which persisted its postings natively, while
/// this reproduction rebuilt everything from TSV on every start).
///
/// One snapshot file holds, in this order:
///
///   header    magic "TRNTSNAP", format version, endianness tag, the
///             XKG generation at save time, section count
///   table     one entry per section: id, byte offset, byte length,
///             FNV-1a 64 checksum of the payload
///   sections  8-byte-aligned, fixed-width little-endian payloads:
///             META, DICT, TRIPLES, PERMS, SCORE, STATS, PROV, RULES
///
/// The layout is mmap-friendly by construction — every section is a
/// run of aligned fixed-width records addressed through the offset
/// table — though the current reader copies into the owning structures
/// (std::vector-backed indexes) rather than aliasing the mapping.
///
/// What is persisted is the *serving* state, index bytes included: the
/// dictionary (labels + kinds in id order), the deduplicated triples
/// with confidences/counts/sources, all five non-SPO permutation
/// arrays, every `rdf::ScoreOrderIndex` shape built so far (ids +
/// prefix-mass sums verbatim, so the lazy first-touch sort is skipped
/// after load; unbuilt shapes stay lazy), the graph statistics, the
/// extraction provenance, and the active relaxation rule set. Loading
/// therefore performs no sort, no mining, and no TSV parse.
///
/// Versioning policy: `kSnapshotVersion` is bumped on ANY layout
/// change; there is no in-place migration — a reader only accepts its
/// own version (FailedPrecondition otherwise) and callers re-save from
/// the TSV/world source. Error taxonomy, all typed `util::Status`
/// (never a crash, no UB on hostile bytes):
///
///   kIoError            file cannot be opened/read/written
///   kInvalidArgument    not a TriniT snapshot (bad magic/endianness),
///                       or a decoded structure violates an invariant
///   kFailedPrecondition snapshot written by a different format version
///   kParseError         corrupt bytes: truncation, out-of-bounds
///                       section, checksum mismatch, malformed payload
class SnapshotWriter {
 public:
  /// Writes `xkg` + `rules` (and the serving `generation`) to `path`,
  /// overwriting. The XKG is not mutated; lazily-built index shapes are
  /// persisted exactly as currently materialized.
  static Status Write(const xkg::Xkg& xkg, const relax::RuleSet& rules,
                      uint64_t generation, const std::string& path);
};

/// What a snapshot load actually did — the cold-start work counters
/// `bench_p4_coldstart` contrasts with a TSV rebuild.
struct LoadReport {
  size_t terms = 0;                   ///< dictionary entries restored
  size_t triples = 0;                 ///< store triples restored
  size_t permutations_restored = 0;   ///< SPO-permutation arrays, verbatim
  size_t score_shapes_restored = 0;   ///< lazy shapes restored pre-built
  size_t provenance_records = 0;
  size_t rules = 0;                   ///< rule set entries (no re-mining)
  size_t bytes = 0;                   ///< snapshot file size
  /// Index structures that had to be rebuilt (sorted) during load —
  /// always 0 on the snapshot path; the TSV cold start's contrast.
  size_t index_rebuilds = 0;
};

/// A successfully loaded snapshot: the serving state plus the XKG
/// generation stamped at save time (seed for a coherent serving cache).
struct LoadedSnapshot {
  xkg::Xkg xkg;
  relax::RuleSet rules;
  uint64_t generation = 0;
  LoadReport report;
};

class SnapshotReader {
 public:
  /// Reads a snapshot previously written by `SnapshotWriter::Write`.
  /// Rejects foreign, truncated, corrupt, and version-mismatched files
  /// with the typed errors documented above.
  static Result<LoadedSnapshot> Read(const std::string& path);
};

/// Format version this build writes and is able to read.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Leading 8 bytes of every TriniT snapshot file.
inline constexpr char kSnapshotMagic[8] = {'T', 'R', 'N', 'T',
                                           'S', 'N', 'A', 'P'};

}  // namespace trinit::storage

#endif  // TRINIT_STORAGE_SNAPSHOT_H_
