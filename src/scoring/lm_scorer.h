#ifndef TRINIT_SCORING_LM_SCORER_H_
#define TRINIT_SCORING_LM_SCORER_H_

#include <span>

#include "rdf/triple.h"
#include "xkg/xkg.h"

namespace trinit::scoring {

/// Tunables of the scoring model. The `use_*` switches exist for the
/// scoring-component ablation (bench A2); production defaults are all
/// true.
struct ScorerOptions {
  bool use_tf = true;          ///< triple evidence count in the numerator
  bool use_idf = true;         ///< pattern selectivity in the denominator
  bool use_confidence = true;  ///< extraction confidence factor

  /// Minimum phrase similarity for a query token term to soft-match an
  /// XKG token term (extended triple patterns, paper §2).
  double token_match_threshold = 0.35;

  /// Value comparison (request tests assert the effective options an
  /// execution resolved to).
  friend bool operator==(const ScorerOptions&,
                         const ScorerOptions&) = default;
};

/// Query-likelihood scoring of answers (paper §4): "a triple pattern is
/// viewed as a document that emits triples with certain probabilities.
/// The probability assigned to an SPO fact in response to a triple
/// pattern is proportional to the frequency with which the fact is
/// observed (a tf-like effect) and inversely proportional to the total
/// number of matches for the triple pattern (an idf-like effect
/// corresponding to selectivity)."
///
/// All scores live in log space; per-pattern scores are <= 0 and an
/// answer's score is the *sum* of its pattern scores plus the log of
/// every relaxation-rule weight and soft-match similarity on its
/// derivation ("answers obtained through a relaxation rule have their
/// scores attenuated by the weight of the rule").
class LmScorer {
 public:
  explicit LmScorer(const xkg::Xkg& xkg, ScorerOptions options = {});

  /// Total evidence mass of a pattern's match set: sum of triple counts
  /// (the denominator of the emission probability).
  uint64_t PatternMass(std::span<const rdf::TripleId> matches) const;

  /// log P(t | pattern) for a triple in a match set with total mass
  /// `pattern_mass` (must be >= the triple's own count).
  double ScoreTriple(const rdf::Triple& t, uint64_t pattern_mass) const;

  /// Monotone upper bound on `ScoreTriple(t, pattern_mass)` over every
  /// triple whose emission weight (`ScoreOrderIndex::WeightOf`: count ×
  /// confidence) is <= `max_weight` — i.e. over any suffix of a
  /// score-ordered index list whose next entry has that weight. This is
  /// what lets a lazy stream's `BestPossible()` speak for items it has
  /// not decoded yet: the bound is non-increasing as the list is
  /// consumed, so early termination stays sound under every scoring
  /// ablation (the tf/confidence-off configs fall back to looser but
  /// still valid caps). Assumes triple counts >= 1 (all builders
  /// guarantee it).
  double UpperBoundForList(double max_weight, uint64_t pattern_mass) const;

  /// log(w) for a relaxation weight or soft-match similarity, clamped so
  /// that w=0 yields a large-but-finite penalty (keeps sorting total).
  static double LogWeight(double w);

  /// Upper bound of any per-pattern log score (0: probabilities <= 1).
  static constexpr double kMaxPatternScore = 0.0;

  /// Floor used for impossible events.
  static constexpr double kMinScore = -1e9;

  const ScorerOptions& options() const { return options_; }
  const xkg::Xkg& xkg() const { return *xkg_; }

 private:
  const xkg::Xkg* xkg_;
  ScorerOptions options_;
};

}  // namespace trinit::scoring

#endif  // TRINIT_SCORING_LM_SCORER_H_
