#include "scoring/lm_scorer.h"

#include <algorithm>
#include <cmath>

namespace trinit::scoring {

LmScorer::LmScorer(const xkg::Xkg& xkg, ScorerOptions options)
    : xkg_(&xkg), options_(options) {}

uint64_t LmScorer::PatternMass(
    std::span<const rdf::TripleId> matches) const {
  uint64_t mass = 0;
  for (rdf::TripleId id : matches) {
    mass += xkg_->store().triple(id).count;
  }
  return mass;
}

double LmScorer::ScoreTriple(const rdf::Triple& t,
                             uint64_t pattern_mass) const {
  double numerator =
      options_.use_tf ? static_cast<double>(t.count) : 1.0;
  if (options_.use_confidence) {
    numerator *= static_cast<double>(t.confidence);
  }
  double denominator =
      options_.use_idf
          ? static_cast<double>(std::max<uint64_t>(pattern_mass, 1))
          : static_cast<double>(std::max<uint64_t>(
                xkg_->store().total_count(), 1));
  if (numerator <= 0.0) return kMinScore;
  double p = numerator / denominator;
  // Emission probabilities never exceed 1 (count <= mass, confidence
  // <= 1) except in the idf-off ablation; clamp to keep the invariant
  // "per-pattern score <= kMaxPatternScore" that the top-k bounds use.
  return std::min(std::log(p), kMaxPatternScore);
}

double LmScorer::LogWeight(double w) {
  if (w <= 0.0) return kMinScore;
  return std::min(std::log(w), 0.0);
}

}  // namespace trinit::scoring
