#include "scoring/lm_scorer.h"

#include <algorithm>
#include <cmath>

namespace trinit::scoring {

LmScorer::LmScorer(const xkg::Xkg& xkg, ScorerOptions options)
    : xkg_(&xkg), options_(options) {}

uint64_t LmScorer::PatternMass(
    std::span<const rdf::TripleId> matches) const {
  uint64_t mass = 0;
  for (rdf::TripleId id : matches) {
    mass += xkg_->store().triple(id).count;
  }
  return mass;
}

double LmScorer::ScoreTriple(const rdf::Triple& t,
                             uint64_t pattern_mass) const {
  double numerator =
      options_.use_tf ? static_cast<double>(t.count) : 1.0;
  if (options_.use_confidence) {
    numerator *= static_cast<double>(t.confidence);
  }
  double denominator =
      options_.use_idf
          ? static_cast<double>(std::max<uint64_t>(pattern_mass, 1))
          : static_cast<double>(std::max<uint64_t>(
                xkg_->store().total_count(), 1));
  if (numerator <= 0.0) return kMinScore;
  double p = numerator / denominator;
  // Emission probabilities never exceed 1 (count <= mass, confidence
  // <= 1) except in the idf-off ablation; clamp to keep the invariant
  // "per-pattern score <= kMaxPatternScore" that the top-k bounds use.
  return std::min(std::log(p), kMaxPatternScore);
}

double LmScorer::UpperBoundForList(double max_weight,
                                   uint64_t pattern_mass) const {
  double numerator;
  if (options_.use_tf && options_.use_confidence) {
    // Production config: the emission numerator *is* the list weight.
    numerator = max_weight;
  } else if (options_.use_tf) {
    // Confidence stripped: a low-weight triple can still carry a large
    // count (even at weight 0, via confidence 0), so only the
    // store-wide cap is sound.
    numerator = static_cast<double>(
        std::max<uint32_t>(xkg_->store().max_count(), 1));
  } else if (options_.use_confidence) {
    // Count stripped: confidence <= 1 and, since count >= 1,
    // confidence <= weight.
    numerator = std::min(1.0, max_weight);
  } else {
    numerator = 1.0;
  }
  if (numerator <= 0.0) return kMinScore;
  double denominator =
      options_.use_idf
          ? static_cast<double>(std::max<uint64_t>(pattern_mass, 1))
          : static_cast<double>(std::max<uint64_t>(
                xkg_->store().total_count(), 1));
  return std::min(std::log(numerator / denominator), kMaxPatternScore);
}

double LmScorer::LogWeight(double w) {
  if (w <= 0.0) return kMinScore;
  return std::min(std::log(w), 0.0);
}

}  // namespace trinit::scoring
