#ifndef TRINIT_TOPK_ANSWER_H_
#define TRINIT_TOPK_ANSWER_H_

#include <string>
#include <vector>

#include "query/binding.h"
#include "rdf/triple.h"
#include "relax/rule.h"

namespace trinit::topk {

/// A soft vocabulary substitution made while matching a token term:
/// the query phrase was matched against `matched_phrase` with the given
/// similarity (which attenuates the score like a rule weight).
struct SoftMatch {
  std::string query_phrase;
  std::string matched_phrase;
  double similarity = 1.0;
};

/// How one original query pattern was satisfied: through which relaxed
/// form, which rules, which triples. This is the raw material of the
/// demo's answer-explanation view (paper §5): "(i) the KG triples that
/// contributed to an answer, (ii) the XKG triples ... and their
/// provenance, and (iii) the relaxation rules that were invoked".
struct DerivationStep {
  size_t pattern_index = 0;  ///< index into the original query's patterns
  std::string matched_form;  ///< rendering of the form actually evaluated
  std::vector<const relax::Rule*> rules;  ///< relaxations applied, in order
  std::vector<rdf::TripleId> triples;     ///< store triples matched
  std::vector<SoftMatch> soft_matches;
  double log_score = 0.0;  ///< this step's contribution (<= 0)
};

/// One ranked answer: a binding of the original query's variables with a
/// log-domain score and the best derivation that produced it.
struct Answer {
  query::Binding binding;  ///< over the original query's VarTable
  double score = 0.0;      ///< log domain; higher is better
  std::vector<DerivationStep> derivation;

  /// True when any step used a relaxation rule.
  bool used_relaxation() const {
    for (const DerivationStep& s : derivation) {
      if (!s.rules.empty()) return true;
    }
    return false;
  }
};

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_ANSWER_H_
