#ifndef TRINIT_TOPK_RELAXED_STREAM_H_
#define TRINIT_TOPK_RELAXED_STREAM_H_

#include <memory>
#include <vector>

#include "relax/rewriter.h"
#include "topk/pattern_stream.h"

namespace trinit::topk {

/// One relaxed form of an original pattern: the replacement patterns
/// (one or more), the accumulated chain weight, and the rules applied.
struct Alternative {
  std::vector<query::TriplePattern> patterns;
  double weight = 1.0;
  std::vector<const relax::Rule*> rules;
};

/// Fully evaluates a small conjunctive pattern group (the RHS of an
/// expansion rule such as Figure 4 rule 3) and serves its solutions
/// best-first. Fresh existential variables introduced by the rule are
/// joined over internally and projected away; the emitted bindings cover
/// only the original query's variables. Groups are the one deliberately
/// eager spot in the pipeline: their internal join needs every member
/// solution anyway, so the member streams are drained at construction.
class GroupStream : public BindingStream {
 public:
  GroupStream(const xkg::Xkg& xkg, const scoring::LmScorer& scorer,
              const query::VarTable& global_vars,
              const Alternative& alternative, size_t pattern_index);

  const Item* Peek() override;
  void Pop() override;
  double BestPossible() override;
  Stats DecodeStats() const override;

  size_t size() const { return items_.size(); }

 private:
  std::vector<Item> items_;
  size_t next_ = 0;
  Stats stats_;  // member streams' decode work, absorbed at construction
};

/// The incremental merge of an original pattern with its relaxed forms
/// (paper §4: "query processing utilizes incremental merging of triple
/// patterns and their relaxed forms, invoking a relaxation only when it
/// can contribute to the top-k answers").
///
/// Alternatives are kept *unopened* — at a cheap index-metadata bound —
/// until the bound exceeds what the already-open streams can still
/// deliver. Opening an alternative now only binds cursors over the
/// score-ordered posting lists (no materialization), but it still adds
/// per-Peek work, so `opened_alternatives()` remains the quantity bench
/// E3 compares against the exhaustive rewriter.
class RelaxedStream : public BindingStream {
 public:
  /// `alternatives` must be sorted by descending weight and start with
  /// the original pattern (weight 1, no rules).
  RelaxedStream(const xkg::Xkg& xkg, const scoring::LmScorer& scorer,
                const query::VarTable& global_vars,
                std::vector<Alternative> alternatives, size_t pattern_index);

  const Item* Peek() override;
  void Pop() override;
  double BestPossible() override;
  Stats DecodeStats() const override;

  size_t opened_alternatives() const { return next_unopened_; }
  size_t total_alternatives() const { return alternatives_.size(); }

  /// Cheap upper bound on any item the alternative can emit, computed
  /// from index metadata only: log(weight) + min over cheaply-boundable
  /// member patterns of the scorer's list bound for the pattern's
  /// score-ordered posting list (its heaviest entry over its mass — no
  /// materialization; O(log n) block search plus an O(1) prefix-mass
  /// read). Alternatives whose resolved pattern matches nothing bound to
  /// kExhausted and are never opened.
  static double BoundOf(const xkg::Xkg& xkg, const scoring::LmScorer& scorer,
                        const Alternative& alt);

  /// Scorer-free variant: sound under every ScorerOptions configuration
  /// but looser (store-wide max_count over the span). The stream itself
  /// always uses the scorer-aware overload; this one is the
  /// config-agnostic baseline the bound tests compare it against.
  static double BoundOf(const xkg::Xkg& xkg, const Alternative& alt);

 private:
  void OpenNext();
  /// Opens alternatives while an unopened bound dominates the open ones.
  void EnsureInvariant();
  BindingStream* BestOpen();

  const xkg::Xkg& xkg_;
  const scoring::LmScorer& scorer_;
  const query::VarTable& global_vars_;
  std::vector<Alternative> alternatives_;  // sorted by descending bound
  std::vector<double> bounds_;             // aligned with alternatives_
  size_t pattern_index_;
  size_t next_unopened_ = 0;
  std::vector<std::unique_ptr<BindingStream>> open_;
  StreamHeap open_heap_;  // lazy max-heap over open streams' heads
};

/// Builds the sorted alternative list for one pattern of `query` by
/// enumerating rewrites of the single-pattern sub-query with `rewriter`.
std::vector<Alternative> AlternativesForPattern(
    const relax::Rewriter& rewriter, const query::TriplePattern& pattern);

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_RELAXED_STREAM_H_
