#ifndef TRINIT_TOPK_TOPK_PROCESSOR_H_
#define TRINIT_TOPK_TOPK_PROCESSOR_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "plan/planner.h"
#include "query/query.h"
#include "relax/rewriter.h"
#include "relax/rule_set.h"
#include "scoring/lm_scorer.h"
#include "topk/answer.h"
#include "topk/join_engine.h"
#include "util/result.h"
#include "xkg/xkg.h"

namespace trinit::topk {

/// Result of a top-k run: answers in descending score order, projected
/// onto the original query's effective projection, plus processing
/// statistics (how much of the rewrite space was actually touched).
struct TopKResult {
  /// Projection variable names, the order `Answer::binding` prefixes
  /// refer to... (bindings are over the evaluated query's full variable
  /// table; `projection_ids` indexes them).
  std::vector<std::string> projection;

  std::vector<Answer> answers;

  /// One execution step of the original variant's compiled plan: which
  /// pattern ran at this position, what the planner estimated for it,
  /// and what the rank-join actually pulled — the estimated-vs-actual
  /// cardinality exhibit of the trace.
  struct PlanStep {
    size_t pattern = 0;        ///< original pattern index
    double estimated = 0.0;    ///< planner's cardinality estimate
    size_t pulled = 0;         ///< items the stream actually delivered
  };
  /// Execution-ordered plan of the first evaluated variant (the
  /// original query). Populated whenever a plan was compiled — cost
  /// ordering on, or hash probing (the default) needing signatures;
  /// with `use_cost_order == false` the order shown is the parser's.
  /// Empty only when both cost ordering and hash probing are off.
  std::vector<PlanStep> plan;

  struct RunStats {
    size_t query_variants_total = 0;     ///< multi-pattern-rule variants
    size_t query_variants_evaluated = 0;
    size_t alternatives_total = 0;   ///< per-pattern relaxed forms known
    size_t alternatives_opened = 0;  ///< ... actually opened
    size_t items_pulled = 0;   ///< items the rank-join consumed
    size_t items_decoded = 0;  ///< index-list entries fetched and scored
    size_t items_skipped = 0;  ///< known index entries never decoded
    /// Candidate combinations the rank-join *examined* (probe work; see
    /// `JoinEngine::Stats::combinations_tried`).
    size_t combinations_tried = 0;
    size_t combinations_emitted = 0;  ///< complete join combinations
    size_t partition_probes = 0;     ///< hash-narrowed seen-state probes
    size_t partition_fallbacks = 0;  ///< probes degraded to linear scan
    size_t plan_cache_hits = 0;    ///< variants served a cached plan
    size_t plan_cache_misses = 0;  ///< structures compiled fresh
    /// Items pulled per owning XKG shard (scatter-gather balance); at
    /// most one element when the engine serves unsharded. Traces emit
    /// the balance counters uniformly — an unsharded run reports
    /// `shards=1` with `shard_pulls_max=items_pulled` (PR 10).
    std::vector<size_t> per_shard_pulled;
    /// The run's wall-clock deadline expired before the rewrite space
    /// was fully explored; `answers` holds the best found in budget.
    bool deadline_hit = false;
  } stats;

  /// Value bound to projection variable `idx` of `answers[rank]`.
  rdf::TermId ValueAt(size_t rank, size_t idx) const;
};

/// Configuration of the incremental processor.
struct ProcessorOptions {
  int k = 10;
  bool enable_relaxation = true;
  relax::Rewriter::Options rewrite;  ///< per-pattern alternative chains
  JoinEngine::Options join;          ///< k is overridden from `k` above
  /// Cap on whole-query variants produced by multi-pattern-LHS rules
  /// (e.g. Figure 4 rule 1); per-pattern rules are unlimited-by-count
  /// and bounded by weight instead.
  size_t max_query_variants = 24;
  /// Compile a cost-ordered `plan::JoinPlan` per variant structure and
  /// build the streams in plan order (selective patterns first,
  /// hash-partitioned seen state). False keeps the parser's pattern
  /// order and — combined with `JoinEngine::ProbeMode::kLinear` — the
  /// seed's linear probing, the bench_p2 comparators.
  bool use_cost_order = true;
  /// Wall-clock budget for one `Answer` call, in milliseconds; <= 0
  /// means unlimited. On expiry the processor stops pulling work and
  /// returns the best answers found so far (`RunStats::deadline_hit`).
  double deadline_ms = 0.0;
  /// Explore the *same* rewrite space with no laziness: evaluate every
  /// variant, open every alternative eagerly, drain every stream. Same
  /// answers, strictly more work — the paper's "entire space of possible
  /// rewritings" comparator (§4). Use via `ExhaustiveProcessor`.
  bool exhaustive = false;
};

/// TriniT's incremental top-k query processor (paper §4): per-pattern
/// index lists served in score order, relaxed forms merged in lazily
/// ("invoking a relaxation only when it can contribute to the top-k
/// answers"), rank-join with early termination.
///
/// Rules whose LHS spans multiple patterns (structural rules like
/// Figure 4 rule 1) cannot be confined to one pattern's alternative
/// list; they are handled as whole-query *variants*, themselves
/// processed best-weight-first with the same "only if it can still
/// contribute" cutoff.
///
/// Threading: a processor holds no per-call mutable state — rank-join
/// seen-state, streams, and deadlines live on `Answer`'s stack — so
/// one processor serves concurrent `Answer` calls with no lock of its
/// own. The two structures it touches that *are* shared (the borrowed
/// `plan::PlanCache` and the XKG's lazy score shapes) are internally
/// synchronized; see docs/CONCURRENCY.md.
class TopKProcessor {
 public:
  /// `shared_plan_cache`, when non-null, is *borrowed* — the serving
  /// path hands every request's processor the engine-level cross-request
  /// cache (see `serve::ServingCache`) and keeps it alive longer than
  /// the processor. Null (the default) gives the processor a private
  /// cache with its own lifetime, the pre-PR-4 behavior.
  TopKProcessor(const xkg::Xkg& xkg, const relax::RuleSet& rules,
                scoring::ScorerOptions scorer_options = {},
                ProcessorOptions options = {},
                const plan::PlanCache* shared_plan_cache = nullptr);

  /// Answers `q` (which need not be resolved yet) and returns the top-k.
  Result<TopKResult> Answer(const query::Query& q) const;

  const ProcessorOptions& options() const { return options_; }

 private:
  struct Variant {
    query::Query query;
    double weight = 1.0;
    std::vector<const relax::Rule*> rules;
  };

  std::vector<Variant> QueryVariants(const query::Query& q) const;

  void EvaluateVariant(const Variant& variant,
                       const std::vector<std::string>& projection,
                       std::chrono::steady_clock::time_point deadline,
                       TopKResult* result) const;

  const xkg::Xkg& xkg_;
  const relax::RuleSet& rules_;
  scoring::LmScorer scorer_;
  ProcessorOptions options_;
  // Rules with multi-pattern LHS, for whole-query variant enumeration.
  relax::RuleSet structural_rules_;
  // Compiled plans by structural signature, thread-safe for concurrent
  // Answer calls. Either borrowed from the engine's serving cache
  // (cross-request scope; `owned_plan_cache_` stays null) or private to
  // this processor (owned, behind a unique_ptr so the processor stays
  // movable — the cache holds mutexes).
  std::unique_ptr<plan::PlanCache> owned_plan_cache_;
  const plan::PlanCache* plan_cache_;
};

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_TOPK_PROCESSOR_H_
