#include "topk/pattern_stream.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"
#include "util/logging.h"

namespace trinit::topk {
namespace {

// One way to make a pattern slot concrete: a bound term id (or wildcard
// kNullTerm for variables) plus the log-similarity cost of getting there
// and an optional soft-match record.
struct SlotAlternative {
  rdf::TermId id = rdf::kNullTerm;
  double log_sim = 0.0;
  bool has_soft_match = false;
  SoftMatch soft_match;
};

std::vector<SlotAlternative> ExpandSlot(const xkg::Xkg& xkg,
                                        const scoring::LmScorer& scorer,
                                        const query::Term& term) {
  using Kind = query::Term::Kind;
  std::vector<SlotAlternative> out;
  switch (term.kind) {
    case Kind::kVariable:
      out.push_back({rdf::kNullTerm, 0.0, false, {}});
      break;
    case Kind::kResource:
    case Kind::kLiteral: {
      // Constants in rule-produced patterns arrive unresolved (rules are
      // dictionary-agnostic); resolve here. Still-missing resources match
      // nothing — relaxation is their rescue path.
      rdf::TermId id = term.id;
      if (id == rdf::kNullTerm) {
        id = xkg.dict().Find(term.kind == Kind::kResource
                                 ? rdf::TermKind::kResource
                                 : rdf::TermKind::kLiteral,
                             term.text);
      }
      if (id != rdf::kNullTerm) {
        out.push_back({id, 0.0, false, {}});
      }
      break;
    }
    case Kind::kToken: {
      // Exact phrase term (if interned) plus soft matches over the
      // phrase index.
      double threshold = scorer.options().token_match_threshold;
      for (const auto& cand :
           xkg.phrase_index().FindSimilar(term.text, threshold)) {
        SlotAlternative alt;
        alt.id = cand.term;
        if (cand.term == term.id) {
          alt.log_sim = 0.0;  // exact vocabulary hit, no attenuation
        } else {
          alt.log_sim = scoring::LmScorer::LogWeight(cand.similarity);
          alt.has_soft_match = true;
          alt.soft_match = SoftMatch{
              term.text, std::string(xkg.dict().label(cand.term)),
              cand.similarity};
        }
        out.push_back(std::move(alt));
      }
      break;
    }
  }
  return out;
}

}  // namespace

LeafStream::LeafStream(const xkg::Xkg& xkg, const scoring::LmScorer& scorer,
                       const query::VarTable& vars,
                       const query::TriplePattern& pattern,
                       size_t pattern_index,
                       std::vector<const relax::Rule*> chain_rules,
                       double chain_weight_log) {
  std::vector<SlotAlternative> s_alts = ExpandSlot(xkg, scorer, pattern.s);
  std::vector<SlotAlternative> p_alts = ExpandSlot(xkg, scorer, pattern.p);
  std::vector<SlotAlternative> o_alts = ExpandSlot(xkg, scorer, pattern.o);

  // Variable ids for the slots that bind.
  auto var_id = [&vars](const query::Term& t) -> std::optional<query::VarId> {
    if (!t.is_variable()) return std::nullopt;
    return vars.Find(t.text);
  };
  std::optional<query::VarId> sv = var_id(pattern.s);
  std::optional<query::VarId> pv = var_id(pattern.p);
  std::optional<query::VarId> ov = var_id(pattern.o);

  // (triple, binding-key) -> best item index, for soft-match dedup.
  std::unordered_set<uint64_t> seen;

  for (const SlotAlternative& sa : s_alts) {
    for (const SlotAlternative& pa : p_alts) {
      for (const SlotAlternative& oa : o_alts) {
        std::span<const rdf::TripleId> matches =
            xkg.store().Match(sa.id, pa.id, oa.id);
        if (matches.empty()) continue;
        uint64_t mass = scorer.PatternMass(matches);
        double alt_log = sa.log_sim + pa.log_sim + oa.log_sim;
        for (rdf::TripleId id : matches) {
          const rdf::Triple& t = xkg.store().triple(id);
          // A triple reached through several soft-match combinations
          // keeps only its best-scoring occurrence; since combinations
          // with smaller attenuation come first only after sorting, we
          // dedup conservatively on (triple, alternative-signature).
          uint64_t key = HashCombine(id, HashCombine(sa.id,
                                                     HashCombine(pa.id,
                                                                 oa.id)));
          if (!seen.insert(key).second) continue;

          Item item;
          item.binding = query::Binding(vars.size());
          bool ok = true;
          if (sv) ok = ok && item.binding.Bind(*sv, t.s);
          if (pv) ok = ok && item.binding.Bind(*pv, t.p);
          if (ov) ok = ok && item.binding.Bind(*ov, t.o);
          if (!ok) continue;  // repeated variable with conflicting terms

          item.log_score = scorer.ScoreTriple(t, mass) + alt_log +
                           chain_weight_log;
          item.step.pattern_index = pattern_index;
          item.step.matched_form = pattern.ToString();
          item.step.rules = chain_rules;
          item.step.triples = {id};
          for (const SlotAlternative* alt : {&sa, &pa, &oa}) {
            if (alt->has_soft_match) {
              item.step.soft_matches.push_back(alt->soft_match);
            }
          }
          item.step.log_score = item.log_score;
          items_.push_back(std::move(item));
        }
      }
    }
  }
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Item& a, const Item& b) {
                     return a.log_score > b.log_score;
                   });
}

const BindingStream::Item* LeafStream::Peek() {
  return next_ < items_.size() ? &items_[next_] : nullptr;
}

void LeafStream::Pop() {
  TRINIT_CHECK(next_ < items_.size());
  ++next_;
}

double LeafStream::BestPossible() {
  return next_ < items_.size() ? items_[next_].log_score : kExhausted;
}

MergeStream::MergeStream(std::vector<std::unique_ptr<BindingStream>> inputs)
    : inputs_(std::move(inputs)) {}

BindingStream* MergeStream::Best() {
  BindingStream* best = nullptr;
  double best_score = kExhausted;
  for (const auto& in : inputs_) {
    const Item* item = in->Peek();
    if (item != nullptr && item->log_score > best_score) {
      best = in.get();
      best_score = item->log_score;
    }
  }
  return best;
}

const BindingStream::Item* MergeStream::Peek() {
  BindingStream* best = Best();
  return best == nullptr ? nullptr : best->Peek();
}

void MergeStream::Pop() {
  BindingStream* best = Best();
  TRINIT_CHECK(best != nullptr);
  best->Pop();
}

double MergeStream::BestPossible() {
  double bound = kExhausted;
  for (const auto& in : inputs_) {
    bound = std::max(bound, in->BestPossible());
  }
  return bound;
}

}  // namespace trinit::topk
