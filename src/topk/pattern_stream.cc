#include "topk/pattern_stream.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "rdf/score_order_index.h"
#include "util/hash.h"
#include "util/logging.h"

namespace trinit::topk {
namespace {

// Entries decoded from a cursor's posting list per refill round. Small
// enough that a top-1 consumer touches a handful of entries; large
// enough to amortize the heap pushes when a list is drained.
constexpr size_t kDecodeChunk = 16;

// One way to make a pattern slot concrete: a bound term id (or wildcard
// kNullTerm for variables) plus the log-similarity cost of getting there
// and an optional soft-match record.
struct SlotAlternative {
  rdf::TermId id = rdf::kNullTerm;
  double log_sim = 0.0;
  bool has_soft_match = false;
  SoftMatch soft_match;
};

std::vector<SlotAlternative> ExpandSlot(const xkg::Xkg& xkg,
                                        const scoring::LmScorer& scorer,
                                        const query::Term& term) {
  using Kind = query::Term::Kind;
  std::vector<SlotAlternative> out;
  switch (term.kind) {
    case Kind::kVariable:
      out.push_back({rdf::kNullTerm, 0.0, false, {}});
      break;
    case Kind::kResource:
    case Kind::kLiteral: {
      // Constants in rule-produced patterns arrive unresolved (rules are
      // dictionary-agnostic); resolve here. Still-missing resources match
      // nothing — relaxation is their rescue path.
      rdf::TermId id = term.id;
      if (id == rdf::kNullTerm) {
        id = xkg.dict().Find(term.kind == Kind::kResource
                                 ? rdf::TermKind::kResource
                                 : rdf::TermKind::kLiteral,
                             term.text);
      }
      if (id != rdf::kNullTerm) {
        out.push_back({id, 0.0, false, {}});
      }
      break;
    }
    case Kind::kToken: {
      // Exact phrase term (if interned) plus soft matches over the
      // phrase index.
      double threshold = scorer.options().token_match_threshold;
      for (const auto& cand :
           xkg.phrase_index().FindSimilar(term.text, threshold)) {
        SlotAlternative alt;
        alt.id = cand.term;
        if (cand.term == term.id) {
          alt.log_sim = 0.0;  // exact vocabulary hit, no attenuation
        } else {
          alt.log_sim = scoring::LmScorer::LogWeight(cand.similarity);
          alt.has_soft_match = true;
          alt.soft_match = SoftMatch{
              term.text, std::string(xkg.dict().label(cand.term)),
              cand.similarity};
        }
        out.push_back(std::move(alt));
      }
      break;
    }
  }
  return out;
}

}  // namespace

// Max-heap ordering: higher score wins, earlier decode order breaks
// ties (keeps the emission sequence deterministic).
bool LeafStream::PendingLess(const Pending& a, const Pending& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.seq > b.seq;
}

LeafStream::LeafStream(const xkg::Xkg& xkg, const scoring::LmScorer& scorer,
                       const query::VarTable& vars,
                       const query::TriplePattern& pattern,
                       size_t pattern_index,
                       std::vector<const relax::Rule*> chain_rules,
                       double chain_weight_log)
    : xkg_(xkg),
      scorer_(scorer),
      pattern_index_(pattern_index),
      matched_form_(pattern.ToString()),
      chain_rules_(std::move(chain_rules)),
      num_vars_(vars.size()) {
  const rdf::ShardedStore* sharded = xkg.sharded();
  per_shard_decoded_.resize(sharded == nullptr ? 1 : sharded->shard_count(),
                            0);
  std::vector<SlotAlternative> s_alts = ExpandSlot(xkg, scorer, pattern.s);
  std::vector<SlotAlternative> p_alts = ExpandSlot(xkg, scorer, pattern.p);
  std::vector<SlotAlternative> o_alts = ExpandSlot(xkg, scorer, pattern.o);

  // Variable ids for the slots that bind.
  auto var_id = [&vars](const query::Term& t) -> std::optional<query::VarId> {
    if (!t.is_variable()) return std::nullopt;
    return vars.Find(t.text);
  };
  sv_ = var_id(pattern.s);
  pv_ = var_id(pattern.p);
  ov_ = var_id(pattern.o);

  // One cursor per distinct slot-alternative combination with matches.
  // Nothing is decoded here: a cursor is a span into the score-ordered
  // posting list plus an upper bound from its first (= heaviest) entry.
  struct ComboHash {
    size_t operator()(const std::array<rdf::TermId, 3>& c) const {
      return HashCombine(c[0], HashCombine(c[1], c[2]));
    }
  };
  std::unordered_set<std::array<rdf::TermId, 3>, ComboHash> combos_seen;
  for (const SlotAlternative& sa : s_alts) {
    for (const SlotAlternative& pa : p_alts) {
      for (const SlotAlternative& oa : o_alts) {
        if (!combos_seen.insert({sa.id, pa.id, oa.id}).second) continue;

        Cursor cursor;
        if (sharded != nullptr) {
          // Scatter: one segment per non-empty shard, under the global
          // (exact, summed) mass. The segment-head merge in DecodeChunk
          // reproduces the unsharded list order bit-for-bit.
          rdf::ShardedStore::Lists lists =
              sharded->ScoreOrdered(xkg.store(), sa.id, pa.id, oa.id);
          for (size_t shard = 0; shard < lists.per_shard.size(); ++shard) {
            const std::span<const rdf::TripleId> ids =
                lists.per_shard[shard].ids;
            if (ids.empty()) continue;
            cursor.segments.push_back(
                {ids, 0, static_cast<uint32_t>(shard)});
            cursor.remaining += ids.size();
          }
          cursor.mass = lists.mass;
        } else {
          rdf::ScoreOrderIndex::List list =
              xkg.store().ScoreOrdered(sa.id, pa.id, oa.id);
          if (!list.ids.empty()) {
            cursor.segments.push_back({list.ids, 0, 0});
            cursor.remaining = list.ids.size();
          }
          cursor.mass = list.mass;
        }
        if (cursor.remaining == 0) continue;

        cursor.alt_log =
            sa.log_sim + pa.log_sim + oa.log_sim + chain_weight_log;
        for (const SlotAlternative* alt : {&sa, &pa, &oa}) {
          if (alt->has_soft_match) {
            cursor.soft_matches.push_back(alt->soft_match);
          }
        }
        const size_t head = *BestSegment(cursor);
        cursor.bound =
            scorer.UpperBoundForList(
                rdf::ScoreOrderIndex::WeightOf(xkg.store().triple(
                    cursor.segments[head].ids.front())),
                cursor.mass) +
            cursor.alt_log;
        total_entries_ += cursor.remaining;
        cursors_.push_back(std::move(cursor));
      }
    }
  }
  // Bound-keyed cursor selection: cursor bounds only descend (lists are
  // sorted by weight), so the lazy heap's stale-entry re-keying applies.
  // Pushing in index order makes heap ties resolve exactly like the
  // first-maximum linear scan they replace.
  for (size_t ci = 0; ci < cursors_.size(); ++ci) {
    cursor_heap_.Push(ci, cursors_[ci].bound);
  }
}

std::optional<size_t> LeafStream::BestCursor() {
  return cursor_heap_.Best([this](size_t ci) -> std::optional<double> {
    const Cursor& c = cursors_[ci];
    if (c.remaining == 0) return std::nullopt;
    return c.bound;
  });
}

std::optional<size_t> LeafStream::BestSegment(const Cursor& cursor) const {
  // Merge point of the scatter-gather: the cursor's globally-next entry
  // is the best segment head under the posting-list order (weight desc,
  // id asc). Shard lists partition a single key block of the global
  // list, so this pick sequence equals the unsharded decode sequence.
  std::optional<size_t> best;
  double best_weight = 0.0;
  for (size_t si = 0; si < cursor.segments.size(); ++si) {
    const Segment& seg = cursor.segments[si];
    if (seg.pos >= seg.ids.size()) continue;
    const double weight = rdf::ScoreOrderIndex::WeightOf(
        xkg_.store().triple(seg.ids[seg.pos]));
    if (!best.has_value() || weight > best_weight ||
        (weight == best_weight &&
         seg.ids[seg.pos] <
             cursor.segments[*best].ids[cursor.segments[*best].pos])) {
      best = si;
      best_weight = weight;
    }
  }
  return best;
}

void LeafStream::DecodeChunk(Cursor& cursor) {
  const size_t budget = std::min(kDecodeChunk, cursor.remaining);
  for (size_t step = 0; step < budget; ++step) {
    Segment& seg = cursor.segments[*BestSegment(cursor)];
    const rdf::TripleId id = seg.ids[seg.pos];
    ++seg.pos;
    --cursor.remaining;
    const rdf::Triple& t = xkg_.store().triple(id);
    ++decoded_;
    ++per_shard_decoded_[seg.shard];

    Pending pending;
    pending.item.binding = query::Binding(num_vars_);
    bool ok = true;
    if (sv_) ok = ok && pending.item.binding.Bind(*sv_, t.s);
    if (pv_) ok = ok && pending.item.binding.Bind(*pv_, t.p);
    if (ov_) ok = ok && pending.item.binding.Bind(*ov_, t.o);
    if (!ok) continue;  // repeated variable with conflicting terms

    pending.score = scorer_.ScoreTriple(t, cursor.mass) + cursor.alt_log;
    pending.seq = next_seq_++;
    pending.item.log_score = pending.score;
    pending.item.shard = seg.shard;
    pending.item.step.pattern_index = pattern_index_;
    pending.item.step.matched_form = matched_form_;
    pending.item.step.rules = chain_rules_;
    pending.item.step.triples = {id};
    pending.item.step.soft_matches = cursor.soft_matches;
    pending.item.step.log_score = pending.score;
    heap_.push_back(std::move(pending));
    std::push_heap(heap_.begin(), heap_.end(), PendingLess);
  }
  bound_dirty_ = true;
  // Undecoded remainder bound, from the next (= heaviest remaining)
  // entry; monotone because every segment descends by weight.
  const std::optional<size_t> next = BestSegment(cursor);
  cursor.bound =
      next.has_value()
          ? scorer_.UpperBoundForList(
                rdf::ScoreOrderIndex::WeightOf(xkg_.store().triple(
                    cursor.segments[*next]
                        .ids[cursor.segments[*next].pos])),
                cursor.mass) +
                cursor.alt_log
          : kExhausted;
}

void LeafStream::Advance() {
  while (true) {
    std::optional<size_t> best = BestCursor();
    double frontier = best.has_value() ? cursors_[*best].bound : kExhausted;
    if (!heap_.empty() && heap_.front().score >= frontier) {
      // Nothing undecoded can outrank the heap top: emit it.
      std::pop_heap(heap_.begin(), heap_.end(), PendingLess);
      current_ = std::move(heap_.back().item);
      heap_.pop_back();
      return;
    }
    if (!best.has_value()) {
      current_.reset();  // heap empty and every cursor drained
      return;
    }
    DecodeChunk(cursors_[*best]);
  }
}

const BindingStream::Item* LeafStream::Peek() {
  if (!current_.has_value()) Advance();
  return current_.has_value() ? &*current_ : nullptr;
}

void LeafStream::Pop() {
  if (!current_.has_value()) Advance();
  TRINIT_CHECK(current_.has_value());
  current_.reset();
  ++popped_;
  bound_dirty_ = true;
}

double LeafStream::BestPossible() {
  if (current_.has_value()) return current_->log_score;
  if (!bound_dirty_) return cached_bound_;
  double bound = heap_.empty() ? kExhausted : heap_.front().score;
  std::optional<size_t> best = BestCursor();
  if (best.has_value()) bound = std::max(bound, cursors_[*best].bound);
  cached_bound_ = bound;
  bound_dirty_ = false;
  return bound;
}

BindingStream::Stats LeafStream::DecodeStats() const {
  return {decoded_, total_entries_ - decoded_, per_shard_decoded_};
}

size_t LeafStream::size() {
  // Force-decode everything; what survives binding is what will emit.
  for (Cursor& c : cursors_) {
    while (c.remaining > 0) DecodeChunk(c);
  }
  return popped_ + heap_.size() + (current_.has_value() ? 1 : 0);
}

void StreamHeap::Add(BindingStream* stream) {
  const BindingStream::Item* item = stream->Peek();
  if (item == nullptr) return;
  heap_.Push(stream, item->log_score);
}

BindingStream* StreamHeap::Best() {
  std::optional<BindingStream*> best =
      heap_.Best([](BindingStream* stream) -> std::optional<double> {
        const BindingStream::Item* item = stream->Peek();
        if (item == nullptr) return std::nullopt;
        return item->log_score;
      });
  return best.value_or(nullptr);
}

MergeStream::MergeStream(std::vector<std::unique_ptr<BindingStream>> inputs)
    : inputs_(std::move(inputs)) {}

BindingStream* MergeStream::Best() {
  if (!heap_primed_) {
    for (const auto& in : inputs_) heap_.Add(in.get());
    heap_primed_ = true;
  }
  return heap_.Best();
}

const BindingStream::Item* MergeStream::Peek() {
  BindingStream* best = Best();
  return best == nullptr ? nullptr : best->Peek();
}

void MergeStream::Pop() {
  BindingStream* best = Best();
  TRINIT_CHECK(best != nullptr);
  best->Pop();
}

double MergeStream::BestPossible() {
  double bound = kExhausted;
  for (const auto& in : inputs_) {
    bound = std::max(bound, in->BestPossible());
  }
  return bound;
}

BindingStream::Stats MergeStream::DecodeStats() const {
  Stats stats;
  for (const auto& in : inputs_) stats += in->DecodeStats();
  return stats;
}

}  // namespace trinit::topk
