#include "topk/relaxed_stream.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

#include "rdf/score_order_index.h"
#include "scoring/lm_scorer.h"
#include "util/logging.h"

namespace trinit::topk {
namespace {

// Local variable table for a pattern group: the global variables as a
// prefix, then any fresh variables the group introduces.
query::VarTable LocalVarTable(const query::VarTable& global_vars,
                              const std::vector<query::TriplePattern>& ps) {
  std::vector<std::string> names = global_vars.names();
  for (const query::TriplePattern& p : ps) {
    for (const std::string& v : p.Variables()) {
      if (std::find(names.begin(), names.end(), v) == names.end()) {
        names.push_back(v);
      }
    }
  }
  return query::VarTable(std::move(names));
}

// Resolves the constant slots of `pattern` for cheap index-metadata
// bounding. Returns false when a token constant makes the pattern not
// cheaply boundable; `dead` is set when a resource/literal constant
// cannot resolve at all (the pattern can never match).
bool ResolveForBound(const xkg::Xkg& xkg, const query::TriplePattern& pattern,
                     rdf::TermId ids[3], bool* dead) {
  *dead = false;
  const query::Term* slots[3] = {&pattern.s, &pattern.p, &pattern.o};
  for (int i = 0; i < 3; ++i) {
    const query::Term& t = *slots[i];
    if (t.is_variable()) {
      ids[i] = rdf::kNullTerm;
      continue;
    }
    if (t.kind == query::Term::Kind::kToken) return false;
    ids[i] = t.id != rdf::kNullTerm
                 ? t.id
                 : xkg.dict().Find(t.kind == query::Term::Kind::kResource
                                       ? rdf::TermKind::kResource
                                       : rdf::TermKind::kLiteral,
                                   t.text);
    if (ids[i] == rdf::kNullTerm) {
      *dead = true;
      return false;
    }
  }
  return true;
}

}  // namespace

GroupStream::GroupStream(const xkg::Xkg& xkg,
                         const scoring::LmScorer& scorer,
                         const query::VarTable& global_vars,
                         const Alternative& alternative,
                         size_t pattern_index) {
  query::VarTable local = LocalVarTable(global_vars, alternative.patterns);
  double chain_log = scoring::LmScorer::LogWeight(alternative.weight);

  // Open and drain each member pattern once (chain weight applied at
  // the group level, not per member; the group join needs every member
  // solution anyway). Items are copied out because lazy streams recycle
  // their Peek storage on Pop.
  std::vector<std::vector<Item>> lists(alternative.patterns.size());
  for (size_t i = 0; i < alternative.patterns.size(); ++i) {
    LeafStream leaf(xkg, scorer, local, alternative.patterns[i],
                    pattern_index);
    while (const Item* item = leaf.Peek()) {
      lists[i].push_back(*item);
      leaf.Pop();
    }
    stats_ += leaf.DecodeStats();
  }
  // Join cheapest-first to keep the backtracking narrow.
  std::vector<size_t> order(lists.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&lists](size_t a, size_t b) {
    return lists[a].size() < lists[b].size();
  });

  // Backtracking join over the member patterns.
  struct Frame {
    query::Binding binding;
    double score;
    std::vector<const Item*> picked;
  };
  std::vector<Item>& out = items_;
  std::function<void(size_t, Frame&)> recurse = [&](size_t depth,
                                                    Frame& frame) {
    if (depth == order.size()) {
      Item item;
      item.binding = frame.binding.Prefix(global_vars.size());
      item.log_score = frame.score + chain_log;
      item.step.pattern_index = pattern_index;
      {
        std::string form;
        for (size_t i = 0; i < alternative.patterns.size(); ++i) {
          if (i > 0) form += " ; ";
          form += alternative.patterns[i].ToString();
        }
        item.step.matched_form = std::move(form);
      }
      item.step.rules = alternative.rules;
      for (const Item* picked : frame.picked) {
        item.step.triples.insert(item.step.triples.end(),
                                 picked->step.triples.begin(),
                                 picked->step.triples.end());
        item.step.soft_matches.insert(item.step.soft_matches.end(),
                                      picked->step.soft_matches.begin(),
                                      picked->step.soft_matches.end());
      }
      item.step.log_score = item.log_score;
      out.push_back(std::move(item));
      return;
    }
    for (const Item& cand : lists[order[depth]]) {
      auto merged = frame.binding.MergedWith(cand.binding);
      if (!merged.has_value()) continue;
      Frame next;
      next.binding = std::move(*merged);
      next.score = frame.score + cand.log_score;
      next.picked = frame.picked;
      next.picked.push_back(&cand);
      recurse(depth + 1, next);
    }
  };
  Frame root{query::Binding(local.size()), 0.0, {}};
  recurse(0, root);

  std::stable_sort(items_.begin(), items_.end(),
                   [](const Item& a, const Item& b) {
                     return a.log_score > b.log_score;
                   });
}

const BindingStream::Item* GroupStream::Peek() {
  return next_ < items_.size() ? &items_[next_] : nullptr;
}

void GroupStream::Pop() {
  TRINIT_CHECK(next_ < items_.size());
  ++next_;
}

double GroupStream::BestPossible() {
  return next_ < items_.size() ? items_[next_].log_score : kExhausted;
}

BindingStream::Stats GroupStream::DecodeStats() const { return stats_; }

double RelaxedStream::BoundOf(const xkg::Xkg& xkg,
                              const scoring::LmScorer& scorer,
                              const Alternative& alt) {
  double bound = scoring::LmScorer::LogWeight(alt.weight);
  double cheapest_pattern_cap = 0.0;
  for (const query::TriplePattern& pattern : alt.patterns) {
    rdf::TermId ids[3];
    bool dead = false;
    if (!ResolveForBound(xkg, pattern, ids, &dead)) {
      if (dead) return BindingStream::kExhausted;
      continue;  // token constant: not cheaply boundable, cap stays 0
    }
    // Head of the score-ordered posting list: the heaviest entry over
    // the block's prefix mass is exactly the scorer's list bound.
    rdf::ScoreOrderIndex::List list =
        xkg.store().ScoreOrdered(ids[0], ids[1], ids[2]);
    if (list.ids.empty()) return BindingStream::kExhausted;
    double cap = scorer.UpperBoundForList(
        rdf::ScoreOrderIndex::WeightOf(xkg.store().triple(list.ids.front())),
        list.mass);
    cheapest_pattern_cap = std::min(cheapest_pattern_cap, cap);
  }
  return bound + cheapest_pattern_cap;
}

double RelaxedStream::BoundOf(const xkg::Xkg& xkg, const Alternative& alt) {
  double bound = scoring::LmScorer::LogWeight(alt.weight);
  double cheapest_pattern_cap = 0.0;
  for (const query::TriplePattern& pattern : alt.patterns) {
    rdf::TermId ids[3];
    bool dead = false;
    if (!ResolveForBound(xkg, pattern, ids, &dead)) {
      if (dead) return BindingStream::kExhausted;
      continue;
    }
    size_t span = xkg.store().MatchCount(ids[0], ids[1], ids[2]);
    if (span == 0) return BindingStream::kExhausted;
    // Config-agnostic cap: numerator <= max_count under every scoring
    // ablation, mass >= span (counts are >= 1).
    double cap = std::log(
        std::min(1.0, static_cast<double>(xkg.store().max_count()) /
                          static_cast<double>(span)));
    cheapest_pattern_cap = std::min(cheapest_pattern_cap, cap);
  }
  return bound + cheapest_pattern_cap;
}

RelaxedStream::RelaxedStream(const xkg::Xkg& xkg,
                             const scoring::LmScorer& scorer,
                             const query::VarTable& global_vars,
                             std::vector<Alternative> alternatives,
                             size_t pattern_index)
    : xkg_(xkg),
      scorer_(scorer),
      global_vars_(global_vars),
      alternatives_(std::move(alternatives)),
      pattern_index_(pattern_index) {
  TRINIT_CHECK(!alternatives_.empty());
  // Order alternatives by their cheap upper bound (not just the chain
  // weight): this is what lets a heavyweight rule whose rewritten
  // pattern is hopeless (huge match list or no matches at all) stay
  // unopened behind a lighter but sharper one. Dead alternatives
  // (bound == kExhausted) are dropped outright.
  std::vector<size_t> order(alternatives_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> raw_bounds(alternatives_.size());
  for (size_t i = 0; i < alternatives_.size(); ++i) {
    raw_bounds[i] = BoundOf(xkg, scorer, alternatives_[i]);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return raw_bounds[a] > raw_bounds[b];
  });
  std::vector<Alternative> sorted;
  sorted.reserve(alternatives_.size());
  for (size_t idx : order) {
    if (raw_bounds[idx] <= kExhausted) continue;
    bounds_.push_back(raw_bounds[idx]);
    sorted.push_back(std::move(alternatives_[idx]));
  }
  alternatives_ = std::move(sorted);
  if (!alternatives_.empty()) OpenNext();
}

void RelaxedStream::OpenNext() {
  TRINIT_CHECK(next_unopened_ < alternatives_.size());
  const Alternative& alt = alternatives_[next_unopened_++];
  if (alt.patterns.size() == 1) {
    open_.push_back(std::make_unique<LeafStream>(
        xkg_, scorer_, global_vars_, alt.patterns[0], pattern_index_,
        alt.rules, scoring::LmScorer::LogWeight(alt.weight)));
  } else {
    open_.push_back(std::make_unique<GroupStream>(xkg_, scorer_, global_vars_,
                                                  alt, pattern_index_));
  }
  open_heap_.Add(open_.back().get());
}

BindingStream* RelaxedStream::BestOpen() { return open_heap_.Best(); }

void RelaxedStream::EnsureInvariant() {
  // Open further alternatives while an unopened one could outscore the
  // best open item.
  while (next_unopened_ < alternatives_.size()) {
    double unopened_bound = bounds_[next_unopened_];
    BindingStream* best = BestOpen();
    double open_best =
        best == nullptr ? kExhausted : best->Peek()->log_score;
    if (unopened_bound > open_best) {
      OpenNext();
    } else {
      break;
    }
  }
}

const BindingStream::Item* RelaxedStream::Peek() {
  EnsureInvariant();
  BindingStream* best = BestOpen();
  return best == nullptr ? nullptr : best->Peek();
}

void RelaxedStream::Pop() {
  EnsureInvariant();
  BindingStream* best = BestOpen();
  TRINIT_CHECK(best != nullptr);
  best->Pop();
}

double RelaxedStream::BestPossible() {
  double bound = kExhausted;
  for (const auto& s : open_) bound = std::max(bound, s->BestPossible());
  if (next_unopened_ < alternatives_.size()) {
    bound = std::max(bound, bounds_[next_unopened_]);
  }
  return bound;
}

BindingStream::Stats RelaxedStream::DecodeStats() const {
  Stats stats;
  for (const auto& s : open_) stats += s->DecodeStats();
  return stats;
}

std::vector<Alternative> AlternativesForPattern(
    const relax::Rewriter& rewriter, const query::TriplePattern& pattern) {
  query::Query single({pattern}, {});
  std::vector<Alternative> out;
  for (relax::RewriteResult& rw : rewriter.EnumerateRewrites(single)) {
    out.push_back(Alternative{rw.query.patterns(), rw.weight,
                              std::move(rw.applied)});
  }
  return out;
}

}  // namespace trinit::topk
