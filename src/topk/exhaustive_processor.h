#ifndef TRINIT_TOPK_EXHAUSTIVE_PROCESSOR_H_
#define TRINIT_TOPK_EXHAUSTIVE_PROCESSOR_H_

#include "topk/topk_processor.h"

namespace trinit::topk {

/// Reference processor that explores the *same* rewrite space as
/// `TopKProcessor` but with no laziness: every query variant is
/// evaluated, every per-pattern relaxation alternative is opened and
/// materialized, every stream is drained.
///
/// The paper calls this out as the thing to avoid ("it is crucial to
/// avoid exploring the entire space of possible rewritings, as this can
/// be prohibitively expensive", §4). It exists here (a) as the ground
/// truth the incremental processor is property-tested against — same
/// space, identical answers and scores — and (b) as the comparator of
/// bench E3, where only the amount of work differs.
class ExhaustiveProcessor {
 public:
  ExhaustiveProcessor(const xkg::Xkg& xkg, const relax::RuleSet& rules,
                      scoring::ScorerOptions scorer_options = {},
                      ProcessorOptions options = {})
      : impl_(xkg, rules, scorer_options, Exhaustive(options)) {}

  Result<TopKResult> Answer(const query::Query& q) const {
    return impl_.Answer(q);
  }

  const ProcessorOptions& options() const { return impl_.options(); }

 private:
  static ProcessorOptions Exhaustive(ProcessorOptions options) {
    options.exhaustive = true;
    return options;
  }

  TopKProcessor impl_;
};

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_EXHAUSTIVE_PROCESSOR_H_
