#include "topk/topk_processor.h"

#include <algorithm>
#include <unordered_map>

#include "topk/relaxed_stream.h"
#include "util/logging.h"

namespace trinit::topk {

rdf::TermId TopKResult::ValueAt(size_t rank, size_t idx) const {
  TRINIT_CHECK(rank < answers.size());
  TRINIT_CHECK(idx < projection.size());
  return answers[rank].binding.Get(static_cast<query::VarId>(idx));
}

TopKProcessor::TopKProcessor(const xkg::Xkg& xkg,
                             const relax::RuleSet& rules,
                             scoring::ScorerOptions scorer_options,
                             ProcessorOptions options,
                             const plan::PlanCache* shared_plan_cache)
    : xkg_(xkg),
      rules_(rules),
      scorer_(xkg, scorer_options),
      options_(options),
      owned_plan_cache_(shared_plan_cache != nullptr
                            ? nullptr
                            : std::make_unique<plan::PlanCache>()),
      plan_cache_(shared_plan_cache != nullptr ? shared_plan_cache
                                               : owned_plan_cache_.get()) {
  options_.join.k = options_.k;
  if (options_.exhaustive) {
    options_.join.drain = true;
    options_.join.max_pulls = SIZE_MAX;
  }
  for (const relax::Rule& r : rules_.rules()) {
    if (r.lhs.size() > 1) {
      Status s = structural_rules_.Add(r);
      TRINIT_CHECK(s.ok());
    }
  }
}

std::vector<TopKProcessor::Variant> TopKProcessor::QueryVariants(
    const query::Query& q) const {
  std::vector<Variant> variants;
  if (!options_.enable_relaxation || structural_rules_.size() == 0) {
    variants.push_back(Variant{q, 1.0, {}});
    return variants;
  }
  relax::Rewriter::Options ropts = options_.rewrite;
  ropts.max_rewrites = options_.max_query_variants;
  relax::Rewriter rewriter(structural_rules_, ropts);
  for (relax::RewriteResult& rw : rewriter.EnumerateRewrites(q)) {
    variants.push_back(
        Variant{std::move(rw.query), rw.weight, std::move(rw.applied)});
  }
  return variants;
}

void TopKProcessor::EvaluateVariant(
    const Variant& variant, const std::vector<std::string>& projection,
    std::chrono::steady_clock::time_point deadline,
    TopKResult* result) const {
  const query::Query& vq = variant.query;
  query::VarTable vars(vq);
  std::vector<query::VarId> projection_ids;
  projection_ids.reserve(projection.size());
  for (const std::string& name : projection) {
    std::optional<query::VarId> id = vars.Find(name);
    if (!id.has_value()) return;  // variant lost a projection variable
    projection_ids.push_back(*id);
  }

  relax::Rewriter pattern_rewriter(rules_, options_.rewrite);

  // Compile (or fetch) the variant's plan; streams are then built in
  // the plan's execution order so the join engine's hash partitions can
  // use the precomputed pair signatures directly. Derivation steps keep
  // the *original* pattern index — execution order is invisible to
  // answers and explanations.
  std::shared_ptr<const plan::JoinPlan> jplan;
  if (options_.use_cost_order ||
      options_.join.probe_mode == JoinEngine::ProbeMode::kHashPartition) {
    bool cache_hit = false;
    jplan = plan_cache_->Get(vq, vars, xkg_, options_.use_cost_order,
                             &cache_hit);
    // Attributed per call, not via cache-global deltas, so concurrent
    // Answer runs on one processor never report each other's counters.
    if (cache_hit) {
      ++result->stats.plan_cache_hits;
    } else {
      ++result->stats.plan_cache_misses;
    }
  }

  std::vector<std::unique_ptr<BindingStream>> streams;
  std::vector<RelaxedStream*> relaxed;  // borrowed, for stats
  for (size_t pos = 0; pos < vq.patterns().size(); ++pos) {
    const size_t i = jplan != nullptr ? jplan->order[pos] : pos;
    if (options_.enable_relaxation && !options_.exhaustive) {
      std::vector<Alternative> alts =
          AlternativesForPattern(pattern_rewriter, vq.patterns()[i]);
      result->stats.alternatives_total += alts.size();
      auto stream = std::make_unique<RelaxedStream>(xkg_, scorer_, vars,
                                                    std::move(alts), i);
      relaxed.push_back(stream.get());
      streams.push_back(std::move(stream));
    } else if (options_.enable_relaxation) {
      // Exhaustive mode: pay for every alternative up front.
      std::vector<Alternative> alts =
          AlternativesForPattern(pattern_rewriter, vq.patterns()[i]);
      result->stats.alternatives_total += alts.size();
      result->stats.alternatives_opened += alts.size();
      std::vector<std::unique_ptr<BindingStream>> opened;
      for (const Alternative& alt : alts) {
        if (alt.patterns.size() == 1) {
          opened.push_back(std::make_unique<LeafStream>(
              xkg_, scorer_, vars, alt.patterns[0], i, alt.rules,
              scoring::LmScorer::LogWeight(alt.weight)));
        } else {
          opened.push_back(
              std::make_unique<GroupStream>(xkg_, scorer_, vars, alt, i));
        }
      }
      streams.push_back(std::make_unique<MergeStream>(std::move(opened)));
    } else {
      streams.push_back(std::make_unique<LeafStream>(
          xkg_, scorer_, vars, vq.patterns()[i], i));
      ++result->stats.alternatives_total;
      ++result->stats.alternatives_opened;
    }
  }

  JoinEngine::Options join_options = options_.join;
  join_options.deadline = deadline;
  join_options.plan = jplan;
  // max_pulls is a whole-request budget: charge the items previous
  // variants already pulled against this variant's allowance.
  if (join_options.max_pulls != SIZE_MAX) {
    join_options.max_pulls =
        join_options.max_pulls > result->stats.items_pulled
            ? join_options.max_pulls - result->stats.items_pulled
            : 0;
  }
  JoinEngine engine(std::move(streams), vars, projection_ids,
                    join_options);
  std::vector<topk::Answer> variant_answers = engine.Run();

  result->stats.items_pulled += engine.stats().items_pulled;
  result->stats.items_decoded += engine.stats().items_decoded;
  result->stats.items_skipped += engine.stats().items_skipped;
  result->stats.combinations_tried += engine.stats().combinations_tried;
  result->stats.combinations_emitted += engine.stats().combinations_emitted;
  result->stats.partition_probes += engine.stats().partition_probes;
  result->stats.partition_fallbacks += engine.stats().partition_fallbacks;
  result->stats.deadline_hit |= engine.stats().deadline_hit;
  const std::vector<size_t>& shard_pulled = engine.stats().per_shard_pulled;
  if (result->stats.per_shard_pulled.size() < shard_pulled.size()) {
    result->stats.per_shard_pulled.resize(shard_pulled.size(), 0);
  }
  for (size_t i = 0; i < shard_pulled.size(); ++i) {
    result->stats.per_shard_pulled[i] += shard_pulled[i];
  }
  if (jplan != nullptr && result->plan.empty()) {
    // First evaluated variant: record the chosen order with estimated
    // vs. actual per-pattern cardinalities for the trace.
    const std::vector<size_t>& pulled = engine.stats().per_stream_pulled;
    result->plan.reserve(jplan->order.size());
    for (size_t pos = 0; pos < jplan->order.size(); ++pos) {
      TopKResult::PlanStep step;
      step.pattern = jplan->order[pos];
      step.estimated = jplan->estimates[step.pattern].cardinality;
      step.pulled = pos < pulled.size() ? pulled[pos] : 0;
      result->plan.push_back(step);
    }
  }
  for (RelaxedStream* rs : relaxed) {
    result->stats.alternatives_opened += rs->opened_alternatives();
  }

  double variant_log = scoring::LmScorer::LogWeight(variant.weight);
  for (topk::Answer& ans : variant_answers) {
    ans.score += variant_log;
    if (!variant.rules.empty() && !ans.derivation.empty()) {
      // Structural whole-query rules precede per-pattern relaxations in
      // the derivation narrative.
      auto& first_rules = ans.derivation.front().rules;
      first_rules.insert(first_rules.begin(), variant.rules.begin(),
                         variant.rules.end());
    }
    // Re-map the full variant binding onto the projection-ordered
    // binding the caller sees.
    query::Binding projected(projection_ids.size());
    bool ok = true;
    for (size_t i = 0; i < projection_ids.size(); ++i) {
      rdf::TermId value = ans.binding.Get(projection_ids[i]);
      if (value == rdf::kNullTerm) {
        ok = false;
        break;
      }
      projected.Bind(static_cast<query::VarId>(i), value);
    }
    if (!ok) continue;
    ans.binding = std::move(projected);

    // Merge into the cross-variant answer pool (max over derivations).
    std::string key;
    for (size_t i = 0; i < projection_ids.size(); ++i) {
      key += std::to_string(ans.binding.Get(static_cast<query::VarId>(i)));
      key.push_back('|');
    }
    bool found = false;
    for (topk::Answer& existing : result->answers) {
      std::string existing_key;
      for (size_t i = 0; i < projection_ids.size(); ++i) {
        existing_key += std::to_string(
            existing.binding.Get(static_cast<query::VarId>(i)));
        existing_key.push_back('|');
      }
      if (existing_key == key) {
        found = true;
        if (ans.score > existing.score) existing = std::move(ans);
        break;
      }
    }
    if (!found) result->answers.push_back(std::move(ans));
  }
}

Result<TopKResult> TopKProcessor::Answer(const query::Query& q) const {
  TRINIT_RETURN_IF_ERROR(q.Validate());
  // Canonicalize: resolve constants and pin the projection explicitly so
  // rewrites cannot silently drop projected variables.
  query::Query canonical(q.patterns(), q.EffectiveProjection());
  canonical.ResolveAgainst(xkg_.dict());

  TopKResult result;
  result.projection = canonical.projection();

  std::chrono::steady_clock::time_point deadline{};
  if (options_.deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       options_.deadline_ms));
  }

  std::vector<Variant> variants = QueryVariants(canonical);
  result.stats.query_variants_total = variants.size();

  for (const Variant& variant : variants) {
    if (deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() >= deadline) {
      result.stats.deadline_hit = true;
      break;
    }
    // A variant's answers score at most log(weight); skip it once the
    // current top-k is already beyond reach (the same "only when it can
    // contribute" cutoff as inside RelaxedStream).
    if (!options_.exhaustive &&
        result.answers.size() >= static_cast<size_t>(options_.k)) {
      std::vector<double> scores;
      scores.reserve(result.answers.size());
      for (const topk::Answer& a : result.answers) scores.push_back(a.score);
      std::nth_element(scores.begin(), scores.begin() + (options_.k - 1),
                       scores.end(), std::greater<double>());
      double kth = scores[options_.k - 1];
      if (scoring::LmScorer::LogWeight(variant.weight) <= kth) continue;
    }
    ++result.stats.query_variants_evaluated;
    EvaluateVariant(variant, canonical.projection(), deadline, &result);
  }

  std::sort(result.answers.begin(), result.answers.end(),
            [](const topk::Answer& a, const topk::Answer& b) {
              return a.score > b.score;
            });
  if (result.answers.size() > static_cast<size_t>(options_.k)) {
    result.answers.resize(options_.k);
  }
  return result;
}

}  // namespace trinit::topk
