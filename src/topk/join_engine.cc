#include "topk/join_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <string>

#include "scoring/lm_scorer.h"
#include "util/hash.h"
#include "util/logging.h"

namespace trinit::topk {
namespace {

/// Hash of `binding`'s values over the signature vars. Returns false
/// when any signature variable is unbound (the caller must treat the
/// item/probe as a wildcard). Collisions are harmless: `MergedWith`
/// remains the correctness gate, the buckets only pre-filter.
bool HashSignature(const query::Binding& binding,
                   const std::vector<query::VarId>& sig, uint64_t* hash) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (query::VarId v : sig) {
    rdf::TermId value = binding.Get(v);
    if (value == rdf::kNullTerm) return false;
    h = HashCombine(h, value);
  }
  *hash = h;
  return true;
}

}  // namespace

JoinEngine::JoinEngine(std::vector<std::unique_ptr<BindingStream>> streams,
                       const query::VarTable& vars,
                       std::vector<query::VarId> projection, Options options)
    : streams_(std::move(streams)),
      vars_(vars),
      projection_(std::move(projection)),
      options_(std::move(options)) {
  const size_t n = streams_.size();
  hash_probing_ = options_.probe_mode == ProbeMode::kHashPartition &&
                  options_.plan != nullptr &&
                  options_.plan->num_patterns() == n;
  seen_.resize(n);
  if (hash_probing_) {
    for (SeenState& state : seen_) {
      state.buckets.resize(n);
      state.wildcard.resize(n);
    }
    // Per pulled stream, a visitation order over the other streams that
    // keeps every step hash-probable: prefer the stream whose widest
    // join signature points at something already in the frame (the
    // pulled stream or an earlier visit); only a genuinely disconnected
    // stream joins as a cross product (kNoPartner, linear scan).
    visit_order_.resize(n);
    probe_partner_.resize(n);
    for (size_t s = 0; s < n; ++s) {
      std::vector<bool> in_frame(n, false);
      in_frame[s] = true;
      std::vector<bool> placed(n, false);
      placed[s] = true;
      for (size_t step = 0; step + 1 < n; ++step) {
        size_t best = kNoPartner;
        size_t best_partner = kNoPartner;
        size_t best_width = 0;
        for (size_t j = 0; j < n; ++j) {
          if (placed[j]) continue;
          size_t partner = kNoPartner;
          for (size_t a : options_.plan->probe_preference[j]) {
            if (in_frame[a]) {
              partner = a;
              break;
            }
          }
          if (best == kNoPartner && partner == kNoPartner) {
            best = j;  // disconnected placeholder; a keyed one may win
            continue;
          }
          if (partner == kNoPartner) continue;
          size_t width = options_.plan->JoinKey(j, partner).size();
          if (best_partner == kNoPartner || width > best_width) {
            best = j;
            best_partner = partner;
            best_width = width;
          }
        }
        visit_order_[s].push_back(best);
        probe_partner_[s].push_back(best_partner);
        placed[best] = true;
        in_frame[best] = true;
      }
    }
  }
  top1_.assign(n, BindingStream::kExhausted);
}

double JoinEngine::KthBest() const {
  if (answers_.size() < static_cast<size_t>(options_.k)) {
    return BindingStream::kExhausted;
  }
  std::vector<double> scores;
  scores.reserve(answers_.size());
  for (const auto& [key, ans] : answers_) scores.push_back(ans.score);
  std::nth_element(scores.begin(), scores.begin() + (options_.k - 1),
                   scores.end(), std::greater<double>());
  return scores[options_.k - 1];
}

double JoinEngine::Threshold() const {
  // T = max_i (BestPossible_i + sum_{j != i} top1_j). A stream that has
  // not delivered anything yet contributes its BestPossible as top1_j.
  double threshold = BindingStream::kExhausted;
  for (size_t i = 0; i < streams_.size(); ++i) {
    double bound_i = streams_[i]->BestPossible();
    if (bound_i <= BindingStream::kExhausted) continue;
    double total = bound_i;
    bool feasible = true;
    for (size_t j = 0; j < streams_.size(); ++j) {
      if (j == i) continue;
      double tj = top1_[j] > BindingStream::kExhausted
                      ? top1_[j]
                      : streams_[j]->BestPossible();
      if (tj <= BindingStream::kExhausted) {
        feasible = false;  // stream j can never deliver: no joins at all
        break;
      }
      total += tj;
    }
    if (feasible) threshold = std::max(threshold, total);
  }
  return threshold;
}

void JoinEngine::Emit(const query::Binding& binding, double score,
                      std::vector<DerivationStep> derivation) {
  // Projection variables must be bound for the answer to be presentable.
  for (query::VarId v : projection_) {
    if (!binding.IsBound(v)) return;
  }
  std::string key = binding.KeyFor(projection_);
  auto it = answers_.find(key);
  if (it == answers_.end()) {
    Answer ans;
    ans.binding = binding;
    ans.score = score;
    ans.derivation = std::move(derivation);
    answers_.emplace(std::move(key), std::move(ans));
    return;
  }
  if (options_.max_over_derivations) {
    // Paper §4: "the score of an answer [is] the maximal one obtained
    // through any such sequence [of relaxations]".
    if (score > it->second.score) {
      it->second.score = score;
      it->second.binding = binding;
      it->second.derivation = std::move(derivation);
    }
  } else {
    // Probabilistic-sum ablation: log(exp(a) + exp(b)), numerically
    // stabilized; keeps the better derivation for explanation.
    double hi = std::max(it->second.score, score);
    double lo = std::min(it->second.score, score);
    it->second.score = hi + std::log1p(std::exp(lo - hi));
    if (score >= hi && !derivation.empty()) {
      it->second.binding = binding;
      it->second.derivation = std::move(derivation);
    }
  }
}

void JoinEngine::Insert(size_t stream_idx, BindingStream::Item item) {
  SeenState& state = seen_[stream_idx];
  state.items.push_back(std::move(item));
  if (!hash_probing_) return;
  const uint32_t pos = static_cast<uint32_t>(state.items.size() - 1);
  const query::Binding& binding = state.items.back().binding;
  for (size_t a = 0; a < streams_.size(); ++a) {
    if (a == stream_idx) continue;
    const std::vector<query::VarId>& sig =
        options_.plan->JoinKey(stream_idx, a);
    if (sig.empty()) continue;  // cross-product pair: linear anyway
    uint64_t h = 0;
    if (HashSignature(binding, sig, &h)) {
      state.buckets[a][h].push_back(pos);
    } else {
      state.wildcard[a].push_back(pos);
    }
  }
}

void JoinEngine::Combine(size_t stream_idx,
                         const BindingStream::Item& item) {
  // Backtracking join of `item` with one seen item from every other
  // stream. In hash mode the streams are visited in the precomputed
  // connectivity order for `stream_idx`, so every step (except genuine
  // cross products) probes a hash partition keyed off something already
  // merged into the frame; in linear mode (the seed behavior) they are
  // visited in index order with full seen-list scans.
  struct Frame {
    query::Binding binding;
    double score;
  };
  const size_t n = streams_.size();
  std::vector<const BindingStream::Item*> picked(n, nullptr);
  picked[stream_idx] = &item;

  std::function<void(size_t, const Frame&)> recurse =
      [&](size_t depth, const Frame& frame) {
        if (depth + 1 == n) {
          ++stats_.combinations_emitted;
          std::vector<DerivationStep> derivation;
          derivation.reserve(n);
          for (const BindingStream::Item* p : picked) {
            derivation.push_back(p->step);
          }
          // `picked` is indexed by execution position; report the
          // derivation in original pattern order so explanations (and
          // the structural-rule attribution on the first step) never
          // depend on the plan.
          std::sort(derivation.begin(), derivation.end(),
                    [](const DerivationStep& a, const DerivationStep& b) {
                      return a.pattern_index < b.pattern_index;
                    });
          Emit(frame.binding, frame.score, std::move(derivation));
          return;
        }
        size_t idx;
        size_t partner = kNoPartner;
        if (hash_probing_) {
          idx = visit_order_[stream_idx][depth];
          partner = probe_partner_[stream_idx][depth];
        } else {
          // Seed order: stream indices ascending, skipping the pull.
          idx = depth < stream_idx ? depth : depth + 1;
        }
        const SeenState& state = seen_[idx];
        auto try_candidate = [&](const BindingStream::Item& cand) {
          ++stats_.combinations_tried;
          auto merged = frame.binding.MergedWith(cand.binding);
          if (!merged.has_value()) return;
          picked[idx] = &cand;
          recurse(depth + 1, Frame{std::move(*merged),
                                   frame.score + cand.log_score});
        };

        bool probed = false;
        if (partner != kNoPartner) {
          uint64_t h = 0;
          if (HashSignature(frame.binding,
                            options_.plan->JoinKey(idx, partner), &h)) {
            ++stats_.partition_probes;
            auto bucket = state.buckets[partner].find(h);
            if (bucket != state.buckets[partner].end()) {
              for (uint32_t pos : bucket->second) {
                try_candidate(state.items[pos]);
              }
            }
            for (uint32_t pos : state.wildcard[partner]) {
              try_candidate(state.items[pos]);
            }
            probed = true;
          } else {
            // The frame leaves a signature var unbound (a relaxed form
            // dropped it): the key cannot be computed, scan linearly.
            ++stats_.partition_fallbacks;
          }
        }
        if (!probed) {
          for (const BindingStream::Item& cand : state.items) {
            try_candidate(cand);
          }
        }
        picked[idx] = nullptr;
      };
  recurse(0, Frame{item.binding, item.log_score});
}

std::vector<Answer> JoinEngine::Run() {
  constexpr size_t kDeadlineCheckMask = 63;  // amortize the clock reads
  const bool has_deadline =
      options_.deadline != std::chrono::steady_clock::time_point{};
  // Heap-mode pull selection: stream heads only descend, so the lazy
  // max-heap re-peeks at most the stale top instead of every stream
  // every round (the seed's O(#patterns) scan, kept as
  // PullMode::kLinear). Ties break by stream index in both modes
  // (insertion order below), so the pull sequence is identical.
  const bool heap_pull = options_.pull_mode == PullMode::kHeap;
  LazyMaxHeap<size_t> pull_heap;
  if (heap_pull) {
    for (size_t i = 0; i < streams_.size(); ++i) {
      const BindingStream::Item* item = streams_[i]->Peek();
      if (item != nullptr) pull_heap.Push(i, item->log_score);
    }
  }
  auto head_score = [this](size_t i) -> std::optional<double> {
    const BindingStream::Item* item = streams_[i]->Peek();
    if (item == nullptr) return std::nullopt;
    return item->log_score;
  };
  while (stats_.items_pulled < options_.max_pulls) {
    if (has_deadline && (stats_.items_pulled & kDeadlineCheckMask) == 0 &&
        std::chrono::steady_clock::now() >= options_.deadline) {
      stats_.deadline_hit = true;
      break;
    }
    if (!options_.drain) {
      // Termination test first: with k answers at or above the
      // threshold, no unseen combination can change the top-k.
      double kth = KthBest();
      double threshold = Threshold();
      if (threshold <= BindingStream::kExhausted) break;  // all exhausted
      if (kth > BindingStream::kExhausted && kth >= threshold) {
        stats_.early_terminated = true;
        break;
      }
    }

    // Pull from the stream with the highest next item.
    size_t best_idx = streams_.size();
    if (heap_pull) {
      std::optional<size_t> best = pull_heap.Best(head_score);
      if (best.has_value()) best_idx = *best;
    } else {
      double best_score = BindingStream::kExhausted;
      for (size_t i = 0; i < streams_.size(); ++i) {
        const BindingStream::Item* item = streams_[i]->Peek();
        if (item != nullptr && item->log_score > best_score) {
          best_idx = i;
          best_score = item->log_score;
        }
      }
    }
    if (best_idx == streams_.size()) break;  // everything exhausted

    BindingStream::Item item = *streams_[best_idx]->Peek();
    streams_[best_idx]->Pop();
    ++stats_.items_pulled;
    if (item.shard >= stats_.per_shard_pulled.size()) {
      stats_.per_shard_pulled.resize(item.shard + 1, 0);
    }
    ++stats_.per_shard_pulled[item.shard];
    top1_[best_idx] = std::max(top1_[best_idx], item.log_score);
    Insert(best_idx, std::move(item));
    Combine(best_idx, seen_[best_idx].items.back());
  }

  // Laziness accounting: how much of the underlying index lists the
  // streams decoded on this run's behalf, and what they never touched.
  BindingStream::Stats decode_stats;
  for (const auto& stream : streams_) decode_stats += stream->DecodeStats();
  stats_.items_decoded += decode_stats.items_decoded;
  stats_.items_skipped += decode_stats.items_skipped;
  stats_.per_stream_pulled.reserve(seen_.size());
  for (const SeenState& state : seen_) {
    stats_.per_stream_pulled.push_back(state.items.size());
  }

  std::vector<Answer> out;
  out.reserve(answers_.size());
  for (auto& [key, ans] : answers_) out.push_back(std::move(ans));
  std::sort(out.begin(), out.end(), [](const Answer& a, const Answer& b) {
    return a.score > b.score;
  });
  if (out.size() > static_cast<size_t>(options_.k)) {
    out.resize(options_.k);
  }
  return out;
}

}  // namespace trinit::topk
