#include "topk/join_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

#include "scoring/lm_scorer.h"
#include "util/logging.h"

namespace trinit::topk {

JoinEngine::JoinEngine(std::vector<std::unique_ptr<BindingStream>> streams,
                       const query::VarTable& vars,
                       std::vector<query::VarId> projection, Options options)
    : streams_(std::move(streams)),
      vars_(vars),
      projection_(std::move(projection)),
      options_(options) {
  seen_.resize(streams_.size());
  top1_.assign(streams_.size(), BindingStream::kExhausted);
}

double JoinEngine::KthBest() const {
  if (answers_.size() < static_cast<size_t>(options_.k)) {
    return BindingStream::kExhausted;
  }
  std::vector<double> scores;
  scores.reserve(answers_.size());
  for (const auto& [key, ans] : answers_) scores.push_back(ans.score);
  std::nth_element(scores.begin(), scores.begin() + (options_.k - 1),
                   scores.end(), std::greater<double>());
  return scores[options_.k - 1];
}

double JoinEngine::Threshold() const {
  // T = max_i (BestPossible_i + sum_{j != i} top1_j). A stream that has
  // not delivered anything yet contributes its BestPossible as top1_j.
  double threshold = BindingStream::kExhausted;
  for (size_t i = 0; i < streams_.size(); ++i) {
    double bound_i = streams_[i]->BestPossible();
    if (bound_i <= BindingStream::kExhausted) continue;
    double total = bound_i;
    bool feasible = true;
    for (size_t j = 0; j < streams_.size(); ++j) {
      if (j == i) continue;
      double tj = top1_[j] > BindingStream::kExhausted
                      ? top1_[j]
                      : streams_[j]->BestPossible();
      if (tj <= BindingStream::kExhausted) {
        feasible = false;  // stream j can never deliver: no joins at all
        break;
      }
      total += tj;
    }
    if (feasible) threshold = std::max(threshold, total);
  }
  return threshold;
}

void JoinEngine::Emit(const query::Binding& binding, double score,
                      std::vector<DerivationStep> derivation) {
  // Projection variables must be bound for the answer to be presentable.
  for (query::VarId v : projection_) {
    if (!binding.IsBound(v)) return;
  }
  std::string key = binding.KeyFor(projection_);
  auto it = answers_.find(key);
  if (it == answers_.end()) {
    Answer ans;
    ans.binding = binding;
    ans.score = score;
    ans.derivation = std::move(derivation);
    answers_.emplace(std::move(key), std::move(ans));
    return;
  }
  if (options_.max_over_derivations) {
    // Paper §4: "the score of an answer [is] the maximal one obtained
    // through any such sequence [of relaxations]".
    if (score > it->second.score) {
      it->second.score = score;
      it->second.binding = binding;
      it->second.derivation = std::move(derivation);
    }
  } else {
    // Probabilistic-sum ablation: log(exp(a) + exp(b)), numerically
    // stabilized; keeps the better derivation for explanation.
    double hi = std::max(it->second.score, score);
    double lo = std::min(it->second.score, score);
    it->second.score = hi + std::log1p(std::exp(lo - hi));
    if (score >= hi && !derivation.empty()) {
      it->second.binding = binding;
      it->second.derivation = std::move(derivation);
    }
  }
}

void JoinEngine::Combine(size_t stream_idx,
                         const BindingStream::Item& item) {
  // Backtracking join of `item` with one seen item from every other
  // stream.
  struct Frame {
    query::Binding binding;
    double score;
  };
  size_t n = streams_.size();
  std::vector<const BindingStream::Item*> picked(n, nullptr);
  picked[stream_idx] = &item;

  std::function<void(size_t, const Frame&)> recurse =
      [&](size_t idx, const Frame& frame) {
        if (idx == n) {
          ++stats_.combinations_tried;
          std::vector<DerivationStep> derivation;
          derivation.reserve(n);
          for (const BindingStream::Item* p : picked) {
            derivation.push_back(p->step);
          }
          Emit(frame.binding, frame.score, std::move(derivation));
          return;
        }
        if (idx == stream_idx) {
          recurse(idx + 1, frame);
          return;
        }
        for (const BindingStream::Item& cand : seen_[idx]) {
          auto merged = frame.binding.MergedWith(cand.binding);
          if (!merged.has_value()) continue;
          picked[idx] = &cand;
          recurse(idx + 1, Frame{std::move(*merged),
                                 frame.score + cand.log_score});
        }
        picked[idx] = nullptr;
      };
  recurse(0, Frame{item.binding, item.log_score});
}

std::vector<Answer> JoinEngine::Run() {
  constexpr size_t kDeadlineCheckMask = 63;  // amortize the clock reads
  const bool has_deadline =
      options_.deadline != std::chrono::steady_clock::time_point{};
  while (stats_.items_pulled < options_.max_pulls) {
    if (has_deadline && (stats_.items_pulled & kDeadlineCheckMask) == 0 &&
        std::chrono::steady_clock::now() >= options_.deadline) {
      stats_.deadline_hit = true;
      break;
    }
    if (!options_.drain) {
      // Termination test first: with k answers at or above the
      // threshold, no unseen combination can change the top-k.
      double kth = KthBest();
      double threshold = Threshold();
      if (threshold <= BindingStream::kExhausted) break;  // all exhausted
      if (kth > BindingStream::kExhausted && kth >= threshold) {
        stats_.early_terminated = true;
        break;
      }
    }

    // Pull from the stream with the highest next item.
    size_t best_idx = streams_.size();
    double best_score = BindingStream::kExhausted;
    for (size_t i = 0; i < streams_.size(); ++i) {
      const BindingStream::Item* item = streams_[i]->Peek();
      if (item != nullptr && item->log_score > best_score) {
        best_idx = i;
        best_score = item->log_score;
      }
    }
    if (best_idx == streams_.size()) break;  // everything exhausted

    BindingStream::Item item = *streams_[best_idx]->Peek();
    streams_[best_idx]->Pop();
    ++stats_.items_pulled;
    top1_[best_idx] = std::max(top1_[best_idx], item.log_score);
    seen_[best_idx].push_back(item);
    Combine(best_idx, seen_[best_idx].back());
  }

  // Laziness accounting: how much of the underlying index lists the
  // streams decoded on this run's behalf, and what they never touched.
  BindingStream::Stats decode_stats;
  for (const auto& stream : streams_) decode_stats += stream->DecodeStats();
  stats_.items_decoded += decode_stats.items_decoded;
  stats_.items_skipped += decode_stats.items_skipped;

  std::vector<Answer> out;
  out.reserve(answers_.size());
  for (auto& [key, ans] : answers_) out.push_back(std::move(ans));
  std::sort(out.begin(), out.end(), [](const Answer& a, const Answer& b) {
    return a.score > b.score;
  });
  if (out.size() > static_cast<size_t>(options_.k)) {
    out.resize(options_.k);
  }
  return out;
}

}  // namespace trinit::topk
