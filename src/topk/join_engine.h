#ifndef TRINIT_TOPK_JOIN_ENGINE_H_
#define TRINIT_TOPK_JOIN_ENGINE_H_

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "plan/join_plan.h"
#include "query/binding.h"
#include "topk/pattern_stream.h"

namespace trinit::topk {

/// Rank-join over one scored stream per query pattern (HRJN-style
/// generalization of the incremental top-k processing the paper adopts
/// from [11]).
///
/// The engine repeatedly pulls from the stream with the highest next
/// score, joins the new item against the already-seen items of the
/// other streams (bindings of shared variables must agree), and stops as
/// soon as the k-th best answer's score reaches the threshold
///
///   T = max_i ( BestPossible_i + sum_{j != i} top1_j )
///
/// where top1_j is the best score stream j has delivered (its first
/// item, since streams descend). Because per-item scores are log
/// probabilities (monotone sum aggregation), no unseen combination can
/// beat T. This is what makes it safe to leave relaxations unopened
/// inside `RelaxedStream`s: their bounds propagate through
/// BestPossible_i.
///
/// Seen-state layout: with a `plan::JoinPlan` (streams must then be
/// constructed in the plan's execution order), each stream's seen items
/// are hash-partitioned per counterpart stream by the pair's join-key
/// signature, so a probe touches only join-compatible candidates —
/// O(matches) instead of O(seen). Without a plan (or with
/// `ProbeMode::kLinear`) every probe scans the full seen list, the seed
/// behavior the property tests pin the partitioned mode against.
class JoinEngine {
 public:
  /// How `Combine` selects candidate partners among seen items.
  enum class ProbeMode {
    kHashPartition,  ///< per-pair hash partitions (requires a plan)
    kLinear,         ///< full scan of every seen list (seed behavior)
  };

  /// How `Run` selects the stream to pull from each round.
  enum class PullMode {
    kHeap,    ///< lazy max-heap over head scores, O(log #patterns)
    kLinear,  ///< peek every stream per pull (seed behavior), O(#patterns)
  };

  struct Options {
    int k = 10;
    size_t max_pulls = 200000;  ///< hard safety cap
    /// Absolute wall-clock cutoff for the run; the default-constructed
    /// time point (the epoch) disables it. Checked periodically, so the
    /// engine may overshoot by a handful of pulls.
    std::chrono::steady_clock::time_point deadline{};
    /// Answer-combination semantics across derivations of the same
    /// projection binding: max (paper §4) or probabilistic sum
    /// (ablation A2).
    bool max_over_derivations = true;
    /// Drain every stream completely instead of stopping at the top-k
    /// threshold (the exhaustive comparator of bench E3).
    bool drain = false;
    ProbeMode probe_mode = ProbeMode::kHashPartition;
    /// Pull selection. The two modes choose the identical stream
    /// sequence (heads only descend; ties break by stream index either
    /// way) — kLinear exists as the determinism comparator and forces
    /// every stream's head to materialize every round.
    PullMode pull_mode = PullMode::kHeap;
    /// The compiled plan the streams were built under: stream index `i`
    /// must hold the pattern at the plan's execution position `i`. Null
    /// degrades every probe to the linear scan (join keys unknown).
    std::shared_ptr<const plan::JoinPlan> plan;
  };

  struct Stats {
    size_t items_pulled = 0;
    /// Index-list entries the streams actually fetched and scored; with
    /// lazy streams this can exceed `items_pulled` only by the decode
    /// lookahead, and is how much of `items_decoded + items_skipped`
    /// (the full materialization cost) was really paid.
    size_t items_decoded = 0;
    size_t items_skipped = 0;  ///< known index entries never decoded
    /// Candidate combinations *examined* — every seen item a Combine
    /// probe tested against the accumulated binding (the join's probe
    /// work). Hash partitioning shrinks this; the emitted-combination
    /// count below is identical across probe modes.
    size_t combinations_tried = 0;
    /// Complete n-way combinations that reached Emit (the seed's
    /// original `combinations_tried` meaning).
    size_t combinations_emitted = 0;
    size_t partition_probes = 0;     ///< probes narrowed by a hash bucket
    size_t partition_fallbacks = 0;  ///< probes forced to scan linearly
    /// Items pulled per stream (execution order), the join's actual
    /// per-pattern cardinalities for plan-vs-reality reporting.
    std::vector<size_t> per_stream_pulled;
    /// Items pulled per owning XKG shard — the scatter-gather balance
    /// measure (max element / items_pulled is the hottest shard's
    /// share). At most one element (shard 0) when the engine serves
    /// unsharded, so traces can gate on size() > 1.
    std::vector<size_t> per_shard_pulled;
    bool early_terminated = false;  ///< stopped via threshold, not
                                    ///< exhaustion
    bool deadline_hit = false;  ///< stopped because `deadline` expired
  };

  /// `projection` are ids into `vars` that define answer identity; they
  /// must be bound for an answer to count.
  JoinEngine(std::vector<std::unique_ptr<BindingStream>> streams,
             const query::VarTable& vars,
             std::vector<query::VarId> projection, Options options);

  /// Runs to completion and returns answers in descending score order
  /// (at most k). Bindings are over the full `vars` table (the binding
  /// of the best derivation for that projection key).
  std::vector<Answer> Run();

  const Stats& stats() const { return stats_; }

 private:
  /// One stream's seen items plus, in hash mode, a partition per
  /// counterpart stream: buckets keyed by the hash of the item's values
  /// on the pair's join-key signature, and a wildcard list for items
  /// that leave a signature variable unbound (they merge with anything,
  /// so every probe must include them).
  struct SeenState {
    std::vector<BindingStream::Item> items;
    std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> buckets;
    std::vector<std::vector<uint32_t>> wildcard;
  };

  void Insert(size_t stream_idx, BindingStream::Item item);
  void Combine(size_t stream_idx, const BindingStream::Item& item);
  void Emit(const query::Binding& binding, double score,
            std::vector<DerivationStep> derivation);
  double KthBest() const;
  double Threshold() const;

  std::vector<std::unique_ptr<BindingStream>> streams_;
  const query::VarTable& vars_;
  std::vector<query::VarId> projection_;
  Options options_;
  Stats stats_;
  bool hash_probing_ = false;  // plan present and hash mode selected

  static constexpr size_t kNoPartner = static_cast<size_t>(-1);
  /// Hash mode only: for each pulled stream `s`, the order Combine
  /// visits the other streams in — always a stream with a join partner
  /// already in the frame when one exists, so probes stay hash-narrowed
  /// regardless of which stream was pulled — and that partner, chosen
  /// widest-signature-first (`kNoPartner` = genuine cross product,
  /// scanned linearly).
  std::vector<std::vector<size_t>> visit_order_;
  std::vector<std::vector<size_t>> probe_partner_;

  std::vector<SeenState> seen_;
  std::vector<double> top1_;  // best delivered score per stream
  std::unordered_map<std::string, Answer> answers_;
};

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_JOIN_ENGINE_H_
