#ifndef TRINIT_TOPK_JOIN_ENGINE_H_
#define TRINIT_TOPK_JOIN_ENGINE_H_

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "query/binding.h"
#include "topk/pattern_stream.h"

namespace trinit::topk {

/// Rank-join over one scored stream per query pattern (HRJN-style
/// generalization of the incremental top-k processing the paper adopts
/// from [11]).
///
/// The engine repeatedly pulls from the stream with the highest next
/// score, joins the new item against everything already seen from the
/// other streams (bindings of shared variables must agree), and stops as
/// soon as the k-th best answer's score reaches the threshold
///
///   T = max_i ( BestPossible_i + sum_{j != i} top1_j )
///
/// where top1_j is the best score stream j has delivered (its first
/// item, since streams descend). Because per-item scores are log
/// probabilities (monotone sum aggregation), no unseen combination can
/// beat T. This is what makes it safe to leave relaxations unopened
/// inside `RelaxedStream`s: their bounds propagate through
/// BestPossible_i.
class JoinEngine {
 public:
  struct Options {
    int k = 10;
    size_t max_pulls = 200000;  ///< hard safety cap
    /// Absolute wall-clock cutoff for the run; the default-constructed
    /// time point (the epoch) disables it. Checked periodically, so the
    /// engine may overshoot by a handful of pulls.
    std::chrono::steady_clock::time_point deadline{};
    /// Answer-combination semantics across derivations of the same
    /// projection binding: max (paper §4) or probabilistic sum
    /// (ablation A2).
    bool max_over_derivations = true;
    /// Drain every stream completely instead of stopping at the top-k
    /// threshold (the exhaustive comparator of bench E3).
    bool drain = false;
  };

  struct Stats {
    size_t items_pulled = 0;
    /// Index-list entries the streams actually fetched and scored; with
    /// lazy streams this can exceed `items_pulled` only by the decode
    /// lookahead, and is how much of `items_decoded + items_skipped`
    /// (the full materialization cost) was really paid.
    size_t items_decoded = 0;
    size_t items_skipped = 0;  ///< known index entries never decoded
    size_t combinations_tried = 0;
    bool early_terminated = false;  ///< stopped via threshold, not
                                    ///< exhaustion
    bool deadline_hit = false;  ///< stopped because `deadline` expired
  };

  /// `projection` are ids into `vars` that define answer identity; they
  /// must be bound for an answer to count.
  JoinEngine(std::vector<std::unique_ptr<BindingStream>> streams,
             const query::VarTable& vars,
             std::vector<query::VarId> projection, Options options);

  /// Runs to completion and returns answers in descending score order
  /// (at most k). Bindings are over the full `vars` table (the binding
  /// of the best derivation for that projection key).
  std::vector<Answer> Run();

  const Stats& stats() const { return stats_; }

 private:
  void Combine(size_t stream_idx, const BindingStream::Item& item);
  void Emit(const query::Binding& binding, double score,
            std::vector<DerivationStep> derivation);
  double KthBest() const;
  double Threshold() const;

  std::vector<std::unique_ptr<BindingStream>> streams_;
  const query::VarTable& vars_;
  std::vector<query::VarId> projection_;
  Options options_;
  Stats stats_;

  std::vector<std::vector<BindingStream::Item>> seen_;
  std::vector<double> top1_;  // best delivered score per stream
  std::unordered_map<std::string, Answer> answers_;
};

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_JOIN_ENGINE_H_
