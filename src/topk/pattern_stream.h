#ifndef TRINIT_TOPK_PATTERN_STREAM_H_
#define TRINIT_TOPK_PATTERN_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "query/binding.h"
#include "query/query.h"
#include "scoring/lm_scorer.h"
#include "topk/answer.h"
#include "xkg/xkg.h"

namespace trinit::topk {

/// A stream of scored variable bindings in descending score order — the
/// "index list accessible in sorted order of scores" that the paper's
/// incremental top-k algorithm (§4, after [11]) consumes.
///
/// Laziness contract: a stream does only the work its consumer pays
/// for. `Peek()`/`Pop()` may decode and score index entries; calling
/// `BestPossible()` must stay cheap (no decoding) so rank-join
/// threshold checks are free. `DecodeStats()` reports how much of the
/// underlying index lists was actually touched.
class BindingStream {
 public:
  struct Item {
    query::Binding binding;  ///< over the consumer's VarTable
    double log_score = 0.0;
    /// Shard that owned the triple this item decoded from (0 when the
    /// engine serves unsharded); rides through wrapper streams so the
    /// join engine can account pulls per shard.
    uint32_t shard = 0;
    DerivationStep step;
  };

  /// Laziness accounting over the stream's underlying index lists.
  struct Stats {
    size_t items_decoded = 0;  ///< index entries fetched and scored
    size_t items_skipped = 0;  ///< entries in known lists never decoded
    /// items_decoded split by owning shard; empty for streams that never
    /// touch a sharded store (unsharded engines stay on size-0/1 so
    /// their traces are unchanged).
    std::vector<size_t> per_shard_decoded;

    Stats& operator+=(const Stats& other) {
      items_decoded += other.items_decoded;
      items_skipped += other.items_skipped;
      if (per_shard_decoded.size() < other.per_shard_decoded.size()) {
        per_shard_decoded.resize(other.per_shard_decoded.size(), 0);
      }
      for (size_t i = 0; i < other.per_shard_decoded.size(); ++i) {
        per_shard_decoded[i] += other.per_shard_decoded[i];
      }
      return *this;
    }
  };

  virtual ~BindingStream() = default;

  /// Current best remaining item, or nullptr when exhausted. The
  /// returned pointer stays valid until the next Pop().
  virtual const Item* Peek() = 0;

  /// Advances past the current item. Requires Peek() != nullptr.
  virtual void Pop() = 0;

  /// Upper bound on the score of anything this stream may still emit;
  /// must be non-increasing over time. -inf (kExhausted) when done.
  virtual double BestPossible() = 0;

  /// Work accounting; streams without index lists report zeros.
  virtual Stats DecodeStats() const { return {}; }

  static constexpr double kExhausted = -1e18;
};

/// Lazy max-heap over handles whose keys only *descend* over time.
///
/// Entries are keyed by the value observed at push time; a stale top is
/// detected by re-reading the handle's current key and sifted back
/// down, so callers never pay a full rescan. Ties break by insertion
/// order (earliest wins), keeping selection deterministic and identical
/// to a first-maximum linear scan. This is the machinery behind
/// `StreamHeap` (handles = streams, key = head score) and the
/// `LeafStream` cursor selection (handles = cursor indices, key =
/// undecoded-remainder bound).
template <typename Handle>
class LazyMaxHeap {
 public:
  void Push(Handle handle, double key) {
    heap_.push_back({key, next_order_++, handle});
    std::push_heap(heap_.begin(), heap_.end(), Less);
  }

  /// The handle with the highest current key, or nullopt when empty.
  /// `current_key(handle)` must return the handle's present key — at or
  /// below the key it was pushed with — or nullopt to drop the handle
  /// for good (exhausted). The returned handle's entry stays in the
  /// heap; a later key decrease is picked up on the next call.
  template <typename KeyFn>
  std::optional<Handle> Best(KeyFn&& current_key) {
    while (!heap_.empty()) {
      Entry top = heap_.front();
      std::optional<double> key = current_key(top.handle);
      if (!key.has_value()) {
        std::pop_heap(heap_.begin(), heap_.end(), Less);
        heap_.pop_back();
        continue;
      }
      if (*key >= top.key) return top.handle;
      // The key descended since this entry was keyed: re-key and sift,
      // then re-check the new top.
      std::pop_heap(heap_.begin(), heap_.end(), Less);
      heap_.back().key = *key;
      std::push_heap(heap_.begin(), heap_.end(), Less);
    }
    return std::nullopt;
  }

  bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    double key;
    uint64_t order;  // insertion order; earlier wins ties (determinism)
    Handle handle;
  };
  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.order > b.order;
  }
  std::vector<Entry> heap_;  // std::push_heap max-heap on key
  uint64_t next_order_ = 0;
};

/// Lazy max-heap over the current head items of a set of streams.
///
/// Entries are keyed by the head score observed at push time; since
/// stream heads only descend, a stale top is detected by re-peeking and
/// pushed back down. This replaces the O(n) per-`Peek` linear rescans
/// of `MergeStream`/`RelaxedStream` with O(log n) heap maintenance.
class StreamHeap {
 public:
  /// Registers a stream; peeks it once (exhausted streams are dropped).
  void Add(BindingStream* stream);

  /// The stream with the best current head item, or nullptr when every
  /// registered stream is exhausted. The winner's `Peek()` is hot.
  BindingStream* Best();

  bool empty() const { return heap_.empty(); }

 private:
  LazyMaxHeap<BindingStream*> heap_;
};

/// Evaluates one concrete triple pattern against the XKG and serves its
/// matches best-first, *incrementally*: each (soft-match) slot
/// combination is a cursor over a score-ordered posting list
/// (`TripleStore::ScoreOrdered`), entries are decoded in small chunks,
/// and an item is emitted only once nothing still undecoded can outrank
/// it (`LmScorer::UpperBoundForList` bounds every cursor's remainder).
/// Deadlines and rank-join thresholds therefore save real work: what
/// the consumer never pulls is never fetched or scored.
///
/// Token constants soft-match interned token phrases through the phrase
/// index (threshold from ScorerOptions); each substitution attenuates
/// the score by log(similarity) and is recorded as a SoftMatch.
/// Unresolved resource/literal constants match nothing (relaxation rules
/// are the rescue path).
class LeafStream : public BindingStream {
 public:
  /// `pattern_index` tags emitted derivation steps; `chain_rules` /
  /// `chain_weight_log` describe the relaxation chain that produced this
  /// form of the pattern (empty/0 for the original form).
  LeafStream(const xkg::Xkg& xkg, const scoring::LmScorer& scorer,
             const query::VarTable& vars, const query::TriplePattern& pattern,
             size_t pattern_index,
             std::vector<const relax::Rule*> chain_rules = {},
             double chain_weight_log = 0.0);

  const Item* Peek() override;
  void Pop() override;
  double BestPossible() override;
  Stats DecodeStats() const override;

  /// Total number of items this stream will ever emit. Forces a full
  /// decode — test/bench introspection only; defeats the laziness.
  size_t size();

 private:
  /// One shard's share of a cursor's posting list. Unsharded engines use
  /// a single segment over the store's global list; sharded engines use
  /// one per non-empty shard. Every pattern shape resolves to a single
  /// key block, inside which the order is purely (weight desc, id asc) —
  /// so merging segment heads under that comparator reproduces the
  /// global list bit-for-bit, and the decode sequence (hence seq
  /// numbers, bounds, and emitted scores) is independent of the shard
  /// count.
  struct Segment {
    std::span<const rdf::TripleId> ids;  // descending emission weight
    size_t pos = 0;                      // next undecoded entry
    uint32_t shard = 0;                  // owning shard (0 unsharded)
  };

  /// One slot-alternative combination: a score-ordered posting list
  /// (split into per-shard segments) with its attenuation and
  /// soft-match records.
  struct Cursor {
    std::vector<Segment> segments;
    size_t remaining = 0;  // undecoded entries across all segments
    uint64_t mass = 0;     // emission denominator (global, all shards)
    double alt_log = 0.0;  // soft-match + chain attenuation (<= 0)
    double bound = 0.0;    // upper bound on any undecoded item
    std::vector<SoftMatch> soft_matches;
  };

  /// Entry of the decoded-but-unemitted heap.
  struct Pending {
    double score = 0.0;
    uint64_t seq = 0;  // decode order; earlier wins ties (determinism)
    Item item;
  };
  static bool PendingLess(const Pending& a, const Pending& b);

  /// Segment holding the cursor's globally-next entry: max head weight,
  /// ties by min head id (the posting-list comparator). nullopt when
  /// every segment is drained.
  std::optional<size_t> BestSegment(const Cursor& cursor) const;
  void DecodeChunk(Cursor& cursor);
  /// Decodes until the heap's best is safe to emit (no cursor bound
  /// above it), then moves it into `current_`.
  void Advance();
  /// Index of the cursor with the highest undecoded-remainder bound via
  /// the lazy heap (cursor bounds only descend), or nullopt when every
  /// cursor is drained.
  std::optional<size_t> BestCursor();

  const xkg::Xkg& xkg_;
  const scoring::LmScorer& scorer_;
  std::vector<Cursor> cursors_;
  LazyMaxHeap<size_t> cursor_heap_;  // bound-keyed cursor selection
  std::vector<Pending> heap_;  // std::push_heap max-heap
  std::optional<Item> current_;
  size_t decoded_ = 0;
  std::vector<size_t> per_shard_decoded_;  // by shard; size 1 unsharded
  size_t total_entries_ = 0;
  size_t popped_ = 0;
  uint64_t next_seq_ = 0;
  // BestPossible() cache: the bound only moves when something decodes
  // or emits, but the rank-join threshold reads it on every pull.
  double cached_bound_ = 0.0;
  bool bound_dirty_ = true;

  // Shared item metadata.
  size_t pattern_index_;
  std::string matched_form_;
  std::vector<const relax::Rule*> chain_rules_;
  std::optional<query::VarId> sv_, pv_, ov_;
  size_t num_vars_ = 0;
};

/// Merges several already-constructed streams, best-first, through a
/// lazy max-heap keyed by head scores. Used by tests and by the
/// exhaustive-mode machinery.
class MergeStream : public BindingStream {
 public:
  explicit MergeStream(std::vector<std::unique_ptr<BindingStream>> inputs);

  const Item* Peek() override;
  void Pop() override;
  double BestPossible() override;
  Stats DecodeStats() const override;

 private:
  BindingStream* Best();
  std::vector<std::unique_ptr<BindingStream>> inputs_;
  StreamHeap heap_;
  bool heap_primed_ = false;
};

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_PATTERN_STREAM_H_
