#ifndef TRINIT_TOPK_PATTERN_STREAM_H_
#define TRINIT_TOPK_PATTERN_STREAM_H_

#include <memory>
#include <vector>

#include "query/binding.h"
#include "query/query.h"
#include "scoring/lm_scorer.h"
#include "topk/answer.h"
#include "xkg/xkg.h"

namespace trinit::topk {

/// A stream of scored variable bindings in descending score order — the
/// "index list accessible in sorted order of scores" that the paper's
/// incremental top-k algorithm (§4, after [11]) consumes.
class BindingStream {
 public:
  struct Item {
    query::Binding binding;  ///< over the consumer's VarTable
    double log_score = 0.0;
    DerivationStep step;
  };

  virtual ~BindingStream() = default;

  /// Current best remaining item, or nullptr when exhausted.
  virtual const Item* Peek() = 0;

  /// Advances past the current item. Requires Peek() != nullptr.
  virtual void Pop() = 0;

  /// Upper bound on the score of anything this stream may still emit;
  /// must be non-increasing over time. -inf (kExhausted) when done.
  virtual double BestPossible() = 0;

  static constexpr double kExhausted = -1e18;
};

/// Evaluates one concrete triple pattern against the XKG and serves its
/// matches best-first.
///
/// Token constants soft-match interned token phrases through the phrase
/// index (threshold from ScorerOptions); each substitution attenuates
/// the score by log(similarity) and is recorded as a SoftMatch.
/// Unresolved resource/literal constants match nothing (relaxation rules
/// are the rescue path). The stream is fully materialized at
/// construction — the incrementality exploited by the processor is in
/// *opening* streams lazily, not inside a single pattern's list.
class LeafStream : public BindingStream {
 public:
  /// `pattern_index` tags emitted derivation steps; `chain_rules` /
  /// `chain_weight_log` describe the relaxation chain that produced this
  /// form of the pattern (empty/0 for the original form).
  LeafStream(const xkg::Xkg& xkg, const scoring::LmScorer& scorer,
             const query::VarTable& vars, const query::TriplePattern& pattern,
             size_t pattern_index,
             std::vector<const relax::Rule*> chain_rules = {},
             double chain_weight_log = 0.0);

  const Item* Peek() override;
  void Pop() override;
  double BestPossible() override;

  /// Number of materialized items (test/bench introspection).
  size_t size() const { return items_.size(); }

 private:
  std::vector<Item> items_;  // descending score
  size_t next_ = 0;
};

/// Merges several already-constructed streams, best-first. Used by tests
/// and by the relaxed-stream machinery.
class MergeStream : public BindingStream {
 public:
  explicit MergeStream(std::vector<std::unique_ptr<BindingStream>> inputs);

  const Item* Peek() override;
  void Pop() override;
  double BestPossible() override;

 private:
  BindingStream* Best();
  std::vector<std::unique_ptr<BindingStream>> inputs_;
};

}  // namespace trinit::topk

#endif  // TRINIT_TOPK_PATTERN_STREAM_H_
