#ifndef TRINIT_RDF_SCORE_ORDER_INDEX_H_
#define TRINIT_RDF_SCORE_ORDER_INDEX_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "rdf/triple.h"
#include "util/owned_span.h"
#include "util/status.h"

namespace trinit::rdf {

/// How much re-verification snapshot-restored index structures get.
///
///  * kFull     every invariant later code relies on for memory safety
///              or correctness is re-checked in O(n) — the default, and
///              what the copying load path and the default mapped mode
///              use. Corrupt input yields a typed error, never UB.
///  * kTrusted  only O(1) structural checks (sizes, counts) run; the
///              content is trusted to be exactly what the writer
///              produced. Reserved for the storage layer's explicit
///              opt-in "trusted mmap" mode, where touching every byte
///              at open would defeat the point of mapping (see
///              storage::SnapshotReader). Feeding it a file whose
///              *contents* were corrupted without breaking the section
///              framing is undefined behavior by contract.
enum class SnapshotValidation { kFull, kTrusted };

/// Score-ordered posting lists over a finished triple set — the "index
/// lists accessible in sorted order of scores" the paper's incremental
/// top-k processing (§4) assumes of its backend.
///
/// For every bound-slot shape of a triple pattern (none, S, P, O, SP,
/// SO, PO) the index keeps one permutation of the triple ids sorted by
/// the bound slots first and then by *descending emission weight*
/// (`count * confidence`, the numerator of the scoring model's emission
/// probability; ties by id for determinism). A pattern lookup is then a
/// binary search to a contiguous block whose triples stream out
/// best-first — consumers can stop early instead of fetching, scoring,
/// and sorting the whole match set.
///
/// Each permutation carries a prefix sum of triple counts, so the total
/// evidence mass of any block (`LmScorer::PatternMass`, the emission
/// denominator) is O(1) after the O(log n) block search instead of a
/// full span walk.
///
/// Shape permutations are built *lazily*: `Build` allocates only the
/// per-shape slots, and each permutation is sorted on its first lookup
/// behind a `std::once_flag` — a consumer that never queries a shape
/// never pays its sort or its ~12 B/triple. Concurrent first touches of
/// the same shape serialize on the flag; different shapes build in
/// parallel. All lookups after the once-body are wait-free reads, so
/// `const` query paths (`Engine::Execute`) stay thread-safe.
///
/// Fully-bound (s,p,o) lookups are not served here: a single triple
/// needs no ordering, and `TripleStore::ScoreOrdered` answers it from
/// the exact-match path.
class ScoreOrderIndex {
 public:
  /// One score-ordered posting list: ids in descending `WeightOf` order
  /// plus the block's total evidence mass (sum of counts).
  struct List {
    std::span<const TripleId> ids;
    uint64_t mass = 0;
  };

  /// One built shape permutation exported verbatim for binary snapshots
  /// (`storage::SnapshotWriter`): the shape's id order and prefix-mass
  /// sums exactly as the lazy build produced them, so a loaded index
  /// never re-sorts.
  /// Arrays arrive as span-or-vector: the copying load path decodes
  /// into owned vectors, the mmap path views the mapping in place.
  struct ShapeSnapshot {
    uint32_t shape = 0;  ///< Shape enum value, 0..kNumShapes-1
    util::OwnedSpan<TripleId> ids;
    util::OwnedSpan<uint64_t> prefix_mass;  ///< size ids.size() + 1
  };

  ScoreOrderIndex() = default;

  /// Prepares lazy shape slots over `triples` (which must stay alive
  /// and unchanged for the lifetime of lookups; the index itself stores
  /// only ids and masses, so it moves freely with its owner — the
  /// per-shape state sits behind a stable-address allocation so
  /// `std::once_flag`s survive the move). No permutation is sorted
  /// here.
  static ScoreOrderIndex Build(std::span<const Triple> triples);

  /// Subset variant: the index covers only the triples whose *global*
  /// ids are listed (ascending) in `members` — one shard of a
  /// `ShardedStore`. Lookups emit global ids restricted to the subset;
  /// keys, weights, and prefix masses come from the global `triples`
  /// array unchanged, so a per-shard list is exactly the global list
  /// filtered to the shard. `members` is aliased, not copied: it must
  /// stay alive and unchanged for the index's lifetime (the sharded
  /// store owns it alongside the index).
  static ScoreOrderIndex BuildSubset(std::span<const Triple> triples,
                                     std::span<const TripleId> members);

  /// Score-ordered ids of all triples matching the pattern
  /// (`kNullTerm` = wildcard). At most two slots may be bound. `triples`
  /// must be the array the index was built over. Builds the shape's
  /// permutation on first use (thread-safe).
  List Lookup(std::span<const Triple> triples, TermId s, TermId p,
              TermId o) const;

  /// The emission weight the lists are ordered by: the numerator of the
  /// scoring model's emission probability under production options.
  static double WeightOf(const Triple& t) {
    return static_cast<double>(t.count) * static_cast<double>(t.confidence);
  }

  /// Number of shape permutations materialized so far (laziness
  /// introspection for tests and benches; 0..7).
  size_t built_shapes() const;

  /// True when the permutation that would serve the pattern shape of
  /// (s, p, o) is already materialized — the sharded scatter's gate for
  /// spawning parallel first-touch builds (a built shape needs no
  /// thread). Fully-bound patterns report true (they are served by
  /// `TripleStore::Match`, not a shape permutation).
  bool ShapeBuiltFor(TermId s, TermId p, TermId o) const;

  /// Zero-copy view of one built shape (snapshot writer): spans alias
  /// the index and stay valid for its lifetime.
  struct ShapeView {
    uint32_t shape = 0;
    std::span<const TripleId> ids;
    std::span<const uint64_t> prefix_mass;
  };

  /// Views of every shape built so far, cheap (no array copies).
  /// Unbuilt shapes are omitted — a snapshot preserves exactly the
  /// laziness state of the index at save time (a shape nobody queried
  /// is not persisted and stays lazy after load).
  std::vector<ShapeView> BuiltShapeViews() const;

  /// Installs a snapshot-restored shape permutation, marking the shape
  /// built so the first-touch sort is skipped. Intended for freshly
  /// `Build`-prepared indexes during snapshot load, before any lookup
  /// touches the shape. Every invariant `Lookup`/`Range` rely on is
  /// re-verified in O(n) against `triples` (the array the index was
  /// built over): ids a permutation (of `members` for subset indexes),
  /// (key, weight desc, id) order, and prefix masses equal to the
  /// running count sums — so a corrupt snapshot yields InvalidArgument,
  /// never wrong answers. Under SnapshotValidation::kTrusted only the
  /// O(1) size checks run. FailedPrecondition when the shape was
  /// already built.
  Status RestoreShape(ShapeSnapshot snapshot, std::span<const Triple> triples,
                      SnapshotValidation validation = SnapshotValidation::kFull);

  /// Private (per-process) bytes held by materialized shapes — 0 when
  /// every built shape views a shared mapping.
  size_t resident_bytes() const;

  /// Observes each first-touch sort (its latency on `sort_ms`, a count
  /// on `builds`). Snapshot-restored shapes never enter the once-body,
  /// so restores are deliberately *not* counted as builds. Must be
  /// called before the index is shared across threads — the engine
  /// binds under exclusive ownership (construction, ExtendKg).
  void BindMetrics(obs::Histogram sort_ms, obs::Counter builds) {
    sort_ms_ = sort_ms;
    builds_ = builds;
  }

 private:
  enum Shape { kAll, kS, kP, kO, kSP, kSO, kPO, kNumShapes };

  struct Key {
    TermId a = 0, b = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  /// Bound-slot key of `t` under `shape`; single-slot shapes use b = 0.
  static Key KeyFor(Shape shape, const Triple& t);

  /// The shape permutation serving a pattern with the given bound
  /// slots; fully-bound patterns are not served here (see `Lookup`).
  static Shape ShapeFor(bool bs, bool bp, bool bo);

  /// One lazily-built shape permutation. `built` is the publication
  /// flag: set (release) at the end of the once-body, checked (acquire)
  /// by `built_shapes`; readers inside `Lookup` are ordered by
  /// `call_once` itself. This publication protocol is outside what
  /// Clang TSA can annotate (no capability is ever held after the
  /// build); it is documented in docs/CONCURRENCY.md and exhausted by
  /// ContendedStressTest.ConcurrentLazyShapeFirstTouch under
  /// `ci.sh --tsan`. `ids`/`prefix_mass` are written only inside the
  /// once-body and immutable once `built` is observed true.
  struct ShapeIndex {
    std::once_flag once;
    std::atomic<bool> built{false};
    util::OwnedSpan<TripleId> ids;
    // prefix_mass[i] = sum of counts over ids[0..i).
    util::OwnedSpan<uint64_t> prefix_mass;
  };

  /// The shape's permutation, sorted on first call.
  ShapeIndex& Shaped(std::span<const Triple> triples, Shape shape) const;

  List Range(std::span<const Triple> triples, Shape shape, TermId first,
             TermId second) const;

  // Heap-allocated so once_flags keep a stable address across moves of
  // the owning TripleStore; null for a default-constructed index.
  std::unique_ptr<std::array<ShapeIndex, kNumShapes>> shapes_;
  // Subset mode (see BuildSubset): the ascending global ids this index
  // covers; aliased, owner-kept-alive. Empty span + subset_ == false is
  // the whole-store mode.
  std::span<const TripleId> members_;
  bool subset_ = false;
  // Registry mirrors; written only by BindMetrics (pre-share).
  obs::Histogram sort_ms_;
  obs::Counter builds_;
};

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_SCORE_ORDER_INDEX_H_
