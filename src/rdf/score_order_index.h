#ifndef TRINIT_RDF_SCORE_ORDER_INDEX_H_
#define TRINIT_RDF_SCORE_ORDER_INDEX_H_

#include <span>
#include <vector>

#include "rdf/triple.h"

namespace trinit::rdf {

/// Score-ordered posting lists over a finished triple set — the "index
/// lists accessible in sorted order of scores" the paper's incremental
/// top-k processing (§4) assumes of its backend.
///
/// For every bound-slot shape of a triple pattern (none, S, P, O, SP,
/// SO, PO) the index keeps one permutation of the triple ids sorted by
/// the bound slots first and then by *descending emission weight*
/// (`count * confidence`, the numerator of the scoring model's emission
/// probability; ties by id for determinism). A pattern lookup is then a
/// binary search to a contiguous block whose triples stream out
/// best-first — consumers can stop early instead of fetching, scoring,
/// and sorting the whole match set.
///
/// Each permutation carries a prefix sum of triple counts, so the total
/// evidence mass of any block (`LmScorer::PatternMass`, the emission
/// denominator) is O(1) after the O(log n) block search instead of a
/// full span walk.
///
/// Fully-bound (s,p,o) lookups are not served here: a single triple
/// needs no ordering, and `TripleStore::ScoreOrdered` answers it from
/// the exact-match path.
class ScoreOrderIndex {
 public:
  /// One score-ordered posting list: ids in descending `WeightOf` order
  /// plus the block's total evidence mass (sum of counts).
  struct List {
    std::span<const TripleId> ids;
    uint64_t mass = 0;
  };

  ScoreOrderIndex() = default;

  /// Builds all shape permutations over `triples` (which must stay alive
  /// and unchanged for the lifetime of lookups; the index itself stores
  /// only ids and masses, so it moves freely with its owner).
  static ScoreOrderIndex Build(std::span<const Triple> triples);

  /// Score-ordered ids of all triples matching the pattern
  /// (`kNullTerm` = wildcard). At most two slots may be bound. `triples`
  /// must be the array the index was built over.
  List Lookup(std::span<const Triple> triples, TermId s, TermId p,
              TermId o) const;

  /// The emission weight the lists are ordered by: the numerator of the
  /// scoring model's emission probability under production options.
  static double WeightOf(const Triple& t) {
    return static_cast<double>(t.count) * static_cast<double>(t.confidence);
  }

 private:
  enum Shape { kAll, kS, kP, kO, kSP, kSO, kPO, kNumShapes };

  struct Key {
    TermId a = 0, b = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  /// Bound-slot key of `t` under `shape`; single-slot shapes use b = 0.
  static Key KeyFor(Shape shape, const Triple& t);

  List Range(std::span<const Triple> triples, Shape shape, TermId first,
             TermId second) const;

  std::vector<TripleId> lists_[kNumShapes];
  // prefix_mass_[shape][i] = sum of counts over lists_[shape][0..i).
  std::vector<uint64_t> prefix_mass_[kNumShapes];
};

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_SCORE_ORDER_INDEX_H_
