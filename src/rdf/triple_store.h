#ifndef TRINIT_RDF_TRIPLE_STORE_H_
#define TRINIT_RDF_TRIPLE_STORE_H_

#include <span>
#include <vector>

#include "rdf/score_order_index.h"
#include "rdf/triple.h"
#include "util/owned_span.h"
#include "util/result.h"
#include "util/status.h"

namespace trinit::rdf {

/// Immutable triple index supporting every triple-pattern shape with a
/// contiguous sorted range scan.
///
/// The store keeps triples deduplicated by (s,p,o) — duplicate inserts
/// aggregate `count` (sum) and `confidence` (max), and keep the smallest
/// `source` id so curated-KG provenance (source 0) wins over extraction
/// provenance. Six permutation index arrays (SPO is the canonical triple
/// order itself) make each of the 8 bound/unbound slot combinations a
/// binary-searchable prefix range:
///
///   (?,?,?) -> SPO (full scan)     (s,?,?) -> SPO
///   (?,p,?) -> PSO                 (?,?,o) -> OSP
///   (s,p,?) -> SPO                 (s,?,o) -> SOP
///   (?,p,o) -> POS                 (s,p,o) -> SPO
///
/// This mirrors the "index lists accessible in sorted order" requirement
/// of the paper's top-k processing (§4); the ElasticSearch backend of the
/// original demo provided the same access path. On top of the six
/// SPO-ordered permutations, `ScoreOrdered()` serves every non-exact
/// pattern shape in descending emission-weight order from a
/// `ScoreOrderIndex` whose per-shape permutations are sorted lazily on
/// first lookup (thread-safe; a workload that never queries a shape
/// never pays for it).
///
/// Threading: everything here is immutable after Build() except the
/// lazy score-shape materialization, which publishes through
/// `ScoreOrderIndex::ShapeIndex`'s once_flag/atomic protocol (see
/// docs/CONCURRENCY.md — concurrent first touches are exercised under
/// TSan by the contended stress suite). Any number of threads may read
/// one store with no external lock.
///
/// Construction goes through `TripleStoreBuilder` (RocksDB-style builder
/// idiom: mutation before Build, immutability after).
class TripleStore {
 public:
  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Number of distinct (s,p,o) triples.
  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  /// The triple with the given dense id (0 <= id < size()). Triples are
  /// stored in ascending SPO order, so ids are themselves SPO-sorted.
  const Triple& triple(TripleId id) const { return triples_[id]; }

  /// All triples in SPO order.
  std::span<const Triple> triples() const { return triples_.span(); }

  /// Ids of all triples matching the pattern; `kNullTerm` in a slot means
  /// wildcard. The returned span aliases an internal permutation array
  /// and is valid for the store's lifetime. Result ids are in the order
  /// of the permutation used (deterministic for a given pattern shape).
  std::span<const TripleId> Match(TermId s, TermId p, TermId o) const;

  /// Number of triples matching the pattern (the selectivity / idf-like
  /// statistic of the scoring model).
  size_t MatchCount(TermId s, TermId p, TermId o) const {
    return Match(s, p, o).size();
  }

  /// Ids of all triples matching the pattern in *descending emission
  /// weight* order (`ScoreOrderIndex::WeightOf`: count × confidence),
  /// with the block's total evidence mass. This is the score-ordered
  /// access path of the paper's top-k processing (§4): consumers stream
  /// matches best-first and stop early; the mass (the scoring model's
  /// emission denominator) comes from a prefix sum instead of a span
  /// walk. The span aliases internal storage (store lifetime).
  ScoreOrderIndex::List ScoreOrdered(TermId s, TermId p, TermId o) const;

  /// Dense id of the exact triple, or kInvalidTriple.
  TripleId Find(TermId s, TermId p, TermId o) const;

  bool Contains(TermId s, TermId p, TermId o) const {
    return Find(s, p, o) != kInvalidTriple;
  }

  /// Sum of `count` over all triples (total evidence mass, used as the
  /// collection length of the scoring language model).
  uint64_t total_count() const { return total_count_; }

  /// Largest per-triple `count` (used for cheap upper bounds on emission
  /// probabilities: p(t|q) <= max_count / |match span|).
  uint32_t max_count() const { return max_count_; }

  /// Score-ordered shape permutations materialized so far (laziness
  /// introspection for tests and benches; 0..7).
  size_t score_shapes_built() const { return score_index_.built_shapes(); }

  /// Forwards first-touch sort instrumentation to the score index (see
  /// `ScoreOrderIndex::BindMetrics`; same pre-share contract).
  void BindScoreMetrics(obs::Histogram sort_ms, obs::Counter builds) {
    score_index_.BindMetrics(sort_ms, builds);
  }

  /// Number of non-SPO permutation index arrays (the canonical SPO
  /// order is the triple array itself).
  static constexpr size_t kNumIndexPermutations = 5;

  /// Read-only view of permutation array `i` (0 ..
  /// kNumIndexPermutations-1), in the writer's fixed order. Zero-copy:
  /// the span aliases the store (snapshot writer access path).
  std::span<const TripleId> IndexPermutation(size_t i) const;

  /// Zero-copy views of every score-ordered shape built so far (see
  /// `ScoreOrderIndex::BuiltShapeViews`).
  std::vector<ScoreOrderIndex::ShapeView> BuiltScoreShapes() const {
    return score_index_.BuiltShapeViews();
  }

  /// The store's decoded index state on the snapshot *load* path: the
  /// five permutation arrays plus every persisted score-ordered shape.
  /// Together with the triples this is everything `FromSnapshot` needs
  /// to reassemble the store without a single sort.
  /// Arrays arrive as span-or-vector: the copying load path decodes
  /// into owned vectors, the mmap path views the mapping in place.
  struct IndexSnapshot {
    std::vector<util::OwnedSpan<TripleId>> perms;  ///< kNumIndexPermutations
    std::vector<ScoreOrderIndex::ShapeSnapshot> score_shapes;
  };

  /// Reassembles a store from snapshot parts without re-sorting
  /// anything: `triples` must be strictly ascending SPO (deduplicated),
  /// and `indexes.perms` must be the arrays the snapshot writer
  /// serialized from `IndexPermutation(0..4)`, in that order. Every
  /// invariant that later code relies on for memory safety or
  /// correctness is re-verified in O(n) — triple order, each
  /// permutation a bounds-checked true permutation in key order,
  /// score-shape order and mass consistency — so a corrupt snapshot
  /// that slipped past its checksums still yields a typed error, never
  /// UB or silently wrong answers. Under SnapshotValidation::kTrusted
  /// (the storage layer's explicit trusted-mmap opt-in) only the O(1)
  /// structural checks run.
  static Result<TripleStore> FromSnapshot(
      util::OwnedSpan<Triple> triples, IndexSnapshot indexes,
      SnapshotValidation validation = SnapshotValidation::kFull);

  /// Private (per-process) bytes held by the store's arrays: owned
  /// triple/permutation/shape buffers plus the identity array. Views
  /// over a shared mapping contribute 0 — the basis of the load
  /// report's resident estimate.
  size_t resident_bytes() const;

 private:
  friend class TripleStoreBuilder;

  enum Perm { kSop = 0, kPso = 1, kPos = 2, kOsp = 3, kOps = 4, kNumPerms };

  // Key of `t` under the permutation: the three slots in scan order.
  struct Key {
    TermId a, b, c;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  Key KeyFor(Perm perm, const Triple& t) const;

  std::span<const TripleId> PrefixRange(Perm perm, TermId first,
                                        TermId second) const;

  util::OwnedSpan<Triple> triples_;  // ascending SPO
  util::OwnedSpan<TripleId> perms_[kNumPerms];
  std::vector<TripleId> identity_;  // 0..n-1 (SPO view for uniform spans)
  ScoreOrderIndex score_index_;     // score-ordered shape permutations
  uint64_t total_count_ = 0;
  uint32_t max_count_ = 0;
};

/// Accumulates triples and produces an immutable `TripleStore`.
class TripleStoreBuilder {
 public:
  TripleStoreBuilder() = default;

  /// Adds one triple; null slots are rejected at Build time.
  void Add(const Triple& t) { pending_.push_back(t); }
  void Add(TermId s, TermId p, TermId o, float confidence = 1.0f,
           uint32_t count = 1, SourceId source = kKgSource) {
    pending_.push_back(Triple{s, p, o, confidence, count, source});
  }

  /// Number of raw (pre-dedup) pending triples.
  size_t pending_size() const { return pending_.size(); }

  /// Sorts, deduplicates, aggregates payloads, and builds all permutation
  /// indexes. Fails with InvalidArgument if any pending triple has a null
  /// slot. The builder is left empty.
  Result<TripleStore> Build();

 private:
  std::vector<Triple> pending_;
};

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_TRIPLE_STORE_H_
