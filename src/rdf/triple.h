#ifndef TRINIT_RDF_TRIPLE_H_
#define TRINIT_RDF_TRIPLE_H_

#include <cstdint>
#include <tuple>

#include "rdf/term.h"

namespace trinit::rdf {

/// Provenance source id. `kKgSource` marks curated KG facts; extraction
/// triples carry 1 + the document id they were extracted from. Detailed
/// provenance (sentence text, extractor confidence trail) lives in
/// `xkg::ProvenanceStore`.
using SourceId = uint32_t;
inline constexpr SourceId kKgSource = 0;

/// One (possibly extended) SPO fact.
///
/// KG facts have confidence 1.0 and count >= 1; Open IE extraction
/// triples carry the extractor's confidence in (0,1] and `count` equal to
/// the number of supporting extractions, which feeds the tf-like factor
/// of the scoring model (paper §4).
struct Triple {
  TermId s = kNullTerm;
  TermId p = kNullTerm;
  TermId o = kNullTerm;
  float confidence = 1.0f;
  uint32_t count = 1;
  SourceId source = kKgSource;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

/// Strict SPO ordering (payload fields are excluded; the store keeps one
/// canonical triple per (s,p,o)).
inline bool SpoLess(const Triple& a, const Triple& b) {
  return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
}

/// Index of a triple inside a `TripleStore` (dense, 0-based).
using TripleId = uint32_t;
inline constexpr TripleId kInvalidTriple = UINT32_MAX;

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_TRIPLE_H_
