#include "rdf/score_order_index.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace trinit::rdf {

ScoreOrderIndex::Key ScoreOrderIndex::KeyFor(Shape shape, const Triple& t) {
  switch (shape) {
    case kAll:
      return {0, 0};
    case kS:
      return {t.s, 0};
    case kP:
      return {t.p, 0};
    case kO:
      return {t.o, 0};
    case kSP:
      return {t.s, t.p};
    case kSO:
      return {t.s, t.o};
    case kPO:
      return {t.p, t.o};
    default:
      TRINIT_CHECK(false);
      return {};
  }
}

ScoreOrderIndex ScoreOrderIndex::Build(std::span<const Triple> triples) {
  (void)triples;
  ScoreOrderIndex index;
  // Lazy: only the (stable-address) shape slots are allocated here; each
  // permutation sorts on its first Lookup.
  index.shapes_ = std::make_unique<std::array<ShapeIndex, kNumShapes>>();
  return index;
}

ScoreOrderIndex ScoreOrderIndex::BuildSubset(std::span<const Triple> triples,
                                             std::span<const TripleId> members) {
  ScoreOrderIndex index = Build(triples);
  index.members_ = members;
  index.subset_ = true;
  return index;
}

ScoreOrderIndex::Shape ScoreOrderIndex::ShapeFor(bool bs, bool bp, bool bo) {
  TRINIT_CHECK(!(bs && bp && bo));
  if (bs) return bp ? kSP : (bo ? kSO : kS);
  if (bp) return bo ? kPO : kP;
  return bo ? kO : kAll;
}

ScoreOrderIndex::ShapeIndex& ScoreOrderIndex::Shaped(
    std::span<const Triple> triples, Shape shape) const {
  ShapeIndex& shaped = (*shapes_)[shape];
  std::call_once(shaped.once, [this, &triples, shape, &shaped]() {
    WallTimer sort_timer;
    const size_t n = subset_ ? members_.size() : triples.size();
    // Decorate once instead of re-deriving keys and weights in every
    // comparison: the sort dominates the build.
    struct Record {
      Key key;
      double weight;
      TripleId id;
    };
    std::vector<Record> records(n);
    for (size_t i = 0; i < n; ++i) {
      const TripleId id = subset_ ? members_[i] : static_cast<TripleId>(i);
      records[i] = {KeyFor(shape, triples[id]), WeightOf(triples[id]), id};
    }
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) {
                if (a.key != b.key) return a.key < b.key;
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.id < b.id;
              });
    std::vector<TripleId> ids(n);
    std::vector<uint64_t> prefix_mass(n + 1);
    prefix_mass[0] = 0;
    for (size_t i = 0; i < n; ++i) {
      ids[i] = records[i].id;
      prefix_mass[i + 1] = prefix_mass[i] + triples[records[i].id].count;
    }
    shaped.ids = std::move(ids);
    shaped.prefix_mass = std::move(prefix_mass);
    shaped.built.store(true, std::memory_order_release);
    builds_.Increment();
    sort_ms_.Observe(sort_timer.ElapsedMillis());
  });
  return shaped;
}

bool ScoreOrderIndex::ShapeBuiltFor(TermId s, TermId p, TermId o) const {
  if (shapes_ == nullptr) return false;
  const bool bs = s != kNullTerm, bp = p != kNullTerm, bo = o != kNullTerm;
  if (bs && bp && bo) return true;  // exact lookups bypass the shapes
  return (*shapes_)[ShapeFor(bs, bp, bo)].built.load(
      std::memory_order_acquire);
}

size_t ScoreOrderIndex::built_shapes() const {
  if (shapes_ == nullptr) return 0;
  size_t built = 0;
  for (const ShapeIndex& shaped : *shapes_) {
    if (shaped.built.load(std::memory_order_acquire)) ++built;
  }
  return built;
}

std::vector<ScoreOrderIndex::ShapeView> ScoreOrderIndex::BuiltShapeViews()
    const {
  std::vector<ShapeView> out;
  if (shapes_ == nullptr) return out;
  for (uint32_t shape = 0; shape < kNumShapes; ++shape) {
    const ShapeIndex& shaped = (*shapes_)[shape];
    if (!shaped.built.load(std::memory_order_acquire)) continue;
    out.push_back({shape, shaped.ids.span(), shaped.prefix_mass.span()});
  }
  return out;
}

size_t ScoreOrderIndex::resident_bytes() const {
  if (shapes_ == nullptr) return 0;
  size_t bytes = 0;
  for (const ShapeIndex& shaped : *shapes_) {
    if (!shaped.built.load(std::memory_order_acquire)) continue;
    bytes += shaped.ids.owned_bytes() + shaped.prefix_mass.owned_bytes();
  }
  return bytes;
}

Status ScoreOrderIndex::RestoreShape(ShapeSnapshot snapshot,
                                     std::span<const Triple> triples,
                                     SnapshotValidation validation) {
  const size_t num_triples = triples.size();
  if (shapes_ == nullptr) {
    return Status::FailedPrecondition(
        "RestoreShape on a default-constructed index (call Build first)");
  }
  if (snapshot.shape >= kNumShapes) {
    return Status::InvalidArgument("score shape id out of range: " +
                                   std::to_string(snapshot.shape));
  }
  const Shape shape = static_cast<Shape>(snapshot.shape);
  const size_t expected = subset_ ? members_.size() : num_triples;
  if (snapshot.ids.size() != expected ||
      snapshot.prefix_mass.size() != expected + 1 ||
      snapshot.prefix_mass.front() != 0) {
    return Status::InvalidArgument("score shape size mismatch for shape " +
                                   std::to_string(snapshot.shape));
  }
  // Re-verify, in O(n), everything Range()/Lookup() rely on: the ids
  // must be a permutation of the covered ids (the whole store, or this
  // subset's members — a duplicate silently drops a triple), in
  // exactly the build order — key blocks ascending, weight descending
  // within a block, id tiebreak — or the binary searches and the
  // emit-best-first contract break; and each prefix mass must equal the
  // running count sum, or unsigned mass subtraction wraps. Corruption
  // must yield a typed error, never wrong answers. The trusted mmap
  // mode skips this walk by explicit caller opt-in (the O(1) size
  // checks above still ran).
  if (validation == SnapshotValidation::kFull) {
    std::vector<bool> seen(expected, false);
    for (size_t i = 0; i < expected; ++i) {
      const TripleId id = snapshot.ids[i];
      size_t slot;
      if (subset_) {
        auto it = std::lower_bound(members_.begin(), members_.end(), id);
        if (it == members_.end() || *it != id) {
          return Status::InvalidArgument(
              "score shape id is not a member of the subset");
        }
        slot = static_cast<size_t>(it - members_.begin());
      } else {
        if (id >= num_triples) {
          return Status::InvalidArgument(
              "score shape ids are not a permutation of the triple ids");
        }
        slot = id;
      }
      if (seen[slot]) {
        return Status::InvalidArgument(
            "score shape ids are not a permutation of the covered ids");
      }
      seen[slot] = true;
      if (i > 0) {
        const TripleId prev = snapshot.ids[i - 1];
        const Key pk = KeyFor(shape, triples[prev]);
        const Key ck = KeyFor(shape, triples[id]);
        const double pw = WeightOf(triples[prev]);
        const double cw = WeightOf(triples[id]);
        const bool ordered =
            pk != ck ? pk < ck : (pw != cw ? pw > cw : prev < id);
        if (!ordered) {
          return Status::InvalidArgument(
              "score shape ids are not in shape order for shape " +
              std::to_string(snapshot.shape));
        }
      }
      if (snapshot.prefix_mass[i + 1] !=
          snapshot.prefix_mass[i] + triples[id].count) {
        return Status::InvalidArgument(
            "score shape prefix masses do not match triple counts");
      }
    }
  }
  ShapeIndex& shaped = (*shapes_)[snapshot.shape];
  if (shaped.built.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("score shape restored twice: " +
                                      std::to_string(snapshot.shape));
  }
  std::call_once(shaped.once, [&shaped, &snapshot]() {
    shaped.ids = std::move(snapshot.ids);
    shaped.prefix_mass = std::move(snapshot.prefix_mass);
    shaped.built.store(true, std::memory_order_release);
  });
  if (!shaped.built.load(std::memory_order_acquire)) {
    // The once-flag had been consumed without publishing (unreachable in
    // the single-threaded load path; defensive).
    return Status::Internal("score shape once-flag already consumed");
  }
  return Status::Ok();
}

ScoreOrderIndex::List ScoreOrderIndex::Range(std::span<const Triple> triples,
                                             Shape shape, TermId first,
                                             TermId second) const {
  const ShapeIndex& shaped = Shaped(triples, shape);
  const std::span<const TripleId> ids = shaped.ids.span();
  // Bound slots form the primary sort key; within a block the order is
  // by weight, which both search keys ignore (b spans the whole block
  // when `second` is a wildcard).
  Key lo{first, second == kNullTerm ? 0 : second};
  Key hi{first, second == kNullTerm ? UINT32_MAX : second};
  auto begin = std::lower_bound(
      ids.begin(), ids.end(), lo, [shape, &triples](TripleId id, const Key& k) {
        return KeyFor(shape, triples[id]) < k;
      });
  auto end = std::upper_bound(
      begin, ids.end(), hi, [shape, &triples](const Key& k, TripleId id) {
        return k < KeyFor(shape, triples[id]);
      });
  size_t b_idx = static_cast<size_t>(begin - ids.begin());
  size_t e_idx = static_cast<size_t>(end - ids.begin());
  const std::span<const uint64_t> mass = shaped.prefix_mass.span();
  return {std::span<const TripleId>(ids.data() + b_idx, e_idx - b_idx),
          mass[e_idx] - mass[b_idx]};
}

ScoreOrderIndex::List ScoreOrderIndex::Lookup(std::span<const Triple> triples,
                                              TermId s, TermId p,
                                              TermId o) const {
  if (triples.empty() || shapes_ == nullptr) return {};
  const bool bs = s != kNullTerm, bp = p != kNullTerm, bo = o != kNullTerm;
  TRINIT_CHECK(!(bs && bp && bo));  // exact lookups use TripleStore::Match
  if (bs) {
    if (bp) return Range(triples, kSP, s, p);
    if (bo) return Range(triples, kSO, s, o);
    return Range(triples, kS, s, kNullTerm);
  }
  if (bp) {
    if (bo) return Range(triples, kPO, p, o);
    return Range(triples, kP, p, kNullTerm);
  }
  if (bo) return Range(triples, kO, o, kNullTerm);
  const ShapeIndex& all = Shaped(triples, kAll);
  return {std::span<const TripleId>(all.ids.data(), all.ids.size()),
          all.prefix_mass.back()};
}

}  // namespace trinit::rdf
