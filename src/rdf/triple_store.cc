#include "rdf/triple_store.h"

#include <algorithm>

#include "util/logging.h"
#include "util/result.h"

namespace trinit::rdf {

TripleStore::Key TripleStore::KeyFor(Perm perm, const Triple& t) const {
  switch (perm) {
    case kSop:
      return {t.s, t.o, t.p};
    case kPso:
      return {t.p, t.s, t.o};
    case kPos:
      return {t.p, t.o, t.s};
    case kOsp:
      return {t.o, t.s, t.p};
    case kOps:
      return {t.o, t.p, t.s};
    default:
      TRINIT_CHECK(false);
      return {};
  }
}

std::span<const TripleId> TripleStore::PrefixRange(Perm perm, TermId first,
                                                   TermId second) const {
  const std::span<const TripleId> ids = perms_[perm].span();
  // Bound slots form a prefix: `first` is always bound; `second` may be
  // kNullTerm (wildcard), in which case we range over the whole block.
  Key lo{first, second == kNullTerm ? 0 : second, 0};
  Key hi{first, second == kNullTerm ? UINT32_MAX : second, UINT32_MAX};
  auto cmp = [this, perm](TripleId id, const Key& k) {
    return KeyFor(perm, triples_[id]) < k;
  };
  auto cmp2 = [this, perm](const Key& k, TripleId id) {
    return k < KeyFor(perm, triples_[id]);
  };
  auto begin = std::lower_bound(ids.begin(), ids.end(), lo, cmp);
  auto end = std::upper_bound(begin, ids.end(), hi, cmp2);
  return {ids.data() + (begin - ids.begin()),
          static_cast<size_t>(end - begin)};
}

std::span<const TripleId> TripleStore::Match(TermId s, TermId p,
                                             TermId o) const {
  if (triples_.empty()) return {};
  const bool bs = s != kNullTerm, bp = p != kNullTerm, bo = o != kNullTerm;
  if (bs) {
    if (bo && !bp) return PrefixRange(kSop, s, o);
    // (s,?,?), (s,p,?), (s,p,o): binary search the canonical SPO array.
    Triple lo{s, bp ? p : 0, bp && bo ? o : 0, 0, 0, 0};
    Triple hi{s, bp ? p : UINT32_MAX, bp && bo ? o : UINT32_MAX, 0, 0, 0};
    auto begin = std::lower_bound(triples_.begin(), triples_.end(), lo,
                                  SpoLess);
    auto end = std::upper_bound(begin, triples_.end(), hi,
                                [](const Triple& a, const Triple& b) {
                                  return SpoLess(a, b);
                                });
    size_t b_idx = static_cast<size_t>(begin - triples_.begin());
    return {identity_.data() + b_idx, static_cast<size_t>(end - begin)};
  }
  if (bp) {
    return bo ? PrefixRange(kPos, p, o) : PrefixRange(kPso, p, kNullTerm);
  }
  if (bo) {
    return PrefixRange(kOsp, o, kNullTerm);
  }
  return {identity_.data(), identity_.size()};
}

ScoreOrderIndex::List TripleStore::ScoreOrdered(TermId s, TermId p,
                                                TermId o) const {
  if (triples_.empty()) return {};
  if (s != kNullTerm && p != kNullTerm && o != kNullTerm) {
    // A fully-bound pattern matches at most one triple; serve it from
    // the exact-match path (trivially score-ordered).
    std::span<const TripleId> exact = Match(s, p, o);
    uint64_t mass = exact.empty() ? 0 : triples_[exact.front()].count;
    return {exact, mass};
  }
  return score_index_.Lookup(triples_, s, p, o);
}

TripleId TripleStore::Find(TermId s, TermId p, TermId o) const {
  std::span<const TripleId> r = Match(s, p, o);
  return r.empty() ? kInvalidTriple : r.front();
}

std::span<const TripleId> TripleStore::IndexPermutation(size_t i) const {
  static_assert(TripleStore::kNumIndexPermutations ==
                static_cast<size_t>(TripleStore::kNumPerms));
  TRINIT_CHECK(i < kNumIndexPermutations);
  return perms_[i];
}

Result<TripleStore> TripleStore::FromSnapshot(util::OwnedSpan<Triple> triples,
                                              IndexSnapshot indexes,
                                              SnapshotValidation validation) {
  const size_t n = triples.size();
  if (validation == SnapshotValidation::kFull) {
    for (size_t i = 0; i < n; ++i) {
      const Triple& t = triples[i];
      if (t.s == kNullTerm || t.p == kNullTerm || t.o == kNullTerm) {
        return Status::InvalidArgument("snapshot triple with null slot");
      }
      if (i > 0 && !SpoLess(triples[i - 1], t)) {
        return Status::InvalidArgument(
            "snapshot triples not strictly SPO-sorted at index " +
            std::to_string(i));
      }
    }
  }
  if (indexes.perms.size() != static_cast<size_t>(kNumPerms)) {
    return Status::InvalidArgument(
        "snapshot permutation count mismatch: got " +
        std::to_string(indexes.perms.size()));
  }

  TripleStore store;
  store.triples_ = std::move(triples);
  store.identity_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    store.identity_[i] = static_cast<TripleId>(i);
    store.total_count_ += store.triples_[i].count;
    store.max_count_ = std::max(store.max_count_, store.triples_[i].count);
  }
  std::vector<bool> seen(n);
  for (int perm = 0; perm < kNumPerms; ++perm) {
    util::OwnedSpan<TripleId>& ids = indexes.perms[perm];
    if (ids.size() != n) {
      return Status::InvalidArgument("snapshot permutation size mismatch");
    }
    if (validation == SnapshotValidation::kFull) {
      seen.assign(n, false);
      for (size_t i = 0; i < n; ++i) {
        // A permutation must hold every triple id exactly once — a
        // duplicate would silently drop its sort-order neighbor from
        // query answers.
        if (ids[i] >= n || seen[ids[i]]) {
          return Status::InvalidArgument(
              "snapshot permutation is not a permutation of the triple ids");
        }
        seen[ids[i]] = true;
        // Binary searches over the permutation assume key order; verify
        // it (O(n) compares, still no sort on the load path).
        if (i > 0 &&
            store.KeyFor(static_cast<Perm>(perm), store.triples_[ids[i]]) <
                store.KeyFor(static_cast<Perm>(perm),
                             store.triples_[ids[i - 1]])) {
          return Status::InvalidArgument(
              "snapshot permutation not sorted for perm " +
              std::to_string(perm));
        }
      }
    }
    store.perms_[perm] = std::move(ids);
  }
  store.score_index_ = ScoreOrderIndex::Build(store.triples_);
  for (ScoreOrderIndex::ShapeSnapshot& shape : indexes.score_shapes) {
    TRINIT_RETURN_IF_ERROR(store.score_index_.RestoreShape(
        std::move(shape), store.triples_, validation));
  }
  return store;
}

size_t TripleStore::resident_bytes() const {
  size_t bytes = triples_.owned_bytes() +
                 identity_.capacity() * sizeof(TripleId) +
                 score_index_.resident_bytes();
  for (const util::OwnedSpan<TripleId>& perm : perms_) {
    bytes += perm.owned_bytes();
  }
  return bytes;
}

Result<TripleStore> TripleStoreBuilder::Build() {
  for (const Triple& t : pending_) {
    if (t.s == kNullTerm || t.p == kNullTerm || t.o == kNullTerm) {
      return Status::InvalidArgument("triple with null slot");
    }
  }
  TripleStore store;
  std::sort(pending_.begin(), pending_.end(), SpoLess);

  // Deduplicate: sum counts, keep max confidence and min source id.
  std::vector<Triple> triples;
  triples.reserve(pending_.size());
  for (const Triple& t : pending_) {
    if (!triples.empty() && triples.back() == t) {
      Triple& back = triples.back();
      back.count += t.count;
      back.confidence = std::max(back.confidence, t.confidence);
      back.source = std::min(back.source, t.source);
    } else {
      triples.push_back(t);
    }
  }
  pending_.clear();
  pending_.shrink_to_fit();

  const size_t n = triples.size();
  store.triples_ = std::move(triples);
  store.identity_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    store.identity_[i] = static_cast<TripleId>(i);
    store.total_count_ += store.triples_[i].count;
    store.max_count_ = std::max(store.max_count_, store.triples_[i].count);
  }
  for (int perm = 0; perm < TripleStore::kNumPerms; ++perm) {
    std::vector<TripleId> ids = store.identity_;
    std::sort(ids.begin(), ids.end(), [&store, perm](TripleId a, TripleId b) {
      return store.KeyFor(static_cast<TripleStore::Perm>(perm),
                          store.triples_[a]) <
             store.KeyFor(static_cast<TripleStore::Perm>(perm),
                          store.triples_[b]);
    });
    store.perms_[perm] = std::move(ids);
  }
  store.score_index_ = ScoreOrderIndex::Build(store.triples_);
  return store;
}

}  // namespace trinit::rdf
