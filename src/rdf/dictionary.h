#ifndef TRINIT_RDF_DICTIONARY_H_
#define TRINIT_RDF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/result.h"
#include "util/status.h"

namespace trinit::rdf {

/// Bidirectional mapping between term labels and dense `TermId`s.
///
/// Labels are namespaced by `TermKind`: the resource `Ulm` and a token
/// phrase `ulm` are distinct terms. Resource and literal labels are kept
/// verbatim; token phrases are expected to be normalized (lower-cased,
/// whitespace-collapsed) by `text::NormalizePhrase` before interning —
/// the dictionary enforces nothing about content, only uniqueness.
///
/// Interning is append-only; ids are stable for the dictionary lifetime.
class Dictionary {
 public:
  Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id for (kind, label), interning it if new.
  TermId Intern(TermKind kind, std::string_view label);

  TermId InternResource(std::string_view label) {
    return Intern(TermKind::kResource, label);
  }
  TermId InternToken(std::string_view label) {
    return Intern(TermKind::kToken, label);
  }
  TermId InternLiteral(std::string_view label) {
    return Intern(TermKind::kLiteral, label);
  }

  /// Returns the id for (kind, label), or kNullTerm when absent.
  TermId Find(TermKind kind, std::string_view label) const;

  /// True iff `id` was produced by this dictionary.
  bool Contains(TermId id) const { return id >= 1 && id <= labels_.size(); }

  /// Label of `id`. Requires Contains(id).
  std::string_view label(TermId id) const;

  /// Kind of `id`. Requires Contains(id).
  TermKind kind(TermId id) const;

  /// Convenience: label, or "<null>" / "<unknown:N>" for invalid ids
  /// (used by explanation rendering; never fails).
  std::string DebugLabel(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return labels_.size(); }

  /// Number of terms of the given kind.
  size_t CountOfKind(TermKind kind) const;

  /// Iterates all ids in ascending order: fn(id).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (TermId id = 1; id <= labels_.size(); ++id) fn(id);
  }

 private:
  struct KeyHash {
    size_t operator()(const std::pair<uint8_t, std::string>& k) const;
  };
  // Keyed by (kind, label).
  std::unordered_map<std::pair<uint8_t, std::string>, TermId, KeyHash> index_;
  std::vector<std::string> labels_;  // labels_[id-1]
  std::vector<TermKind> kinds_;      // kinds_[id-1]
  size_t kind_counts_[3] = {0, 0, 0};
};

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_DICTIONARY_H_
