#include "rdf/dictionary.h"

#include "util/hash.h"
#include "util/logging.h"

namespace trinit::rdf {

size_t Dictionary::KeyHash::operator()(
    const std::pair<uint8_t, std::string>& k) const {
  return static_cast<size_t>(
      HashCombine(k.first, Fnv1a64(k.second)));
}

Dictionary::Dictionary() = default;

TermId Dictionary::Intern(TermKind kind, std::string_view label) {
  auto key = std::make_pair(static_cast<uint8_t>(kind), std::string(label));
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  labels_.emplace_back(label);
  kinds_.push_back(kind);
  ++kind_counts_[static_cast<uint8_t>(kind)];
  TermId id = static_cast<TermId>(labels_.size());
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Find(TermKind kind, std::string_view label) const {
  auto key = std::make_pair(static_cast<uint8_t>(kind), std::string(label));
  auto it = index_.find(key);
  return it == index_.end() ? kNullTerm : it->second;
}

std::string_view Dictionary::label(TermId id) const {
  TRINIT_CHECK(Contains(id));
  return labels_[id - 1];
}

TermKind Dictionary::kind(TermId id) const {
  TRINIT_CHECK(Contains(id));
  return kinds_[id - 1];
}

std::string Dictionary::DebugLabel(TermId id) const {
  if (id == kNullTerm) return "<null>";
  if (!Contains(id)) return "<unknown:" + std::to_string(id) + ">";
  std::string_view l = labels_[id - 1];
  if (kinds_[id - 1] == TermKind::kToken) {
    return "'" + std::string(l) + "'";
  }
  return std::string(l);
}

size_t Dictionary::CountOfKind(TermKind kind) const {
  return kind_counts_[static_cast<uint8_t>(kind)];
}

}  // namespace trinit::rdf
