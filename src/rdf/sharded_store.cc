#include "rdf/sharded_store.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace trinit::rdf {

ShardedStore ShardedStore::Build(const TripleStore& store,
                                 size_t shard_count) {
  TRINIT_CHECK(shard_count >= 1);
  const std::span<const Triple> triples = store.triples();
  std::vector<std::vector<TripleId>> members(shard_count);
  // Walking ids in ascending order keeps every per-shard list ascending
  // for free — the invariant BuildSubset and the snapshot format rely on.
  for (size_t id = 0; id < triples.size(); ++id) {
    members[ShardOf(triples[id].s, shard_count)].push_back(
        static_cast<TripleId>(id));
  }
  ShardedStore sharded;
  sharded.shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    GraphStats stats = GraphStats::ComputeSubset(
        triples, std::span<const TripleId>(members[i]));
    sharded.shards_.push_back(
        Shard{util::OwnedSpan<TripleId>(std::move(members[i])),
              ScoreOrderIndex{}, std::move(stats)});
    Shard& shard = sharded.shards_.back();
    // The index aliases the shard's own members buffer: heap storage, so
    // the span survives moves of the Shard (and of the whole store).
    shard.index = ScoreOrderIndex::BuildSubset(triples, shard.members.span());
  }
  return sharded;
}

Result<ShardedStore> ShardedStore::FromSnapshot(
    const TripleStore& store, std::vector<ShardSnapshot> shards,
    SnapshotValidation validation) {
  if (shards.empty()) {
    return Status::InvalidArgument("sharded snapshot with zero shards");
  }
  const size_t shard_count = shards.size();
  size_t total = 0;
  for (const ShardSnapshot& part : shards) total += part.members.size();
  if (total != store.size()) {
    return Status::InvalidArgument(
        "shard member counts do not sum to the store size");
  }
  ShardedStore sharded;
  sharded.shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    ShardSnapshot& part = shards[i];
    if (validation == SnapshotValidation::kFull) {
      // Ascending + on-the-right-shard + the size sum above together
      // prove the shards partition [0, store.size()): ShardOf is a
      // function of the triple, so no id can satisfy the check on two
      // shards, and strict ascent rules out duplicates within one.
      const std::span<const TripleId> m = part.members.span();
      for (size_t j = 0; j < m.size(); ++j) {
        if (m[j] >= store.size()) {
          return Status::InvalidArgument("shard member id out of range");
        }
        if (j > 0 && m[j - 1] >= m[j]) {
          return Status::InvalidArgument(
              "shard members not strictly ascending");
        }
        if (ShardOf(store.triple(m[j]).s, shard_count) != i) {
          return Status::InvalidArgument(
              "shard member assigned to the wrong shard");
        }
      }
    }
    sharded.shards_.push_back(Shard{std::move(part.members),
                                    ScoreOrderIndex{}, std::move(part.stats)});
    Shard& shard = sharded.shards_.back();
    shard.index =
        ScoreOrderIndex::BuildSubset(store.triples(), shard.members.span());
    for (ScoreOrderIndex::ShapeSnapshot& shape : part.score_shapes) {
      Status status = shard.index.RestoreShape(std::move(shape),
                                               store.triples(), validation);
      if (!status.ok()) return status;
    }
  }
  return sharded;
}

GraphStats ShardedStore::MergedStats() const {
  std::vector<const GraphStats*> parts;
  parts.reserve(shards_.size());
  for (const Shard& shard : shards_) parts.push_back(&shard.stats);
  return GraphStats::Merged(parts);
}

ShardedStore::Lists ShardedStore::ScoreOrdered(const TripleStore& store,
                                               TermId s, TermId p,
                                               TermId o) const {
  Lists out;
  out.per_shard.resize(shards_.size());
  const bool bs = s != kNullTerm, bp = p != kNullTerm, bo = o != kNullTerm;
  if (bs && bp && bo) {
    // A fully-bound pattern matches at most one triple, owned by exactly
    // one shard; the store's exact-match path already serves it.
    const ScoreOrderIndex::List list = store.ScoreOrdered(s, p, o);
    out.per_shard[ShardOf(s, shards_.size())] = list;
    out.mass = list.mass;
    return out;
  }
  // Scatter the first-touch sorts: every shard still missing the queried
  // shape builds on its own thread. Each build publishes through its own
  // shard's once_flag, so queries racing this scatter (or each other)
  // stay safe, and a second query of the same shape spawns nothing.
  std::vector<size_t> unbuilt;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i].index.ShapeBuiltFor(s, p, o)) unbuilt.push_back(i);
  }
  if (unbuilt.size() >= 2) {
    std::vector<std::thread> workers;
    workers.reserve(unbuilt.size());
    for (size_t i : unbuilt) {
      workers.emplace_back([this, &store, i, s, p, o]() {
        (void)shards_[i].index.Lookup(store.triples(), s, p, o);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ScoreOrderIndex::List list =
        shards_[i].index.Lookup(store.triples(), s, p, o);
    out.per_shard[i] = list;
    out.mass += list.mass;
  }
  return out;
}

size_t ShardedStore::score_shapes_built() const {
  size_t built = 0;
  for (const Shard& shard : shards_) built += shard.index.built_shapes();
  return built;
}

size_t ShardedStore::resident_bytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    bytes += shard.members.owned_bytes() + shard.index.resident_bytes() +
             shard.stats.resident_bytes();
  }
  return bytes;
}

}  // namespace trinit::rdf
