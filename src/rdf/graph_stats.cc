#include "rdf/graph_stats.h"

#include <algorithm>

namespace trinit::rdf {
namespace {

// Counts distinct values in a sorted range projected by `proj`.
template <typename It, typename Proj>
uint32_t CountDistinct(It begin, It end, Proj proj) {
  uint32_t n = 0;
  for (It it = begin; it != end; ++it) {
    if (it == begin || proj(*it) != proj(*std::prev(it))) ++n;
  }
  return n;
}

}  // namespace

GraphStats GraphStats::Compute(const TripleStore& store) {
  return ComputeImpl(store.triples(), nullptr, store.size());
}

GraphStats GraphStats::ComputeSubset(std::span<const Triple> triples,
                                     std::span<const TripleId> members) {
  return ComputeImpl(triples, members.data(), members.size());
}

GraphStats GraphStats::ComputeImpl(std::span<const Triple> triples,
                                   const TripleId* members, size_t n) {
  GraphStats gs;
  std::unordered_map<TermId, std::vector<std::pair<TermId, TermId>>> raw_args;
  for (size_t i = 0; i < n; ++i) {
    const Triple& t =
        triples[members == nullptr ? i : static_cast<size_t>(members[i])];
    PredicateStats& ps = gs.stats_[t.p];
    if (ps.triple_count == 0) gs.predicates_.push_back(t.p);
    ++ps.triple_count;
    ps.evidence_count += t.count;
    raw_args[t.p].emplace_back(t.s, t.o);
  }
  std::sort(gs.predicates_.begin(), gs.predicates_.end());
  for (TermId p : gs.predicates_) {
    auto& pairs = raw_args[p];
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    PredicateStats& ps = gs.stats_[p];
    std::vector<TermId> subjects, objects;
    subjects.reserve(pairs.size());
    objects.reserve(pairs.size());
    for (const auto& [s, o] : pairs) {
      subjects.push_back(s);
      objects.push_back(o);
    }
    std::sort(subjects.begin(), subjects.end());
    std::sort(objects.begin(), objects.end());
    ps.distinct_subjects =
        CountDistinct(subjects.begin(), subjects.end(), [](TermId x) { return x; });
    ps.distinct_objects =
        CountDistinct(objects.begin(), objects.end(), [](TermId x) { return x; });
    gs.args_.emplace(p, std::move(pairs));
  }
  return gs;
}

GraphStats GraphStats::Merged(std::span<const GraphStats* const> parts) {
  GraphStats gs;
  for (const GraphStats* part : parts) {
    for (TermId p : part->predicates_) gs.predicates_.push_back(p);
  }
  std::sort(gs.predicates_.begin(), gs.predicates_.end());
  gs.predicates_.erase(
      std::unique(gs.predicates_.begin(), gs.predicates_.end()),
      gs.predicates_.end());
  for (TermId p : gs.predicates_) {
    PredicateStats& ps = gs.stats_[p];
    std::vector<std::pair<TermId, TermId>> pairs;
    for (const GraphStats* part : parts) {
      if (const PredicateStats* pp = part->ForPredicate(p)) {
        ps.triple_count += pp->triple_count;
        ps.evidence_count += pp->evidence_count;
      }
      const auto part_args = part->Args(p);
      pairs.insert(pairs.end(), part_args.begin(), part_args.end());
    }
    // Subject-hashed shards have disjoint arg sets, so this sort+unique
    // is a pure merge — the result is exactly Compute's args array.
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    std::vector<TermId> subjects, objects;
    subjects.reserve(pairs.size());
    objects.reserve(pairs.size());
    for (const auto& [s, o] : pairs) {
      subjects.push_back(s);
      objects.push_back(o);
    }
    std::sort(subjects.begin(), subjects.end());
    std::sort(objects.begin(), objects.end());
    ps.distinct_subjects = CountDistinct(subjects.begin(), subjects.end(),
                                         [](TermId x) { return x; });
    ps.distinct_objects = CountDistinct(objects.begin(), objects.end(),
                                        [](TermId x) { return x; });
    gs.args_.emplace(p, std::move(pairs));
  }
  return gs;
}

Result<GraphStats> GraphStats::FromSnapshot(
    std::vector<TermId> predicates,
    std::unordered_map<TermId, PredicateStats> stats,
    std::unordered_map<TermId, ArgPairs> args,
    SnapshotValidation validation) {
  if (stats.size() != predicates.size() || args.size() != predicates.size()) {
    return Status::InvalidArgument("graph-stats snapshot size mismatch");
  }
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0 && predicates[i - 1] >= predicates[i]) {
      return Status::InvalidArgument(
          "graph-stats snapshot predicates not strictly ascending");
    }
    auto it = args.find(predicates[i]);
    if (stats.find(predicates[i]) == stats.end() || it == args.end()) {
      return Status::InvalidArgument(
          "graph-stats snapshot missing predicate entry");
    }
    if (validation == SnapshotValidation::kFull) {
      const ArgPairs& pairs = it->second;
      for (size_t j = 1; j < pairs.size(); ++j) {
        if (!(pairs[j - 1] < pairs[j])) {
          return Status::InvalidArgument(
              "graph-stats snapshot args not sorted for a predicate");
        }
      }
    }
  }
  GraphStats gs;
  gs.predicates_ = std::move(predicates);
  gs.stats_ = std::move(stats);
  gs.args_ = std::move(args);
  return gs;
}

const GraphStats::PredicateStats* GraphStats::ForPredicate(TermId p) const {
  auto it = stats_.find(p);
  return it == stats_.end() ? nullptr : &it->second;
}

std::span<const std::pair<TermId, TermId>> GraphStats::Args(TermId p) const {
  auto it = args_.find(p);
  return it == args_.end() ? std::span<const std::pair<TermId, TermId>>{}
                           : it->second.span();
}

size_t GraphStats::resident_bytes() const {
  size_t bytes = 0;
  for (const auto& [p, pairs] : args_) bytes += pairs.owned_bytes();
  return bytes;
}

size_t GraphStats::ArgsOverlap(TermId p1, TermId p2) const {
  const auto& a = Args(p1);
  const auto& b = Args(p2);
  size_t overlap = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

size_t GraphStats::InverseArgsOverlap(TermId p1, TermId p2) const {
  const auto& a = Args(p1);
  std::vector<std::pair<TermId, TermId>> swapped;
  swapped.reserve(Args(p2).size());
  for (const auto& [s, o] : Args(p2)) swapped.emplace_back(o, s);
  std::sort(swapped.begin(), swapped.end());
  size_t overlap = 0;
  auto ia = a.begin();
  auto ib = swapped.begin();
  while (ia != a.end() && ib != swapped.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++overlap;
      ++ia;
      ++ib;
    }
  }
  return overlap;
}

double GraphStats::MinedWeight(TermId p1, TermId p2) const {
  const auto& b = Args(p2);
  if (b.empty()) return 0.0;
  return static_cast<double>(ArgsOverlap(p1, p2)) /
         static_cast<double>(b.size());
}

double GraphStats::MinedInverseWeight(TermId p1, TermId p2) const {
  const auto& b = Args(p2);
  if (b.empty()) return 0.0;
  return static_cast<double>(InverseArgsOverlap(p1, p2)) /
         static_cast<double>(b.size());
}

}  // namespace trinit::rdf
