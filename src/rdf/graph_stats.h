#ifndef TRINIT_RDF_GRAPH_STATS_H_
#define TRINIT_RDF_GRAPH_STATS_H_

#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/triple_store.h"
#include "util/owned_span.h"

namespace trinit::rdf {

/// Per-predicate aggregate statistics over a `TripleStore`.
///
/// These drive two parts of the paper:
///  * the relaxation-rule miner: `w(p1 -> p2) = |args(p1) ∩ args(p2)| /
///    |args(p2)|` where `args(p)` is the set of (subject, object) pairs
///    connected by p in the XKG (paper §3);
///  * the scoring model's selectivity (idf-like) statistics (paper §4).
class GraphStats {
 public:
  struct PredicateStats {
    uint32_t triple_count = 0;       ///< distinct (s,p,o) with this p
    uint64_t evidence_count = 0;     ///< sum of per-triple counts
    uint32_t distinct_subjects = 0;
    uint32_t distinct_objects = 0;
  };

  /// Computes statistics for every predicate occurring in `store`.
  /// The store must outlive the stats object.
  static GraphStats Compute(const TripleStore& store);

  /// Subset variant: statistics over only the triples whose global ids
  /// are listed in `members` — one shard of a `ShardedStore`. Because
  /// shard membership is keyed by subject, per-shard arg sets are
  /// disjoint and `Merged` over every shard reproduces `Compute`
  /// exactly (property-tested).
  static GraphStats ComputeSubset(std::span<const Triple> triples,
                                  std::span<const TripleId> members);

  /// Merges per-shard statistics into whole-store statistics: counts
  /// sum, args concatenate (sorted merge), distinct subject/object
  /// counts are recomputed from the merged args. When `parts` partition
  /// a store by subject hash, the result equals `Compute` over the
  /// whole store bit-for-bit — the planner's merged per-shard stats.
  static GraphStats Merged(std::span<const GraphStats* const> parts);

  /// The args array of one predicate, span-or-vector: the copying load
  /// path decodes into owned vectors, the mmap path views the 8-byte
  /// (s,o) pair records of the STATS section in place.
  using ArgPairs = util::OwnedSpan<std::pair<TermId, TermId>>;

  /// Reassembles stats persisted in a binary snapshot (the storage
  /// layer's load path), skipping the per-predicate sorts `Compute`
  /// pays. `predicates` must be strictly ascending and `args` sorted
  /// strictly ascending per predicate (the miners' set intersections
  /// rely on it); both are re-verified in O(n) (skipped under
  /// SnapshotValidation::kTrusted), content is otherwise trusted to
  /// the snapshot's checksums.
  static Result<GraphStats> FromSnapshot(
      std::vector<TermId> predicates,
      std::unordered_map<TermId, PredicateStats> stats,
      std::unordered_map<TermId, ArgPairs> args,
      SnapshotValidation validation = SnapshotValidation::kFull);

  GraphStats(const GraphStats&) = delete;
  GraphStats& operator=(const GraphStats&) = delete;
  GraphStats(GraphStats&&) = default;
  GraphStats& operator=(GraphStats&&) = default;

  /// All predicates, ascending by id.
  const std::vector<TermId>& predicates() const { return predicates_; }

  /// Stats for `p`, or nullptr if p never occurs as a predicate.
  const PredicateStats* ForPredicate(TermId p) const;

  /// Distinct (subject, object) pairs connected by `p`, sorted
  /// lexicographically. Empty for unknown predicates. The span aliases
  /// internal storage (stats lifetime).
  std::span<const std::pair<TermId, TermId>> Args(TermId p) const;

  /// Private (per-process) bytes held by the args arrays — 0 when they
  /// all view a shared mapping.
  size_t resident_bytes() const;

  /// |args(p1) ∩ args(p2)| — same argument order.
  size_t ArgsOverlap(TermId p1, TermId p2) const;

  /// |args(p1) ∩ swap(args(p2))| — overlap with p2's (o,s) pairs; a high
  /// value signals that p2 is (approximately) the inverse of p1, the
  /// evidence behind predicate-inversion rules like hasAdvisor ->
  /// hasStudent (Figure 4, rule 2).
  size_t InverseArgsOverlap(TermId p1, TermId p2) const;

  /// Weight of the mined rewrite rule p1 -> p2 per the paper's formula,
  /// 0 when p2 is unknown or has no args.
  double MinedWeight(TermId p1, TermId p2) const;

  /// Weight for the *inverse* rewrite `?x p1 ?y -> ?y p2 ?x`:
  /// |args(p1) ∩ swap(args(p2))| / |args(p2)|.
  double MinedInverseWeight(TermId p1, TermId p2) const;

 private:
  GraphStats() = default;

  /// Shared body of Compute/ComputeSubset: `members == nullptr` walks
  /// all `n` triples by dense id, otherwise the `n` listed ids.
  static GraphStats ComputeImpl(std::span<const Triple> triples,
                                const TripleId* members, size_t n);

  std::vector<TermId> predicates_;
  std::unordered_map<TermId, PredicateStats> stats_;
  std::unordered_map<TermId, ArgPairs> args_;
};

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_GRAPH_STATS_H_
