#ifndef TRINIT_RDF_SHARDED_STORE_H_
#define TRINIT_RDF_SHARDED_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/graph_stats.h"
#include "rdf/score_order_index.h"
#include "rdf/triple_store.h"
#include "util/owned_span.h"
#include "util/result.h"
#include "util/status.h"

namespace trinit::rdf {

/// Hash-partitioned decomposition of one `TripleStore` into S
/// in-process shards, keyed by subject (the join-key workhorse) — the
/// single-process rehearsal of a multi-node serving tier. Each shard
/// owns an ascending list of the global triple ids it covers, its own
/// lazily-built score-ordered posting lists (`ScoreOrderIndex` in
/// subset mode), and its own `GraphStats`.
///
/// The decomposition is *exact*: per-shard lists are the global
/// score-ordered list filtered to the shard (same global ids, same
/// order, masses summing to the global mass), so a consumer that merges
/// per-shard lists by descending weight — `topk::LeafStream`'s segment
/// merge — reproduces the unsharded stream bit-for-bit. The max of
/// per-shard upper bounds is therefore an exact bound for the merged
/// stream, and the paper's early-termination guarantee carries over
/// unchanged.
///
/// Threading: immutable after construction except the per-shard lazy
/// shape builds, which publish through `ScoreOrderIndex`'s
/// once_flag/atomic protocol. `ScoreOrdered` additionally *scatters*
/// first-touch builds: when two or more shards still lack the queried
/// shape, their sorts run on parallel threads (each synchronized by its
/// own shard's once_flag; see docs/CONCURRENCY.md, "Per-shard
/// ownership").
class ShardedStore {
 public:
  /// Per-shard score-ordered lists for one pattern, indexed by shard.
  struct Lists {
    std::vector<ScoreOrderIndex::List> per_shard;  ///< size shard_count()
    uint64_t mass = 0;  ///< exact global mass (sum of per-shard masses)
  };

  /// One shard's restored state on the snapshot load path. Arrays are
  /// span-or-vector (the mmap path views the SHARDS section in place).
  struct ShardSnapshot {
    util::OwnedSpan<TripleId> members;  ///< ascending global triple ids
    std::vector<ScoreOrderIndex::ShapeSnapshot> score_shapes;
    GraphStats stats;
  };

  /// The shard owning `subject`: a fixed multiplicative hash, stable
  /// across processes (snapshots persist the assignment and re-derive
  /// nothing). All triples of one subject land in one shard, so join
  /// keys over subjects never straddle shards.
  static uint32_t ShardOf(TermId subject, size_t shard_count) {
    const uint64_t mixed = uint64_t{subject} * 0x9E3779B97F4A7C15ULL;
    return static_cast<uint32_t>((mixed >> 33) % shard_count);
  }

  /// Partitions `store` into `shard_count` shards: members and
  /// per-shard stats are computed here (O(n log n) total), posting
  /// lists stay lazy. `store` must outlive the result.
  static ShardedStore Build(const TripleStore& store, size_t shard_count);

  /// Reassembles a decomposition from snapshot parts without
  /// re-sorting anything. Under SnapshotValidation::kFull every
  /// invariant is re-verified in O(n): members ascending, in range, on
  /// the shard `ShardOf` assigns them, sizes summing to the store — and
  /// each restored shape re-validated by `ScoreOrderIndex::RestoreShape`.
  static Result<ShardedStore> FromSnapshot(
      const TripleStore& store, std::vector<ShardSnapshot> shards,
      SnapshotValidation validation = SnapshotValidation::kFull);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;
  ShardedStore(ShardedStore&&) = default;
  ShardedStore& operator=(ShardedStore&&) = default;

  size_t shard_count() const { return shards_.size(); }

  /// Ascending global triple ids owned by `shard`.
  std::span<const TripleId> members(size_t shard) const {
    return shards_[shard].members.span();
  }

  /// The shard's own statistics (counts, distincts, args — all
  /// restricted to the shard's triples).
  const GraphStats& shard_stats(size_t shard) const {
    return shards_[shard].stats;
  }

  /// Whole-store statistics re-derived from the per-shard stats —
  /// equals `GraphStats::Compute` over the store bit-for-bit
  /// (property-tested); what the planner consumes under sharding.
  GraphStats MergedStats() const;

  /// Scatter: every shard's score-ordered list for the pattern
  /// (`kNullTerm` = wildcard), under one total mass. Fully-bound
  /// patterns resolve on the owning shard via the store's exact path.
  /// First-touch shape builds scatter across threads when two or more
  /// shards still lack the shape.
  Lists ScoreOrdered(const TripleStore& store, TermId s, TermId p,
                     TermId o) const;

  /// Zero-copy views of `shard`'s materialized score shapes (snapshot
  /// writer access path; see `ScoreOrderIndex::BuiltShapeViews`).
  std::vector<ScoreOrderIndex::ShapeView> BuiltScoreShapes(
      size_t shard) const {
    return shards_[shard].index.BuiltShapeViews();
  }

  /// Shape permutations materialized across all shards (laziness
  /// introspection; 0 .. shard_count * 7).
  size_t score_shapes_built() const;

  /// Forwards first-touch sort instrumentation to every shard's score
  /// index (see `ScoreOrderIndex::BindMetrics`; same pre-share
  /// contract — parallel scatter builds observe concurrently, which the
  /// relaxed handles support).
  void BindScoreMetrics(obs::Histogram sort_ms, obs::Counter builds) {
    for (Shard& shard : shards_) shard.index.BindMetrics(sort_ms, builds);
  }

  /// Private (per-process) bytes held by shard members and materialized
  /// shapes — 0 when everything views a shared mapping.
  size_t resident_bytes() const;

 private:
  ShardedStore() = default;

  struct Shard {
    util::OwnedSpan<TripleId> members;  ///< ascending global triple ids
    ScoreOrderIndex index;              ///< subset mode over `members`
    GraphStats stats;
  };

  std::vector<Shard> shards_;
};

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_SHARDED_STORE_H_
