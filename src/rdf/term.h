#ifndef TRINIT_RDF_TERM_H_
#define TRINIT_RDF_TERM_H_

#include <cstdint>
#include <string>

namespace trinit::rdf {

/// The kind of a term in the extended knowledge graph (XKG).
///
/// The XKG extends classic RDF by allowing *textual tokens* — phrases
/// produced by Open IE such as 'won a Nobel for' — in any of the S, P, O
/// slots (paper §2). We therefore distinguish:
enum class TermKind : uint8_t {
  kResource = 0,  ///< canonical KG resource (entity, class, or predicate)
  kToken = 1,     ///< normalized textual phrase from Open IE
  kLiteral = 2,   ///< literal value (string, number, date)
};

/// Returns "resource" / "token" / "literal".
const char* TermKindName(TermKind kind);

/// Dense dictionary-encoded identifier of a term. Id 0 is reserved as the
/// invalid/null id; valid ids start at 1 and are assigned sequentially by
/// the `Dictionary`.
using TermId = uint32_t;

/// Reserved invalid term id.
inline constexpr TermId kNullTerm = 0;

inline const char* TermKindName(TermKind kind) {
  switch (kind) {
    case TermKind::kResource:
      return "resource";
    case TermKind::kToken:
      return "token";
    case TermKind::kLiteral:
      return "literal";
  }
  return "unknown";
}

}  // namespace trinit::rdf

#endif  // TRINIT_RDF_TERM_H_
