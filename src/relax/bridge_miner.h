#ifndef TRINIT_RELAX_BRIDGE_MINER_H_
#define TRINIT_RELAX_BRIDGE_MINER_H_

#include <string>

#include "relax/rule_set.h"

namespace trinit::relax {

/// Mines two-hop expansion rules `?x p ?y => ?x p ?z ; ?z q ?y`.
///
/// This is the shape of Figure 4 rule 3: `?x affiliation ?y =>
/// ?x affiliation ?z ; ?z 'housed in' ?y` — the relaxation that lets
/// user C reach PrincetonUniversity through IAS. The weight generalizes
/// the paper's args-overlap formula to the composed replacement pattern
/// set: w = |args(p) ∩ compose(p,q)| / |compose(p,q)| where
/// compose(p,q) = {(x,y) : ∃z p(x,z) ∧ q(z,y)}.
///
/// When the intermediate hop predicate q is a token predicate from the
/// extraction layer this "bridges" KG structure with XKG evidence,
/// hence the name.
class BridgeMiner : public RelaxationOperator {
 public:
  struct Options {
    double min_weight = 0.1;
    size_t min_overlap = 2;          ///< support: |args(p) ∩ compose|
    size_t max_rules_per_predicate = 8;
    size_t max_compose_pairs = 200000;  ///< abort a hop that fans out too far
  };

  BridgeMiner() : BridgeMiner(Options()) {}
  explicit BridgeMiner(Options options) : options_(options) {}

  std::string name() const override { return "bridge-miner"; }
  Status Generate(const xkg::Xkg& xkg, RuleSet* rules) override;

 private:
  Options options_;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_BRIDGE_MINER_H_
