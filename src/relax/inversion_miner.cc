#include "relax/inversion_miner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace trinit::relax {
namespace {

query::Term PredicateTerm(const rdf::Dictionary& dict, rdf::TermId p) {
  if (dict.kind(p) == rdf::TermKind::kToken) {
    return query::Term::Token(std::string(dict.label(p)), p);
  }
  return query::Term::Resource(std::string(dict.label(p)), p);
}

}  // namespace

Status InversionMiner::Generate(const xkg::Xkg& xkg, RuleSet* rules) {
  const rdf::GraphStats& stats = xkg.stats();
  const rdf::Dictionary& dict = xkg.dict();

  // Forward pairs of every predicate, keyed exactly.
  std::unordered_map<uint64_t, std::vector<rdf::TermId>> pair_to_preds;
  for (rdf::TermId p : stats.predicates()) {
    for (const auto& [s, o] : stats.Args(p)) {
      pair_to_preds[(static_cast<uint64_t>(s) << 32) | o].push_back(p);
    }
  }

  // inv_overlap[(p1,p2)] = |args(p1) ∩ swap(args(p2))|: for each forward
  // pair (s,o) of p1, predicates holding (o,s) contribute.
  std::map<std::pair<rdf::TermId, rdf::TermId>, size_t> inv_overlap;
  for (rdf::TermId p1 : stats.predicates()) {
    for (const auto& [s, o] : stats.Args(p1)) {
      auto it = pair_to_preds.find((static_cast<uint64_t>(o) << 32) | s);
      if (it == pair_to_preds.end()) continue;
      for (rdf::TermId p2 : it->second) {
        if (p1 == p2 && !options_.include_self_inverse) continue;
        ++inv_overlap[{p1, p2}];
      }
    }
  }

  std::unordered_map<rdf::TermId, std::vector<Rule>> per_predicate;
  for (const auto& [pair, shared] : inv_overlap) {
    auto [p1, p2] = pair;
    if (shared < options_.min_overlap) continue;
    size_t args_p2 = stats.Args(p2).size();
    if (args_p2 == 0) continue;
    double w = static_cast<double>(shared) / static_cast<double>(args_p2);
    if (w < options_.min_weight) continue;
    if (w > 1.0) w = 1.0;

    Rule rule;
    rule.name = "inv:" + std::string(dict.label(p1)) + "->" +
                std::string(dict.label(p2));
    rule.kind = RuleKind::kInversion;
    rule.weight = w;
    query::Term x = query::Term::Variable("x");
    query::Term y = query::Term::Variable("y");
    rule.lhs = {query::TriplePattern{x, PredicateTerm(dict, p1), y}};
    rule.rhs = {query::TriplePattern{y, PredicateTerm(dict, p2), x}};
    per_predicate[p1].push_back(std::move(rule));
  }

  for (auto& [p1, candidate_rules] : per_predicate) {
    (void)p1;
    std::sort(candidate_rules.begin(), candidate_rules.end(),
              [](const Rule& a, const Rule& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.name < b.name;
              });
    if (candidate_rules.size() > options_.max_rules_per_predicate) {
      candidate_rules.resize(options_.max_rules_per_predicate);
    }
    for (Rule& r : candidate_rules) {
      TRINIT_RETURN_IF_ERROR(rules->Add(std::move(r)));
    }
  }
  return Status::Ok();
}

}  // namespace trinit::relax
