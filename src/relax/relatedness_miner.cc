#include "relax/relatedness_miner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace trinit::relax {
namespace {

query::Term PredicateTerm(const rdf::Dictionary& dict, rdf::TermId p) {
  if (dict.kind(p) == rdf::TermKind::kToken) {
    return query::Term::Token(std::string(dict.label(p)), p);
  }
  return query::Term::Resource(std::string(dict.label(p)), p);
}

// Cosine similarity between two sorted id sets (binary vectors).
double CosineOfSets(const std::vector<rdf::TermId>& a,
                    const std::vector<rdf::TermId>& b) {
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

}  // namespace

Status RelatednessMiner::Generate(const xkg::Xkg& xkg, RuleSet* rules) {
  const rdf::GraphStats& stats = xkg.stats();
  const rdf::Dictionary& dict = xkg.dict();

  // Distinct subject / object sets per predicate (sorted).
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> subjects;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> objects;
  std::vector<rdf::TermId> eligible;
  for (rdf::TermId p : stats.predicates()) {
    std::vector<rdf::TermId> subj, obj;
    for (const auto& [s, o] : stats.Args(p)) {
      subj.push_back(s);
      obj.push_back(o);
    }
    std::sort(subj.begin(), subj.end());
    subj.erase(std::unique(subj.begin(), subj.end()), subj.end());
    std::sort(obj.begin(), obj.end());
    obj.erase(std::unique(obj.begin(), obj.end()), obj.end());
    if (subj.size() < options_.min_support) continue;
    subjects[p] = std::move(subj);
    objects[p] = std::move(obj);
    eligible.push_back(p);
  }

  for (rdf::TermId p1 : eligible) {
    std::vector<Rule> candidates;
    for (rdf::TermId p2 : eligible) {
      if (p1 == p2) continue;
      double w = options_.damping *
                 CosineOfSets(subjects[p1], subjects[p2]) *
                 CosineOfSets(objects[p1], objects[p2]);
      if (w < options_.min_weight) continue;
      Rule rule;
      rule.name = "rel:" + std::string(dict.label(p1)) + "->" +
                  std::string(dict.label(p2));
      rule.kind = RuleKind::kOperator;
      rule.weight = std::min(w, 1.0);
      query::Term x = query::Term::Variable("x");
      query::Term y = query::Term::Variable("y");
      rule.lhs = {query::TriplePattern{x, PredicateTerm(dict, p1), y}};
      rule.rhs = {query::TriplePattern{x, PredicateTerm(dict, p2), y}};
      candidates.push_back(std::move(rule));
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Rule& a, const Rule& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.name < b.name;
              });
    if (candidates.size() > options_.max_rules_per_predicate) {
      candidates.resize(options_.max_rules_per_predicate);
    }
    for (Rule& rule : candidates) {
      TRINIT_RETURN_IF_ERROR(rules->Add(std::move(rule)));
    }
  }
  return Status::Ok();
}

}  // namespace trinit::relax
