#include "relax/rewriter.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>

namespace trinit::relax {
namespace {

using query::Query;
using query::Term;
using query::TriplePattern;

// Rule-variable assignment accumulated during unification.
using RuleBindings = std::unordered_map<std::string, Term>;

bool UnifyTerm(const Term& rule_term, const Term& query_term,
               RuleBindings& bindings) {
  if (rule_term.is_variable()) {
    auto it = bindings.find(rule_term.text);
    if (it != bindings.end()) return it->second == query_term;
    bindings.emplace(rule_term.text, query_term);
    return true;
  }
  // A rule constant matches only an equal query constant (same kind and
  // surface text; resolved ids agree when both sides are resolved).
  if (query_term.is_variable()) return false;
  return rule_term.kind == query_term.kind &&
         rule_term.text == query_term.text;
}

bool UnifyPattern(const TriplePattern& rule_p, const TriplePattern& query_p,
                  RuleBindings& bindings) {
  RuleBindings saved = bindings;
  if (UnifyTerm(rule_p.s, query_p.s, bindings) &&
      UnifyTerm(rule_p.p, query_p.p, bindings) &&
      UnifyTerm(rule_p.o, query_p.o, bindings)) {
    return true;
  }
  bindings = std::move(saved);
  return false;
}

// Backtracking search for injective mappings of LHS patterns onto query
// pattern indices. Calls `emit(used_indices, bindings)` per solution.
void MatchLhs(const std::vector<TriplePattern>& lhs,
              const std::vector<TriplePattern>& query_patterns,
              size_t lhs_idx, std::vector<size_t>& used,
              RuleBindings& bindings,
              const std::function<void(const std::vector<size_t>&,
                                       const RuleBindings&)>& emit) {
  if (lhs_idx == lhs.size()) {
    emit(used, bindings);
    return;
  }
  for (size_t qi = 0; qi < query_patterns.size(); ++qi) {
    if (std::find(used.begin(), used.end(), qi) != used.end()) continue;
    RuleBindings saved = bindings;
    if (UnifyPattern(lhs[lhs_idx], query_patterns[qi], bindings)) {
      used.push_back(qi);
      MatchLhs(lhs, query_patterns, lhs_idx + 1, used, bindings, emit);
      used.pop_back();
    }
    bindings = std::move(saved);
  }
}

// Structural key for deduplicating rewrites: sorted pattern renderings
// (conjunction is order-insensitive) plus the projection.
std::string CanonicalKey(const Query& q) {
  std::vector<std::string> parts;
  parts.reserve(q.patterns().size());
  for (const TriplePattern& p : q.patterns()) parts.push_back(p.ToString());
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const std::string& s : parts) {
    key += s;
    key.push_back('\n');
  }
  key += "#proj:";
  for (const std::string& v : q.projection()) {
    key += v;
    key.push_back(',');
  }
  return key;
}

}  // namespace

Rewriter::Rewriter(const RuleSet& rules, Options options)
    : rules_(rules), options_(options) {}

std::vector<RewriteResult> Rewriter::ApplyRule(const Query& q,
                                               const Rule& rule) const {
  std::vector<RewriteResult> results;

  // Existing variable names, to keep fresh names collision-free.
  std::vector<std::string> existing = q.Variables();
  auto is_taken = [&existing](const std::string& name) {
    return std::find(existing.begin(), existing.end(), name) !=
           existing.end();
  };

  std::vector<size_t> used;
  RuleBindings bindings;
  MatchLhs(rule.lhs, q.patterns(), 0, used, bindings,
           [&](const std::vector<size_t>& matched,
               const RuleBindings& bound) {
             // Instantiate the RHS under `bound`, inventing fresh
             // variables for RHS-only rule variables.
             std::unordered_map<std::string, std::string> fresh_names;
             int fresh_counter = 0;
             auto instantiate = [&](const Term& t) -> Term {
               if (!t.is_variable()) return t;
               auto it = bound.find(t.text);
               if (it != bound.end()) return it->second;
               auto fit = fresh_names.find(t.text);
               if (fit != fresh_names.end()) {
                 return Term::Variable(fit->second);
               }
               std::string name;
               do {
                 name = t.text + "_" + std::to_string(fresh_counter++);
               } while (is_taken(name));
               fresh_names.emplace(t.text, name);
               existing.push_back(name);
               return Term::Variable(name);
             };

             std::vector<TriplePattern> new_patterns;
             for (size_t qi = 0; qi < q.patterns().size(); ++qi) {
               if (std::find(matched.begin(), matched.end(), qi) ==
                   matched.end()) {
                 new_patterns.push_back(q.patterns()[qi]);
               }
             }
             for (const TriplePattern& rp : rule.rhs) {
               new_patterns.push_back(TriplePattern{instantiate(rp.s),
                                                    instantiate(rp.p),
                                                    instantiate(rp.o)});
             }

             RewriteResult result;
             result.query = Query(std::move(new_patterns), q.projection());
             result.weight = rule.weight;
             result.applied = {&rule};
             // Discard applications that break the query (e.g. a
             // projection variable vanished with the matched pattern).
             if (result.query.Validate().ok()) {
               results.push_back(std::move(result));
             }
           });
  return results;
}

std::vector<RewriteResult> Rewriter::EnumerateRewrites(
    const Query& q) const {
  std::vector<RewriteResult> out;
  std::unordered_map<std::string, size_t> seen;  // canonical key -> index

  RewriteResult original;
  original.query = q;
  original.weight = 1.0;
  out.push_back(original);
  seen.emplace(CanonicalKey(q), 0);

  // BFS frontier of indices into `out` (depth == applied.size()).
  std::deque<size_t> frontier{0};
  while (!frontier.empty() && out.size() < options_.max_rewrites) {
    size_t cur_idx = frontier.front();
    frontier.pop_front();
    // Copy, since `out` may reallocate below.
    RewriteResult cur = out[cur_idx];
    if (static_cast<int>(cur.applied.size()) >= options_.max_depth) continue;

    // Candidate rules: union over patterns' predicate buckets.
    std::vector<const Rule*> candidates;
    {
      std::unordered_set<const Rule*> dedup;
      for (const TriplePattern& p : cur.query.patterns()) {
        for (const Rule* r : rules_.CandidatesForPredicate(p.p)) {
          if (dedup.insert(r).second) candidates.push_back(r);
        }
      }
    }

    for (const Rule* rule : candidates) {
      double w = cur.weight * rule->weight;
      if (w < options_.min_weight) continue;
      for (RewriteResult& app : ApplyRule(cur.query, *rule)) {
        RewriteResult next;
        next.query = std::move(app.query);
        next.weight = w;
        next.applied = cur.applied;
        next.applied.push_back(rule);
        std::string key = CanonicalKey(next.query);
        auto it = seen.find(key);
        if (it != seen.end()) {
          // Max over derivation sequences (paper §4). Keep the shorter /
          // heavier chain.
          if (next.weight > out[it->second].weight) {
            out[it->second].weight = next.weight;
            out[it->second].applied = next.applied;
          }
          continue;
        }
        if (out.size() >= options_.max_rewrites) break;
        seen.emplace(std::move(key), out.size());
        frontier.push_back(out.size());
        out.push_back(std::move(next));
      }
    }
  }

  // Original first, then by descending weight (stable for determinism).
  std::stable_sort(out.begin() + 1, out.end(),
                   [](const RewriteResult& a, const RewriteResult& b) {
                     return a.weight > b.weight;
                   });
  return out;
}

}  // namespace trinit::relax
