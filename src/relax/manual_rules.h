#ifndef TRINIT_RELAX_MANUAL_RULES_H_
#define TRINIT_RELAX_MANUAL_RULES_H_

#include <string>
#include <string_view>
#include <vector>

#include "relax/rule.h"
#include "util/result.h"

namespace trinit::relax {

/// Parses user-supplied relaxation rules (the demo UI lets "users define
/// their own relaxation rules", paper §5). One rule per line:
///
///   [name:] lhs-pattern (';' lhs-pattern)* => rhs-pattern (';' ...)* @ weight
///
/// using the query parser's term syntax. Lines starting with '#' and
/// blank lines are skipped. Examples (Figure 4):
///
///   rule1: ?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z type city ; ?z locatedIn ?y @ 1.0
///   rule2: ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0
///   rule3: ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y @ 0.8
///   rule4: ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7
Result<std::vector<Rule>> ParseManualRules(std::string_view text);

/// Parses a single rule line (no comments/blank handling).
Result<Rule> ParseManualRule(std::string_view line, int line_number = 0);

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_MANUAL_RULES_H_
