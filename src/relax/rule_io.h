#ifndef TRINIT_RELAX_RULE_IO_H_
#define TRINIT_RELAX_RULE_IO_H_

#include <string>

#include "relax/rule_set.h"
#include "util/result.h"

namespace trinit::relax {

/// Persistence for rule sets. Mined rules are expensive to recompute on
/// large XKGs; administrators save them once and ship them alongside
/// the graph (the demo kept them in its ElasticSearch metadata).
///
/// Format: one rule per line in the `ParseManualRules` syntax prefixed
/// by the kind tag, e.g.
///
///   synonym\tsyn:affiliation->works at: ?x affiliation ?y => ?x 'works at' ?y @ 0.75
class RuleIo {
 public:
  /// Writes every rule of `rules` to `path` (overwrites).
  static Status Save(const RuleSet& rules, const std::string& path);

  /// Loads a rule file into `rules` (merging; duplicates keep max
  /// weight).
  static Status Load(const std::string& path, RuleSet* rules);

  /// Parses rule-file content from a string (tests).
  static Status LoadFromString(const std::string& content, RuleSet* rules);
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_RULE_IO_H_
