#include "relax/manual_rules.h"

#include <cstdlib>

#include "query/parser.h"
#include "util/string_util.h"

namespace trinit::relax {
namespace {

Result<std::vector<query::TriplePattern>> ParsePatterns(
    std::string_view text, int line_number) {
  auto parsed = query::Parser::Parse(text);
  if (!parsed.ok()) {
    return Status::ParseError("rule line " + std::to_string(line_number) +
                              ": " + parsed.status().message());
  }
  return parsed->patterns();
}

}  // namespace

Result<Rule> ParseManualRule(std::string_view line, int line_number) {
  std::string_view rest = Trim(line);

  Rule rule;
  rule.kind = RuleKind::kManual;

  // Optional "name:" prefix — the *last* colon before the first '?' or
  // quote (mined rule names like "syn:affiliation->works at" themselves
  // contain colons).
  size_t first_term = rest.find_first_of("?'\"");
  std::string_view head =
      first_term == std::string_view::npos ? rest
                                           : rest.substr(0, first_term);
  size_t colon = head.rfind(':');
  if (colon != std::string_view::npos) {
    rule.name = std::string(Trim(rest.substr(0, colon)));
    rest = Trim(rest.substr(colon + 1));
  }
  if (rule.name.empty()) {
    rule.name = "manual_" + std::to_string(line_number);
  }

  size_t arrow = rest.find("=>");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("rule line " + std::to_string(line_number) +
                              ": missing '=>'");
  }
  std::string_view lhs_text = Trim(rest.substr(0, arrow));
  std::string_view rhs_and_weight = Trim(rest.substr(arrow + 2));

  size_t at = rhs_and_weight.rfind('@');
  if (at == std::string_view::npos) {
    return Status::ParseError("rule line " + std::to_string(line_number) +
                              ": missing '@ weight'");
  }
  std::string_view rhs_text = Trim(rhs_and_weight.substr(0, at));
  std::string weight_text(Trim(rhs_and_weight.substr(at + 1)));
  if (weight_text.empty()) {
    return Status::ParseError("rule line " + std::to_string(line_number) +
                              ": empty weight");
  }
  char* end = nullptr;
  rule.weight = std::strtod(weight_text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Status::ParseError("rule line " + std::to_string(line_number) +
                              ": bad weight '" + weight_text + "'");
  }

  TRINIT_ASSIGN_OR_RETURN(rule.lhs, ParsePatterns(lhs_text, line_number));
  TRINIT_ASSIGN_OR_RETURN(rule.rhs, ParsePatterns(rhs_text, line_number));
  TRINIT_RETURN_IF_ERROR(rule.Validate());
  return rule;
}

Result<std::vector<Rule>> ParseManualRules(std::string_view text) {
  std::vector<Rule> rules;
  int line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    TRINIT_ASSIGN_OR_RETURN(Rule rule, ParseManualRule(line, line_number));
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace trinit::relax
