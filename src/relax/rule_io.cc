#include "relax/rule_io.h"

#include "relax/manual_rules.h"
#include "util/tsv.h"

namespace trinit::relax {
namespace {

Result<RuleKind> KindFromName(const std::string& name, size_t line) {
  for (RuleKind kind :
       {RuleKind::kSynonym, RuleKind::kInversion, RuleKind::kExpansion,
        RuleKind::kManual, RuleKind::kOperator}) {
    if (name == RuleKindName(kind)) return kind;
  }
  return Status::ParseError("rule file line " + std::to_string(line) +
                            ": unknown rule kind '" + name + "'");
}

}  // namespace

Status RuleIo::Save(const RuleSet& rules, const std::string& path) {
  TsvWriter writer(path);
  TRINIT_RETURN_IF_ERROR(writer.status());
  writer.WriteComment("TriniT relaxation rules");
  for (const Rule& rule : rules.rules()) {
    writer.WriteRow({RuleKindName(rule.kind),
                     rule.name + ": " + rule.ToString()});
  }
  return writer.Close();
}

Status RuleIo::LoadFromString(const std::string& content, RuleSet* rules) {
  return TsvReader::ForEachRowInString(
      content,
      [rules](size_t line, const std::vector<std::string>& fields)
          -> Status {
        if (fields.size() != 2) {
          return Status::ParseError("rule file line " +
                                    std::to_string(line) +
                                    ": expected kind<TAB>rule");
        }
        TRINIT_ASSIGN_OR_RETURN(RuleKind kind,
                                KindFromName(fields[0], line));
        TRINIT_ASSIGN_OR_RETURN(
            Rule rule, ParseManualRule(fields[1],
                                       static_cast<int>(line)));
        rule.kind = kind;
        return rules->Add(std::move(rule));
      });
}

Status RuleIo::Load(const std::string& path, RuleSet* rules) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open rule file: " + path);
  }
  std::string content;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return LoadFromString(content, rules);
}

}  // namespace trinit::relax
