#include "relax/rule_set.h"

#include <algorithm>

namespace trinit::relax {

std::string RuleSet::PredicateKey(const query::Term& p) {
  using Kind = query::Term::Kind;
  switch (p.kind) {
    case Kind::kVariable:
      return "";  // generic bucket
    case Kind::kResource:
      return "R:" + p.text;
    case Kind::kToken:
      return "K:" + p.text;
    case Kind::kLiteral:
      return "L:" + p.text;
  }
  return "";
}

Status RuleSet::Add(Rule rule) {
  TRINIT_RETURN_IF_ERROR(rule.Validate());
  std::string key = rule.ToString();
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    rules_[it->second].weight =
        std::max(rules_[it->second].weight, rule.weight);
    return Status::Ok();
  }
  size_t idx = rules_.size();
  std::string pred_key = PredicateKey(rule.lhs.front().p);
  rules_.push_back(std::move(rule));
  dedup_.emplace(std::move(key), idx);
  if (pred_key.empty()) {
    generic_.push_back(idx);
  } else {
    by_predicate_[pred_key].push_back(idx);
  }
  return Status::Ok();
}

std::vector<const Rule*> RuleSet::CandidatesForPredicate(
    const query::Term& p) const {
  std::vector<const Rule*> out;
  if (p.kind != query::Term::Kind::kVariable) {
    auto it = by_predicate_.find(PredicateKey(p));
    if (it != by_predicate_.end()) {
      for (size_t idx : it->second) out.push_back(&rules_[idx]);
    }
  } else {
    // A variable query predicate can only unify with rules whose LHS
    // predicate is also a variable.
  }
  for (size_t idx : generic_) out.push_back(&rules_[idx]);
  return out;
}

size_t RuleSet::CountOfKind(RuleKind kind) const {
  return static_cast<size_t>(
      std::count_if(rules_.begin(), rules_.end(),
                    [kind](const Rule& r) { return r.kind == kind; }));
}

void RuleSet::ResolveAgainst(const rdf::Dictionary& dict) {
  auto resolve = [&dict](query::Term& t) {
    switch (t.kind) {
      case query::Term::Kind::kVariable:
        break;
      case query::Term::Kind::kResource:
        t.id = dict.Find(rdf::TermKind::kResource, t.text);
        break;
      case query::Term::Kind::kToken:
        t.id = dict.Find(rdf::TermKind::kToken, t.text);
        break;
      case query::Term::Kind::kLiteral:
        t.id = dict.Find(rdf::TermKind::kLiteral, t.text);
        break;
    }
  };
  for (Rule& rule : rules_) {
    for (auto* side : {&rule.lhs, &rule.rhs}) {
      for (query::TriplePattern& p : *side) {
        resolve(p.s);
        resolve(p.p);
        resolve(p.o);
      }
    }
  }
}

RuleSet RuleSet::WithoutKind(RuleKind kind) const {
  RuleSet out;
  for (const Rule& r : rules_) {
    if (r.kind != kind) {
      Status s = out.Add(r);
      (void)s;  // rules already validated on first insertion
    }
  }
  return out;
}

}  // namespace trinit::relax
