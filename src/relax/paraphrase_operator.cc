#include "relax/paraphrase_operator.h"

#include <cstdlib>

#include "text/phrase.h"
#include "util/string_util.h"

namespace trinit::relax {

const char* ParaphraseOperator::BuiltinRepository() {
  return
      "# academia-domain paraphrase clusters (PATTY/Biperpedia stand-in)\n"
      "0.8: affiliation | 'works at' | 'is employed by' | 'is a professor "
      "at'\n"
      "0.6: affiliation | 'lectured at'\n"
      "0.8: bornIn | 'was born in' | 'is a native of' | 'hails from'\n"
      "0.8: locatedIn | 'is located in' | 'lies in' | 'is a city in'\n"
      "0.8: hasAdvisor | 'was advised by' | 'studied under'\n"
      "0.8: wonPrize | 'won' | 'was awarded' | 'received'\n"
      "0.7: inField | 'conducts research in' | 'specializes in'\n"
      "0.8: housedIn | 'is housed in' | 'is hosted by'\n"
      "0.8: campusIn | 'has its campus in' | 'is based in'\n";
}

Result<std::vector<ParaphraseOperator::Cluster>>
ParaphraseOperator::ParseRepository(std::string_view text) {
  std::vector<Cluster> clusters;
  int line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;

    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("paraphrase line " +
                                std::to_string(line_number) +
                                ": missing 'weight:' prefix");
    }
    Cluster cluster;
    std::string weight_text(Trim(line.substr(0, colon)));
    char* end = nullptr;
    cluster.weight = std::strtod(weight_text.c_str(), &end);
    if (end == nullptr || *end != '\0' || cluster.weight <= 0.0 ||
        cluster.weight > 1.0) {
      return Status::ParseError("paraphrase line " +
                                std::to_string(line_number) +
                                ": bad weight '" + weight_text + "'");
    }
    for (const std::string& member_raw :
         Split(line.substr(colon + 1), '|')) {
      std::string_view member = Trim(member_raw);
      if (member.empty()) continue;
      if (member.front() == '\'' && member.size() >= 2 &&
          member.back() == '\'') {
        cluster.members.push_back(query::Term::Token(
            std::string(member.substr(1, member.size() - 2))));
      } else {
        cluster.members.push_back(
            query::Term::Resource(std::string(member)));
      }
    }
    if (cluster.members.size() < 2) {
      return Status::ParseError("paraphrase line " +
                                std::to_string(line_number) +
                                ": cluster needs at least 2 members");
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

Result<ParaphraseOperator> ParaphraseOperator::FromText(
    std::string_view text) {
  TRINIT_ASSIGN_OR_RETURN(std::vector<Cluster> clusters,
                          ParseRepository(text));
  return ParaphraseOperator(std::move(clusters));
}

Status ParaphraseOperator::Generate(const xkg::Xkg& xkg, RuleSet* rules) {
  (void)xkg;  // external lexical knowledge: no graph evidence needed
  query::Term x = query::Term::Variable("x");
  query::Term y = query::Term::Variable("y");
  for (const Cluster& cluster : clusters_) {
    for (size_t a = 0; a < cluster.members.size(); ++a) {
      for (size_t b = 0; b < cluster.members.size(); ++b) {
        if (a == b) continue;
        Rule rule;
        rule.kind = RuleKind::kOperator;
        rule.weight = cluster.weight;
        rule.name = "para:" + cluster.members[a].text + "->" +
                    cluster.members[b].text;
        rule.lhs = {query::TriplePattern{x, cluster.members[a], y}};
        rule.rhs = {query::TriplePattern{x, cluster.members[b], y}};
        TRINIT_RETURN_IF_ERROR(rules->Add(std::move(rule)));
      }
    }
  }
  return Status::Ok();
}

}  // namespace trinit::relax
