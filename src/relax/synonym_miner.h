#ifndef TRINIT_RELAX_SYNONYM_MINER_H_
#define TRINIT_RELAX_SYNONYM_MINER_H_

#include <string>

#include "relax/rule_set.h"

namespace trinit::relax {

/// Mines predicate-rewrite relaxation rules from the XKG itself, exactly
/// as the paper describes (§3): "We generate a rule rewriting the XKG
/// predicate p1 to the XKG predicate p2 and assign it the weight
/// w(p1 -> p2) = |args(p1) ∩ args(p2)| / |args(p2)|, where args(p) is
/// the set of subject-object pairs connected by p in the XKG."
///
/// This is the mechanism that discovers e.g. `?x affiliation ?y =>
/// ?x 'works at' ?y` once the extraction layer provides enough
/// co-occurring argument pairs, bridging KG and XKG vocabulary
/// (Figure 4, rules 3-4 flavor).
class SynonymMiner : public RelaxationOperator {
 public:
  struct Options {
    double min_weight = 0.1;  ///< discard rules below this mined weight
    size_t min_overlap = 2;   ///< min shared (s,o) pairs (support)
    size_t max_rules_per_predicate = 16;  ///< keep the heaviest rules
  };

  SynonymMiner() : SynonymMiner(Options()) {}
  explicit SynonymMiner(Options options) : options_(options) {}

  std::string name() const override { return "synonym-miner"; }
  Status Generate(const xkg::Xkg& xkg, RuleSet* rules) override;

 private:
  Options options_;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_SYNONYM_MINER_H_
