#ifndef TRINIT_RELAX_INVERSION_MINER_H_
#define TRINIT_RELAX_INVERSION_MINER_H_

#include <string>

#include "relax/rule_set.h"

namespace trinit::relax {

/// Mines predicate-inversion rules: `?x p1 ?y => ?y p2 ?x` when p2's
/// (o,s) pairs overlap p1's (s,o) pairs, with the paper's weight formula
/// applied to the swapped argument sets. This is the mined counterpart
/// of Figure 4 rule 2 (`?x hasAdvisor ?y => ?y hasStudent ?x`), the fix
/// for user B's "argument order" mistake (paper §1).
class InversionMiner : public RelaxationOperator {
 public:
  struct Options {
    double min_weight = 0.1;
    size_t min_overlap = 2;
    size_t max_rules_per_predicate = 8;
    bool include_self_inverse = true;  ///< mine `?x p ?y => ?y p ?x` for
                                       ///< symmetric predicates
  };

  InversionMiner() : InversionMiner(Options()) {}
  explicit InversionMiner(Options options) : options_(options) {}

  std::string name() const override { return "inversion-miner"; }
  Status Generate(const xkg::Xkg& xkg, RuleSet* rules) override;

 private:
  Options options_;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_INVERSION_MINER_H_
