#include "relax/rule.h"

#include "util/string_util.h"

namespace trinit::relax {

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kSynonym:
      return "synonym";
    case RuleKind::kInversion:
      return "inversion";
    case RuleKind::kExpansion:
      return "expansion";
    case RuleKind::kManual:
      return "manual";
    case RuleKind::kOperator:
      return "operator";
  }
  return "unknown";
}

std::string Rule::ToString() const {
  std::vector<std::string> lhs_strs, rhs_strs;
  for (const query::TriplePattern& p : lhs) lhs_strs.push_back(p.ToString());
  for (const query::TriplePattern& p : rhs) rhs_strs.push_back(p.ToString());
  return Join(lhs_strs, " ; ") + " => " + Join(rhs_strs, " ; ") + " @ " +
         FormatDouble(weight, 3);
}

Status Rule::Validate() const {
  if (lhs.empty()) return Status::InvalidArgument("rule with empty LHS");
  if (rhs.empty()) return Status::InvalidArgument("rule with empty RHS");
  if (weight < 0.0 || weight > 1.0) {
    return Status::InvalidArgument("rule weight must be in [0,1], got " +
                                   FormatDouble(weight, 4));
  }
  if (lhs == rhs) return Status::InvalidArgument("rule is a no-op");
  return Status::Ok();
}

}  // namespace trinit::relax
