#ifndef TRINIT_RELAX_RULE_SET_H_
#define TRINIT_RELAX_RULE_SET_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relax/rule.h"
#include "util/result.h"
#include "xkg/xkg.h"

namespace trinit::relax {

/// An indexed collection of relaxation rules.
///
/// Rules are indexed by the predicate term of their first LHS pattern
/// (constant predicate -> that id/text; variable predicate -> generic
/// bucket) so the rewriter only attempts rules that can possibly fire on
/// a pattern.
class RuleSet {
 public:
  RuleSet() = default;
  RuleSet(const RuleSet&) = delete;
  RuleSet& operator=(const RuleSet&) = delete;
  RuleSet(RuleSet&&) = default;
  RuleSet& operator=(RuleSet&&) = default;

  /// Validates and adds a rule; duplicate (ToString-identical) rules keep
  /// the max weight instead of duplicating.
  Status Add(Rule rule);

  size_t size() const { return rules_.size(); }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Rules whose first LHS pattern can fire on a pattern with predicate
  /// term `p` (constant-indexed rules for p plus variable-predicate
  /// rules). `p` may be any query term.
  std::vector<const Rule*> CandidatesForPredicate(
      const query::Term& p) const;

  /// Number of rules of each kind (ablation toggles, bench A1).
  size_t CountOfKind(RuleKind kind) const;

  /// Copy of this rule set without rules of the given kind.
  RuleSet WithoutKind(RuleKind kind) const;

  /// Re-resolves every constant term of every rule against `dict`
  /// (labels are authoritative; ids are cache). Required after the XKG
  /// is rebuilt — e.g. by `core::Trinit::ExtendKg` — because dictionary
  /// ids are not stable across rebuilds.
  void ResolveAgainst(const rdf::Dictionary& dict);

 private:
  static std::string PredicateKey(const query::Term& p);

  std::vector<Rule> rules_;
  std::unordered_map<std::string, size_t> dedup_;       // ToString -> index
  std::unordered_map<std::string, std::vector<size_t>> by_predicate_;
  std::vector<size_t> generic_;  // variable-predicate rules
};

/// Extension point of the paper: "TriniT has an API for relaxation
/// operators, which administrators and advanced users can use to plug in
/// their code for generating relaxation rules and their weights" (§3).
class RelaxationOperator {
 public:
  virtual ~RelaxationOperator() = default;

  /// Operator name for logs/ablation tables.
  virtual std::string name() const = 0;

  /// Appends generated rules to `rules`.
  virtual Status Generate(const xkg::Xkg& xkg, RuleSet* rules) = 0;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_RULE_SET_H_
