#ifndef TRINIT_RELAX_RULE_H_
#define TRINIT_RELAX_RULE_H_

#include <string>
#include <vector>

#include "query/query.h"

namespace trinit::relax {

/// How a relaxation rule came to exist; used for ablations (bench A1)
/// and explanation rendering.
enum class RuleKind {
  kSynonym = 0,    ///< mined predicate rewrite   ?x p1 ?y => ?x p2 ?y
  kInversion = 1,  ///< mined inversion           ?x p1 ?y => ?y p2 ?x
  kExpansion = 2,  ///< mined two-hop expansion   ?x p ?y => ?x p ?z ; ?z q ?y
  kManual = 3,     ///< user-supplied (demo UI / rule file)
  kOperator = 4,   ///< produced by a plugged-in RelaxationOperator
};

const char* RuleKindName(RuleKind kind);

/// A weighted rewrite rule: "a relaxation rule replaces a set of triple
/// patterns in the original query with a set of new patterns. Each rule
/// has a weight w ∈ [0,1] that reflects the semantic similarity between
/// the original set of triple patterns and their replacement" (paper §3).
///
/// LHS/RHS patterns use `query::Term`s; variables are rule-scoped and
/// unify against whole query terms (variables or constants) during
/// application — see `Rewriter`. Variables that occur only in the RHS
/// (e.g. ?z in Figure 4 rules 1 and 3) become fresh query variables.
struct Rule {
  std::string name;
  std::vector<query::TriplePattern> lhs;
  std::vector<query::TriplePattern> rhs;
  double weight = 1.0;
  RuleKind kind = RuleKind::kManual;

  /// "?x affiliation ?y => ?x 'lectured at' ?y @ 0.7" rendering, the
  /// same syntax `ParseManualRules` accepts.
  std::string ToString() const;

  /// Structural sanity: non-empty sides, weight in [0,1], every LHS
  /// pattern has at least one constant or variable slot (trivially true)
  /// and the rule is not a no-op (lhs != rhs).
  Status Validate() const;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_RULE_H_
