#ifndef TRINIT_RELAX_RELATEDNESS_MINER_H_
#define TRINIT_RELAX_RELATEDNESS_MINER_H_

#include <string>

#include "relax/rule_set.h"

namespace trinit::relax {

/// Mines predicate-rewrite rules from *distributional relatedness* — the
/// paper's fourth rule source (§3): "statistical/semantic relatedness
/// measures (e.g. [ESA])".
///
/// Where the synonym miner demands exact argument-*pair* overlap (the
/// strongest signal, but sparse), this miner works from the weaker but
/// denser signal of shared argument *distributions*: two predicates are
/// related when the sets of subjects (and objects) they apply to have
/// high cosine similarity. E.g. `affiliation` and `memberOfInstitute`
/// rarely connect identical pairs, yet they range over the same people,
/// so one is a plausible (low-weight) relaxation of the other.
///
/// The emitted weight is `damping * cos(subjects) * cos(objects)`,
/// deliberately attenuated below the pair-overlap weights so that
/// distributional rules only surface answers when sharper rules found
/// nothing.
class RelatednessMiner : public RelaxationOperator {
 public:
  struct Options {
    double min_weight = 0.15;   ///< post-damping emission threshold
    double damping = 0.5;       ///< distributional evidence is weak
    size_t min_support = 3;     ///< min distinct subjects per predicate
    size_t max_rules_per_predicate = 6;
  };

  RelatednessMiner() : RelatednessMiner(Options()) {}
  explicit RelatednessMiner(Options options) : options_(options) {}

  std::string name() const override { return "relatedness-miner"; }
  Status Generate(const xkg::Xkg& xkg, RuleSet* rules) override;

 private:
  Options options_;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_RELATEDNESS_MINER_H_
