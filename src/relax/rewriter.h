#ifndef TRINIT_RELAX_REWRITER_H_
#define TRINIT_RELAX_REWRITER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "relax/rule_set.h"

namespace trinit::relax {

/// A query produced by applying a sequence of relaxation rules.
struct RewriteResult {
  query::Query query;
  double weight = 1.0;               ///< product of applied rule weights
  std::vector<const Rule*> applied;  ///< rules in application order
};

/// Applies relaxation rules to queries by unification.
///
/// Application semantics: the rule's LHS patterns are matched against an
/// injective subset of the query's patterns (order-insensitive),
/// unifying rule variables with whole query terms — a rule variable may
/// bind a query variable or a query constant; a rule constant only
/// matches an equal query constant. Matched patterns are removed and the
/// instantiated RHS patterns are appended. RHS-only rule variables (?z
/// in Figure 4 rules 1 and 3) become fresh query variables.
///
/// The enumeration below is what the *exhaustive* baseline processor
/// uses; the incremental top-k processor calls `ApplyRule` /
/// `EnumerateRewrites` on per-pattern sub-queries and opens them lazily
/// (paper §4: "invoking a relaxation only when it can contribute to the
/// top-k answers").
class Rewriter {
 public:
  struct Options {
    int max_depth = 2;          ///< max rule applications per rewrite chain
    double min_weight = 0.05;   ///< prune chains below this weight
    size_t max_rewrites = 512;  ///< safety cap on enumeration size
  };

  explicit Rewriter(const RuleSet& rules) : Rewriter(rules, Options()) {}
  Rewriter(const RuleSet& rules, Options options);

  /// Every distinct way `rule` can fire on `q` (may be empty).
  std::vector<RewriteResult> ApplyRule(const query::Query& q,
                                       const Rule& rule) const;

  /// Breadth-first enumeration of rewrites of `q`, including `q` itself
  /// (weight 1, empty chain) first. Deduplicates structurally identical
  /// rewrites keeping the maximum weight (the paper's max-over-
  /// derivations semantics); sorted by descending weight after the
  /// original.
  std::vector<RewriteResult> EnumerateRewrites(const query::Query& q) const;

  const Options& options() const { return options_; }
  const RuleSet& rules() const { return rules_; }

 private:
  const RuleSet& rules_;
  Options options_;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_REWRITER_H_
