#include "relax/bridge_miner.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace trinit::relax {
namespace {

query::Term PredicateTerm(const rdf::Dictionary& dict, rdf::TermId p) {
  if (dict.kind(p) == rdf::TermKind::kToken) {
    return query::Term::Token(std::string(dict.label(p)), p);
  }
  return query::Term::Resource(std::string(dict.label(p)), p);
}

}  // namespace

Status BridgeMiner::Generate(const xkg::Xkg& xkg, RuleSet* rules) {
  const rdf::GraphStats& stats = xkg.stats();
  const rdf::TripleStore& store = xkg.store();
  const rdf::Dictionary& dict = xkg.dict();

  for (rdf::TermId p : stats.predicates()) {
    const auto& p_args = stats.Args(p);
    if (p_args.size() < options_.min_overlap) continue;

    // Hop predicates reachable from p's objects.
    std::unordered_set<rdf::TermId> hop_candidates;
    for (const auto& [s, z] : p_args) {
      (void)s;
      for (rdf::TripleId id : store.Match(z, rdf::kNullTerm, rdf::kNullTerm)) {
        hop_candidates.insert(store.triple(id).p);
      }
    }

    std::vector<Rule> candidate_rules;
    for (rdf::TermId q : hop_candidates) {
      if (q == p) continue;  // p∘p expansions are rarely meaningful
      // compose(p,q), deduplicated.
      std::set<std::pair<rdf::TermId, rdf::TermId>> compose;
      bool aborted = false;
      for (const auto& [x, z] : p_args) {
        for (rdf::TripleId id : store.Match(z, q, rdf::kNullTerm)) {
          compose.emplace(x, store.triple(id).o);
          if (compose.size() > options_.max_compose_pairs) {
            aborted = true;
            break;
          }
        }
        if (aborted) break;
      }
      if (aborted || compose.empty()) continue;

      size_t shared = 0;
      for (const auto& pair : p_args) {
        if (compose.count(pair) > 0) ++shared;
      }
      if (shared < options_.min_overlap) continue;
      double w =
          static_cast<double>(shared) / static_cast<double>(compose.size());
      if (w < options_.min_weight) continue;
      if (w > 1.0) w = 1.0;

      Rule rule;
      rule.name = "exp:" + std::string(dict.label(p)) + "-via-" +
                  std::string(dict.label(q));
      rule.kind = RuleKind::kExpansion;
      rule.weight = w;
      query::Term x = query::Term::Variable("x");
      query::Term y = query::Term::Variable("y");
      query::Term z = query::Term::Variable("z");
      rule.lhs = {query::TriplePattern{x, PredicateTerm(dict, p), y}};
      rule.rhs = {query::TriplePattern{x, PredicateTerm(dict, p), z},
                  query::TriplePattern{z, PredicateTerm(dict, q), y}};
      candidate_rules.push_back(std::move(rule));
    }

    std::sort(candidate_rules.begin(), candidate_rules.end(),
              [](const Rule& a, const Rule& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.name < b.name;
              });
    if (candidate_rules.size() > options_.max_rules_per_predicate) {
      candidate_rules.resize(options_.max_rules_per_predicate);
    }
    for (Rule& r : candidate_rules) {
      TRINIT_RETURN_IF_ERROR(rules->Add(std::move(r)));
    }
  }
  return Status::Ok();
}

}  // namespace trinit::relax
