#ifndef TRINIT_RELAX_PARAPHRASE_OPERATOR_H_
#define TRINIT_RELAX_PARAPHRASE_OPERATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "relax/rule_set.h"
#include "util/result.h"

namespace trinit::relax {

/// Relaxation-rule source backed by a paraphrase repository — the
/// paper's third rule origin (§3): "relaxation rules can be ...
/// automatically obtained using ... paraphrase repositories (e.g.
/// PATTY, Biperpedia)".
///
/// A repository is a set of *clusters* of predicate expressions that
/// mean (roughly) the same relation. Each cluster member is either a
/// canonical KG predicate (bareword) or a token phrase (quoted). For
/// every ordered pair (a, b) in a cluster the operator emits
/// `?x a ?y => ?x b ?y` with the cluster's weight.
///
/// Repository text format, one cluster per line:
///
///   0.8: affiliation | 'works at' | 'is employed by'
///   0.7: bornIn | 'was born in' | 'is a native of'
///
/// Lines starting with '#' are comments. Unlike the miners, this source
/// needs no XKG evidence — it imports external lexical knowledge, so
/// rules are emitted even for vocabulary the graph has never seen
/// co-occur.
class ParaphraseOperator : public RelaxationOperator {
 public:
  /// A parsed cluster.
  struct Cluster {
    double weight = 0.5;
    std::vector<query::Term> members;  ///< resource or token terms
  };

  /// Parses repository text (see format above).
  static Result<std::vector<Cluster>> ParseRepository(
      std::string_view text);

  /// A small built-in repository for the academia domain (the
  /// paraphrase families the synthetic corpus uses).
  static const char* BuiltinRepository();

  explicit ParaphraseOperator(std::vector<Cluster> clusters)
      : clusters_(std::move(clusters)) {}

  /// Convenience: parse + construct; aborts the build on parse errors.
  static Result<ParaphraseOperator> FromText(std::string_view text);

  std::string name() const override { return "paraphrase-repository"; }
  Status Generate(const xkg::Xkg& xkg, RuleSet* rules) override;

  size_t cluster_count() const { return clusters_.size(); }

 private:
  std::vector<Cluster> clusters_;
};

}  // namespace trinit::relax

#endif  // TRINIT_RELAX_PARAPHRASE_OPERATOR_H_
