#include "relax/synonym_miner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/hash.h"

namespace trinit::relax {
namespace {

query::Term PredicateTerm(const rdf::Dictionary& dict, rdf::TermId p) {
  if (dict.kind(p) == rdf::TermKind::kToken) {
    return query::Term::Token(std::string(dict.label(p)), p);
  }
  return query::Term::Resource(std::string(dict.label(p)), p);
}

}  // namespace

Status SynonymMiner::Generate(const xkg::Xkg& xkg, RuleSet* rules) {
  const rdf::GraphStats& stats = xkg.stats();
  const rdf::Dictionary& dict = xkg.dict();

  // Invert args: (s,o) pair -> predicates connecting it. Co-occurrence
  // counting over this map gives |args(p1) ∩ args(p2)| for every pair of
  // predicates sharing at least one argument pair, without the O(P^2)
  // scan over unrelated predicates.
  std::unordered_map<uint64_t, std::vector<rdf::TermId>> pair_to_preds;
  for (rdf::TermId p : stats.predicates()) {
    for (const auto& [s, o] : stats.Args(p)) {
      uint64_t key = (static_cast<uint64_t>(s) << 32) | o;  // exact, no
                                                            // collisions
      pair_to_preds[key].push_back(p);
    }
  }

  // overlap[(p1,p2)] = |args(p1) ∩ args(p2)| for p1 != p2.
  std::map<std::pair<rdf::TermId, rdf::TermId>, size_t> overlap;
  for (const auto& [pair_hash, preds] : pair_to_preds) {
    (void)pair_hash;
    for (rdf::TermId p1 : preds) {
      for (rdf::TermId p2 : preds) {
        if (p1 != p2) ++overlap[{p1, p2}];
      }
    }
  }

  // Emit the heaviest rules per source predicate.
  std::unordered_map<rdf::TermId, std::vector<Rule>> per_predicate;
  for (const auto& [pair, shared] : overlap) {
    auto [p1, p2] = pair;
    if (shared < options_.min_overlap) continue;
    size_t args_p2 = stats.Args(p2).size();
    if (args_p2 == 0) continue;
    double w = static_cast<double>(shared) / static_cast<double>(args_p2);
    if (w < options_.min_weight) continue;
    if (w > 1.0) w = 1.0;

    Rule rule;
    rule.name = "syn:" + std::string(dict.label(p1)) + "->" +
                std::string(dict.label(p2));
    rule.kind = RuleKind::kSynonym;
    rule.weight = w;
    query::Term x = query::Term::Variable("x");
    query::Term y = query::Term::Variable("y");
    rule.lhs = {query::TriplePattern{x, PredicateTerm(dict, p1), y}};
    rule.rhs = {query::TriplePattern{x, PredicateTerm(dict, p2), y}};
    per_predicate[p1].push_back(std::move(rule));
  }

  for (auto& [p1, candidate_rules] : per_predicate) {
    (void)p1;
    std::sort(candidate_rules.begin(), candidate_rules.end(),
              [](const Rule& a, const Rule& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.name < b.name;
              });
    if (candidate_rules.size() > options_.max_rules_per_predicate) {
      candidate_rules.resize(options_.max_rules_per_predicate);
    }
    for (Rule& r : candidate_rules) {
      TRINIT_RETURN_IF_ERROR(rules->Add(std::move(r)));
    }
  }
  return Status::Ok();
}

}  // namespace trinit::relax
