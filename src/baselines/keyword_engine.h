#ifndef TRINIT_BASELINES_KEYWORD_ENGINE_H_
#define TRINIT_BASELINES_KEYWORD_ENGINE_H_

#include <string>

#include "query/query.h"
#include "scoring/lm_scorer.h"
#include "topk/topk_processor.h"
#include "xkg/xkg.h"

namespace trinit::baselines {

/// Structure-less entity-search baseline (SLQ/entity-search flavour,
/// paper §6): the query's join structure is thrown away and every
/// constant becomes a soft keyword.
///
/// Scoring: an entity is credited for every triple that mentions it
/// together with any query constant (token constants match softly via
/// the phrase index; the triple's LM emission probability weights the
/// credit). The best-credited entities become bindings of the *first*
/// projection variable; other variables stay unbound.
///
/// This is the "next best state-of-the-art" stand-in for bench E1: it
/// handles single-hop look-ups respectably but cannot express joins —
/// exactly the gap the paper's evaluation exposes (NDCG@5 0.419 vs
/// 0.775).
class KeywordEngine {
 public:
  KeywordEngine(const xkg::Xkg& xkg, scoring::ScorerOptions scorer_options);

  Result<topk::TopKResult> Answer(const query::Query& q, int k) const;

 private:
  const xkg::Xkg& xkg_;
  scoring::LmScorer scorer_;
};

}  // namespace trinit::baselines

#endif  // TRINIT_BASELINES_KEYWORD_ENGINE_H_
