#ifndef TRINIT_BASELINES_KEYWORD_ENGINE_H_
#define TRINIT_BASELINES_KEYWORD_ENGINE_H_

#include <string>

#include "core/engine.h"
#include "query/query.h"
#include "scoring/lm_scorer.h"
#include "topk/topk_processor.h"
#include "xkg/xkg.h"

namespace trinit::baselines {

/// Structure-less entity-search baseline (SLQ/entity-search flavour,
/// paper §6): the query's join structure is thrown away and every
/// constant becomes a soft keyword.
///
/// Scoring: an entity is credited for every triple that mentions it
/// together with any query constant (token constants match softly via
/// the phrase index; the triple's LM emission probability weights the
/// credit). The best-credited entities become bindings of the *first*
/// projection variable; other variables stay unbound.
///
/// This is the "next best state-of-the-art" stand-in for bench E1: it
/// handles single-hop look-ups respectably but cannot express joins —
/// exactly the gap the paper's evaluation exposes (NDCG@5 0.419 vs
/// 0.775).
class KeywordEngine : public core::Engine {
 public:
  KeywordEngine(const xkg::Xkg& xkg, scoring::ScorerOptions scorer_options);

  std::string_view name() const override { return "keyword"; }
  const xkg::Xkg& xkg() const override { return xkg_; }

  /// Executes one request with keyword semantics. Of the processor
  /// overrides only `k` is meaningful here (there is no join and no
  /// relaxation to configure); scorer overrides apply in full. The
  /// budget caps (`timeout_ms`, `max_items_budget`) are likewise not
  /// enforced — the keyword scan has no incremental streams to cut
  /// short — so `deadline_hit` is always false from this engine.
  Result<core::QueryResponse> Execute(
      const core::QueryRequest& request) const override;

  /// Shim over `Execute` for already-parsed queries.
  Result<topk::TopKResult> Answer(const query::Query& q, int k) const;

 private:
  Result<topk::TopKResult> AnswerWith(const scoring::LmScorer& scorer,
                                      const query::Query& q, int k) const;

  const xkg::Xkg& xkg_;
  scoring::LmScorer scorer_;
};

}  // namespace trinit::baselines

#endif  // TRINIT_BASELINES_KEYWORD_ENGINE_H_
