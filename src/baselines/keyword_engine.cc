#include "baselines/keyword_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "query/parser.h"
#include "util/timer.h"

namespace trinit::baselines {

KeywordEngine::KeywordEngine(const xkg::Xkg& xkg,
                             scoring::ScorerOptions scorer_options)
    : xkg_(xkg), scorer_(xkg, scorer_options) {}

Result<core::QueryResponse> KeywordEngine::Execute(
    const core::QueryRequest& request) const {
  WallTimer total;
  core::QueryResponse response;
  core::ResolvedOptions resolved = core::ResolveRequestOptions(
      scorer_.options(), topk::ProcessorOptions{}, request);

  WallTimer stage;
  query::Query parsed_storage;
  TRINIT_ASSIGN_OR_RETURN(
      const query::Query* q,
      core::ResolveRequestQuery(request, xkg_.dict(), &parsed_storage));
  if (request.trace) {
    response.stages.push_back({"parse", stage.ElapsedMillis()});
  }

  stage.Reset();
  topk::TopKResult computed;
  if (request.scorer.has_value()) {
    // LmScorer is a thin view over the XKG; building one per request is
    // how the scorer override stays engine-state-free.
    scoring::LmScorer scorer(xkg_, resolved.scorer);
    TRINIT_ASSIGN_OR_RETURN(computed,
                            AnswerWith(scorer, *q, resolved.processor.k));
  } else {
    TRINIT_ASSIGN_OR_RETURN(computed,
                            AnswerWith(scorer_, *q, resolved.processor.k));
  }
  response.AdoptResult(std::move(computed));
  if (request.trace) {
    response.stages.push_back({"process", stage.ElapsedMillis()});
    core::AppendRunStatsTrace(response.stats, &response);
  }

  response.effective_scorer = resolved.scorer;
  response.effective_processor = resolved.processor;
  response.wall_ms = total.ElapsedMillis();
  return response;
}

Result<topk::TopKResult> KeywordEngine::Answer(const query::Query& q,
                                               int k) const {
  core::QueryRequest request = core::QueryRequest::Parsed(q, k);
  TRINIT_ASSIGN_OR_RETURN(core::QueryResponse response, Execute(request));
  return response.ReleaseResult();  // no cache shares the body: a move
}

Result<topk::TopKResult> KeywordEngine::AnswerWith(
    const scoring::LmScorer& scorer, const query::Query& q, int k) const {
  TRINIT_RETURN_IF_ERROR(q.Validate());
  query::Query canonical(q.patterns(), q.EffectiveProjection());
  canonical.ResolveAgainst(xkg_.dict());

  // Keyword set: every constant, with token constants expanded softly.
  std::unordered_map<rdf::TermId, double> keywords;  // term -> weight
  for (const query::TriplePattern& pattern : canonical.patterns()) {
    for (const query::Term* slot : {&pattern.s, &pattern.p, &pattern.o}) {
      if (slot->is_variable()) continue;
      if (slot->kind == query::Term::Kind::kToken) {
        for (const auto& cand : xkg_.phrase_index().FindSimilar(
                 slot->text, scorer.options().token_match_threshold)) {
          double& w = keywords[cand.term];
          w = std::max(w, cand.similarity);
        }
      } else if (slot->id != rdf::kNullTerm) {
        keywords[slot->id] = 1.0;
      }
    }
  }

  topk::TopKResult result;
  result.projection = canonical.projection();
  if (keywords.empty()) return result;

  // Credit entities co-occurring with keywords.
  std::unordered_map<rdf::TermId, double> credit;
  std::unordered_map<rdf::TermId, std::vector<rdf::TripleId>> evidence;
  for (const auto& [term, weight] : keywords) {
    // Triples mentioning the keyword in any slot.
    for (auto span : {xkg_.store().Match(term, rdf::kNullTerm, rdf::kNullTerm),
                      xkg_.store().Match(rdf::kNullTerm, term, rdf::kNullTerm),
                      xkg_.store().Match(rdf::kNullTerm, rdf::kNullTerm,
                                         term)}) {
      uint64_t mass = scorer.PatternMass(span);
      for (rdf::TripleId id : span) {
        const rdf::Triple& t = xkg_.store().triple(id);
        double emission =
            std::exp(scorer.ScoreTriple(t, mass)) * weight;
        for (rdf::TermId other : {t.s, t.o}) {
          if (other == term) continue;
          if (keywords.count(other) > 0) continue;
          credit[other] += emission;
          evidence[other].push_back(id);
        }
      }
    }
  }

  std::vector<std::pair<rdf::TermId, double>> ranked(credit.begin(),
                                                     credit.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > static_cast<size_t>(k)) ranked.resize(k);

  size_t proj_size = result.projection.size();
  for (const auto& [entity, score] : ranked) {
    topk::Answer answer;
    answer.binding = query::Binding(proj_size);
    answer.binding.Bind(0, entity);  // only the first variable is bound
    answer.score = std::log(std::max(score, 1e-300));
    topk::DerivationStep step;
    step.pattern_index = 0;
    step.matched_form = "(structure-less keyword match)";
    step.triples = evidence[entity];
    step.log_score = answer.score;
    answer.derivation.push_back(std::move(step));
    result.answers.push_back(std::move(answer));
  }
  result.stats.items_pulled = credit.size();
  return result;
}

}  // namespace trinit::baselines
