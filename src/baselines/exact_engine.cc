#include "baselines/exact_engine.h"

#include "query/parser.h"
#include "util/timer.h"

namespace trinit::baselines {

ExactEngine::ExactEngine(const xkg::Xkg& xkg,
                         scoring::ScorerOptions scorer_options,
                         int default_k)
    : xkg_(xkg),
      scorer_options_(scorer_options),
      default_k_(default_k) {}

Result<core::QueryResponse> ExactEngine::Execute(
    const core::QueryRequest& request) const {
  WallTimer total;
  core::QueryResponse response;

  topk::ProcessorOptions engine_defaults;
  engine_defaults.k = default_k_;
  core::ResolvedOptions resolved = core::ResolveRequestOptions(
      scorer_options_, engine_defaults, request);
  // Exact semantics are the point of this baseline: not overridable.
  resolved.processor.enable_relaxation = false;

  WallTimer stage;
  query::Query parsed_storage;
  TRINIT_ASSIGN_OR_RETURN(
      const query::Query* q,
      core::ResolveRequestQuery(request, xkg_.dict(), &parsed_storage));
  if (request.trace) {
    response.stages.push_back({"parse", stage.ElapsedMillis()});
  }

  stage.Reset();
  topk::TopKProcessor processor(xkg_, empty_rules_, resolved.scorer,
                                resolved.processor);
  TRINIT_ASSIGN_OR_RETURN(topk::TopKResult computed, processor.Answer(*q));
  response.AdoptResult(std::move(computed));
  if (request.trace) {
    response.stages.push_back({"process", stage.ElapsedMillis()});
    core::AppendRunStatsTrace(response.stats, &response);
  }

  response.effective_scorer = resolved.scorer;
  response.effective_processor = resolved.processor;
  response.deadline_hit = response.stats.deadline_hit;
  response.wall_ms = total.ElapsedMillis();
  return response;
}

Result<topk::TopKResult> ExactEngine::Answer(const query::Query& q,
                                             int k) const {
  core::QueryRequest request = core::QueryRequest::Parsed(q, k);
  TRINIT_ASSIGN_OR_RETURN(core::QueryResponse response, Execute(request));
  return response.ReleaseResult();  // no cache shares the body: a move
}

}  // namespace trinit::baselines
