#include "baselines/exact_engine.h"

namespace trinit::baselines {

ExactEngine::ExactEngine(const xkg::Xkg& xkg,
                         scoring::ScorerOptions scorer_options,
                         int default_k)
    : xkg_(xkg),
      scorer_options_(scorer_options),
      default_k_(default_k) {}

Result<topk::TopKResult> ExactEngine::Answer(const query::Query& q,
                                             int k) const {
  topk::ProcessorOptions options;
  options.k = k > 0 ? k : default_k_;
  options.enable_relaxation = false;
  topk::TopKProcessor processor(xkg_, empty_rules_, scorer_options_,
                                options);
  return processor.Answer(q);
}

}  // namespace trinit::baselines
