#ifndef TRINIT_BASELINES_EXACT_ENGINE_H_
#define TRINIT_BASELINES_EXACT_ENGINE_H_

#include <string>

#include "core/engine.h"
#include "relax/rule_set.h"
#include "topk/topk_processor.h"

namespace trinit::baselines {

/// Strict conjunctive-match engine: evaluates the query exactly as
/// written (no relaxation rules, no whole-query variants), ranked by the
/// same language-model score. This models the classic SPARQL-endpoint
/// experience the paper's users A-C suffer under. Run it against a
/// KG-only Xkg for the "plain KG" condition or the full Xkg for the
/// "XKG without relaxation" ablation.
class ExactEngine : public core::Engine {
 public:
  ExactEngine(const xkg::Xkg& xkg, scoring::ScorerOptions scorer_options,
              int default_k = 10);

  std::string_view name() const override { return "exact"; }
  const xkg::Xkg& xkg() const override { return xkg_; }

  /// Executes one request with exact semantics: per-request scorer and
  /// processor overrides apply, but relaxation stays off — that is what
  /// makes this engine this baseline.
  Result<core::QueryResponse> Execute(
      const core::QueryRequest& request) const override;

  /// Evaluates `q` with the engine's exact semantics (shim over
  /// `Execute`).
  Result<topk::TopKResult> Answer(const query::Query& q, int k) const;

 private:
  const xkg::Xkg& xkg_;
  relax::RuleSet empty_rules_;
  scoring::ScorerOptions scorer_options_;
  int default_k_;
};

}  // namespace trinit::baselines

#endif  // TRINIT_BASELINES_EXACT_ENGINE_H_
