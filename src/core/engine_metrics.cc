#include "core/engine_metrics.h"

#include <vector>

namespace trinit::core {
namespace {

/// Request latencies from sub-millisecond cache hits up to multi-second
/// stragglers; p50/p95/p99 land inside the finite range on every bench
/// world we serve.
const std::vector<double> kLatencyBoundsMs = {0.05, 0.1, 0.25, 0.5,  1.0,
                                              2.5,  5.0, 10.0, 25.0, 50.0,
                                              100.0, 250.0, 500.0, 1000.0};

/// Sort latency of one first-touch score-shape build (smaller worlds
/// sort in microseconds; sharded builds of big worlds take longer).
const std::vector<double> kSortBoundsMs = {0.01, 0.05, 0.1, 0.5, 1.0,
                                           5.0,  10.0, 50.0, 100.0};

/// Items pulled by one request: powers of four from "answered from the
/// very top of the lists" to "drained a large rewrite space".
const std::vector<double> kPullBounds = {0, 4,    16,   64,   256,
                                         1024, 4096, 16384, 65536};

/// |log2| cardinality error per plan step; 0.5 = sqrt(2) off,
/// 10 = three orders of magnitude.
const std::vector<double> kCardinalityErrorBounds = {0.5, 1, 2, 3, 4,
                                                     6,   8, 10};

/// Hottest-shard share of a scattered request's pulls, in [0, 1].
const std::vector<double> kShareBounds = {0.25, 0.375, 0.5,  0.625,
                                          0.75, 0.875, 1.0};

}  // namespace

EngineMetrics EngineMetrics::Register(obs::MetricsRegistry& registry) {
  EngineMetrics m;

  m.requests = registry.RegisterCounter(
      "trinit_engine_requests_total", "Execute calls, any outcome.");
  m.parse_errors = registry.RegisterCounter(
      "trinit_engine_parse_errors_total",
      "Requests rejected with a parse error.");
  m.deadline_hits = registry.RegisterCounter(
      "trinit_engine_deadline_hits_total",
      "Responses truncated by the request deadline.");
  m.active_requests = registry.RegisterGauge(
      "trinit_engine_active_requests", "Execute calls in flight.");
  m.concurrent_peak = registry.RegisterGauge(
      "trinit_engine_concurrent_requests_peak",
      "High-water mark of concurrent Execute calls.");
  m.request_ms = registry.RegisterHistogram(
      "trinit_engine_request_ms", "End-to-end Execute latency (ms).",
      kLatencyBoundsMs);

  m.answer_hits = registry.RegisterCounter(
      "trinit_serve_answer_hits_total", "Answer-cache hits.");
  m.answer_misses = registry.RegisterCounter(
      "trinit_serve_answer_misses_total", "Answer-cache misses.");
  m.answer_insertions = registry.RegisterCounter(
      "trinit_serve_answer_insertions_total", "Answer-cache insertions.");
  m.answer_evictions = registry.RegisterCounter(
      "trinit_serve_answer_evictions_total", "Answer-cache LRU evictions.");
  m.invalidations = registry.RegisterCounter(
      "trinit_serve_invalidations_total",
      "Cache entries dropped as generation-stale.");
  m.body_shares = registry.RegisterCounter(
      "trinit_serve_answer_body_shares_total",
      "Responses that shared an immutable cached result body.");

  m.plan_hits = registry.RegisterCounter(
      "trinit_plan_cache_hits_total", "Plan-cache hits.");
  m.plan_misses = registry.RegisterCounter(
      "trinit_plan_cache_misses_total", "Plan-cache misses (fresh compiles).");
  m.plan_invalidated = registry.RegisterCounter(
      "trinit_plan_cache_invalidated_total",
      "Plan-cache entries swept as generation-stale.");
  m.plan_cardinality_error = registry.RegisterHistogram(
      "trinit_plan_cardinality_log2_error",
      "Per plan step: |log2((pulled+1)/(estimated+1))|.",
      kCardinalityErrorBounds);

  m.items_pulled = registry.RegisterCounter(
      "trinit_topk_items_pulled_total", "Items the rank-join consumed.");
  m.items_decoded = registry.RegisterCounter(
      "trinit_topk_items_decoded_total",
      "Index-list entries fetched and scored.");
  m.items_skipped = registry.RegisterCounter(
      "trinit_topk_items_skipped_total",
      "Known index entries never decoded (early termination).");
  m.combinations_tried = registry.RegisterCounter(
      "trinit_topk_combinations_tried_total",
      "Candidate join combinations examined.");
  m.partition_probes = registry.RegisterCounter(
      "trinit_topk_partition_probes_total",
      "Hash-narrowed seen-state probes.");
  m.pulls_per_request = registry.RegisterHistogram(
      "trinit_topk_pulls_per_request",
      "Items pulled by one request (early-termination depth).",
      kPullBounds);

  m.shape_builds = registry.RegisterCounter(
      "trinit_rdf_score_shape_builds_total",
      "First-touch score-shape sorts.");
  m.shape_sort_ms = registry.RegisterHistogram(
      "trinit_rdf_score_shape_sort_ms",
      "First-touch score-shape sort latency (ms).", kSortBoundsMs);
  m.scatter_requests = registry.RegisterCounter(
      "trinit_shard_scatter_requests_total",
      "Requests scattered across XKG shards.");
  m.shard_hottest_share = registry.RegisterHistogram(
      "trinit_shard_hottest_share",
      "Hottest shard's fraction of a scattered request's pulls.",
      kShareBounds);

  m.open_ms = registry.RegisterHistogram(
      "trinit_storage_open_ms", "Snapshot open latency (ms).",
      kLatencyBoundsMs);
  m.snapshot_bytes = registry.RegisterGauge(
      "trinit_storage_snapshot_bytes", "Last-opened snapshot file size.");
  m.bytes_touched_open = registry.RegisterGauge(
      "trinit_storage_bytes_touched_at_open",
      "Distinct file bytes read during the last snapshot open.");
  m.bytes_prefetched = registry.RegisterGauge(
      "trinit_storage_bytes_prefetched",
      "Bytes covered by readahead hints at the last open.");
  m.resident_bytes = registry.RegisterGauge(
      "trinit_storage_resident_bytes",
      "Private bytes of the loaded serving state.");
  m.mapped = registry.RegisterGauge(
      "trinit_storage_mapped", "1 when serving through an mmap view.");

  m.slowlog_records = registry.RegisterCounter(
      "trinit_slowlog_records_total", "Requests written to the slow log.");

  return m;
}

}  // namespace trinit::core
