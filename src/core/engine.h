#ifndef TRINIT_CORE_ENGINE_H_
#define TRINIT_CORE_ENGINE_H_

#include <string_view>

#include "core/request.h"
#include "util/result.h"
#include "xkg/xkg.h"

namespace trinit::core {

/// The common front door of every TriniT query engine — the full system
/// (`Trinit`), the strict conjunctive baseline (`baselines::ExactEngine`)
/// and the structure-less keyword baseline (`baselines::KeywordEngine`).
/// `eval::Runner` and the bench harnesses drive all of them through this
/// interface, so a system under test is just a pointer plus a display
/// name.
///
/// Contract: `Execute` is `const` and safe to call concurrently from
/// many threads over one engine, provided no mutating member (rule or KG
/// edits) runs at the same time. All per-request state lives in the
/// `QueryRequest` / local stack. Cross-call state is allowed only when
/// it is internally synchronized and semantically transparent — a cached
/// response must be identical to what uncached execution would return
/// (see `serve::ServingCache`, which `core::Trinit` consults and reports
/// through `QueryResponse::serving`).
class Engine {
 public:
  virtual ~Engine();

  /// Stable implementation name ("TriniT", "exact", "keyword") — display
  /// labels for reports belong to the caller, not here.
  virtual std::string_view name() const = 0;

  /// The knowledge graph this engine answers over (used e.g. to turn
  /// result term ids back into labels).
  virtual const xkg::Xkg& xkg() const = 0;

  /// Executes one request: resolves effective options (engine defaults +
  /// request overrides), parses `request.text` against the engine's
  /// dictionary unless a parsed query was supplied, runs the engine's
  /// retrieval semantics, and reports the top-k with timings.
  virtual Result<QueryResponse> Execute(const QueryRequest& request) const = 0;
};

}  // namespace trinit::core

#endif  // TRINIT_CORE_ENGINE_H_
