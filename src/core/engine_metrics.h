#ifndef TRINIT_CORE_ENGINE_METRICS_H_
#define TRINIT_CORE_ENGINE_METRICS_H_

#include "obs/metrics.h"

/// The engine's complete metric catalog (PR 10): one handle per metric,
/// registered in `Register` with the names, types, and help strings
/// documented in docs/OBSERVABILITY.md. `core::Trinit` owns one of
/// these by value; when `ObsOptions::metrics` is false the struct is
/// simply left default-constructed (every handle unbound, every
/// increment site a no-op).
namespace trinit::core {

struct EngineMetrics {
  // ---------------------------------------------------------- engine
  obs::Counter requests;        ///< Execute calls, any outcome
  obs::Counter parse_errors;    ///< requests rejected at parse
  obs::Counter deadline_hits;   ///< responses truncated by deadline
  obs::Gauge active_requests;   ///< Execute calls in flight now
  obs::Gauge concurrent_peak;   ///< high-water mark of the above
  obs::Histogram request_ms;    ///< end-to-end Execute latency

  // ----------------------------------------------------------- serve
  obs::Counter answer_hits;
  obs::Counter answer_misses;
  obs::Counter answer_insertions;
  obs::Counter answer_evictions;
  obs::Counter invalidations;  ///< entries dropped as generation-stale
  obs::Counter body_shares;    ///< responses sharing a cached body

  // ------------------------------------------------------------ plan
  obs::Counter plan_hits;
  obs::Counter plan_misses;
  obs::Counter plan_invalidated;
  /// |log2((pulled+1)/(estimated+1))| per executed plan step — the
  /// estimated-vs-actual error distribution the future planner
  /// calibration loop (ROADMAP) reads. 0 = perfect estimate; each unit
  /// is one power of two off.
  obs::Histogram plan_cardinality_error;

  // ------------------------------------------------------------ topk
  obs::Counter items_pulled;
  obs::Counter items_decoded;
  obs::Counter items_skipped;  ///< early termination: known, not decoded
  obs::Counter combinations_tried;
  obs::Counter partition_probes;
  obs::Histogram pulls_per_request;  ///< early-termination depth

  // ----------------------------------------------------- rdf/sharded
  obs::Counter shape_builds;      ///< first-touch score-shape sorts
  obs::Histogram shape_sort_ms;   ///< ... their latency
  obs::Counter scatter_requests;  ///< requests scattered across shards
  /// Hottest shard's fraction of a scattered request's pulls
  /// (1/shards = perfectly balanced, 1.0 = one shard did everything).
  obs::Histogram shard_hottest_share;

  // --------------------------------------------------------- storage
  obs::Histogram open_ms;         ///< snapshot open latency
  obs::Gauge snapshot_bytes;      ///< last-opened snapshot file size
  obs::Gauge bytes_touched_open;  ///< bytes read during that open
  obs::Gauge bytes_prefetched;    ///< bytes covered by readahead hints
  obs::Gauge resident_bytes;      ///< private bytes of the loaded state
  obs::Gauge mapped;              ///< 1 = serving through an mmap view

  // --------------------------------------------------------- slowlog
  obs::Counter slowlog_records;  ///< requests written to the slow log

  /// Registers the full catalog against `registry` and returns the
  /// bound handles. Idempotent (registration is by name).
  static EngineMetrics Register(obs::MetricsRegistry& registry);
};

}  // namespace trinit::core

#endif  // TRINIT_CORE_ENGINE_METRICS_H_
