#include "core/engine.h"

namespace trinit::core {

Engine::~Engine() = default;

}  // namespace trinit::core
