#include "core/request.h"

#include <algorithm>

#include "query/parser.h"

namespace trinit::core {

QueryRequest QueryRequest::Text(std::string text, int k) {
  QueryRequest request;
  request.text = std::move(text);
  request.k = k;
  return request;
}

QueryRequest QueryRequest::Parsed(query::Query query, int k) {
  QueryRequest request;
  request.query = std::move(query);
  request.k = k;
  return request;
}

void QueryResponse::AdoptResult(topk::TopKResult result) {
  stats = result.stats;
  // The pointee is created non-const (and viewed through a
  // shared_ptr<const ...>) so ReleaseResult may legally cast away the
  // const and move out of a uniquely-owned body.
  result_body = std::make_shared<topk::TopKResult>(std::move(result));
}

topk::TopKResult QueryResponse::ReleaseResult() {
  topk::TopKResult out;
  if (result_body == nullptr) return out;  // no body (failed/released)
  if (result_body.use_count() == 1) {
    // Sole owner (no cache entry aliases it): stealing the body is safe
    // and legal — every body is allocated non-const (see AdoptResult;
    // cache hits alias bodies that were stored through the same path).
    out = std::move(const_cast<topk::TopKResult&>(*result_body));
  } else {
    out = *result_body;
  }
  out.stats = stats;
  result_body.reset();
  return out;
}

ResolvedOptions ResolveRequestOptions(
    const scoring::ScorerOptions& engine_scorer,
    const topk::ProcessorOptions& engine_processor,
    const QueryRequest& request) {
  ResolvedOptions resolved;
  resolved.scorer = request.scorer.value_or(engine_scorer);
  resolved.processor = request.processor.value_or(engine_processor);
  if (request.k > 0) resolved.processor.k = request.k;
  if (request.enable_relaxation.has_value()) {
    resolved.processor.enable_relaxation = *request.enable_relaxation;
  }
  if (request.timeout_ms > 0) {
    resolved.processor.deadline_ms = request.timeout_ms;
  }
  if (request.max_items_budget > 0) {
    resolved.processor.join.max_pulls = request.max_items_budget;
  }
  return resolved;
}

Result<const query::Query*> ResolveRequestQuery(
    const QueryRequest& request, const rdf::Dictionary& dict,
    query::Query* storage) {
  if (request.query.has_value()) return &*request.query;
  TRINIT_ASSIGN_OR_RETURN(*storage,
                          query::Parser::Parse(request.text, &dict));
  return storage;
}

void AppendRunStatsCounters(
    const topk::TopKResult::RunStats& stats,
    std::vector<std::pair<std::string, double>>* counters) {
  auto add = [counters](const char* name, double value) {
    counters->emplace_back(name, value);
  };
  add("query_variants_total", static_cast<double>(stats.query_variants_total));
  add("query_variants_evaluated",
      static_cast<double>(stats.query_variants_evaluated));
  add("alternatives_total", static_cast<double>(stats.alternatives_total));
  add("alternatives_opened", static_cast<double>(stats.alternatives_opened));
  add("items_pulled", static_cast<double>(stats.items_pulled));
  add("items_decoded", static_cast<double>(stats.items_decoded));
  add("items_skipped", static_cast<double>(stats.items_skipped));
  add("combinations_tried", static_cast<double>(stats.combinations_tried));
  add("combinations_emitted",
      static_cast<double>(stats.combinations_emitted));
  add("partition_probes", static_cast<double>(stats.partition_probes));
  add("partition_fallbacks",
      static_cast<double>(stats.partition_fallbacks));
  add("plan_cache_hits", static_cast<double>(stats.plan_cache_hits));
  add("plan_cache_misses", static_cast<double>(stats.plan_cache_misses));
  add("deadline_hit", stats.deadline_hit ? 1.0 : 0.0);
  // Scatter-gather balance, emitted *uniformly* (PR 10): an unsharded
  // run is one shard that pulled everything, so the key set of a trace
  // is identical at any shard count. (Pre-PR-10 these two keys appeared
  // only for sharded runs.)
  if (stats.per_shard_pulled.size() > 1) {
    add("shards", static_cast<double>(stats.per_shard_pulled.size()));
    size_t max_pulled = 0;
    for (size_t pulled : stats.per_shard_pulled) {
      max_pulled = std::max(max_pulled, pulled);
    }
    add("shard_pulls_max", static_cast<double>(max_pulled));
  } else {
    add("shards", 1.0);
    add("shard_pulls_max", static_cast<double>(stats.items_pulled));
  }
}

void AppendServingStatsCounters(
    const ServingStats& s,
    std::vector<std::pair<std::string, double>>* counters) {
  auto add = [counters](const char* name, double value) {
    counters->emplace_back(name, value);
  };
  add("serving_answer_hit", s.answer_hit ? 1.0 : 0.0);
  add("serving_generation", static_cast<double>(s.generation));
  add("serving_answer_hits", static_cast<double>(s.answer_hits));
  add("serving_answer_misses", static_cast<double>(s.answer_misses));
  add("serving_answer_evictions", static_cast<double>(s.answer_evictions));
  add("serving_plan_hits", static_cast<double>(s.plan_hits));
  add("serving_plan_misses", static_cast<double>(s.plan_misses));
  add("serving_plan_invalidated",
      static_cast<double>(s.plan_invalidated));
}

namespace {

void AppendPairsToResponse(
    const std::vector<std::pair<std::string, double>>& pairs,
    QueryResponse* response) {
  for (const auto& [name, value] : pairs) {
    response->counters.push_back({name, value});
  }
}

}  // namespace

void AppendRunStatsTrace(const topk::TopKResult::RunStats& stats,
                         QueryResponse* response) {
  std::vector<std::pair<std::string, double>> pairs;
  AppendRunStatsCounters(stats, &pairs);
  AppendPairsToResponse(pairs, response);
}

void AppendServingStatsTrace(QueryResponse* response) {
  std::vector<std::pair<std::string, double>> pairs;
  AppendServingStatsCounters(response->serving, &pairs);
  AppendPairsToResponse(pairs, response);
}

}  // namespace trinit::core
