#ifndef TRINIT_CORE_TRINIT_H_
#define TRINIT_CORE_TRINIT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "explain/explanation.h"
#include "openie/pipeline.h"
#include "relax/bridge_miner.h"
#include "relax/inversion_miner.h"
#include "relax/synonym_miner.h"
#include "suggest/autocomplete.h"
#include "suggest/suggester.h"
#include "synth/corpus_generator.h"
#include "topk/topk_processor.h"
#include "util/result.h"

namespace trinit::core {

/// Everything tunable about a TriniT instance.
struct TrinitOptions {
  scoring::ScorerOptions scorer;
  topk::ProcessorOptions processor;

  /// Which mined rule families to enable (ablation bench A1 toggles
  /// these).
  bool mine_synonyms = true;
  bool mine_inversions = true;
  bool mine_expansions = true;
  relax::SynonymMiner::Options synonym_options;
  relax::InversionMiner::Options inversion_options;
  relax::BridgeMiner::Options bridge_options;
};

/// The TriniT engine — the system of the paper, end to end: an extended
/// knowledge graph, a relaxation rule set (mined + manual + plugged-in
/// operators), the incremental top-k processor, answer explanation, and
/// query suggestion.
class Trinit {
 public:
  /// Statistics of a FromWorld build.
  struct BuildReport {
    size_t kg_triples = 0;
    size_t extraction_triples = 0;
    size_t corpus_documents = 0;
    size_t corpus_sentences = 0;
    size_t extractions = 0;
    size_t rules_mined = 0;
  };

  Trinit(Trinit&&) = default;
  Trinit& operator=(Trinit&&) = default;

  /// Opens an engine over an existing XKG; mines relaxation rules from
  /// it per `options`.
  static Result<Trinit> Open(xkg::Xkg xkg, TrinitOptions options = {});

  /// Full reproduction pipeline: generate the synthetic world's KG,
  /// verbalize it (plus held-out facts) into a corpus, run Open IE +
  /// linking, build the XKG, mine rules.
  static Result<Trinit> FromWorld(const synth::World& world,
                                  TrinitOptions options = {},
                                  BuildReport* report = nullptr);

  /// Adds user-defined relaxation rules (demo §5), in the
  /// `ParseManualRules` syntax.
  Status AddManualRules(std::string_view text);

  /// Extends the knowledge graph with additional facts — the demo's
  /// "allows users to extend the KG to make up for missing knowledge"
  /// (paper §1). The XKG is rebuilt (O(n log n)); mined rules are *not*
  /// re-mined automatically (call the miners again if the additions are
  /// large). Format: one fact per line, `Subject predicate Object`, in
  /// query term syntax (quoted tokens allowed in any slot).
  Status ExtendKg(std::string_view facts_text);

  /// Runs a plugged-in relaxation operator over the XKG (paper §3's
  /// operator API) and absorbs its rules.
  Status RunOperator(relax::RelaxationOperator& op);

  /// Parses and answers a query.
  Result<topk::TopKResult> Query(std::string_view text, int k = 10) const;

  /// Answers an already-built query.
  Result<topk::TopKResult> Answer(const query::Query& q, int k = 10) const;

  /// Structured explanation of `result.answers[rank]` (demo §5).
  explain::Explanation Explain(const topk::TopKResult& result,
                               size_t rank) const;

  /// Query-reformulation suggestions for a query and its answers
  /// (demo §5).
  std::vector<suggest::Suggestion> Suggest(
      const query::Query& q, const topk::TopKResult& result) const;

  /// Renders `result.answers[rank]`'s projection binding as text.
  std::string RenderAnswer(const topk::TopKResult& result,
                           size_t rank) const;

  /// Prefix auto-completion over the XKG vocabulary (demo §5).
  const suggest::Autocomplete& autocomplete() const {
    return *autocomplete_;
  }

  const xkg::Xkg& xkg() const { return *xkg_; }
  const relax::RuleSet& rules() const { return rules_; }
  const TrinitOptions& options() const { return options_; }

 private:
  Trinit(xkg::Xkg xkg, TrinitOptions options);

  std::unique_ptr<xkg::Xkg> xkg_;  // stable address for sub-components
  TrinitOptions options_;
  relax::RuleSet rules_;
  std::unique_ptr<suggest::Suggester> suggester_;
  std::unique_ptr<suggest::Autocomplete> autocomplete_;
  std::unique_ptr<explain::ExplanationBuilder> explainer_;
};

}  // namespace trinit::core

#endif  // TRINIT_CORE_TRINIT_H_
