#ifndef TRINIT_CORE_TRINIT_H_
#define TRINIT_CORE_TRINIT_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/engine_metrics.h"
#include "core/request.h"
#include "explain/explanation.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "openie/pipeline.h"
#include "relax/bridge_miner.h"
#include "relax/inversion_miner.h"
#include "relax/synonym_miner.h"
#include "serve/serving_cache.h"
#include "storage/snapshot.h"
#include "suggest/autocomplete.h"
#include "suggest/suggester.h"
#include "synth/corpus_generator.h"
#include "topk/topk_processor.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace trinit::core {

/// Everything tunable about a TriniT instance. These are *defaults*: any
/// of the query-time knobs can be overridden per request through
/// `QueryRequest` without reopening the engine.
struct TrinitOptions {
  scoring::ScorerOptions scorer;
  topk::ProcessorOptions processor;

  /// Which mined rule families to enable (ablation bench A1 toggles
  /// these).
  bool mine_synonyms = true;
  bool mine_inversions = true;
  bool mine_expansions = true;
  relax::SynonymMiner::Options synonym_options;
  relax::InversionMiner::Options inversion_options;
  relax::BridgeMiner::Options bridge_options;

  /// In-process XKG shards for scatter-gather serving: the store is
  /// hash-partitioned by subject into this many shards, each with its
  /// own posting lists and statistics; the planner consumes the exact
  /// per-shard merge and every leaf stream becomes a merge over
  /// per-shard segments under one global threshold. `<= 1` (the
  /// default) serves unsharded — bit-identical to the pre-sharding
  /// engine, including every trace counter. Answers, scores, and total
  /// pulls are identical at any shard count (property-tested); only
  /// the per-shard balance counters differ. A snapshot saved sharded
  /// restores its own decomposition, overriding this knob.
  size_t shard_count = 1;

  /// Engine-level serving cache (cross-request plan reuse + answer
  /// LRU). Defaults on; `serving.enabled = false` restores per-request
  /// planning from scratch.
  serve::ServingCacheOptions serving;

  /// How `Open(path)` loads a snapshot: copy-and-decode (default) or
  /// mmap with zero-copy section views, and how hard to verify. See
  /// `storage::SnapshotReader` for the mode/verification contract.
  storage::ReadOptions snapshot_read;
  /// How `Save` encodes the snapshot: per-section codec and wire format
  /// version. See `storage::SnapshotWriter`.
  storage::WriteOptions snapshot_write;

  /// Observability (PR 10): the always-on metrics registry, the
  /// slow-query log's threshold and ring capacity. `obs.metrics =
  /// false` unbinds every instrument (the runtime stand-in for building
  /// with TRINIT_OBS_COMPILED_OUT); see docs/OBSERVABILITY.md.
  obs::ObsOptions obs;
};

/// The TriniT engine — the system of the paper, end to end: an extended
/// knowledge graph, a relaxation rule set (mined + manual + plugged-in
/// operators), the incremental top-k processor, answer explanation, and
/// query suggestion.
///
/// Threading: the engine is internally synchronized by a single
/// reader-writer lock (`state_mu_`). `Execute` (and the `Query`/
/// `Answer` shims over it), `Save`, `Explain`, `Suggest`, and
/// `RenderAnswer` take it shared, so any number of threads may query
/// one engine concurrently — `ExecuteBatch` does exactly that. The
/// mutating members (`AddManualRules`, `ExtendKg`, `RunOperator`) take
/// it exclusive: they may now run concurrently with queries — a query
/// observes the engine strictly before or strictly after the mutation,
/// never mid-rebuild — and each bumps the serving cache's generation
/// before releasing the lock so no stale plan or answer survives.
/// Lock ordering: `state_mu_` is always acquired before any serving- or
/// plan-cache shard mutex, never after (see docs/CONCURRENCY.md).
///
/// The reference-returning accessors (`xkg()`, `rules()`,
/// `autocomplete()`) are deliberately unlocked: the references they
/// return would outlive any internal guard. They are safe on a quiesced
/// engine (no concurrent mutator) — the benches' and explorers' usage —
/// and the returned references are invalidated by any mutation.
class Trinit : public Engine {
 public:
  /// Statistics of a FromWorld build.
  struct BuildReport {
    size_t kg_triples = 0;
    size_t extraction_triples = 0;
    size_t corpus_documents = 0;
    size_t corpus_sentences = 0;
    size_t extractions = 0;
    size_t rules_mined = 0;
  };

  Trinit(Trinit&&) = default;
  Trinit& operator=(Trinit&&) = default;

  /// Opens an engine over an existing XKG; mines relaxation rules from
  /// it per `options`.
  static Result<Trinit> Open(xkg::Xkg xkg, TrinitOptions options = {});

  /// Opens an engine from a binary snapshot written by `Save` — the
  /// instant cold start: no TSV parse, no index sort, no rule
  /// re-mining. The dictionary, triple store, permutation indexes,
  /// every score-ordered shape built before the save, graph statistics,
  /// provenance, and the active rule set are restored verbatim, and the
  /// serving cache starts at the snapshot's stamped XKG generation.
  /// `report` (optional) receives what was restored. Corrupt, foreign,
  /// or version-mismatched files yield the typed errors documented on
  /// `storage::SnapshotReader`.
  static Result<Trinit> Open(const std::string& path,
                             TrinitOptions options = {},
                             storage::LoadReport* report = nullptr);

  /// Persists the complete serving state — XKG (dictionary, triples +
  /// confidences + provenance, graph statistics, all permutation
  /// indexes and lazily-built score-ordered shapes as currently
  /// materialized), the active rule set, and the serving-cache
  /// generation — into one versioned binary snapshot at `path`. A
  /// `Trinit::Open(path)` of the result answers byte-identically to
  /// this engine. Takes the engine-state lock shared, so saving is safe
  /// concurrently with queries and with mutators (the snapshot captures
  /// the state strictly before or after any racing mutation).
  Status Save(const std::string& path) const;

  /// Full reproduction pipeline: generate the synthetic world's KG,
  /// verbalize it (plus held-out facts) into a corpus, run Open IE +
  /// linking, build the XKG, mine rules.
  static Result<Trinit> FromWorld(const synth::World& world,
                                  TrinitOptions options = {},
                                  BuildReport* report = nullptr);

  /// Adds user-defined relaxation rules (demo §5), in the
  /// `ParseManualRules` syntax.
  Status AddManualRules(std::string_view text);

  /// Extends the knowledge graph with additional facts — the demo's
  /// "allows users to extend the KG to make up for missing knowledge"
  /// (paper §1). The XKG is rebuilt (O(n log n)); mined rules are *not*
  /// re-mined automatically (call the miners again if the additions are
  /// large). Format: one fact per line, `Subject predicate Object`, in
  /// query term syntax (quoted tokens allowed in any slot).
  Status ExtendKg(std::string_view facts_text);

  /// Runs a plugged-in relaxation operator over the XKG (paper §3's
  /// operator API) and absorbs its rules.
  Status RunOperator(relax::RelaxationOperator& op);

  // ------------------------------------------------------- Engine API

  std::string_view name() const override { return "TriniT"; }

  /// Unlocked snapshot accessor (see class comment): must not race a
  /// mutator; the reference is invalidated by `ExtendKg`.
  const xkg::Xkg& xkg() const override { return XkgUnlocked(); }

  /// The single query entry point: resolves the request's per-call
  /// overrides against the engine defaults, parses `request.text`
  /// (unless a parsed query was supplied), runs the incremental top-k
  /// processor, and reports the answers with timings and the effective
  /// options. Thread-safe (see class comment).
  Result<QueryResponse> Execute(const QueryRequest& request) const override;

  /// Fans a batch of requests across `num_threads` workers over this one
  /// engine (the serving path's first concrete step). `num_threads <= 0`
  /// picks `min(batch size, hardware_concurrency)`. Results are aligned
  /// with `requests`; each is its request's independent success/error.
  std::vector<Result<QueryResponse>> ExecuteBatch(
      std::span<const QueryRequest> requests, int num_threads = 0) const;

  // ------------------------------------- compatibility shims (legacy)

  /// Parses and answers a query. Thin shim over `Execute`; prefer the
  /// request/response API, which exposes per-request options and
  /// timings. Kept for source compatibility (see docs/API.md).
  Result<topk::TopKResult> Query(std::string_view text, int k = 10) const;

  /// Answers an already-built query. Thin shim over `Execute` (see
  /// `Query`).
  Result<topk::TopKResult> Answer(const query::Query& q, int k = 10) const;

  // ----------------------------------------------- exploration extras

  /// Structured explanation of `result.answers[rank]` (demo §5).
  explain::Explanation Explain(const topk::TopKResult& result,
                               size_t rank) const;

  /// Query-reformulation suggestions for a query and its answers
  /// (demo §5).
  std::vector<suggest::Suggestion> Suggest(
      const query::Query& q, const topk::TopKResult& result) const;

  /// Renders `result.answers[rank]`'s projection binding as text.
  std::string RenderAnswer(const topk::TopKResult& result,
                           size_t rank) const;

  /// Prefix auto-completion over the XKG vocabulary (demo §5).
  /// Unlocked snapshot accessor (see class comment): must not race a
  /// mutator.
  const suggest::Autocomplete& autocomplete() const
      TRINIT_NO_THREAD_SAFETY_ANALYSIS {
    return *autocomplete_;
  }

  /// Unlocked snapshot accessor (see class comment): must not race a
  /// mutator.
  const relax::RuleSet& rules() const TRINIT_NO_THREAD_SAFETY_ANALYSIS {
    return rules_;
  }
  const TrinitOptions& options() const { return options_; }

  /// The engine-level serving cache: cross-request plan reuse plus the
  /// bounded answer LRU, with its hit/miss/evict/invalidate counters.
  /// Always present (its options may disable it).
  const serve::ServingCache& serving_cache() const {
    return *serving_cache_;
  }

  /// Point-in-time snapshot of every registered engine metric (PR 10).
  /// Lock-free relaxed reads of the live cells — safe concurrently with
  /// any number of executing requests and with mutators. Empty when the
  /// engine runs with `ObsOptions::metrics = false`. Render with
  /// `obs::RenderPrometheus` / `obs::RenderJson`.
  obs::MetricsSnapshot MetricsSnapshot() const { return registry_->Snapshot(); }

  /// The slow-query log (bounded ring of requests that crossed
  /// `ObsOptions::slow_query_ms`); always present, possibly disabled.
  const obs::SlowQueryLog& slow_query_log() const { return *slow_log_; }

 private:
  /// `initial_generation` seeds the serving cache — 0 for fresh builds,
  /// the snapshot's stamped generation on the `Open(path)` path.
  Trinit(xkg::Xkg xkg, TrinitOptions options,
         uint64_t initial_generation = 0);

  /// The unlocked body behind `xkg()` (see class comment for the
  /// no-concurrent-mutator contract the escape hatch encodes).
  const xkg::Xkg& XkgUnlocked() const TRINIT_NO_THREAD_SAFETY_ANALYSIS {
    return *xkg_;
  }

  /// Engine-state reader-writer lock: queries/Save share, mutators
  /// exclude. Heap-allocated so the (non-movable) mutex survives the
  /// factory-return move of the engine; never null after construction.
  /// Acquired before any cache shard mutex, never after.
  std::unique_ptr<SharedMutex> state_mu_;

  // Stable address for sub-components; the *pointee* is rebuilt by
  // `ExtendKg` under the exclusive lock.
  std::unique_ptr<xkg::Xkg> xkg_ TRINIT_PT_GUARDED_BY(state_mu_);
  TrinitOptions options_;  // immutable after construction
  relax::RuleSet rules_ TRINIT_GUARDED_BY(state_mu_);
  std::unique_ptr<suggest::Suggester> suggester_ TRINIT_GUARDED_BY(state_mu_);
  std::unique_ptr<suggest::Autocomplete> autocomplete_
      TRINIT_GUARDED_BY(state_mu_);
  std::unique_ptr<explain::ExplanationBuilder> explainer_
      TRINIT_GUARDED_BY(state_mu_);
  // Shared across every request; survives mutations via generation
  // bumps (stale entries are invalidated lazily, never served).
  // Internally synchronized — safe to touch under the shared lock.
  std::unique_ptr<serve::ServingCache> serving_cache_;

  // ------------------------------------------------ observability (PR 10)

  /// Fills `response.serving`'s registry-sourced cumulative counters,
  /// records the per-request registry observations (latency, deadline,
  /// topk work, cardinality error, shard balance), and — for traced or
  /// slow requests — builds the span tree and feeds the slow-query log.
  /// Called at the end of `Execute` on every path that has a response.
  void FinishRequestObservation(const QueryRequest& request,
                                const query::Query& q, double parse_ms,
                                double cache_ms, bool cache_stage_ran,
                                double process_ms, bool process_stage_ran,
                                QueryResponse* response) const;

  /// Records storage-layer metrics of one snapshot open.
  void RecordOpenMetrics(const storage::LoadReport& report,
                         double open_ms) const;

  /// Metric cell storage, never null; heap-allocated so handles (raw
  /// pointers into it) survive the factory-return move of the engine.
  /// Internally synchronized; increments are lock-free (see
  /// obs/metrics.h). Empty (nothing registered) when
  /// `ObsOptions::metrics` is false.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  /// The engine's bound instrument handles; all unbound no-ops when
  /// `ObsOptions::metrics` is false.
  EngineMetrics metrics_;
  /// Bounded slow-request ring, never null (possibly disabled);
  /// internally synchronized, touched only for requests already slower
  /// than the threshold.
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
};

}  // namespace trinit::core

#endif  // TRINIT_CORE_TRINIT_H_
