#ifndef TRINIT_CORE_REQUEST_H_
#define TRINIT_CORE_REQUEST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_span.h"
#include "query/query.h"
#include "scoring/lm_scorer.h"
#include "topk/topk_processor.h"

namespace trinit::core {

/// One query execution request — everything that can vary per call, so a
/// single engine opened over one immutable XKG + rule set can serve
/// mixed workloads (ablation configurations, interactive sessions,
/// baselines) without being rebuilt.
///
/// All fields are optional overrides: an unset field inherits the
/// engine's configuration from `Open()` time. Requests are plain values;
/// build them with the `Text`/`Parsed` factories or designated
/// initializers and reuse/copy them freely.
struct QueryRequest {
  /// Query text in the extended triple-pattern syntax. Ignored when
  /// `query` is set.
  std::string text;

  /// Pre-parsed query; takes precedence over `text` when set (saves the
  /// parse for callers that already hold a `query::Query`).
  std::optional<query::Query> query;

  /// Number of answers wanted; <= 0 means the engine's configured
  /// default.
  int k = 0;

  /// Per-request scoring override (bench A2 tweaks these per run).
  std::optional<scoring::ScorerOptions> scorer;

  /// Per-request processor override (rewrite caps, join options, ...).
  /// `k`, `enable_relaxation`, and the budget caps below are applied on
  /// top of this when set.
  std::optional<topk::ProcessorOptions> processor;

  /// Per-request relaxation toggle — the A1 "no relaxation" condition
  /// without a second engine.
  std::optional<bool> enable_relaxation;

  /// Wall-clock budget for this request, in milliseconds; <= 0 means
  /// unlimited. On expiry the processor stops opening new work and
  /// returns the best answers found so far (`QueryResponse::deadline_hit`
  /// reports the truncation).
  double timeout_ms = 0.0;

  /// Cap on rank-join items pulled across the whole request; 0 keeps the
  /// processor's configured cap.
  size_t max_items_budget = 0;

  /// Collect per-stage wall times into `QueryResponse::stages`.
  bool trace = false;

  /// Convenience: a request for `text` with `k` answers.
  static QueryRequest Text(std::string text, int k = 0);

  /// Convenience: a request for an already-parsed query.
  static QueryRequest Parsed(query::Query query, int k = 0);
};

/// One timed execution stage of a request (filled when
/// `QueryRequest::trace` is set).
struct StageTiming {
  std::string stage;  ///< "parse", "process", ...
  double millis = 0.0;
};

/// One named processing counter of a traced request ("items_pulled",
/// "alternatives_opened", ...) — the `TopKResult::RunStats` of the run,
/// flattened so clients, the shell, and benches can observe how lazy
/// the execution actually was without knowing the processor's types.
struct TraceCounter {
  std::string name;
  double value = 0.0;
};

/// Engine-level serving-cache observation for one request (PR 4): did
/// this request hit the answer cache, and what does the shared cache
/// look like now. All zeros when the engine has no serving cache (the
/// baselines) or it is disabled.
struct ServingStats {
  /// This request was served from the answer cache: the ranked answers
  /// are a stored complete run's (byte-identical to uncached
  /// execution), and the rank-join never ran (`QueryResponse::stats` is
  /// all zeros).
  bool answer_hit = false;

  /// XKG generation the request ran against; bumped by every engine
  /// mutation, so two responses with different generations may
  /// legitimately disagree.
  uint64_t generation = 0;

  // Cumulative engine-level cache counters at response time (monotone
  // across the engine's lifetime, not per-request deltas). Sourced from
  // the lock-free metrics registry (PR 10) — a handful of relaxed
  // atomic reads, cheap enough that *every* request fills them, traced
  // or not. All zeros when the engine runs with
  // `ObsOptions::metrics = false` (or has no registry — the baselines);
  // `Trinit::serving_cache().counters()` remains the exact
  // lock-sweeping snapshot for tests and tools.
  size_t answer_hits = 0;
  size_t answer_misses = 0;
  size_t answer_evictions = 0;
  size_t plan_hits = 0;
  size_t plan_misses = 0;
  size_t plan_invalidated = 0;
};

/// The answer to a `QueryRequest`: the ranked top-k plus everything an
/// operator needs to understand how the request was served.
struct QueryResponse {
  /// The ranked answers, projection, and plan trace — one immutable
  /// body, possibly *shared* with the engine's serving cache: an
  /// answer-cache hit aliases the stored entry instead of deep-copying
  /// k answers, and a cacheable miss stores the very body this response
  /// holds. Always set on a successful `Execute`. Note the body's
  /// embedded `result().stats` are the stats of the run that *produced*
  /// it (nonzero even when served from cache); this request's own work
  /// is `stats` below.
  std::shared_ptr<const topk::TopKResult> result_body;

  /// The result body. Requires a successful Execute (non-null body).
  const topk::TopKResult& result() const { return *result_body; }

  /// This request's processing work — the copy-on-serve stats: equal to
  /// `result().stats` when the request actually executed; all zeros on
  /// an answer-cache hit, because the hit did no planning, pulling, or
  /// probing.
  topk::TopKResult::RunStats stats;

  /// Installs an owned, freshly computed result body and adopts its
  /// stats as this request's work (the non-cached execution path of
  /// every `Engine`).
  void AdoptResult(topk::TopKResult result);

  /// Takes the body out as an owned value carrying this request's
  /// `stats`, leaving the response without a body (a second call, or a
  /// call on a body-less response, yields an empty result). Moves when
  /// the body is uniquely owned (no answer cache shares it — the
  /// baselines and cache-off paths), copies otherwise; the legacy
  /// by-value `Query()`/`Answer()` shims use this to keep their
  /// pre-shared-body cost profile.
  topk::TopKResult ReleaseResult();

  /// Engine-level serving-cache state for this request (see
  /// `ServingStats`).
  ServingStats serving;

  /// End-to-end wall time of `Execute`, milliseconds.
  double wall_ms = 0.0;

  /// Per-stage wall times; empty unless the request asked for a trace.
  std::vector<StageTiming> stages;

  /// Processing counters (the run's `RunStats`); empty unless the
  /// request asked for a trace.
  std::vector<TraceCounter> counters;

  /// The options the request actually ran with, after merging the
  /// engine's defaults with the per-request overrides.
  scoring::ScorerOptions effective_scorer;
  topk::ProcessorOptions effective_processor;

  /// True when the request's deadline expired before the processor
  /// finished — `result()` holds the best answers found in budget.
  bool deadline_hit = false;

  /// Hierarchical trace of this request (PR 10): a root "execute" span
  /// carrying the uniform counter set, with one child per stage
  /// ("parse", "cache", "process"). Set only for traced requests — the
  /// structured superset of `stages`/`counters`, which remain for
  /// source compatibility.
  std::optional<obs::TraceSpan> span;

  /// The span tree as compact JSON (see obs/trace_span.h for the
  /// schema); "{}" when the request was not traced.
  std::string trace_json() const {
    return span.has_value() ? span->ToJson() : std::string("{}");
  }
};

/// Merges an engine's configured defaults with a request's overrides
/// into the options one execution runs with. Shared by every `Engine`
/// implementation so the resolution order is uniform:
/// engine defaults -> request.processor/scorer -> request.k /
/// enable_relaxation / budget caps.
struct ResolvedOptions {
  scoring::ScorerOptions scorer;
  topk::ProcessorOptions processor;
};
ResolvedOptions ResolveRequestOptions(
    const scoring::ScorerOptions& engine_scorer,
    const topk::ProcessorOptions& engine_processor,
    const QueryRequest& request);

/// Yields the query a request asks for without copying: the pre-parsed
/// `request.query` when present, otherwise `request.text` parsed against
/// `dict` into `*storage`. The returned pointer aliases `request` or
/// `storage` and is valid for their lifetime. Shared by every `Engine`
/// implementation.
Result<const query::Query*> ResolveRequestQuery(
    const QueryRequest& request, const rdf::Dictionary& dict,
    query::Query* storage);

/// Flattens a run's `RunStats` into name/value pairs. Shared by every
/// `Engine` implementation (and the span builder) so traced output
/// exposes a uniform counter vocabulary: every key is emitted for
/// every run — including `shards` (1 when unsharded) and
/// `shard_pulls_max` (total pulls when unsharded) — so traced output
/// keys are identical at any shard count.
void AppendRunStatsCounters(
    const topk::TopKResult::RunStats& stats,
    std::vector<std::pair<std::string, double>>* counters);

/// Flattens `ServingStats` into `serving_*` name/value pairs.
void AppendServingStatsCounters(
    const ServingStats& serving,
    std::vector<std::pair<std::string, double>>* counters);

/// Legacy flat-list shims over the two helpers above, appending to
/// `response->counters`.
void AppendRunStatsTrace(const topk::TopKResult::RunStats& stats,
                         QueryResponse* response);

/// Flattens `response->serving` into `response->counters` (the
/// `serving_*` names); engines without a serving cache skip it.
void AppendServingStatsTrace(QueryResponse* response);

}  // namespace trinit::core

#endif  // TRINIT_CORE_REQUEST_H_
