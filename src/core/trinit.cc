#include "core/trinit.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <optional>
#include <thread>
#include <utility>

#include "query/parser.h"
#include "relax/manual_rules.h"
#include "synth/kg_generator.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace trinit::core {

Trinit::Trinit(xkg::Xkg xkg, TrinitOptions options,
               uint64_t initial_generation)
    : state_mu_(std::make_unique<SharedMutex>()),
      xkg_(std::make_unique<xkg::Xkg>(std::move(xkg))),
      options_(options),
      suggester_(std::make_unique<suggest::Suggester>(*xkg_)),
      autocomplete_(std::make_unique<suggest::Autocomplete>(*xkg_)),
      explainer_(std::make_unique<explain::ExplanationBuilder>(*xkg_)),
      serving_cache_(std::make_unique<serve::ServingCache>(
          options_.serving, initial_generation)),
      registry_(std::make_unique<obs::MetricsRegistry>()),
      slow_log_(std::make_unique<obs::SlowQueryLog>(
          options_.obs.slow_query_ms, options_.obs.slow_log_capacity)) {
  // Bind every instrument before the engine is shared: handles are
  // plain pointer writes published by the factory-return handoff (and
  // by the exclusive lock on the ExtendKg rebind path). With
  // `obs.metrics` off nothing registers and every handle stays an
  // unbound no-op — the runtime proxy for TRINIT_OBS_COMPILED_OUT.
  if (options_.obs.metrics) {
    metrics_ = EngineMetrics::Register(*registry_);
    serve::ServingCache::Metrics cache_metrics;
    cache_metrics.answer_hits = metrics_.answer_hits;
    cache_metrics.answer_misses = metrics_.answer_misses;
    cache_metrics.answer_insertions = metrics_.answer_insertions;
    cache_metrics.answer_evictions = metrics_.answer_evictions;
    cache_metrics.invalidations = metrics_.invalidations;
    cache_metrics.body_shares = metrics_.body_shares;
    cache_metrics.plan_hits = metrics_.plan_hits;
    cache_metrics.plan_misses = metrics_.plan_misses;
    cache_metrics.plan_invalidated = metrics_.plan_invalidated;
    serving_cache_->BindMetrics(cache_metrics);
    xkg_->BindScoreMetrics(metrics_.shape_sort_ms, metrics_.shape_builds);
  }
}

Result<Trinit> Trinit::Open(xkg::Xkg xkg, TrinitOptions options) {
  // Partition before construction so every sub-component (and the
  // miners below) sees the final, merged statistics.
  xkg.InstallSharding(options.shard_count);
  // The options are stored exactly once; the miner setup below reads the
  // engine's copy so the two can never drift apart.
  Trinit engine(std::move(xkg), std::move(options));
  const TrinitOptions& opts = engine.options_;
  if (opts.mine_synonyms) {
    relax::SynonymMiner miner(opts.synonym_options);
    TRINIT_RETURN_IF_ERROR(engine.RunOperator(miner));
  }
  if (opts.mine_inversions) {
    relax::InversionMiner miner(opts.inversion_options);
    TRINIT_RETURN_IF_ERROR(engine.RunOperator(miner));
  }
  if (opts.mine_expansions) {
    relax::BridgeMiner miner(opts.bridge_options);
    TRINIT_RETURN_IF_ERROR(engine.RunOperator(miner));
  }
  return engine;
}

Result<Trinit> Trinit::Open(const std::string& path, TrinitOptions options,
                            storage::LoadReport* report) {
  WallTimer open_timer;
  TRINIT_ASSIGN_OR_RETURN(
      storage::LoadedSnapshot snapshot,
      storage::SnapshotReader::Read(path, options.snapshot_read));
  const double open_ms = open_timer.ElapsedMillis();
  if (report != nullptr) *report = snapshot.report;
  // A snapshot saved sharded restored its own decomposition (zero
  // rebuilds); otherwise partition freshly per the open options.
  if (snapshot.xkg.sharded() == nullptr) {
    snapshot.xkg.InstallSharding(options.shard_count);
  }
  // No mining on this path: the snapshot's rule set *is* the serving
  // state (mined + manual + operator rules as of the save). The stamped
  // generation seeds the serving cache so the loaded engine continues
  // the saved engine's coherent invalidation sequence.
  Trinit engine(std::move(snapshot.xkg), std::move(options),
                snapshot.generation);
  {
    WriterMutexLock lock(*engine.state_mu_);
    engine.rules_ = std::move(snapshot.rules);
  }
  engine.RecordOpenMetrics(snapshot.report, open_ms);
  return engine;
}

void Trinit::RecordOpenMetrics(const storage::LoadReport& report,
                               double open_ms) const {
  metrics_.open_ms.Observe(open_ms);
  metrics_.snapshot_bytes.Set(static_cast<int64_t>(report.bytes));
  metrics_.bytes_touched_open.Set(static_cast<int64_t>(report.bytes_touched));
  metrics_.bytes_prefetched.Set(
      static_cast<int64_t>(report.bytes_prefetched));
  metrics_.resident_bytes.Set(static_cast<int64_t>(report.resident_bytes));
  metrics_.mapped.Set(report.mapped ? 1 : 0);
}

Status Trinit::Save(const std::string& path) const {
  // Shared: a save is a consistent read of the engine state; racing
  // queries proceed, a racing mutator waits (or we wait for it).
  ReaderMutexLock lock(*state_mu_);
  return storage::SnapshotWriter::Write(*xkg_, rules_,
                                        serving_cache_->generation(), path,
                                        options_.snapshot_write);
}

Result<Trinit> Trinit::FromWorld(const synth::World& world,
                                 TrinitOptions options,
                                 BuildReport* report) {
  xkg::XkgBuilder builder;
  synth::KgGenerator::PopulateKg(world, &builder);

  std::vector<synth::Document> docs =
      synth::CorpusGenerator::Generate(world);
  openie::Pipeline pipeline(openie::Extractor(),
                            openie::Pipeline::LinkerForWorld(world));
  openie::Pipeline::Stats stats = pipeline.Run(docs, &builder);

  TRINIT_ASSIGN_OR_RETURN(xkg::Xkg xkg, builder.Build());
  if (report != nullptr) {
    report->kg_triples = xkg.kg_triple_count();
    report->extraction_triples = xkg.extraction_triple_count();
    report->corpus_documents = stats.documents;
    report->corpus_sentences = stats.sentences;
    report->extractions = stats.extractions;
  }
  TRINIT_ASSIGN_OR_RETURN(Trinit engine, Open(std::move(xkg), options));
  if (report != nullptr) {
    report->rules_mined = engine.rules().size();
  }
  return engine;
}

Status Trinit::AddManualRules(std::string_view text) {
  // Parsing is pure; the rule set is only touched below.
  TRINIT_ASSIGN_OR_RETURN(std::vector<relax::Rule> parsed,
                          relax::ParseManualRules(text));
  WriterMutexLock lock(*state_mu_);
  Status status = Status::Ok();
  for (relax::Rule& rule : parsed) {
    status = rules_.Add(std::move(rule));
    if (!status.ok()) break;
  }
  // New rules change the rewrite space, hence cached answers (and,
  // harmlessly, cached plans): invalidate everything lazily. Bump even
  // on failure — a mid-loop error leaves earlier rules added, and a
  // partially mutated rule set must not serve pre-mutation answers.
  serving_cache_->BumpGeneration();
  return status;
}

Status Trinit::RunOperator(relax::RelaxationOperator& op) {
  WriterMutexLock lock(*state_mu_);
  Status status = op.Generate(*xkg_, &rules_);
  // A failing operator may have added rules before erroring; invalidate
  // unconditionally before propagating.
  serving_cache_->BumpGeneration();
  return status;
}

Status Trinit::ExtendKg(std::string_view facts_text) {
  // Exclusive for the whole parse-rebuild-swap: a concurrent query must
  // never observe the XKG pointee mid-replacement or a sub-component
  // indexed against the old dictionary.
  WriterMutexLock lock(*state_mu_);
  xkg::XkgBuilder builder = xkg::XkgBuilder::FromXkg(*xkg_);
  size_t added = 0;
  for (const std::string& raw : Split(facts_text, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    TRINIT_ASSIGN_OR_RETURN(query::Query parsed,
                            query::Parser::Parse(line));
    for (const query::TriplePattern& p : parsed.patterns()) {
      for (const query::Term* slot : {&p.s, &p.p, &p.o}) {
        if (slot->is_variable()) {
          return Status::InvalidArgument(
              "facts must be fully ground, got variable in: " +
              p.ToString());
        }
      }
      auto intern = [&builder](const query::Term& t) {
        switch (t.kind) {
          case query::Term::Kind::kToken:
            return builder.dict().InternToken(t.text);
          case query::Term::Kind::kLiteral:
            return builder.dict().InternLiteral(t.text);
          default:
            return builder.dict().InternResource(t.text);
        }
      };
      builder.AddKgFact(intern(p.s), intern(p.p), intern(p.o));
      ++added;
    }
  }
  if (added == 0) return Status::InvalidArgument("no facts to add");

  // The serving decomposition may come from the snapshot rather than
  // the options; a KG extension must not silently change it.
  const size_t shard_count = xkg_->sharded() == nullptr
                                 ? options_.shard_count
                                 : xkg_->sharded()->shard_count();
  TRINIT_ASSIGN_OR_RETURN(xkg::Xkg rebuilt, builder.Build());
  *xkg_ = std::move(rebuilt);
  // Re-partition the rebuilt store (triple ids changed wholesale).
  xkg_->InstallSharding(shard_count);
  // Sub-components index dictionary/statistics state; refresh them, and
  // re-resolve rule constants (term ids are not stable across rebuilds).
  rules_.ResolveAgainst(xkg_->dict());
  suggester_ = std::make_unique<suggest::Suggester>(*xkg_);
  autocomplete_ = std::make_unique<suggest::Autocomplete>(*xkg_);
  explainer_ = std::make_unique<explain::ExplanationBuilder>(*xkg_);
  // The rebuilt store (and its fresh shard indexes) lost the metric
  // bindings; re-bind under this exclusive lock before queries resume.
  if (options_.obs.metrics) {
    xkg_->BindScoreMetrics(metrics_.shape_sort_ms, metrics_.shape_builds);
  }
  // Term ids, index lists, and statistics all changed: no cached plan
  // or answer may be served again.
  serving_cache_->BumpGeneration();
  return Status::Ok();
}

Result<QueryResponse> Trinit::Execute(const QueryRequest& request) const {
  // Shared: every concurrent Execute reads the same immutable engine
  // state; mutators take the lock exclusive, so a request sees the
  // engine strictly before or strictly after a mutation. The internally
  // synchronized serving cache's shard mutexes nest *inside* this lock.
  ReaderMutexLock state_lock(*state_mu_);
  WallTimer total;
  metrics_.requests.Increment();
  // In-flight gauge + high-water mark, decremented on every exit path.
  obs::GaugeGuard in_flight(metrics_.active_requests,
                            metrics_.concurrent_peak);
  QueryResponse response;
  ResolvedOptions resolved =
      ResolveRequestOptions(options_.scorer, options_.processor, request);

  WallTimer stage;
  query::Query parsed_storage;
  Result<const query::Query*> resolved_query =
      ResolveRequestQuery(request, xkg_->dict(), &parsed_storage);
  if (!resolved_query.ok()) {
    metrics_.parse_errors.Increment();
    return resolved_query.status();
  }
  const query::Query* q = *resolved_query;
  // Stage wall times are always measured (the observation layer needs
  // them for spans and the latency histogram); the `stages` list itself
  // stays trace-only, as documented.
  const double parse_ms = stage.ElapsedMillis();
  if (request.trace) {
    response.stages.push_back({"parse", parse_ms});
  }
  double cache_ms = 0.0;
  bool cache_stage_ran = false;
  double process_ms = 0.0;
  bool process_stage_ran = false;

  auto finish = [&]() -> QueryResponse&& {
    response.effective_scorer = resolved.scorer;
    response.effective_processor = resolved.processor;
    response.deadline_hit = response.stats.deadline_hit;
    response.wall_ms = total.ElapsedMillis();
    FinishRequestObservation(request, *q, parse_ms, cache_ms,
                             cache_stage_ran, process_ms, process_stage_ran,
                             &response);
    return std::move(response);
  };

  // Serving cache, answer layer: a complete result stored for the same
  // canonical query under the same effective configuration and XKG
  // generation short-circuits everything below — no planning, no
  // streams, no rank-join.
  std::string answer_key;
  const bool try_answer_cache = serving_cache_->options().enabled &&
                                serving_cache_->options().cache_answers;
  if (try_answer_cache) {
    stage.Reset();
    // The processor's canonical form: projection pinned explicitly, so
    // an implicit-projection spelling and its explicit equivalent land
    // on one key. (Constant resolution is irrelevant to the key — it
    // renders from term text — and is left to the processor.)
    query::Query canonical(q->patterns(), q->EffectiveProjection());
    answer_key = serve::ServingCache::AnswerKey(
        canonical, resolved.scorer, resolved.processor,
        serving_cache_->generation());
    std::shared_ptr<const topk::TopKResult> cached =
        serving_cache_->LookupAnswer(answer_key);
    cache_ms = stage.ElapsedMillis();
    cache_stage_ran = true;
    if (request.trace) {
      response.stages.push_back({"cache", cache_ms});
    }
    if (cached != nullptr) {
      // Alias the stored immutable body — no deep copy of k answers.
      // `response.stats` stays all-zero: the hit did no processing work
      // (the body's own stats are the stored run's).
      response.result_body = std::move(cached);
      response.serving.answer_hit = true;
      return finish();
    }
  }

  stage.Reset();
  topk::TopKProcessor processor(*xkg_, rules_, resolved.scorer,
                                resolved.processor,
                                serving_cache_->plan_cache());
  TRINIT_ASSIGN_OR_RETURN(topk::TopKResult computed, processor.Answer(*q));
  response.AdoptResult(std::move(computed));
  process_ms = stage.ElapsedMillis();
  process_stage_ran = true;
  if (request.trace) {
    response.stages.push_back({"process", process_ms});
  }

  // Only complete runs are cacheable: a deadline-truncated result is
  // not what uncached execution would produce tomorrow. Storing shares
  // the response's own body — the cache never deep-copies either.
  if (try_answer_cache && !response.stats.deadline_hit) {
    serving_cache_->StoreAnswer(answer_key, response.result_body);
  }
  return finish();
}

void Trinit::FinishRequestObservation(
    const QueryRequest& request, const query::Query& q, double parse_ms,
    double cache_ms, bool cache_stage_ran, double process_ms,
    bool process_stage_ran, QueryResponse* response) const {
  // The caller has already stamped `response->wall_ms`, so every
  // consumer below (latency histogram, span tree, slow-log gate) sees
  // one consistent end-to-end number.
  ServingStats& serving = response->serving;
  serving.generation = serving_cache_->generation();
  // Satellite of PR 10: cumulative counters now come from the lock-free
  // registry on *every* request — the per-trace shard-lock sweep is
  // gone. Relaxed reads; zeros when metrics are off.
  serving.answer_hits = static_cast<size_t>(metrics_.answer_hits.Value());
  serving.answer_misses = static_cast<size_t>(metrics_.answer_misses.Value());
  serving.answer_evictions =
      static_cast<size_t>(metrics_.answer_evictions.Value());
  serving.plan_hits = static_cast<size_t>(metrics_.plan_hits.Value());
  serving.plan_misses = static_cast<size_t>(metrics_.plan_misses.Value());
  serving.plan_invalidated =
      static_cast<size_t>(metrics_.plan_invalidated.Value());

  const topk::TopKResult::RunStats& stats = response->stats;
  if (request.trace) {
    AppendRunStatsTrace(stats, response);
    AppendServingStatsTrace(response);
  }

  // ------------------------------------------------ registry recording
  metrics_.request_ms.Observe(response->wall_ms);
  if (response->deadline_hit) metrics_.deadline_hits.Increment();
  metrics_.items_pulled.Increment(stats.items_pulled);
  metrics_.items_decoded.Increment(stats.items_decoded);
  metrics_.items_skipped.Increment(stats.items_skipped);
  metrics_.combinations_tried.Increment(stats.combinations_tried);
  metrics_.partition_probes.Increment(stats.partition_probes);
  if (!serving.answer_hit) {
    // Cache hits did no pulling or planning: recording zeros would
    // poison the depth and error distributions.
    metrics_.pulls_per_request.Observe(
        static_cast<double>(stats.items_pulled));
    if (response->result_body != nullptr &&
        metrics_.plan_cardinality_error.bound()) {
      for (const topk::TopKResult::PlanStep& step : response->result().plan) {
        const double ratio = (static_cast<double>(step.pulled) + 1.0) /
                             (step.estimated + 1.0);
        metrics_.plan_cardinality_error.Observe(
            std::fabs(std::log2(ratio)));
      }
    }
  }
  if (stats.per_shard_pulled.size() > 1) {
    metrics_.scatter_requests.Increment();
    size_t total_pulled = 0;
    size_t max_pulled = 0;
    for (size_t pulled : stats.per_shard_pulled) {
      total_pulled += pulled;
      max_pulled = std::max(max_pulled, pulled);
    }
    if (total_pulled > 0) {
      metrics_.shard_hottest_share.Observe(
          static_cast<double>(max_pulled) /
          static_cast<double>(total_pulled));
    }
  }

  // ------------------------------------------------- span + slow log
  const bool slow = slow_log_->ShouldRecord(response->wall_ms);
  if (!request.trace && !slow) return;

  obs::TraceSpan root;
  root.name = "execute";
  root.start_ms = 0.0;
  root.duration_ms = response->wall_ms;
  std::vector<std::pair<std::string, double>> counters;
  AppendRunStatsCounters(stats, &counters);
  AppendServingStatsCounters(serving, &counters);
  root.counters = counters;
  // Children carry cumulative start offsets — stages run strictly in
  // parse -> cache -> process order.
  root.AddChild("parse", 0.0, parse_ms);
  if (cache_stage_ran) root.AddChild("cache", parse_ms, cache_ms);
  if (process_stage_ran) {
    root.AddChild("process", parse_ms + cache_ms, process_ms);
  }

  if (slow) {
    obs::SlowQueryRecord record;
    record.query = q.ToString();
    record.wall_ms = response->wall_ms;
    record.generation = serving.generation;
    record.answer_hit = serving.answer_hit;
    record.deadline_hit = response->deadline_hit;
    // An answer hit executed no plan; the aliased body's embedded plan
    // belongs to the run that produced it, not this request.
    if (!serving.answer_hit && response->result_body != nullptr) {
      std::string plan_text;
      for (const topk::TopKResult::PlanStep& step : response->result().plan) {
        if (!plan_text.empty()) plan_text.push_back(' ');
        char buf[64];
        std::snprintf(buf, sizeof(buf), "p%zu(est=%.0f pulled=%zu)",
                      step.pattern, step.estimated, step.pulled);
        plan_text.append(buf);
      }
      record.plan = std::move(plan_text);
    }
    record.counters = std::move(counters);
    record.span = root;
    slow_log_->Record(std::move(record));
    metrics_.slowlog_records.Increment();
  }
  if (request.trace) response->span = std::move(root);
}

std::vector<Result<QueryResponse>> Trinit::ExecuteBatch(
    std::span<const QueryRequest> requests, int num_threads) const {
  size_t n = requests.size();
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = static_cast<int>(hw == 0 ? 1 : hw);
  }
  // Never spawn more workers than there are requests to claim.
  num_threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_threads), n));

  // Slots keep results aligned with requests regardless of which worker
  // finishes first; each slot is written by exactly one worker.
  std::vector<std::optional<Result<QueryResponse>>> slots(n);
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      slots[i] = Execute(requests[i]);
    }
  };

  if (num_threads <= 1 || n <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  std::vector<Result<QueryResponse>> results;
  results.reserve(n);
  for (std::optional<Result<QueryResponse>>& slot : slots) {
    TRINIT_CHECK(slot.has_value());
    results.push_back(std::move(*slot));
  }
  return results;
}

Result<topk::TopKResult> Trinit::Query(std::string_view text, int k) const {
  TRINIT_ASSIGN_OR_RETURN(QueryResponse response,
                          Execute(QueryRequest::Text(std::string(text), k)));
  // Moves when the body is not shared with the answer cache, copies
  // when it is; stats are per-request, zero on a hit.
  return response.ReleaseResult();
}

Result<topk::TopKResult> Trinit::Answer(const query::Query& q,
                                        int k) const {
  TRINIT_ASSIGN_OR_RETURN(QueryResponse response,
                          Execute(QueryRequest::Parsed(q, k)));
  return response.ReleaseResult();
}

explain::Explanation Trinit::Explain(const topk::TopKResult& result,
                                     size_t rank) const {
  TRINIT_CHECK(rank < result.answers.size());
  ReaderMutexLock lock(*state_mu_);
  return explainer_->Explain(result.projection, result.answers[rank]);
}

std::vector<suggest::Suggestion> Trinit::Suggest(
    const query::Query& q, const topk::TopKResult& result) const {
  ReaderMutexLock lock(*state_mu_);
  return suggester_->Suggest(q, result.answers);
}

std::string Trinit::RenderAnswer(const topk::TopKResult& result,
                                 size_t rank) const {
  TRINIT_CHECK(rank < result.answers.size());
  ReaderMutexLock lock(*state_mu_);
  std::vector<std::string> parts;
  for (size_t i = 0; i < result.projection.size(); ++i) {
    parts.push_back("?" + result.projection[i] + " = " +
                    xkg_->dict().DebugLabel(result.ValueAt(rank, i)));
  }
  return Join(parts, ", ");
}

}  // namespace trinit::core
