#include "core/trinit.h"

#include "query/parser.h"
#include "relax/manual_rules.h"
#include "synth/kg_generator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace trinit::core {

Trinit::Trinit(xkg::Xkg xkg, TrinitOptions options)
    : xkg_(std::make_unique<xkg::Xkg>(std::move(xkg))),
      options_(options),
      suggester_(std::make_unique<suggest::Suggester>(*xkg_)),
      autocomplete_(std::make_unique<suggest::Autocomplete>(*xkg_)),
      explainer_(std::make_unique<explain::ExplanationBuilder>(*xkg_)) {}

Result<Trinit> Trinit::Open(xkg::Xkg xkg, TrinitOptions options) {
  Trinit engine(std::move(xkg), options);
  if (options.mine_synonyms) {
    relax::SynonymMiner miner(options.synonym_options);
    TRINIT_RETURN_IF_ERROR(engine.RunOperator(miner));
  }
  if (options.mine_inversions) {
    relax::InversionMiner miner(options.inversion_options);
    TRINIT_RETURN_IF_ERROR(engine.RunOperator(miner));
  }
  if (options.mine_expansions) {
    relax::BridgeMiner miner(options.bridge_options);
    TRINIT_RETURN_IF_ERROR(engine.RunOperator(miner));
  }
  return engine;
}

Result<Trinit> Trinit::FromWorld(const synth::World& world,
                                 TrinitOptions options,
                                 BuildReport* report) {
  xkg::XkgBuilder builder;
  synth::KgGenerator::PopulateKg(world, &builder);

  std::vector<synth::Document> docs =
      synth::CorpusGenerator::Generate(world);
  openie::Pipeline pipeline(openie::Extractor(),
                            openie::Pipeline::LinkerForWorld(world));
  openie::Pipeline::Stats stats = pipeline.Run(docs, &builder);

  TRINIT_ASSIGN_OR_RETURN(xkg::Xkg xkg, builder.Build());
  if (report != nullptr) {
    report->kg_triples = xkg.kg_triple_count();
    report->extraction_triples = xkg.extraction_triple_count();
    report->corpus_documents = stats.documents;
    report->corpus_sentences = stats.sentences;
    report->extractions = stats.extractions;
  }
  TRINIT_ASSIGN_OR_RETURN(Trinit engine, Open(std::move(xkg), options));
  if (report != nullptr) {
    report->rules_mined = engine.rules_.size();
  }
  return engine;
}

Status Trinit::AddManualRules(std::string_view text) {
  TRINIT_ASSIGN_OR_RETURN(std::vector<relax::Rule> parsed,
                          relax::ParseManualRules(text));
  for (relax::Rule& rule : parsed) {
    TRINIT_RETURN_IF_ERROR(rules_.Add(std::move(rule)));
  }
  return Status::Ok();
}

Status Trinit::RunOperator(relax::RelaxationOperator& op) {
  return op.Generate(*xkg_, &rules_);
}

Status Trinit::ExtendKg(std::string_view facts_text) {
  xkg::XkgBuilder builder = xkg::XkgBuilder::FromXkg(*xkg_);
  size_t added = 0;
  for (const std::string& raw : Split(facts_text, '\n')) {
    std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    TRINIT_ASSIGN_OR_RETURN(query::Query parsed,
                            query::Parser::Parse(line));
    for (const query::TriplePattern& p : parsed.patterns()) {
      for (const query::Term* slot : {&p.s, &p.p, &p.o}) {
        if (slot->is_variable()) {
          return Status::InvalidArgument(
              "facts must be fully ground, got variable in: " +
              p.ToString());
        }
      }
      auto intern = [&builder](const query::Term& t) {
        switch (t.kind) {
          case query::Term::Kind::kToken:
            return builder.dict().InternToken(t.text);
          case query::Term::Kind::kLiteral:
            return builder.dict().InternLiteral(t.text);
          default:
            return builder.dict().InternResource(t.text);
        }
      };
      builder.AddKgFact(intern(p.s), intern(p.p), intern(p.o));
      ++added;
    }
  }
  if (added == 0) return Status::InvalidArgument("no facts to add");

  TRINIT_ASSIGN_OR_RETURN(xkg::Xkg rebuilt, builder.Build());
  *xkg_ = std::move(rebuilt);
  // Sub-components index dictionary/statistics state; refresh them, and
  // re-resolve rule constants (term ids are not stable across rebuilds).
  rules_.ResolveAgainst(xkg_->dict());
  suggester_ = std::make_unique<suggest::Suggester>(*xkg_);
  autocomplete_ = std::make_unique<suggest::Autocomplete>(*xkg_);
  explainer_ = std::make_unique<explain::ExplanationBuilder>(*xkg_);
  return Status::Ok();
}

Result<topk::TopKResult> Trinit::Query(std::string_view text, int k) const {
  TRINIT_ASSIGN_OR_RETURN(query::Query q,
                          query::Parser::Parse(text, &xkg_->dict()));
  return Answer(q, k);
}

Result<topk::TopKResult> Trinit::Answer(const query::Query& q,
                                        int k) const {
  topk::ProcessorOptions processor_options = options_.processor;
  processor_options.k = k;
  topk::TopKProcessor processor(*xkg_, rules_, options_.scorer,
                                processor_options);
  return processor.Answer(q);
}

explain::Explanation Trinit::Explain(const topk::TopKResult& result,
                                     size_t rank) const {
  TRINIT_CHECK(rank < result.answers.size());
  return explainer_->Explain(result.projection, result.answers[rank]);
}

std::vector<suggest::Suggestion> Trinit::Suggest(
    const query::Query& q, const topk::TopKResult& result) const {
  return suggester_->Suggest(q, result.answers);
}

std::string Trinit::RenderAnswer(const topk::TopKResult& result,
                                 size_t rank) const {
  TRINIT_CHECK(rank < result.answers.size());
  std::vector<std::string> parts;
  for (size_t i = 0; i < result.projection.size(); ++i) {
    parts.push_back("?" + result.projection[i] + " = " +
                    xkg_->dict().DebugLabel(result.ValueAt(rank, i)));
  }
  return Join(parts, ", ");
}

}  // namespace trinit::core
