#include "synth/kg_generator.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>

#include "util/logging.h"

namespace trinit::synth {
namespace {

constexpr std::array<const char*, 20> kFirstNames = {
    "Anna",  "Boris", "Clara",  "David", "Elena", "Felix", "Greta",
    "Henri", "Ida",   "Jonas",  "Karla", "Lukas", "Mira",  "Nils",
    "Olga",  "Paul",  "Quirin", "Rosa",  "Stefan", "Tilda"};

constexpr std::array<const char*, 18> kSurnames = {
    "Keller",  "Brandt",  "Curie",   "Dietrich", "Euler",   "Fischer",
    "Gauss",   "Hilbert", "Ising",   "Jordan",   "Klein",   "Lorentz",
    "Mach",    "Noether", "Ostwald", "Planck",   "Riemann", "Sommer"};

constexpr std::array<const char*, 12> kCitySyllables = {
    "Ulm",  "Gra",  "Hei", "Nor",  "Stad", "Berg",
    "Feld", "Brun", "Lin", "Wald", "Hof",  "See"};

constexpr std::array<const char*, 12> kCountryNames = {
    "Germania", "Helvetia", "Lusitania", "Polonia",  "Austrasia",
    "Bohemia",  "Dacia",    "Etruria",   "Frisia",   "Galicia",
    "Hibernia", "Illyria"};

constexpr std::array<const char*, 12> kFieldNames = {
    "physics",     "chemistry",  "mathematics", "biology",
    "astronomy",   "geology",    "logic",       "economics",
    "linguistics", "philosophy", "medicine",    "statistics"};

std::string Cap(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
  return s;
}

// Resource labels use underscores; aliases are human-readable surface
// forms the corpus embeds and the linker resolves.
Entity MakePerson(size_t idx, Rng& rng) {
  Entity e;
  e.cls = EntityClass::kPerson;
  std::string first = kFirstNames[rng.Uniform(kFirstNames.size())];
  std::string last = kSurnames[rng.Uniform(kSurnames.size())];
  e.name = first + "_" + last + "_" + std::to_string(idx);
  e.aliases = {first + " " + last,                     // full name
               last,                                   // ambiguous surname
               first.substr(0, 1) + ". " + last};      // initial form
  return e;
}

Entity MakeCity(size_t idx, Rng& rng) {
  Entity e;
  e.cls = EntityClass::kCity;
  std::string base = std::string(kCitySyllables[rng.Uniform(6)]) +
                     std::string(kCitySyllables[6 + rng.Uniform(6)]);
  e.name = Cap(base) + "_" + std::to_string(idx);
  e.aliases = {Cap(base) + std::to_string(idx)};
  return e;
}

Entity MakeCountry(size_t idx) {
  Entity e;
  e.cls = EntityClass::kCountry;
  std::string base = kCountryNames[idx % kCountryNames.size()];
  std::string suffix = idx >= kCountryNames.size()
                           ? std::to_string(idx / kCountryNames.size() + 1)
                           : "";
  e.name = base + suffix;
  e.aliases = {base + suffix};
  return e;
}

Entity MakeUniversity(size_t idx, const Entity& city) {
  Entity e;
  e.cls = EntityClass::kUniversity;
  const std::string& city_alias = city.aliases[0];
  e.name = "University_of_" + city_alias + "_" + std::to_string(idx);
  e.aliases = {"University of " + city_alias, city_alias + " University"};
  return e;
}

Entity MakeInstitute(size_t idx, const std::string& field) {
  Entity e;
  e.cls = EntityClass::kInstitute;
  e.name = "Institute_for_" + Cap(field) + "_" + std::to_string(idx);
  e.aliases = {"Institute for " + Cap(field),
               Cap(field) + " Institute " + std::to_string(idx)};
  return e;
}

Entity MakePrize(size_t idx) {
  Entity e;
  e.cls = EntityClass::kPrize;
  std::string base = kSurnames[idx % kSurnames.size()];
  e.name = base + "_Prize_" + std::to_string(idx);
  e.aliases = {"the " + base + " Prize", base + " Prize"};
  return e;
}

Entity MakeField(size_t idx) {
  Entity e;
  e.cls = EntityClass::kField;
  std::string base = kFieldNames[idx % kFieldNames.size()];
  std::string suffix =
      idx >= kFieldNames.size()
          ? " " + std::to_string(idx / kFieldNames.size() + 1)
          : "";
  e.name = Cap(base) + suffix;
  e.aliases = {Cap(base) + suffix};
  return e;
}

}  // namespace

uint32_t World::CountryOf(uint32_t city) const {
  auto it = city_country_.find(city);
  TRINIT_CHECK(it != city_country_.end());
  return it->second;
}

uint32_t World::SampleEntity(EntityClass c, Rng& rng) const {
  const std::vector<uint32_t>& pool = OfClass(c);
  TRINIT_CHECK(!pool.empty());
  // Popularity-weighted: entities are stored popularity-descending per
  // class, so a Zipf rank draw suffices.
  Rng::ZipfTable table(pool.size(), spec.popularity_skew);
  return pool[table.Sample(rng)];
}

std::vector<const Fact*> World::FactsOf(
    const std::string& predicate_name) const {
  std::vector<const Fact*> out;
  size_t idx = PredicateIndex(predicate_name);
  if (idx == SIZE_MAX) return out;
  for (const Fact& f : facts) {
    if (f.predicate == idx) out.push_back(&f);
  }
  return out;
}

size_t World::PredicateIndex(const std::string& name) const {
  for (size_t i = 0; i < spec.predicates.size(); ++i) {
    if (spec.predicates[i].name == name) return i;
  }
  return SIZE_MAX;
}

World KgGenerator::Generate(const WorldSpec& spec_in) {
  World world;
  world.spec = spec_in;
  if (world.spec.predicates.empty()) {
    world.spec.predicates = WorldSpec::DefaultPredicates();
  }
  const WorldSpec& spec = world.spec;
  Rng rng(spec.seed);

  world.by_class_.resize(static_cast<size_t>(EntityClass::kNumClasses));
  auto add_entity = [&world](Entity e) {
    uint32_t idx = static_cast<uint32_t>(world.entities.size());
    world.by_class_[static_cast<size_t>(e.cls)].push_back(idx);
    world.entities.push_back(std::move(e));
    return idx;
  };

  // Countries, cities (each assigned a country), fields, prizes.
  for (size_t i = 0; i < spec.num_countries; ++i) add_entity(MakeCountry(i));
  for (size_t i = 0; i < spec.num_cities; ++i) {
    uint32_t city = add_entity(MakeCity(i, rng));
    const auto& countries = world.OfClass(EntityClass::kCountry);
    world.city_country_[city] =
        countries[rng.Uniform(countries.size())];
  }
  for (size_t i = 0; i < spec.num_fields; ++i) add_entity(MakeField(i));
  for (size_t i = 0; i < spec.num_prizes; ++i) add_entity(MakePrize(i));
  for (size_t i = 0; i < spec.num_universities; ++i) {
    const auto& cities = world.OfClass(EntityClass::kCity);
    uint32_t city = cities[rng.Uniform(cities.size())];
    add_entity(MakeUniversity(i, world.entities[city]));
  }
  for (size_t i = 0; i < spec.num_institutes; ++i) {
    add_entity(MakeInstitute(i, kFieldNames[rng.Uniform(kFieldNames.size())]));
  }
  for (size_t i = 0; i < spec.num_persons; ++i) {
    add_entity(MakePerson(i, rng));
  }

  // Popularity: rank within class, descending.
  for (auto& pool : world.by_class_) {
    for (size_t rank = 0; rank < pool.size(); ++rank) {
      world.entities[pool[rank]].popularity =
          1.0 / std::pow(static_cast<double>(rank + 1),
                         spec.popularity_skew);
    }
  }

  // Facts per predicate spec.
  for (uint32_t pi = 0; pi < spec.predicates.size(); ++pi) {
    const PredicateSpec& pred = spec.predicates[pi];
    for (uint32_t subject : world.OfClass(pred.subject_class)) {
      if (!rng.Bernoulli(pred.coverage)) continue;
      int count = static_cast<int>(pred.facts_per_subject);
      if (rng.Bernoulli(pred.facts_per_subject - count)) ++count;
      if (count == 0) count = 1;
      for (int c = 0; c < count; ++c) {
        Fact f;
        f.subject = subject;
        f.predicate = pi;
        if (pred.name == "locatedIn") {
          // Structural: a city's country is fixed.
          f.object = world.CountryOf(subject);
        } else {
          f.object = world.SampleEntity(pred.object_class, rng);
          if (f.object == subject) continue;  // no self-loops
        }
        f.in_kg = !rng.Bernoulli(pred.holdout_rate);
        if (f.in_kg && pred.coarse_object_rate > 0.0 &&
            world.entities[f.object].cls == EntityClass::kCity) {
          f.coarse_in_kg = rng.Bernoulli(pred.coarse_object_rate);
          // A third of coarse statements coexist with the fine fact
          // (different sources): expansion-miner evidence.
          if (f.coarse_in_kg) f.coarse_both_in_kg = rng.Bernoulli(0.35);
        }
        if (f.in_kg && !pred.inverse_name.empty()) {
          if (rng.Bernoulli(pred.both_directions_rate)) {
            f.both_in_kg = true;
          } else {
            f.inverse_in_kg = rng.Bernoulli(pred.inverse_rate);
          }
        }
        world.facts.push_back(f);
      }
    }
  }
  return world;
}

void KgGenerator::PopulateKg(const World& world, xkg::XkgBuilder* builder) {
  // type triples for every entity.
  for (const Entity& e : world.entities) {
    builder->AddKgFact(e.name, "type", EntityClassName(e.cls));
  }
  for (const Fact& f : world.facts) {
    if (!f.in_kg) continue;
    const PredicateSpec& pred = world.spec.predicates[f.predicate];
    const std::string& s = world.entities[f.subject].name;
    if (f.both_in_kg) {
      builder->AddKgFact(s, pred.name, world.entities[f.object].name);
      builder->AddKgFact(world.entities[f.object].name, pred.inverse_name,
                         s);
    } else if (f.inverse_in_kg) {
      // The KG models the inverse direction only (user B's mismatch).
      builder->AddKgFact(world.entities[f.object].name, pred.inverse_name,
                         s);
    } else if (f.coarse_in_kg) {
      builder->AddKgFact(
          s, pred.name,
          world.entities[world.CountryOf(f.object)].name);
      if (f.coarse_both_in_kg) {
        builder->AddKgFact(s, pred.name, world.entities[f.object].name);
      }
    } else {
      builder->AddKgFact(s, pred.name, world.entities[f.object].name);
    }
  }
}

size_t KgGenerator::CountKgFacts(const World& world) {
  size_t n = world.entities.size();  // type triples
  for (const Fact& f : world.facts) {
    if (f.in_kg) n += (f.both_in_kg || f.coarse_both_in_kg) ? 2 : 1;
  }
  return n;
}

}  // namespace trinit::synth
