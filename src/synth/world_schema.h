#ifndef TRINIT_SYNTH_WORLD_SCHEMA_H_
#define TRINIT_SYNTH_WORLD_SCHEMA_H_

#include <string>
#include <vector>

namespace trinit::synth {

/// Entity classes of the synthetic world. The domain mirrors the
/// academia/geography world of the paper's running example (Einstein,
/// universities, cities, prizes) so that every relaxation phenomenon the
/// paper discusses — granularity mismatch, inverted predicates, KG gaps
/// covered by text — arises organically at scale.
enum class EntityClass {
  kPerson = 0,
  kUniversity,
  kInstitute,  ///< research institutes housed in universities (IAS-like)
  kCity,
  kCountry,
  kPrize,
  kField,
  kNumClasses,
};

const char* EntityClassName(EntityClass c);

/// A KG predicate with its signature and text-side behaviour.
struct PredicateSpec {
  std::string name;            ///< KG label, e.g. "affiliation"
  EntityClass subject_class;
  EntityClass object_class;
  /// Expected facts per subject entity (1 => functional-ish).
  double facts_per_subject = 1.0;
  /// Fraction of subjects that have this predicate at all.
  double coverage = 1.0;
  /// Probability that a generated fact is *held out* of the KG and only
  /// expressed in the corpus — the engineered incompleteness that makes
  /// the XKG genuinely add answers (paper §2: "no KG will ever be
  /// complete").
  double holdout_rate = 0.25;
  /// Verbal paraphrases used by the corpus generator; the first is the
  /// "canonical" phrasing. E.g. affiliation: "works at", "is employed
  /// by", "lectured at".
  std::vector<std::string> paraphrases;
  /// Name of the inverse KG predicate, if the KG models one (e.g.
  /// hasStudent for hasAdvisor); empty otherwise.
  std::string inverse_name;
  /// Probability that a fact is stated *only* with the inverse predicate
  /// in the KG (user B's mismatch: the KG models hasStudent, the user
  /// asks hasAdvisor).
  double inverse_rate = 0.0;
  /// Probability that a fact is stated in *both* directions. Real KGs
  /// contain such redundant pairs; they are the evidence the inversion
  /// miner's |args(p1) ∩ swap(args(p2))| overlap needs.
  double both_directions_rate = 0.0;
  /// Probability that a fact's object is stated at the *coarse*
  /// geographic granularity (city -> its country) instead — user A's
  /// vocabulary mismatch.
  double coarse_object_rate = 0.0;
};

/// Sizing and behaviour knobs for the generated world.
struct WorldSpec {
  uint64_t seed = 42;
  size_t num_persons = 200;
  size_t num_universities = 25;
  size_t num_institutes = 15;
  size_t num_cities = 40;
  size_t num_countries = 10;
  size_t num_prizes = 8;
  size_t num_fields = 12;
  /// Zipf exponent for entity popularity (popular entities appear in
  /// more facts and more sentences, like real KGs).
  double popularity_skew = 0.8;
  /// Sentences expressing facts not in the world at all (extraction
  /// noise fodder).
  double distractor_sentence_rate = 0.08;
  /// Average number of corpus sentences per expressible fact. Web text
  /// is redundant; redundancy is also what gives the synonym miner its
  /// args-overlap evidence.
  double sentences_per_fact = 2.5;

  /// The predicate inventory; `DefaultPredicates()` by default.
  std::vector<PredicateSpec> predicates;

  /// The paper-domain predicate set (bornIn, locatedIn, affiliation,
  /// hasAdvisor/hasStudent, wonPrize, inField, memberOf, housedIn, ...).
  static std::vector<PredicateSpec> DefaultPredicates();

  /// A spec scaled so the generated XKG has roughly `target_triples`
  /// total triples while preserving the paper's ~1:7.8 KG:extraction
  /// ratio (50M vs 390M, §5).
  static WorldSpec Scaled(size_t target_triples, uint64_t seed = 42);
};

}  // namespace trinit::synth

#endif  // TRINIT_SYNTH_WORLD_SCHEMA_H_
