#include "synth/world_schema.h"

#include <cmath>

namespace trinit::synth {

const char* EntityClassName(EntityClass c) {
  switch (c) {
    case EntityClass::kPerson:
      return "person";
    case EntityClass::kUniversity:
      return "university";
    case EntityClass::kInstitute:
      return "institute";
    case EntityClass::kCity:
      return "city";
    case EntityClass::kCountry:
      return "country";
    case EntityClass::kPrize:
      return "prize";
    case EntityClass::kField:
      return "field";
    case EntityClass::kNumClasses:
      break;
  }
  return "unknown";
}

std::vector<PredicateSpec> WorldSpec::DefaultPredicates() {
  std::vector<PredicateSpec> preds;

  PredicateSpec born_in;
  born_in.name = "bornIn";
  born_in.subject_class = EntityClass::kPerson;
  born_in.object_class = EntityClass::kCity;
  born_in.facts_per_subject = 1.0;
  born_in.coverage = 0.95;
  born_in.holdout_rate = 0.15;
  born_in.paraphrases = {"was born in", "is a native of", "hails from"};
  born_in.coarse_object_rate = 0.2;  // some sources state the country
  preds.push_back(born_in);

  PredicateSpec located_in;
  located_in.name = "locatedIn";
  located_in.subject_class = EntityClass::kCity;
  located_in.object_class = EntityClass::kCountry;
  located_in.facts_per_subject = 1.0;
  located_in.coverage = 1.0;
  located_in.holdout_rate = 0.05;
  located_in.paraphrases = {"is located in", "lies in", "is a city in"};
  preds.push_back(located_in);

  PredicateSpec affiliation;
  affiliation.name = "affiliation";
  affiliation.subject_class = EntityClass::kPerson;
  affiliation.object_class = EntityClass::kUniversity;
  affiliation.facts_per_subject = 1.3;
  affiliation.coverage = 0.85;
  affiliation.holdout_rate = 0.3;
  affiliation.paraphrases = {"works at", "is employed by", "lectured at",
                             "is a professor at"};
  preds.push_back(affiliation);

  PredicateSpec works_at_inst;
  works_at_inst.name = "memberOfInstitute";
  works_at_inst.subject_class = EntityClass::kPerson;
  works_at_inst.object_class = EntityClass::kInstitute;
  works_at_inst.facts_per_subject = 1.0;
  works_at_inst.coverage = 0.3;
  works_at_inst.holdout_rate = 0.3;
  works_at_inst.paraphrases = {"is a member of", "works at"};
  preds.push_back(works_at_inst);

  PredicateSpec housed_in;
  housed_in.name = "housedIn";
  housed_in.subject_class = EntityClass::kInstitute;
  housed_in.object_class = EntityClass::kUniversity;
  housed_in.facts_per_subject = 1.0;
  housed_in.coverage = 0.9;
  // Mostly text-only, like IAS's relationship to Princeton (paper §1).
  housed_in.holdout_rate = 0.7;
  housed_in.paraphrases = {"is housed in", "is hosted by",
                           "is located on the campus of"};
  preds.push_back(housed_in);

  PredicateSpec has_advisor;
  has_advisor.name = "hasAdvisor";
  has_advisor.subject_class = EntityClass::kPerson;
  has_advisor.object_class = EntityClass::kPerson;
  has_advisor.facts_per_subject = 1.0;
  has_advisor.coverage = 0.5;
  has_advisor.holdout_rate = 0.2;
  has_advisor.paraphrases = {"was advised by", "studied under",
                             "wrote a dissertation under"};
  has_advisor.inverse_name = "hasStudent";
  // The KG mostly models the hasStudent direction (user B's problem)...
  has_advisor.inverse_rate = 0.6;
  // ...but some advisor pairs are redundantly stated both ways, which
  // is what lets the inversion miner learn hasAdvisor <-> hasStudent.
  has_advisor.both_directions_rate = 0.2;
  preds.push_back(has_advisor);

  PredicateSpec won_prize;
  won_prize.name = "wonPrize";
  won_prize.subject_class = EntityClass::kPerson;
  won_prize.object_class = EntityClass::kPrize;
  won_prize.facts_per_subject = 1.1;
  won_prize.coverage = 0.25;
  // Heavily text-only: prize rationales live in news text (user D).
  won_prize.holdout_rate = 0.6;
  won_prize.paraphrases = {"won", "was awarded", "received"};
  preds.push_back(won_prize);

  PredicateSpec in_field;
  in_field.name = "inField";
  in_field.subject_class = EntityClass::kPerson;
  in_field.object_class = EntityClass::kField;
  in_field.facts_per_subject = 1.2;
  in_field.coverage = 0.8;
  in_field.holdout_rate = 0.25;
  in_field.paraphrases = {"conducts research in", "specializes in",
                          "is known for work on"};
  preds.push_back(in_field);

  PredicateSpec uni_located;
  uni_located.name = "campusIn";
  uni_located.subject_class = EntityClass::kUniversity;
  uni_located.object_class = EntityClass::kCity;
  uni_located.facts_per_subject = 1.0;
  uni_located.coverage = 0.95;
  uni_located.holdout_rate = 0.1;
  uni_located.paraphrases = {"has its campus in", "is based in"};
  preds.push_back(uni_located);

  return preds;
}

WorldSpec WorldSpec::Scaled(size_t target_triples, uint64_t seed) {
  WorldSpec spec;
  spec.seed = seed;
  spec.predicates = DefaultPredicates();
  // Empirically the default spec yields ~6 facts per person-equivalent
  // entity and the corpus multiplies extraction triples by
  // sentences_per_fact plus paraphrase spread; solve for the person
  // count and scale the supporting classes proportionally.
  double unit = static_cast<double>(target_triples) / 14.0;
  auto at_least = [](double v, size_t lo) {
    return v < static_cast<double>(lo) ? lo : static_cast<size_t>(v);
  };
  spec.num_persons = at_least(unit, 20);
  spec.num_universities = at_least(unit / 8, 5);
  spec.num_institutes = at_least(unit / 14, 3);
  spec.num_cities = at_least(unit / 5, 8);
  spec.num_countries = at_least(unit / 20, 4);
  spec.num_prizes = at_least(unit / 25, 3);
  spec.num_fields = at_least(unit / 18, 4);
  return spec;
}

}  // namespace trinit::synth
