#include "synth/corpus_generator.h"

#include <array>

#include "util/logging.h"
#include "util/string_util.h"

namespace trinit::synth {
namespace {

constexpr std::array<const char*, 4> kDistractorVerbs = {
    "met", "visited", "wrote to", "debated with"};

constexpr std::array<const char*, 4> kRationaleTemplates = {
    "work on", "the discovery of", "contributions to", "a theory of"};

// Alias choice: canonical full form dominates, ambiguous short forms
// appear often enough to stress the linker.
const std::string& PickAlias(const Entity& e, Rng& rng) {
  if (e.aliases.size() == 1 || rng.Bernoulli(0.6)) return e.aliases[0];
  return e.aliases[1 + rng.Uniform(e.aliases.size() - 1)];
}

// Paraphrase choice skewed toward the canonical phrasing.
size_t PickParaphrase(size_t count, Rng& rng) {
  double r = rng.UniformDouble();
  return static_cast<size_t>(r * r * static_cast<double>(count));
}

}  // namespace

std::string CorpusGenerator::FactSentence(const World& world,
                                          const Fact& fact, size_t variant,
                                          Rng& rng) {
  const PredicateSpec& pred = world.spec.predicates[fact.predicate];
  TRINIT_CHECK(!pred.paraphrases.empty());
  const std::string& verb =
      pred.paraphrases[variant % pred.paraphrases.size()];
  const Entity& subject = world.entities[fact.subject];
  const Entity& object = world.entities[fact.object];

  std::string sentence;
  if (rng.Bernoulli(0.25)) {
    sentence += "In " + std::to_string(1880 + rng.Uniform(120)) + ", ";
  }
  sentence += PickAlias(subject, rng) + " " + verb + " ";

  if (pred.name == "wonPrize" && rng.Bernoulli(0.5)) {
    // Rationale form: a lowercase tail after the prize, like the
    // photoelectric-effect sentence of Figure 3. The extractor turns
    // this into a token-object triple (user D's information need).
    const char* rationale =
        kRationaleTemplates[rng.Uniform(kRationaleTemplates.size())];
    const auto& fields = world.OfClass(EntityClass::kField);
    const Entity& field =
        world.entities[fields[rng.Uniform(fields.size())]];
    sentence += PickAlias(object, rng) + " for " + rationale + " " +
                ToLower(field.aliases[0]);
  } else {
    sentence += PickAlias(object, rng);
  }

  if (rng.Bernoulli(0.15)) {
    sentence += ", according to several sources";
  }
  sentence += ".";
  return sentence;
}

std::vector<Document> CorpusGenerator::Generate(const World& world) {
  Rng rng(world.spec.seed + 0x9e3779b9ULL);
  std::vector<std::string> sentences;

  for (const Fact& fact : world.facts) {
    const Entity& subject = world.entities[fact.subject];
    double expected = world.spec.sentences_per_fact *
                      (0.5 + subject.popularity);
    int n = static_cast<int>(expected);
    if (rng.Bernoulli(expected - n)) ++n;
    // Held-out facts must be expressible from text or the XKG could
    // never recover them.
    if (!fact.in_kg && n == 0) n = 1;
    for (int i = 0; i < n; ++i) {
      sentences.push_back(FactSentence(
          world, fact,
          PickParaphrase(
              world.spec.predicates[fact.predicate].paraphrases.size(),
              rng),
          rng));
    }
  }

  // Distractor sentences: plausible-looking statements about no real
  // fact; some become noisy extraction triples.
  size_t distractors = static_cast<size_t>(
      world.spec.distractor_sentence_rate *
      static_cast<double>(sentences.size()));
  for (size_t i = 0; i < distractors; ++i) {
    const Entity& a =
        world.entities[rng.Uniform(world.entities.size())];
    const Entity& b =
        world.entities[rng.Uniform(world.entities.size())];
    sentences.push_back(PickAlias(a, rng) + " " +
                        kDistractorVerbs[rng.Uniform(
                            kDistractorVerbs.size())] +
                        " " + PickAlias(b, rng) + ".");
  }

  rng.Shuffle(sentences);

  std::vector<Document> docs;
  size_t i = 0;
  while (i < sentences.size()) {
    size_t doc_len = 4 + rng.Uniform(4);  // 4-7 sentences
    Document doc;
    doc.id = static_cast<uint32_t>(docs.size());
    for (size_t j = 0; j < doc_len && i < sentences.size(); ++j, ++i) {
      if (j > 0) doc.text += " ";
      doc.text += sentences[i];
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace trinit::synth
