#ifndef TRINIT_SYNTH_KG_GENERATOR_H_
#define TRINIT_SYNTH_KG_GENERATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "synth/world_schema.h"
#include "util/random.h"
#include "xkg/xkg_builder.h"

namespace trinit::synth {

/// An entity of the synthetic world.
struct Entity {
  std::string name;  ///< canonical KG resource label, e.g. Anna_Keller_17
  EntityClass cls = EntityClass::kPerson;
  std::vector<std::string> aliases;  ///< surface forms ("Anna Keller",
                                     ///< "Keller", "A. Keller")
  double popularity = 0.0;  ///< [0,1]; popular entities occur more often
};

/// One ground-truth fact. `subject`/`object` index `World::entities`,
/// `predicate` indexes `WorldSpec::predicates`.
struct Fact {
  uint32_t subject = 0;
  uint32_t predicate = 0;
  uint32_t object = 0;
  /// In the curated KG (false => held out: text-only, the engineered
  /// incompleteness).
  bool in_kg = true;
  /// KG states the *coarse* object (the city's country) instead of the
  /// fine one — user A's granularity mismatch.
  bool coarse_in_kg = false;
  /// KG states *both* granularities (sources disagree); these redundant
  /// pairs are the expansion miner's |args(p) ∩ compose(p,q)| evidence.
  bool coarse_both_in_kg = false;
  /// KG states the inverse predicate instead of this direction — user
  /// B's argument-order mismatch.
  bool inverse_in_kg = false;
  /// KG redundantly states both directions (inversion-miner evidence).
  bool both_in_kg = false;
};

/// The complete generated world: entities, ground-truth facts, and the
/// derived lookups the corpus generator / linker / evaluator need. This
/// is the synthetic stand-in for "Yago2s + the true state of the world"
/// (DESIGN.md §4): the KG sees only part of it, the corpus verbalizes
/// more of it, and the evaluator grades answers against all of it.
class World {
 public:
  WorldSpec spec;
  std::vector<Entity> entities;
  std::vector<Fact> facts;

  /// Entity indices per class.
  const std::vector<uint32_t>& OfClass(EntityClass c) const {
    return by_class_[static_cast<size_t>(c)];
  }

  /// Country of a city (entity indices). Cities map to exactly one
  /// country.
  uint32_t CountryOf(uint32_t city) const;

  /// Popularity-weighted sample of an entity of class `c`.
  uint32_t SampleEntity(EntityClass c, Rng& rng) const;

  /// All ground-truth facts with the given predicate name.
  std::vector<const Fact*> FactsOf(const std::string& predicate_name) const;

  /// Index of the predicate spec with `name` (SIZE_MAX if absent).
  size_t PredicateIndex(const std::string& name) const;

 private:
  friend class KgGenerator;
  std::vector<std::vector<uint32_t>> by_class_;
  std::unordered_map<uint32_t, uint32_t> city_country_;
};

/// Generates the ground-truth world and pours its KG layer into an
/// `XkgBuilder`.
class KgGenerator {
 public:
  /// Deterministic from `spec.seed`.
  static World Generate(const WorldSpec& spec);

  /// Adds the KG layer (facts with in_kg, applying coarse/inverse
  /// substitutions) plus `type` triples for every entity.
  static void PopulateKg(const World& world, xkg::XkgBuilder* builder);

  /// Number of facts that would enter the KG (for sizing tests).
  static size_t CountKgFacts(const World& world);
};

}  // namespace trinit::synth

#endif  // TRINIT_SYNTH_KG_GENERATOR_H_
