#ifndef TRINIT_SYNTH_CORPUS_GENERATOR_H_
#define TRINIT_SYNTH_CORPUS_GENERATOR_H_

#include <string>
#include <vector>

#include "synth/kg_generator.h"

namespace trinit::synth {

/// A synthetic web/news document: a handful of sentences verbalizing
/// world facts (including the held-out ones the KG lacks) through
/// paraphrase templates and entity aliases, plus distractor chatter.
struct Document {
  uint32_t id = 0;
  std::string text;
};

/// Generates the text corpus the Open IE pipeline runs on — the
/// stand-in for ClueWeb'09 (DESIGN.md §4). Deterministic from the
/// world's seed.
///
/// Properties engineered to exercise the paper's machinery:
///  * held-out facts always get at least one sentence, so the XKG can
///    genuinely fill KG gaps (users C, D);
///  * each predicate is verbalized through several paraphrases, so the
///    synonym miner finds `affiliation ~ 'works at'` style rules with
///    meaningful args-overlap weights;
///  * popular entities appear more often (tf effects in scoring);
///  * prize facts get rationale sentences with non-entity objects
///    ("... won the Keller Prize for her work on physics"), producing
///    token-object triples like Figure 3's photoelectric-effect triple;
///  * ambiguous aliases (bare surnames) and distractor sentences create
///    realistic linking and extraction noise.
class CorpusGenerator {
 public:
  /// Generates the corpus for `world`.
  static std::vector<Document> Generate(const World& world);

  /// The sentence verbalizing `fact` with paraphrase `variant` — exposed
  /// for tests and for the Figure 3 bench.
  static std::string FactSentence(const World& world, const Fact& fact,
                                  size_t variant, Rng& rng);
};

}  // namespace trinit::synth

#endif  // TRINIT_SYNTH_CORPUS_GENERATOR_H_
