#include "explain/explanation.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace trinit::explain {

std::string Explanation::ToString() const {
  std::string out;
  out += "Answer: " + answer_rendering + "  (score " +
         FormatDouble(score, 3) + ")\n";
  if (!kg_triples.empty()) {
    out += "  KG triples:\n";
    for (const TripleEvidence& t : kg_triples) {
      out += "    " + t.rendered + "\n";
    }
  }
  if (!xkg_triples.empty()) {
    out += "  XKG triples (Open IE):\n";
    for (const TripleEvidence& t : xkg_triples) {
      out += "    " + t.rendered + "\n";
      for (const auto& [doc, sentence] : t.provenance) {
        out += "      [doc " + std::to_string(doc) + "] \"" + sentence +
               "\"\n";
      }
    }
  }
  if (!rules.empty()) {
    out += "  Relaxation rules invoked:\n";
    for (const RuleUse& r : rules) {
      out += "    " + r.name + ": " + r.rendered + "\n";
    }
  }
  if (!substitutions.empty()) {
    out += "  Vocabulary matches:\n";
    for (const Substitution& s : substitutions) {
      out += "    '" + s.query_phrase + "' ~ '" + s.matched_phrase +
             "' (sim " + FormatDouble(s.similarity, 2) + ")\n";
    }
  }
  return out;
}

Explanation ExplanationBuilder::Explain(
    const std::vector<std::string>& projection,
    const topk::Answer& answer) const {
  Explanation ex;
  ex.score = answer.score;

  // "?x = PrincetonUniversity, ?y = ..." over the projection prefix.
  std::vector<std::string> parts;
  for (size_t i = 0; i < projection.size() && i < answer.binding.size();
       ++i) {
    rdf::TermId value =
        answer.binding.Get(static_cast<query::VarId>(i));
    if (value == rdf::kNullTerm) continue;
    parts.push_back("?" + projection[i] + " = " +
                    xkg_->dict().DebugLabel(value));
  }
  ex.answer_rendering = Join(parts, ", ");

  std::set<rdf::TripleId> seen_triples;
  std::set<std::string> seen_rules;
  std::set<std::string> seen_subs;
  for (const topk::DerivationStep& step : answer.derivation) {
    for (rdf::TripleId id : step.triples) {
      if (!seen_triples.insert(id).second) continue;
      Explanation::TripleEvidence evidence;
      evidence.rendered = xkg_->RenderTriple(id);
      evidence.from_kg = xkg_->IsKgTriple(id);
      for (const xkg::Provenance& prov : xkg_->ProvenanceFor(id)) {
        evidence.provenance.emplace_back(prov.doc_id, prov.sentence);
      }
      (evidence.from_kg ? ex.kg_triples : ex.xkg_triples)
          .push_back(std::move(evidence));
    }
    for (const relax::Rule* rule : step.rules) {
      if (!seen_rules.insert(rule->name).second) continue;
      ex.rules.push_back(
          Explanation::RuleUse{rule->name, rule->ToString(), rule->weight});
    }
    for (const topk::SoftMatch& sm : step.soft_matches) {
      std::string key = sm.query_phrase + "|" + sm.matched_phrase;
      if (!seen_subs.insert(key).second) continue;
      ex.substitutions.push_back(Explanation::Substitution{
          sm.query_phrase, sm.matched_phrase, sm.similarity});
    }
  }
  return ex;
}

}  // namespace trinit::explain
