#ifndef TRINIT_EXPLAIN_EXPLANATION_H_
#define TRINIT_EXPLAIN_EXPLANATION_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "topk/answer.h"
#include "xkg/xkg.h"

namespace trinit::explain {

/// Structured explanation of one answer — the demo's answer-explanation
/// view (paper §5): "(i) the KG triples that contributed to an answer,
/// (ii) the XKG triples that contributed to an answer and their
/// provenance, and (iii) the relaxation rules that were invoked".
struct Explanation {
  struct TripleEvidence {
    std::string rendered;  ///< "S --P--> O"
    bool from_kg = true;
    /// Supporting sentences with their document ids (extraction triples).
    std::vector<std::pair<uint32_t, std::string>> provenance;
  };
  struct RuleUse {
    std::string name;
    std::string rendered;  ///< "lhs => rhs @ w"
    double weight = 1.0;
  };
  struct Substitution {
    std::string query_phrase;
    std::string matched_phrase;
    double similarity = 1.0;
  };

  std::string answer_rendering;  ///< "?x = PrincetonUniversity"
  double score = 0.0;
  std::vector<TripleEvidence> kg_triples;
  std::vector<TripleEvidence> xkg_triples;
  std::vector<RuleUse> rules;
  std::vector<Substitution> substitutions;

  /// Multi-line human-readable rendering (what the demo UI displayed).
  std::string ToString() const;
};

/// Builds explanations from answers' derivations.
class ExplanationBuilder {
 public:
  explicit ExplanationBuilder(const xkg::Xkg& xkg) : xkg_(&xkg) {}

  /// Explains `answer` of a query whose effective projection is
  /// `projection` (the names TopKResult carries).
  Explanation Explain(const std::vector<std::string>& projection,
                      const topk::Answer& answer) const;

 private:
  const xkg::Xkg* xkg_;
};

}  // namespace trinit::explain

#endif  // TRINIT_EXPLAIN_EXPLANATION_H_
