#include "eval/workload.h"

#include <algorithm>
#include <functional>
#include <set>

#include "util/random.h"

namespace trinit::eval {
namespace {

using synth::Entity;
using synth::EntityClass;
using synth::Fact;
using synth::World;

std::string Name(const World& world, uint32_t entity) {
  return world.entities[entity].name;
}

// Shared context for the per-archetype generators.
struct Gen {
  const World& world;
  Rng& rng;
  Workload& workload;
  size_t query_counter = 0;

  // Adds a query if it has at least one relevant judgment; returns
  // whether it was added.
  bool Add(const std::string& text, const std::string& archetype,
           const std::string& description,
           const std::vector<std::pair<std::string, int>>& judgments) {
    bool any_relevant = false;
    for (const auto& [key, grade] : judgments) {
      if (grade > 0) any_relevant = true;
    }
    if (!any_relevant) return false;
    EvalQuery q;
    q.id = "q" + std::to_string(query_counter++);
    q.text = text;
    q.archetype = archetype;
    q.description = description;
    for (const auto& [key, grade] : judgments) {
      workload.qrels.Set(q.id, key, grade);
    }
    workload.queries.push_back(std::move(q));
    return true;
  }
};

// ?x bornIn <Country> — user A's granularity mismatch.
bool GranularityQuery(Gen& gen) {
  const World& w = gen.world;
  const auto& countries = w.OfClass(EntityClass::kCountry);
  uint32_t country = countries[gen.rng.Uniform(countries.size())];
  size_t born_in = w.PredicateIndex("bornIn");
  std::vector<std::pair<std::string, int>> judgments;
  for (const Fact& f : w.facts) {
    if (f.predicate != born_in) continue;
    bool matches =
        (w.entities[f.object].cls == EntityClass::kCity &&
         w.CountryOf(f.object) == country) ||
        f.object == country;
    if (matches) {
      judgments.emplace_back(MakeAnswerKey({Name(w, f.subject)}), 3);
    }
  }
  return gen.Add("?x bornIn " + Name(w, country), "granularity",
                 "persons born in the country (KG stores cities)",
                 judgments);
}

// <Person> hasAdvisor ?x where the KG only models hasStudent.
bool InversionQuery(Gen& gen) {
  const World& w = gen.world;
  size_t has_advisor = w.PredicateIndex("hasAdvisor");
  std::vector<const Fact*> inverted;
  for (const Fact& f : w.facts) {
    if (f.predicate == has_advisor && f.in_kg && f.inverse_in_kg) {
      inverted.push_back(&f);
    }
  }
  if (inverted.empty()) return false;
  const Fact* pick = inverted[gen.rng.Uniform(inverted.size())];
  std::vector<std::pair<std::string, int>> judgments;
  for (const Fact& f : w.facts) {
    if (f.predicate == has_advisor && f.subject == pick->subject) {
      judgments.emplace_back(MakeAnswerKey({Name(w, f.object)}), 3);
    }
  }
  return gen.Add(Name(w, pick->subject) + " hasAdvisor ?x", "inversion",
                 "advisor stated as hasStudent in the KG", judgments);
}

// <Person> wonPrize ?x where the fact is held out (text-only).
bool TextOnlyQuery(Gen& gen) {
  const World& w = gen.world;
  size_t won_prize = w.PredicateIndex("wonPrize");
  std::vector<const Fact*> held_out;
  for (const Fact& f : w.facts) {
    if (f.predicate == won_prize && !f.in_kg) held_out.push_back(&f);
  }
  if (held_out.empty()) return false;
  const Fact* pick = held_out[gen.rng.Uniform(held_out.size())];
  std::vector<std::pair<std::string, int>> judgments;
  for (const Fact& f : w.facts) {
    if (f.predicate == won_prize && f.subject == pick->subject) {
      judgments.emplace_back(MakeAnswerKey({Name(w, f.object)}), 3);
    }
  }
  return gen.Add(Name(w, pick->subject) + " wonPrize ?x", "text-only",
                 "prize fact exists only in the corpus", judgments);
}

// ?x 'works at' <University> — token predicate, paraphrase translation.
bool ParaphraseQuery(Gen& gen) {
  const World& w = gen.world;
  size_t affiliation = w.PredicateIndex("affiliation");
  size_t member_inst = w.PredicateIndex("memberOfInstitute");
  size_t housed_in = w.PredicateIndex("housedIn");
  const auto& universities = w.OfClass(EntityClass::kUniversity);
  uint32_t university = universities[gen.rng.Uniform(universities.size())];

  std::vector<std::pair<std::string, int>> judgments;
  for (const Fact& f : w.facts) {
    if (f.predicate == affiliation && f.object == university) {
      judgments.emplace_back(MakeAnswerKey({Name(w, f.subject)}), 3);
    }
  }
  // Near-misses: members of institutes housed in the university.
  std::set<uint32_t> housed_institutes;
  for (const Fact& f : w.facts) {
    if (f.predicate == housed_in && f.object == university) {
      housed_institutes.insert(f.subject);
    }
  }
  for (const Fact& f : w.facts) {
    if (f.predicate == member_inst &&
        housed_institutes.count(f.object) > 0) {
      judgments.emplace_back(MakeAnswerKey({Name(w, f.subject)}), 1);
    }
  }
  return gen.Add("?x 'works at' " + Name(w, university), "paraphrase",
                 "token predicate must translate to affiliation",
                 judgments);
}

// ?x affiliation ?u ; ?u campusIn <City> — join-intensive.
bool JoinCampusQuery(Gen& gen) {
  const World& w = gen.world;
  size_t affiliation = w.PredicateIndex("affiliation");
  size_t campus_in = w.PredicateIndex("campusIn");
  const auto& cities = w.OfClass(EntityClass::kCity);
  uint32_t city = cities[gen.rng.Uniform(cities.size())];

  std::set<uint32_t> unis_in_city;
  for (const Fact& f : w.facts) {
    if (f.predicate == campus_in && f.object == city) {
      unis_in_city.insert(f.subject);
    }
  }
  std::vector<std::pair<std::string, int>> judgments;
  for (const Fact& f : w.facts) {
    if (f.predicate == affiliation && unis_in_city.count(f.object) > 0) {
      judgments.emplace_back(MakeAnswerKey({Name(w, f.subject)}), 3);
    }
  }
  return gen.Add(
      "SELECT ?x WHERE ?x affiliation ?u ; ?u campusIn " + Name(w, city),
      "join-campus", "persons working at universities in the city",
      judgments);
}

// ?x hasAdvisor ?a ; ?a wonPrize <Prize> — join with double mismatch.
bool JoinAdvisorQuery(Gen& gen) {
  const World& w = gen.world;
  size_t has_advisor = w.PredicateIndex("hasAdvisor");
  size_t won_prize = w.PredicateIndex("wonPrize");
  const auto& prizes = w.OfClass(EntityClass::kPrize);
  uint32_t prize = prizes[gen.rng.Uniform(prizes.size())];

  std::set<uint32_t> winners;
  for (const Fact& f : w.facts) {
    if (f.predicate == won_prize && f.object == prize) {
      winners.insert(f.subject);
    }
  }
  std::vector<std::pair<std::string, int>> judgments;
  for (const Fact& f : w.facts) {
    if (f.predicate == has_advisor && winners.count(f.object) > 0) {
      judgments.emplace_back(MakeAnswerKey({Name(w, f.subject)}), 3);
    }
  }
  return gen.Add("SELECT ?x WHERE ?x hasAdvisor ?a ; ?a wonPrize " +
                     Name(w, prize),
                 "join-advisor", "students of laureates of the prize",
                 judgments);
}

}  // namespace

std::string MakeAnswerKey(const std::vector<std::string>& labels) {
  std::string key;
  for (const std::string& label : labels) {
    key += label.empty() ? "?" : label;
    key.push_back('|');
  }
  return key;
}

Workload WorkloadGenerator::Generate(const World& world, Options options) {
  Workload workload;
  Rng rng(options.seed);
  Gen gen{world, rng, workload};

  // Join archetypes get double slots: the paper's query set is
  // join-intensive ("TriniT is specifically geared for these
  // join-intensive queries", §5).
  std::vector<std::function<bool(Gen&)>> archetypes = {
      GranularityQuery, JoinCampusQuery,  InversionQuery,
      JoinAdvisorQuery, TextOnlyQuery,    JoinCampusQuery,
      ParaphraseQuery,  JoinAdvisorQuery};

  std::set<std::string> seen_texts;
  size_t attempts = 0;
  const size_t max_attempts = options.num_queries * 60;
  size_t next_archetype = 0;
  while (workload.queries.size() < options.num_queries &&
         attempts < max_attempts) {
    ++attempts;
    // Round-robin over archetypes each attempt; a world can saturate an
    // archetype (only so many distinct countries/prizes), so cycling
    // keeps filling from the others.
    if (archetypes[next_archetype++ % archetypes.size()](gen)) {
      // Reject duplicates (same query text drawn twice).
      const EvalQuery& added = workload.queries.back();
      if (!seen_texts.insert(added.text).second) {
        workload.queries.pop_back();
      }
    }
  }
  return workload;
}

}  // namespace trinit::eval
