#ifndef TRINIT_EVAL_WORKLOAD_H_
#define TRINIT_EVAL_WORKLOAD_H_

#include <string>
#include <vector>

#include "eval/qrels.h"
#include "synth/kg_generator.h"

namespace trinit::eval {

/// One benchmark query with its provenance.
struct EvalQuery {
  std::string id;         ///< "q17"
  std::string text;       ///< parseable TriniT query syntax
  std::string archetype;  ///< which pain point it exercises
  std::string description;
};

/// A benchmark: queries plus graded judgments.
struct Workload {
  std::vector<EvalQuery> queries;
  Qrels qrels;
};

/// Canonical answer key: projection labels joined by '|' (with a
/// trailing '|'), e.g. "Anna_Keller_3|". Unbound variables render '?'.
std::string MakeAnswerKey(const std::vector<std::string>& labels);

/// Generates entity-relationship queries with programmatic relevance
/// judgments from the ground-truth world — the stand-in for the paper's
/// 70 hand-built ER queries with human qrels (§4, DESIGN.md §4).
///
/// Archetypes map one-to-one onto the paper's pain points:
///  * granularity  — "?x bornIn <Country>" while the KG stores cities
///                   (user A);
///  * inversion    — "<Person> hasAdvisor ?x" while the KG models
///                   hasStudent (user B);
///  * text-only    — "<Person> wonPrize ?x" where the fact was held out
///                   of the KG and only text expresses it (users C, D);
///  * paraphrase   — "?x 'works at' <University>": token predicate needs
///                   vocabulary translation;
///  * join-campus  — "?x affiliation ?u ; ?u campusIn <City>":
///                   join-intensive, mixes KG structure with held-out
///                   affiliation facts;
///  * join-advisor — "?x hasAdvisor ?a ; ?a wonPrize <Prize>":
///                   join-intensive with two mismatches at once.
///
/// Grades: 3 = ground-truth answer; 1 = near-miss (e.g. a person whose
/// *institute* is housed in the asked-for university).
class WorkloadGenerator {
 public:
  struct Options {
    size_t num_queries = 70;  ///< the paper's query-set size
    uint64_t seed = 99;
  };

  static Workload Generate(const synth::World& world, Options options);
  static Workload Generate(const synth::World& world) {
    return Generate(world, Options());
  }
};

}  // namespace trinit::eval

#endif  // TRINIT_EVAL_WORKLOAD_H_
