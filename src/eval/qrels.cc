#include "eval/qrels.h"

#include <algorithm>

namespace trinit::eval {

void Qrels::Set(const std::string& query_id, const std::string& answer_key,
                int grade) {
  int& slot = judgments_[query_id][answer_key];
  slot = std::max(slot, grade);
}

int Qrels::Grade(const std::string& query_id,
                 const std::string& answer_key) const {
  auto qit = judgments_.find(query_id);
  if (qit == judgments_.end()) return 0;
  auto ait = qit->second.find(answer_key);
  return ait == qit->second.end() ? 0 : ait->second;
}

std::vector<int> Qrels::IdealGrades(const std::string& query_id) const {
  std::vector<int> grades;
  auto qit = judgments_.find(query_id);
  if (qit == judgments_.end()) return grades;
  for (const auto& [key, grade] : qit->second) {
    if (grade > 0) grades.push_back(grade);
  }
  return grades;
}

size_t Qrels::RelevantCount(const std::string& query_id) const {
  return IdealGrades(query_id).size();
}

void Qrels::ForEach(
    const std::string& query_id,
    const std::function<void(const std::string&, int)>& fn) const {
  auto qit = judgments_.find(query_id);
  if (qit == judgments_.end()) return;
  for (const auto& [key, grade] : qit->second) fn(key, grade);
}

}  // namespace trinit::eval
