#ifndef TRINIT_EVAL_QRELS_H_
#define TRINIT_EVAL_QRELS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace trinit::eval {

/// Graded relevance judgments, TREC-style: query id -> answer key ->
/// grade (0 = not relevant; 3 = exactly right; 1-2 = partially right).
///
/// Answer keys are projection bindings rendered as `label|label|...`
/// using canonical entity labels, so they are comparable across engines
/// that use different dictionaries (e.g. the KG-only baseline).
class Qrels {
 public:
  void Set(const std::string& query_id, const std::string& answer_key,
           int grade);

  /// Grade of an answer, 0 if unjudged.
  int Grade(const std::string& query_id,
            const std::string& answer_key) const;

  /// All positive grades of a query (the ideal-ranking multiset).
  std::vector<int> IdealGrades(const std::string& query_id) const;

  /// Number of relevant (grade > 0) answers of a query.
  size_t RelevantCount(const std::string& query_id) const;

  size_t query_count() const { return judgments_.size(); }

  /// Visits every judged (answer key, grade) of a query (serialization).
  void ForEach(const std::string& query_id,
               const std::function<void(const std::string&, int)>& fn) const;

 private:
  std::unordered_map<std::string, std::unordered_map<std::string, int>>
      judgments_;
};

}  // namespace trinit::eval

#endif  // TRINIT_EVAL_QRELS_H_
