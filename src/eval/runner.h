#ifndef TRINIT_EVAL_RUNNER_H_
#define TRINIT_EVAL_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "eval/workload.h"
#include "topk/topk_processor.h"
#include "xkg/xkg.h"

namespace trinit::eval {

/// A retrieval system under evaluation: a name and a function producing
/// ranked answer keys (see `MakeAnswerKey`) for a benchmark query.
/// Engines with different dictionaries (e.g. the KG-only condition)
/// compare fairly because keys are label-based.
struct SystemUnderTest {
  std::string name;
  std::function<std::vector<std::string>(const EvalQuery&, int k)> answer;
};

/// Per-system aggregate results over a workload.
struct SystemReport {
  std::string name;
  double ndcg5 = 0.0;   ///< the paper's headline metric
  double ndcg10 = 0.0;
  double map = 0.0;
  double p1 = 0.0;
  double mrr = 0.0;
  double answered = 0.0;  ///< fraction of queries with >= 1 answer
  double mean_latency_ms = 0.0;
  /// Mean NDCG@5 per archetype, aligned with `archetypes`.
  std::vector<std::string> archetypes;
  std::vector<double> ndcg5_by_archetype;
};

/// Runs every system over every workload query and aggregates metrics.
class Runner {
 public:
  static std::vector<SystemReport> Run(
      const Workload& workload,
      const std::vector<SystemUnderTest>& systems, int k = 10);
};

/// Converts a processor result into ranked label-based answer keys using
/// the engine's own dictionary.
std::vector<std::string> KeysFromResult(const xkg::Xkg& xkg,
                                        const topk::TopKResult& result);

}  // namespace trinit::eval

#endif  // TRINIT_EVAL_RUNNER_H_
