#ifndef TRINIT_EVAL_RUNNER_H_
#define TRINIT_EVAL_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "topk/topk_processor.h"
#include "xkg/xkg.h"

namespace trinit::eval {

/// A retrieval system under evaluation: a name and a function producing
/// ranked answer keys (see `MakeAnswerKey`) for a benchmark query.
/// Engines with different dictionaries (e.g. the KG-only condition)
/// compare fairly because keys are label-based.
struct SystemUnderTest {
  std::string name;
  std::function<std::vector<std::string>(const EvalQuery&, int k)> answer;
};

/// A system under evaluation expressed directly as a `core::Engine` —
/// the preferred form: the runner drives the engine through the unified
/// request/response API, so the ad-hoc parse-and-answer lambdas of the
/// bench harnesses collapse to a name + pointer (+ an optional request
/// template for per-system option overrides).
struct EngineUnderTest {
  std::string name;                         ///< display label for reports
  const core::Engine* engine = nullptr;     ///< not owned; must outlive Run
  /// Template for every request sent to this engine: `text` and `k` are
  /// filled in per workload query, everything else (scorer/processor
  /// overrides, relaxation toggle, budgets) is forwarded as-is.
  core::QueryRequest base;
};

/// Per-system aggregate results over a workload.
struct SystemReport {
  std::string name;
  double ndcg5 = 0.0;   ///< the paper's headline metric
  double ndcg10 = 0.0;
  double map = 0.0;
  double p1 = 0.0;
  double mrr = 0.0;
  double answered = 0.0;  ///< fraction of queries with >= 1 answer
  double mean_latency_ms = 0.0;
  /// Mean NDCG@5 per archetype, aligned with `archetypes`.
  std::vector<std::string> archetypes;
  std::vector<double> ndcg5_by_archetype;
};

/// Runs every system over every workload query and aggregates metrics.
class Runner {
 public:
  static std::vector<SystemReport> Run(
      const Workload& workload,
      const std::vector<SystemUnderTest>& systems, int k = 10);

  /// Unified-interface form: every engine is driven through
  /// `core::Engine::Execute`; failed requests score as "no answers".
  static std::vector<SystemReport> Run(
      const Workload& workload,
      const std::vector<EngineUnderTest>& engines, int k = 10);
};

/// Converts a processor result into ranked label-based answer keys using
/// the engine's own dictionary.
std::vector<std::string> KeysFromResult(const xkg::Xkg& xkg,
                                        const topk::TopKResult& result);

}  // namespace trinit::eval

#endif  // TRINIT_EVAL_RUNNER_H_
