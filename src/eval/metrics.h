#ifndef TRINIT_EVAL_METRICS_H_
#define TRINIT_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace trinit::eval {

/// Rank-quality metrics over graded relevance judgments. The input to
/// each metric is the gain (grade) of the answer at each rank, highest
/// rank first; `ideal_grades` is the multiset of all relevant grades for
/// the query (used for the ideal DCG and recall bases).

/// Discounted cumulative gain at cutoff `k` with the standard
/// log2(rank+1) discount.
double DcgAtK(const std::vector<int>& grades, size_t k);

/// NDCG@k = DCG@k / IDCG@k; 0 when the query has no relevant answers.
/// This is the paper's headline metric (NDCG@5, §4).
double NdcgAtK(const std::vector<int>& grades,
               const std::vector<int>& ideal_grades, size_t k);

/// Fraction of the top-k that is relevant (grade > 0).
double PrecisionAtK(const std::vector<int>& grades, size_t k);

/// Average precision over relevant items (binary: grade > 0);
/// denominator is the total number of relevant items for the query.
double AveragePrecision(const std::vector<int>& grades,
                        size_t total_relevant);

/// Reciprocal rank of the first relevant answer (0 when none).
double ReciprocalRank(const std::vector<int>& grades);

}  // namespace trinit::eval

#endif  // TRINIT_EVAL_METRICS_H_
