#include "eval/runner.h"

#include <algorithm>
#include <map>

#include "util/timer.h"

namespace trinit::eval {

std::vector<std::string> KeysFromResult(const xkg::Xkg& xkg,
                                        const topk::TopKResult& result) {
  std::vector<std::string> keys;
  keys.reserve(result.answers.size());
  for (const topk::Answer& answer : result.answers) {
    std::vector<std::string> labels;
    for (size_t i = 0; i < result.projection.size(); ++i) {
      rdf::TermId value =
          i < answer.binding.size()
              ? answer.binding.Get(static_cast<query::VarId>(i))
              : rdf::kNullTerm;
      labels.push_back(value == rdf::kNullTerm
                           ? ""
                           : std::string(xkg.dict().label(value)));
    }
    keys.push_back(MakeAnswerKey(labels));
  }
  return keys;
}

std::vector<SystemReport> Runner::Run(
    const Workload& workload, const std::vector<EngineUnderTest>& engines,
    int k) {
  std::vector<SystemUnderTest> systems;
  systems.reserve(engines.size());
  for (const EngineUnderTest& sut : engines) {
    const core::Engine* engine = sut.engine;
    core::QueryRequest base = sut.base;
    systems.push_back(
        {sut.name,
         [engine, base](const EvalQuery& query,
                        int wanted) -> std::vector<std::string> {
           core::QueryRequest request = base;
           request.text = query.text;
           request.query.reset();
           request.k = wanted;
           auto response = engine->Execute(request);
           if (!response.ok()) return {};
           return KeysFromResult(engine->xkg(), response->result());
         }});
  }
  return Run(workload, systems, k);
}

std::vector<SystemReport> Runner::Run(
    const Workload& workload, const std::vector<SystemUnderTest>& systems,
    int k) {
  std::vector<SystemReport> reports;
  for (const SystemUnderTest& system : systems) {
    SystemReport report;
    report.name = system.name;
    std::map<std::string, std::pair<double, size_t>> by_archetype;

    size_t n = workload.queries.size();
    for (const EvalQuery& query : workload.queries) {
      WallTimer timer;
      std::vector<std::string> keys = system.answer(query, k);
      report.mean_latency_ms += timer.ElapsedMillis();

      std::vector<int> grades;
      grades.reserve(keys.size());
      for (const std::string& key : keys) {
        grades.push_back(workload.qrels.Grade(query.id, key));
      }
      std::vector<int> ideal = workload.qrels.IdealGrades(query.id);

      double ndcg5 = NdcgAtK(grades, ideal, 5);
      report.ndcg5 += ndcg5;
      report.ndcg10 += NdcgAtK(grades, ideal, 10);
      report.map += AveragePrecision(grades, ideal.size());
      report.p1 += PrecisionAtK(grades, 1);
      report.mrr += ReciprocalRank(grades);
      report.answered += keys.empty() ? 0.0 : 1.0;

      auto& [sum, count] = by_archetype[query.archetype];
      sum += ndcg5;
      ++count;
    }
    if (n > 0) {
      double dn = static_cast<double>(n);
      report.ndcg5 /= dn;
      report.ndcg10 /= dn;
      report.map /= dn;
      report.p1 /= dn;
      report.mrr /= dn;
      report.answered /= dn;
      report.mean_latency_ms /= dn;
    }
    for (const auto& [archetype, sum_count] : by_archetype) {
      report.archetypes.push_back(archetype);
      report.ndcg5_by_archetype.push_back(
          sum_count.second > 0
              ? sum_count.first / static_cast<double>(sum_count.second)
              : 0.0);
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace trinit::eval
