#include "eval/workload_io.h"

#include <cstdio>
#include <cstdlib>

#include "util/tsv.h"

namespace trinit::eval {
namespace {

Result<Workload> LoadImpl(
    const std::function<Status(
        const std::function<Status(size_t, const std::vector<std::string>&)>&)>&
        source) {
  Workload workload;
  Status st = source([&workload](size_t line,
                                 const std::vector<std::string>& f)
                         -> Status {
    if (f.empty()) return Status::Ok();
    if (f[0] == "Q") {
      if (f.size() < 4) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": Q row needs id, archetype, text");
      }
      EvalQuery q;
      q.id = f[1];
      q.archetype = f[2];
      q.text = f[3];
      if (f.size() > 4) q.description = f[4];
      workload.queries.push_back(std::move(q));
      return Status::Ok();
    }
    if (f[0] == "J") {
      if (f.size() < 4) {
        return Status::ParseError("line " + std::to_string(line) +
                                  ": J row needs query, key, grade");
      }
      workload.qrels.Set(f[1], f[2], std::atoi(f[3].c_str()));
      return Status::Ok();
    }
    return Status::ParseError("line " + std::to_string(line) +
                              ": unknown row tag '" + f[0] + "'");
  });
  TRINIT_RETURN_IF_ERROR(st);
  return workload;
}

}  // namespace

Status WorkloadIo::Save(const Workload& workload, const std::string& path) {
  TsvWriter writer(path);
  TRINIT_RETURN_IF_ERROR(writer.status());
  writer.WriteComment("TriniT evaluation workload");
  for (const EvalQuery& q : workload.queries) {
    writer.WriteRow({"Q", q.id, q.archetype, q.text, q.description});
  }
  for (const EvalQuery& q : workload.queries) {
    workload.qrels.ForEach(q.id, [&writer, &q](const std::string& key,
                                               int grade) {
      writer.WriteRow({"J", q.id, key, std::to_string(grade)});
    });
  }
  return writer.Close();
}

Result<Workload> WorkloadIo::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open workload file: " + path);
  }
  std::string content;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return LoadFromString(content);
}

Result<Workload> WorkloadIo::LoadFromString(const std::string& content) {
  return LoadImpl([&content](const auto& row_fn) {
    return TsvReader::ForEachRowInString(content, row_fn);
  });
}

}  // namespace trinit::eval
