#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace trinit::eval {

double DcgAtK(const std::vector<int>& grades, size_t k) {
  double dcg = 0.0;
  size_t n = std::min(k, grades.size());
  for (size_t i = 0; i < n; ++i) {
    // Graded gain (2^g - 1) emphasizes highly relevant answers.
    double gain = std::pow(2.0, grades[i]) - 1.0;
    dcg += gain / std::log2(static_cast<double>(i) + 2.0);
  }
  return dcg;
}

double NdcgAtK(const std::vector<int>& grades,
               const std::vector<int>& ideal_grades, size_t k) {
  std::vector<int> ideal = ideal_grades;
  std::sort(ideal.begin(), ideal.end(), std::greater<int>());
  double idcg = DcgAtK(ideal, k);
  if (idcg <= 0.0) return 0.0;
  return DcgAtK(grades, k) / idcg;
}

double PrecisionAtK(const std::vector<int>& grades, size_t k) {
  if (k == 0) return 0.0;
  size_t relevant = 0;
  for (size_t i = 0; i < k && i < grades.size(); ++i) {
    if (grades[i] > 0) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(k);
}

double AveragePrecision(const std::vector<int>& grades,
                        size_t total_relevant) {
  if (total_relevant == 0) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < grades.size(); ++i) {
    if (grades[i] > 0) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(total_relevant);
}

double ReciprocalRank(const std::vector<int>& grades) {
  for (size_t i = 0; i < grades.size(); ++i) {
    if (grades[i] > 0) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

}  // namespace trinit::eval
