#ifndef TRINIT_EVAL_WORKLOAD_IO_H_
#define TRINIT_EVAL_WORKLOAD_IO_H_

#include <string>

#include "eval/workload.h"
#include "util/result.h"

namespace trinit::eval {

/// Persistence for benchmark workloads, so a generated query set +
/// judgments can be shipped and re-used across engine versions (the
/// paper's 70-query benchmark was a fixed artifact; ours should be
/// freezable too).
///
/// TSV rows:
///   Q  <id> <archetype> <query text> <description>
///   J  <query id> <answer key> <grade>
class WorkloadIo {
 public:
  /// Writes queries and judgments to `path` (overwrites).
  static Status Save(const Workload& workload, const std::string& path);

  /// Loads a workload previously written by Save.
  static Result<Workload> Load(const std::string& path);

  /// Parses workload TSV content from a string (tests).
  static Result<Workload> LoadFromString(const std::string& content);
};

}  // namespace trinit::eval

#endif  // TRINIT_EVAL_WORKLOAD_IO_H_
