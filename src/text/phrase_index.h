#ifndef TRINIT_TEXT_PHRASE_INDEX_H_
#define TRINIT_TEXT_PHRASE_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace trinit::text {

/// Inverted index from individual tokens to the token-phrase terms that
/// contain them.
///
/// This is what lets a user's token term soft-match XKG vocabulary: the
/// query phrase 'won nobel for' retrieves every interned phrase sharing a
/// content token ('won a nobel for', 'won the nobel prize for', ...),
/// each with a similarity score. The demo's ElasticSearch analyzers
/// played this role.
class PhraseIndex {
 public:
  /// A candidate phrase term with its similarity to the probe phrase.
  struct Candidate {
    rdf::TermId term = rdf::kNullTerm;
    double similarity = 0.0;
  };

  /// Builds the index over every token-kind term in `dict`. The
  /// dictionary must outlive the index; phrases interned after
  /// construction are not visible (rebuild to refresh).
  static PhraseIndex Build(const rdf::Dictionary& dict);

  PhraseIndex(const PhraseIndex&) = delete;
  PhraseIndex& operator=(const PhraseIndex&) = delete;
  PhraseIndex(PhraseIndex&&) = default;
  PhraseIndex& operator=(PhraseIndex&&) = default;

  /// All phrase terms whose similarity to `phrase` is >= min_similarity,
  /// sorted by descending similarity (ties by ascending id). The probe
  /// does not need to be interned.
  std::vector<Candidate> FindSimilar(std::string_view phrase,
                                     double min_similarity) const;

  /// Phrase terms containing `token` (exact token match).
  const std::vector<rdf::TermId>& PostingsFor(std::string_view token) const;

  /// Number of indexed phrase terms.
  size_t phrase_count() const { return phrase_count_; }

  /// Number of distinct tokens.
  size_t token_count() const { return postings_.size(); }

 private:
  explicit PhraseIndex(const rdf::Dictionary& dict) : dict_(&dict) {}

  const rdf::Dictionary* dict_;
  std::unordered_map<std::string, std::vector<rdf::TermId>> postings_;
  std::vector<rdf::TermId> empty_;
  size_t phrase_count_ = 0;
};

}  // namespace trinit::text

#endif  // TRINIT_TEXT_PHRASE_INDEX_H_
