#ifndef TRINIT_TEXT_PHRASE_H_
#define TRINIT_TEXT_PHRASE_H_

#include <string>
#include <string_view>
#include <vector>

namespace trinit::text {

/// Canonical form of a token phrase as stored in the XKG dictionary:
/// tokenized (lower-case, punctuation-stripped) and re-joined with single
/// spaces. "Won  a NOBEL for" -> "won a nobel for". Empty result means
/// the input had no word characters.
std::string NormalizePhrase(std::string_view raw);

/// Tokens of a normalized (or raw) phrase.
std::vector<std::string> PhraseTokens(std::string_view phrase);

/// Content (non-stopword) tokens of a phrase; falls back to all tokens
/// when every token is a stopword (e.g. the phrase "is in").
std::vector<std::string> ContentTokens(std::string_view phrase);

}  // namespace trinit::text

#endif  // TRINIT_TEXT_PHRASE_H_
