#include "text/phrase.h"

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace trinit::text {

std::string NormalizePhrase(std::string_view raw) {
  return Join(Tokenizer::Tokenize(raw), " ");
}

std::vector<std::string> PhraseTokens(std::string_view phrase) {
  return Tokenizer::Tokenize(phrase);
}

std::vector<std::string> ContentTokens(std::string_view phrase) {
  std::vector<std::string> all = Tokenizer::Tokenize(phrase);
  std::vector<std::string> content;
  for (const std::string& t : all) {
    if (!Tokenizer::IsStopword(t)) content.push_back(t);
  }
  return content.empty() ? all : content;
}

}  // namespace trinit::text
