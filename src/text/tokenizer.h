#ifndef TRINIT_TEXT_TOKENIZER_H_
#define TRINIT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace trinit::text {

/// Lexical analysis for the Open IE pipeline and the token-phrase side of
/// the XKG. ASCII-oriented: KG labels, aliases, and the synthetic corpus
/// are ASCII in this reproduction.
class Tokenizer {
 public:
  /// Lower-cases, strips punctuation (keeping intra-word hyphens and
  /// apostrophes), and splits on whitespace. "Einstein won a Nobel!"
  /// -> {"einstein", "won", "a", "nobel"}.
  static std::vector<std::string> Tokenize(std::string_view s);

  /// Splits raw text into sentences on '.', '!', '?' boundaries followed
  /// by whitespace/end. Abbreviation handling is not needed for the
  /// synthetic corpus.
  static std::vector<std::string> SplitSentences(std::string_view s);

  /// True for high-frequency function words ("a", "the", "of", ...).
  /// Used by similarity weighting and the extractor's confidence model.
  static bool IsStopword(std::string_view token);
};

}  // namespace trinit::text

#endif  // TRINIT_TEXT_TOKENIZER_H_
