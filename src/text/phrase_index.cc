#include "text/phrase_index.h"

#include <algorithm>

#include "text/phrase.h"
#include "text/similarity.h"

namespace trinit::text {

PhraseIndex PhraseIndex::Build(const rdf::Dictionary& dict) {
  PhraseIndex index(dict);
  dict.ForEach([&](rdf::TermId id) {
    if (dict.kind(id) != rdf::TermKind::kToken) return;
    ++index.phrase_count_;
    std::vector<std::string> tokens = ContentTokens(dict.label(id));
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const std::string& t : tokens) {
      index.postings_[t].push_back(id);
    }
  });
  return index;
}

std::vector<PhraseIndex::Candidate> PhraseIndex::FindSimilar(
    std::string_view phrase, double min_similarity) const {
  std::vector<std::string> probe_tokens = ContentTokens(phrase);
  // Union of postings of the probe's tokens = the only phrases that can
  // have non-zero content-token overlap.
  std::vector<rdf::TermId> candidates;
  for (const std::string& t : probe_tokens) {
    const std::vector<rdf::TermId>& list = PostingsFor(t);
    candidates.insert(candidates.end(), list.begin(), list.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<Candidate> out;
  for (rdf::TermId id : candidates) {
    double sim = PhraseSimilarity(phrase, dict_->label(id));
    if (sim >= min_similarity) out.push_back({id, sim});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.term < b.term;
  });
  return out;
}

const std::vector<rdf::TermId>& PhraseIndex::PostingsFor(
    std::string_view token) const {
  auto it = postings_.find(std::string(token));
  return it == postings_.end() ? empty_ : it->second;
}

}  // namespace trinit::text
