#include "text/similarity.h"

#include <algorithm>

#include "text/phrase.h"

namespace trinit::text {
namespace {

// Returns (|A ∩ B|, |A|, |B|) over de-duplicated token sets.
struct SetCounts {
  size_t intersection;
  size_t a_size;
  size_t b_size;
};

SetCounts Count(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  std::vector<std::string> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  size_t inter = 0;
  auto ia = sa.begin();
  auto ib = sb.begin();
  while (ia != sa.end() && ib != sb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return {inter, sa.size(), sb.size()};
}

}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  SetCounts c = Count(a, b);
  size_t uni = c.a_size + c.b_size - c.intersection;
  if (uni == 0) return 0.0;
  return static_cast<double>(c.intersection) / static_cast<double>(uni);
}

double Containment(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  SetCounts c = Count(a, b);
  if (c.a_size == 0) return 1.0;
  return static_cast<double>(c.intersection) / static_cast<double>(c.a_size);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  SetCounts c = Count(a, b);
  if (c.a_size + c.b_size == 0) return 0.0;
  return 2.0 * static_cast<double>(c.intersection) /
         static_cast<double>(c.a_size + c.b_size);
}

double PhraseSimilarity(std::string_view a, std::string_view b) {
  return JaccardSimilarity(ContentTokens(a), ContentTokens(b));
}

}  // namespace trinit::text
