#include "text/tokenizer.h"

#include <array>
#include <cctype>

namespace trinit::text {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (IsWordChar(c)) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if ((c == '-' || c == '\'') && !current.empty() &&
               i + 1 < s.size() && IsWordChar(s[i + 1])) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> Tokenizer::SplitSentences(std::string_view s) {
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    current.push_back(c);
    if ((c == '.' || c == '!' || c == '?') &&
        (i + 1 == s.size() ||
         std::isspace(static_cast<unsigned char>(s[i + 1])))) {
      // Trim leading whitespace of the accumulated sentence.
      size_t start = current.find_first_not_of(" \t\n\r");
      if (start != std::string::npos) {
        sentences.push_back(current.substr(start));
      }
      current.clear();
    }
  }
  size_t start = current.find_first_not_of(" \t\n\r");
  if (start != std::string::npos) sentences.push_back(current.substr(start));
  return sentences;
}

bool Tokenizer::IsStopword(std::string_view token) {
  static constexpr std::array<std::string_view, 34> kStopwords = {
      "a",    "an",  "the", "of",   "in",   "on",  "at",   "to",  "for",
      "by",   "with", "and", "or",  "is",   "was", "were", "are", "be",
      "been", "as",  "his", "her",  "its",  "their", "from", "that", "this",
      "it",   "he",  "she", "they", "has",  "had",  "have"};
  for (std::string_view w : kStopwords) {
    if (w == token) return true;
  }
  return false;
}

}  // namespace trinit::text
