#ifndef TRINIT_TEXT_SIMILARITY_H_
#define TRINIT_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace trinit::text {

/// Token-set similarity measures used to soft-match a user's token
/// phrase against XKG token terms (extended triple patterns, paper §2)
/// and to rank query suggestions (paper §5).

/// |A ∩ B| / |A ∪ B| over token multiset-collapsed sets; 0 when both
/// empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// |A ∩ B| / |A| — how much of `a` is contained in `b`; 1 when a empty.
double Containment(const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

/// 2|A ∩ B| / (|A| + |B|).
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// Phrase-level convenience: tokenizes both sides, drops stopwords
/// (falling back to all tokens when a side is all stopwords), and
/// returns the Jaccard similarity. This is the default soft-match
/// measure for token terms.
double PhraseSimilarity(std::string_view a, std::string_view b);

}  // namespace trinit::text

#endif  // TRINIT_TEXT_SIMILARITY_H_
