#include "query/parser.h"

#include <cctype>
#include <vector>

#include "util/string_util.h"

namespace trinit::query {
namespace {

struct Lexer {
  std::string_view input;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < input.size() &&
           std::isspace(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= input.size();
  }

  /// Lexes one raw token: quoted strings keep their quote kind.
  struct Lexeme {
    enum class Kind { kWord, kSingleQuoted, kDoubleQuoted, kSeparator };
    Kind kind;
    std::string text;
  };

  Result<Lexeme> Next() {
    SkipSpace();
    if (pos >= input.size()) {
      return Status::ParseError("unexpected end of query");
    }
    char c = input[pos];
    if (c == ';' || c == '.') {
      ++pos;
      return Lexeme{Lexeme::Kind::kSeparator, std::string(1, c)};
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t end = input.find(quote, pos + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated quote starting at offset " +
                                  std::to_string(pos));
      }
      std::string text(input.substr(pos + 1, end - pos - 1));
      pos = end + 1;
      return Lexeme{quote == '\'' ? Lexeme::Kind::kSingleQuoted
                                  : Lexeme::Kind::kDoubleQuoted,
                    std::move(text)};
    }
    size_t start = pos;
    while (pos < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[pos])) &&
           input[pos] != ';' && input[pos] != '\'' && input[pos] != '"') {
      // '.' terminates a pattern only when followed by whitespace/end so
      // that literals-in-barewords like dates survive... but dates should
      // be double-quoted; keep '.' as a word char inside barewords unless
      // it's a standalone separator (handled above when c=='.').
      ++pos;
    }
    return Lexeme{Lexeme::Kind::kWord,
                  std::string(input.substr(start, pos - start))};
  }
};

Result<Term> TermFromLexeme(const Lexer::Lexeme& lex) {
  switch (lex.kind) {
    case Lexer::Lexeme::Kind::kSingleQuoted: {
      Term t = Term::Token(lex.text);
      if (t.text.empty()) {
        return Status::ParseError("token phrase '" + lex.text +
                                  "' has no word characters");
      }
      return t;
    }
    case Lexer::Lexeme::Kind::kDoubleQuoted:
      return Term::Literal(lex.text);
    case Lexer::Lexeme::Kind::kWord:
      if (lex.text[0] == '?') {
        std::string name = lex.text.substr(1);
        if (name.empty()) {
          return Status::ParseError("variable with empty name");
        }
        return Term::Variable(std::move(name));
      }
      return Term::Resource(lex.text);
    case Lexer::Lexeme::Kind::kSeparator:
      return Status::ParseError("unexpected separator '" + lex.text + "'");
  }
  return Status::Internal("unreachable lexeme kind");
}

}  // namespace

Result<Query> Parser::Parse(std::string_view input,
                            const rdf::Dictionary* dict) {
  Lexer lexer{input};
  if (lexer.AtEnd()) return Status::ParseError("empty query");

  std::vector<std::string> projection;

  // Optional `SELECT ?a ?b WHERE` prefix.
  size_t saved = lexer.pos;
  TRINIT_ASSIGN_OR_RETURN(Lexer::Lexeme first, lexer.Next());
  if (first.kind == Lexer::Lexeme::Kind::kWord &&
      (first.text == "SELECT" || first.text == "select")) {
    while (true) {
      if (lexer.AtEnd()) {
        return Status::ParseError("SELECT without WHERE clause");
      }
      TRINIT_ASSIGN_OR_RETURN(Lexer::Lexeme lex, lexer.Next());
      if (lex.kind == Lexer::Lexeme::Kind::kWord &&
          (lex.text == "WHERE" || lex.text == "where")) {
        break;
      }
      if (lex.kind != Lexer::Lexeme::Kind::kWord || lex.text[0] != '?' ||
          lex.text.size() < 2) {
        return Status::ParseError("expected projection variable, got '" +
                                  lex.text + "'");
      }
      projection.push_back(lex.text.substr(1));
    }
    if (projection.empty()) {
      return Status::ParseError("SELECT with empty projection list");
    }
  } else {
    lexer.pos = saved;  // no SELECT clause; re-read from the start
  }

  std::vector<TriplePattern> patterns;
  while (!lexer.AtEnd()) {
    TriplePattern pattern;
    Term* slots[3] = {&pattern.s, &pattern.p, &pattern.o};
    for (int i = 0; i < 3; ++i) {
      if (lexer.AtEnd()) {
        return Status::ParseError(
            "incomplete triple pattern: expected 3 terms, got " +
            std::to_string(i));
      }
      TRINIT_ASSIGN_OR_RETURN(Lexer::Lexeme lex, lexer.Next());
      TRINIT_ASSIGN_OR_RETURN(*slots[i], TermFromLexeme(lex));
    }
    patterns.push_back(std::move(pattern));
    if (!lexer.AtEnd()) {
      TRINIT_ASSIGN_OR_RETURN(Lexer::Lexeme sep, lexer.Next());
      if (sep.kind != Lexer::Lexeme::Kind::kSeparator) {
        return Status::ParseError("expected ';' between patterns, got '" +
                                  sep.text + "'");
      }
      if (lexer.AtEnd()) {
        return Status::ParseError("trailing separator without pattern");
      }
    }
  }

  Query q(std::move(patterns), std::move(projection));
  TRINIT_RETURN_IF_ERROR(q.Validate());
  if (dict != nullptr) q.ResolveAgainst(*dict);
  return q;
}

}  // namespace trinit::query
