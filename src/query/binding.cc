#include "query/binding.h"

#include <algorithm>

#include "util/logging.h"

namespace trinit::query {

VarTable::VarTable(const Query& query) : names_(query.Variables()) {}

VarTable::VarTable(std::vector<std::string> names)
    : names_(std::move(names)) {}

std::optional<VarId> VarTable::Find(const std::string& name) const {
  auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) return std::nullopt;
  return static_cast<VarId>(it - names_.begin());
}

VarId VarTable::Require(const std::string& name) const {
  std::optional<VarId> id = Find(name);
  TRINIT_CHECK(id.has_value());
  return *id;
}

std::vector<VarId> VarTable::IdsIn(const TriplePattern& pattern) const {
  std::vector<VarId> out;
  for (const std::string& name : pattern.Variables()) {
    std::optional<VarId> id = Find(name);
    if (id.has_value()) out.push_back(*id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Binding::Bind(VarId var, rdf::TermId value) {
  TRINIT_DCHECK(var < values_.size());
  TRINIT_DCHECK(value != rdf::kNullTerm);
  if (values_[var] != rdf::kNullTerm) return values_[var] == value;
  values_[var] = value;
  return true;
}

std::optional<Binding> Binding::MergedWith(const Binding& other) const {
  TRINIT_DCHECK(values_.size() == other.values_.size());
  Binding merged = *this;
  for (VarId v = 0; v < other.values_.size(); ++v) {
    if (other.values_[v] == rdf::kNullTerm) continue;
    if (!merged.Bind(v, other.values_[v])) return std::nullopt;
  }
  return merged;
}

Binding Binding::Prefix(size_t num_vars) const {
  TRINIT_DCHECK(num_vars <= values_.size());
  Binding out(num_vars);
  for (size_t v = 0; v < num_vars; ++v) out.values_[v] = values_[v];
  return out;
}

bool Binding::IsComplete() const {
  return std::all_of(values_.begin(), values_.end(),
                     [](rdf::TermId v) { return v != rdf::kNullTerm; });
}

std::string Binding::KeyFor(const std::vector<VarId>& projection) const {
  std::string key;
  for (VarId v : projection) {
    key += std::to_string(v < values_.size() ? values_[v] : rdf::kNullTerm);
    key.push_back('|');
  }
  return key;
}

std::string Binding::ToString(const VarTable& table,
                              const rdf::Dictionary& dict) const {
  std::string out;
  for (VarId v = 0; v < values_.size() && v < table.size(); ++v) {
    if (values_[v] == rdf::kNullTerm) continue;
    if (!out.empty()) out += ", ";
    out += "?" + table.names()[v] + "=" + dict.DebugLabel(values_[v]);
  }
  return out;
}

}  // namespace trinit::query
