#ifndef TRINIT_QUERY_QUERY_H_
#define TRINIT_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "util/result.h"

namespace trinit::query {

/// One slot of a triple pattern: either a variable or a constant.
///
/// Constants carry both their surface text and (when resolvable) the
/// dictionary id. A resource constant that is *not* in the dictionary is
/// kept unresolved (`id == kNullTerm`): it matches nothing directly but
/// can still be rescued by relaxation (e.g. rewriting it to a token).
/// Token constants are stored normalized; they match the XKG both
/// exactly and softly via the phrase index (extended triple patterns,
/// paper §2).
struct Term {
  enum class Kind {
    kVariable,  ///< e.g. ?x
    kResource,  ///< canonical KG resource, e.g. AlbertEinstein
    kToken,     ///< quoted token phrase, e.g. 'won a nobel for'
    kLiteral,   ///< double-quoted literal, e.g. "1879-03-14"
  };

  Kind kind = Kind::kVariable;
  std::string text;              ///< variable name (no '?') or label
  rdf::TermId id = rdf::kNullTerm;  ///< resolved constant id, if any

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind != Kind::kVariable; }

  static Term Variable(std::string name);
  static Term Resource(std::string label, rdf::TermId id = rdf::kNullTerm);
  static Term Token(std::string phrase, rdf::TermId id = rdf::kNullTerm);
  static Term Literal(std::string value, rdf::TermId id = rdf::kNullTerm);

  /// Query-syntax rendering: `?x`, `AlbertEinstein`, `'won a nobel
  /// for'`, `"1879-03-14"`.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.text == b.text && a.id == b.id;
  }
};

/// A triple pattern S P O, any slot variable or constant.
struct TriplePattern {
  Term s, p, o;

  /// `?x bornIn Germany` style rendering.
  std::string ToString() const;

  /// Names of the variables appearing in this pattern, in S,P,O order,
  /// without duplicates.
  std::vector<std::string> Variables() const;

  friend bool operator==(const TriplePattern& a, const TriplePattern& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

/// A conjunctive triple-pattern query with projection variables — the
/// query class of the paper (§1): "a set of conjunctively combined
/// triple patterns ... occurrences of the same variable ... indicate a
/// join".
class Query {
 public:
  Query() = default;
  Query(std::vector<TriplePattern> patterns,
        std::vector<std::string> projection);

  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  std::vector<TriplePattern>& mutable_patterns() { return patterns_; }

  /// Projection variable names; empty means "all variables".
  const std::vector<std::string>& projection() const { return projection_; }

  /// All distinct variable names in pattern order of first occurrence.
  std::vector<std::string> Variables() const;

  /// Projection list resolved against Variables(): the explicit
  /// projection, or all variables when none was given.
  std::vector<std::string> EffectiveProjection() const;

  /// Validation: at least one pattern, every projection variable occurs
  /// in some pattern, no pattern with three unresolved constants slots
  /// that cannot match. Returns the first problem found.
  Status Validate() const;

  /// Re-resolves every constant term against `dict` (used after parsing
  /// with no dictionary or after loading a different XKG). Token
  /// constants that are absent stay unresolved — they may still soft
  /// match. Resource/literal constants that are absent also stay
  /// unresolved and are relaxation fodder.
  void ResolveAgainst(const rdf::Dictionary& dict);

  /// `SELECT ?x WHERE ?x bornIn Germany` style rendering (WHERE-only
  /// when the projection is implicit).
  std::string ToString() const;

  friend bool operator==(const Query& a, const Query& b) {
    return a.patterns_ == b.patterns_ && a.projection_ == b.projection_;
  }

 private:
  std::vector<TriplePattern> patterns_;
  std::vector<std::string> projection_;
};

}  // namespace trinit::query

#endif  // TRINIT_QUERY_QUERY_H_
