#ifndef TRINIT_QUERY_PARSER_H_
#define TRINIT_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "query/query.h"
#include "util/result.h"

namespace trinit::query {

/// Parser for TriniT's extended triple-pattern syntax (the textual form
/// of the demo's query interface, Figure 5):
///
///   [SELECT ?v1 ?v2 ... WHERE] pattern (';' pattern)*
///   pattern := term term term
///   term    := '?'name            variable
///            | 'token phrase'     textual token (any slot; paper §2)
///            | "literal"          literal value
///            | bareword           canonical KG resource
///
/// Examples from the paper:
///   ?x bornIn Germany
///   AlbertEinstein hasAdvisor ?x
///   SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague
///   AlbertEinstein 'won nobel for' ?x
///
/// The '.' separator is accepted as an alias for ';' (SPARQL habit).
class Parser {
 public:
  /// Parses `input`; when `dict` is non-null, constants are resolved
  /// against it (unresolved constants are kept, see Query::ResolveAgainst).
  static Result<Query> Parse(std::string_view input,
                             const rdf::Dictionary* dict = nullptr);
};

}  // namespace trinit::query

#endif  // TRINIT_QUERY_PARSER_H_
