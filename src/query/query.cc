#include "query/query.h"

#include <algorithm>

#include "text/phrase.h"

namespace trinit::query {

Term Term::Variable(std::string name) {
  Term t;
  t.kind = Kind::kVariable;
  t.text = std::move(name);
  return t;
}

Term Term::Resource(std::string label, rdf::TermId id) {
  Term t;
  t.kind = Kind::kResource;
  t.text = std::move(label);
  t.id = id;
  return t;
}

Term Term::Token(std::string phrase, rdf::TermId id) {
  Term t;
  t.kind = Kind::kToken;
  t.text = text::NormalizePhrase(phrase);
  t.id = id;
  return t;
}

Term Term::Literal(std::string value, rdf::TermId id) {
  Term t;
  t.kind = Kind::kLiteral;
  t.text = std::move(value);
  t.id = id;
  return t;
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVariable:
      return "?" + text;
    case Kind::kResource:
      return text;
    case Kind::kToken:
      return "'" + text + "'";
    case Kind::kLiteral:
      return "\"" + text + "\"";
  }
  return text;
}

std::string TriplePattern::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString();
}

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> vars;
  for (const Term* t : {&s, &p, &o}) {
    if (t->is_variable() &&
        std::find(vars.begin(), vars.end(), t->text) == vars.end()) {
      vars.push_back(t->text);
    }
  }
  return vars;
}

Query::Query(std::vector<TriplePattern> patterns,
             std::vector<std::string> projection)
    : patterns_(std::move(patterns)), projection_(std::move(projection)) {}

std::vector<std::string> Query::Variables() const {
  std::vector<std::string> vars;
  for (const TriplePattern& p : patterns_) {
    for (const std::string& v : p.Variables()) {
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
  }
  return vars;
}

std::vector<std::string> Query::EffectiveProjection() const {
  return projection_.empty() ? Variables() : projection_;
}

Status Query::Validate() const {
  if (patterns_.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  std::vector<std::string> vars = Variables();
  for (const std::string& v : projection_) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      return Status::InvalidArgument("projection variable ?" + v +
                                     " does not occur in any pattern");
    }
  }
  for (const TriplePattern& p : patterns_) {
    for (const Term* t : {&p.s, &p.p, &p.o}) {
      if (t->is_variable() && t->text.empty()) {
        return Status::InvalidArgument("unnamed variable in pattern " +
                                       p.ToString());
      }
      if (t->kind == Term::Kind::kToken && t->text.empty()) {
        return Status::InvalidArgument("empty token phrase in pattern " +
                                       p.ToString());
      }
    }
  }
  return Status::Ok();
}

void Query::ResolveAgainst(const rdf::Dictionary& dict) {
  for (TriplePattern& p : patterns_) {
    for (Term* t : {&p.s, &p.p, &p.o}) {
      switch (t->kind) {
        case Term::Kind::kVariable:
          break;
        case Term::Kind::kResource:
          t->id = dict.Find(rdf::TermKind::kResource, t->text);
          break;
        case Term::Kind::kToken:
          t->id = dict.Find(rdf::TermKind::kToken, t->text);
          break;
        case Term::Kind::kLiteral:
          t->id = dict.Find(rdf::TermKind::kLiteral, t->text);
          break;
      }
    }
  }
}

std::string Query::ToString() const {
  std::string out;
  if (!projection_.empty()) {
    out += "SELECT";
    for (const std::string& v : projection_) out += " ?" + v;
    out += " WHERE ";
  }
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (i > 0) out += " ; ";
    out += patterns_[i].ToString();
  }
  return out;
}

}  // namespace trinit::query
