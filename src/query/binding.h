#ifndef TRINIT_QUERY_BINDING_H_
#define TRINIT_QUERY_BINDING_H_

#include <optional>
#include <string>
#include <vector>

#include "query/query.h"
#include "rdf/term.h"

namespace trinit::query {

/// Dense index of a variable within a query (order of first occurrence).
using VarId = uint32_t;

/// Compilation of a query's variable names into dense `VarId`s.
class VarTable {
 public:
  /// Builds the table from a query's variables.
  explicit VarTable(const Query& query);

  /// Builds from an explicit ordered name list (rewriter internals).
  explicit VarTable(std::vector<std::string> names);

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// Id of `name`, or nullopt if unknown.
  std::optional<VarId> Find(const std::string& name) const;

  /// Id of `name`; the variable must exist.
  VarId Require(const std::string& name) const;

  /// Sorted ids of the variables `pattern` uses, skipping names not in
  /// the table (a rewriter-introduced existential projected elsewhere).
  /// Sorted form so join signatures compare and intersect directly.
  std::vector<VarId> IdsIn(const TriplePattern& pattern) const;

 private:
  std::vector<std::string> names_;
};

/// A (partial) assignment of variables to dictionary terms. Unbound
/// variables hold `rdf::kNullTerm`.
class Binding {
 public:
  Binding() = default;
  explicit Binding(size_t num_vars)
      : values_(num_vars, rdf::kNullTerm) {}

  size_t size() const { return values_.size(); }

  rdf::TermId Get(VarId var) const { return values_[var]; }
  bool IsBound(VarId var) const { return values_[var] != rdf::kNullTerm; }

  /// Binds `var` to `value`; returns false on conflict with an existing
  /// different binding (the join condition of shared variables).
  bool Bind(VarId var, rdf::TermId value);

  /// Merges `other` into a copy of this; nullopt on any conflict.
  std::optional<Binding> MergedWith(const Binding& other) const;

  /// True when every variable is bound.
  bool IsComplete() const;

  /// Copy restricted to the first `num_vars` variables (used to project
  /// a sub-query binding with fresh existential variables back onto the
  /// original query's variable table, which always forms a prefix).
  Binding Prefix(size_t num_vars) const;

  /// Stable key over the given projection (for answer deduplication:
  /// "the same answer can be obtained through multiple sequences of
  /// relaxations ... score of an answer is the maximal one", paper §4).
  std::string KeyFor(const std::vector<VarId>& projection) const;

  /// Human-readable rendering `?x=AlbertEinstein, ?y=Ulm` using `table`
  /// for names and `dict` for labels.
  std::string ToString(const VarTable& table,
                       const rdf::Dictionary& dict) const;

  friend bool operator==(const Binding& a, const Binding& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<rdf::TermId> values_;
};

}  // namespace trinit::query

#endif  // TRINIT_QUERY_BINDING_H_
