#ifndef TRINIT_SERVE_SERVING_CACHE_H_
#define TRINIT_SERVE_SERVING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "plan/planner.h"
#include "query/query.h"
#include "scoring/lm_scorer.h"
#include "topk/topk_processor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace trinit::serve {

/// Sizing and behavior knobs of the engine-level serving cache.
struct ServingCacheOptions {
  /// Master switch; off restores the pre-PR-4 behavior (every request
  /// plans and joins from scratch).
  bool enabled = true;

  /// Cache compiled `plan::JoinPlan`s across requests (keyed by
  /// structural signature + generation).
  bool cache_plans = true;

  /// Cache complete top-k results across requests (keyed by canonical
  /// query + k + scorer/relaxation config + generation).
  bool cache_answers = true;

  /// Total answer-cache entries across all shards (LRU per shard; the
  /// shard count is clamped so the bound holds exactly). 0 disables
  /// answer caching. Plans are unbounded (the structure space is tiny —
  /// one entry per distinct query/rewrite shape).
  size_t answer_capacity = 1024;

  /// Lock striping for both caches. More shards = less contention under
  /// `ExecuteBatch`-style concurrency; 1 degenerates to a single map.
  size_t num_shards = 8;
};

/// The engine-level serving cache (paper §4's long-lived endpoint
/// assumption made real): one per `core::Trinit`, shared by every
/// request, thread-safe throughout.
///
/// Two layers, both keyed under an XKG *generation* counter that the
/// engine bumps on any mutation (KG extension, rule addition, operator
/// run):
///
/// - **Plan cache** — the per-request `plan::PlanCache` of PR 3
///   promoted to cross-request scope. Keyed by structural signature;
///   generation-stamped entries are invalidated lazily on first stale
///   lookup (`PlanCache::BumpGeneration`).
/// - **Answer cache** — a bounded, sharded LRU of complete
///   `topk::TopKResult`s keyed by the full canonical query text plus
///   `k`, the effective scorer/relaxation configuration, and the
///   generation. A hit returns the ranked answers without touching the
///   rank-join at all (zero pulls). Entries are *shared immutable*
///   bodies (`shared_ptr<const TopKResult>`): storing shares the run's
///   own result and a hit hands the caller the same body — no deep copy
///   of k answers on either side of the cache, and the shard lock is
///   held only for a refcount bump. Only *complete* results are stored:
///   a deadline-truncated run is never cached, so a cached answer
///   always equals what uncached execution would produce. Generation
///   bumps invalidate by key mismatch — stale entries age out through
///   the LRU bound rather than a stop-the-world sweep.
///
/// An engine restored from a binary snapshot passes the snapshot's
/// stamped XKG generation as `initial_generation`, so the loaded
/// process's cache keys continue the saved engine's coherent sequence
/// instead of restarting at 0.
class ServingCache {
 public:
  /// Cumulative cache-activity counters (monotone since construction;
  /// `*_entries` and `generation` are point-in-time).
  struct Counters {
    uint64_t generation = 0;
    size_t answer_hits = 0;
    size_t answer_misses = 0;
    size_t answer_insertions = 0;
    size_t answer_evictions = 0;  ///< LRU pressure, stale entries included
    size_t answer_entries = 0;
    size_t plan_hits = 0;
    size_t plan_misses = 0;
    size_t plan_invalidated = 0;  ///< stale plans recompiled after a bump
    size_t plan_entries = 0;
  };

  explicit ServingCache(ServingCacheOptions options = {},
                        uint64_t initial_generation = 0);

  ServingCache(const ServingCache&) = delete;
  ServingCache& operator=(const ServingCache&) = delete;

  const ServingCacheOptions& options() const { return options_; }

  /// Current XKG generation. Part of every answer key; the plan cache
  /// tracks it internally.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Invalidates everything, lazily: bumps the generation (new answer
  /// keys stop matching old entries; the plan cache marks its entries
  /// stale). O(1), never blocks concurrent readers behind a sweep.
  void BumpGeneration();

  /// The shared cross-request plan cache, or nullptr when plan caching
  /// is disabled (callers then fall back to private per-processor
  /// caches).
  const plan::PlanCache* plan_cache() const {
    return options_.enabled && options_.cache_plans ? &plan_cache_ : nullptr;
  }

  /// Cache key for an answer lookup: the canonical query (projection
  /// pinned explicitly — `ToString()` of the same pattern/projection
  /// shape the processor evaluates; constant *text* identifies
  /// constants), the effective `k`, every scorer and relaxation knob
  /// that can change the answer set, and `generation`.
  /// Wall-clock deadlines are deliberately excluded: they do not change
  /// what the ideal answer is, and truncated results are never stored.
  static std::string AnswerKey(const query::Query& canonical,
                               const scoring::ScorerOptions& scorer,
                               const topk::ProcessorOptions& processor,
                               uint64_t generation);

  /// Returns the shared immutable result stored under `key` (refreshing
  /// its LRU position), or nullptr on a miss. No deep copy: the caller
  /// aliases the stored body, whose `stats` are the *stored run's*
  /// work — serving layers report per-request (zero) work separately
  /// (copy-on-serve stats, see `core::QueryResponse::stats`). Answers,
  /// projection, and plan trace are byte-identical to uncached
  /// execution.
  std::shared_ptr<const topk::TopKResult> LookupAnswer(
      const std::string& key) const;

  /// Stores a *complete* result under `key` (callers must not pass
  /// deadline-truncated runs; null is rejected), evicting the shard's
  /// LRU tail beyond capacity. The body is shared, not copied — callers
  /// typically pass the same `shared_ptr` their response aliases. No-op
  /// when answer caching is disabled.
  void StoreAnswer(const std::string& key,
                   std::shared_ptr<const topk::TopKResult> result) const;

  Counters counters() const;

  /// The registry handles the cache mirrors its activity onto (PR 10).
  /// Everything here is *in addition to* the exact mutex-guarded
  /// per-shard counters behind `counters()`; registry reads are
  /// relaxed and lock-free. `invalidations` counts generation bumps.
  struct Metrics {
    obs::Counter answer_hits;
    obs::Counter answer_misses;
    obs::Counter answer_insertions;
    obs::Counter answer_evictions;
    obs::Counter invalidations;
    obs::Counter body_shares;  ///< hits handing out a shared body
    obs::Counter plan_hits;
    obs::Counter plan_misses;
    obs::Counter plan_invalidated;
  };

  /// Binds the registry mirrors (forwarding the plan handles to the
  /// internal `PlanCache`). Must be called before the cache is shared
  /// across threads — the engine binds at construction.
  void BindMetrics(const Metrics& metrics);

 private:
  using AnswerEntry =
      std::pair<std::string, std::shared_ptr<const topk::TopKResult>>;
  struct AnswerShard {
    mutable Mutex mu;
    /// Front = most recently used. The list owns key + shared body; the
    /// index points into it.
    std::list<AnswerEntry> lru TRINIT_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<AnswerEntry>::iterator> index
        TRINIT_GUARDED_BY(mu);
    size_t hits TRINIT_GUARDED_BY(mu) = 0;
    size_t misses TRINIT_GUARDED_BY(mu) = 0;
    size_t insertions TRINIT_GUARDED_BY(mu) = 0;
    size_t evictions TRINIT_GUARDED_BY(mu) = 0;
  };

  AnswerShard& ShardFor(const std::string& key) const;
  size_t ShardCapacity() const;

  ServingCacheOptions options_;
  std::atomic<uint64_t> generation_{0};
  plan::PlanCache plan_cache_;
  mutable std::vector<AnswerShard> answer_shards_;
  // Registry mirrors; written only by BindMetrics (pre-share).
  Metrics metrics_;
};

}  // namespace trinit::serve

#endif  // TRINIT_SERVE_SERVING_CACHE_H_
