#include "serve/serving_cache.h"

#include <functional>
#include <utility>

#include "util/mutex.h"

namespace trinit::serve {

namespace {

// Answer shards never outnumber the capacity, so the per-shard slice
// stays >= 1 without the total ever exceeding `answer_capacity` (a
// capacity below the shard count would otherwise silently cache one
// entry per shard). Zero capacity means answer caching off.
size_t EffectiveAnswerShards(const ServingCacheOptions& options) {
  size_t shards = options.num_shards == 0 ? 1 : options.num_shards;
  if (options.answer_capacity == 0) return 1;  // unused; lookups miss
  return shards < options.answer_capacity ? shards
                                          : options.answer_capacity;
}

}  // namespace

ServingCache::ServingCache(ServingCacheOptions options,
                           uint64_t initial_generation)
    : options_(options),
      generation_(initial_generation),
      plan_cache_(options.num_shards == 0 ? 1 : options.num_shards,
                  initial_generation),
      answer_shards_(EffectiveAnswerShards(options)) {
  if (options_.answer_capacity == 0) options_.cache_answers = false;
}

void ServingCache::BumpGeneration() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  plan_cache_.BumpGeneration();
  metrics_.invalidations.Increment();
}

void ServingCache::BindMetrics(const Metrics& metrics) {
  metrics_ = metrics;
  plan_cache_.BindMetrics(metrics.plan_hits, metrics.plan_misses,
                          metrics.plan_invalidated);
}

ServingCache::AnswerShard& ServingCache::ShardFor(
    const std::string& key) const {
  return answer_shards_[std::hash<std::string>{}(key) %
                        answer_shards_.size()];
}

size_t ServingCache::ShardCapacity() const {
  // Shard count is clamped to the capacity at construction, so the
  // floor division is >= 1 and the shards sum to <= answer_capacity.
  return options_.answer_capacity / answer_shards_.size();
}

std::string ServingCache::AnswerKey(const query::Query& canonical,
                                    const scoring::ScorerOptions& scorer,
                                    const topk::ProcessorOptions& processor,
                                    uint64_t generation) {
  // Every knob that can change the ranked answer set goes in; the
  // wall-clock deadline stays out (see header). The rendering is cheap
  // and unambiguous — fields are '|'-separated in a fixed order.
  std::string key;
  key.reserve(160);
  key += "g=" + std::to_string(generation);
  key += "|q=" + canonical.ToString();
  key += "|k=" + std::to_string(processor.k);
  key += "|sc=";
  key += scorer.use_tf ? 't' : '-';
  key += scorer.use_idf ? 'i' : '-';
  key += scorer.use_confidence ? 'c' : '-';
  key += ":" + std::to_string(scorer.token_match_threshold);
  key += "|rx=";
  key += processor.enable_relaxation ? '1' : '0';
  key += ":" + std::to_string(processor.rewrite.max_depth);
  key += ":" + std::to_string(processor.rewrite.min_weight);
  key += ":" + std::to_string(processor.rewrite.max_rewrites);
  key += ":" + std::to_string(processor.max_query_variants);
  key += "|jn=";
  key += processor.use_cost_order ? 'c' : 'p';
  key += processor.join.probe_mode ==
                 topk::JoinEngine::ProbeMode::kHashPartition
             ? 'h'
             : 'l';
  key += processor.join.max_over_derivations ? 'm' : 's';
  key += processor.join.drain ? 'd' : '-';
  key += processor.exhaustive ? 'e' : '-';
  key += ":" + std::to_string(processor.join.max_pulls);
  return key;
}

std::shared_ptr<const topk::TopKResult> ServingCache::LookupAnswer(
    const std::string& key) const {
  if (!options_.enabled || !options_.cache_answers) return nullptr;
  AnswerShard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    metrics_.answer_misses.Increment();
    return nullptr;
  }
  ++shard.hits;
  metrics_.answer_hits.Increment();
  metrics_.body_shares.Increment();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  // Shared immutable body: the lock covers only the refcount bump and
  // LRU splice — no deep copy of k answers. Per-request "the hit did no
  // work" stats are the serving layer's copy-on-serve concern
  // (`core::QueryResponse::stats`), not the stored body's.
  return it->second->second;
}

void ServingCache::StoreAnswer(
    const std::string& key,
    std::shared_ptr<const topk::TopKResult> result) const {
  if (!options_.enabled || !options_.cache_answers) return;
  if (result == nullptr) return;
  AnswerShard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Racing duplicate store (two threads missed on the same key):
    // refresh the value and position, no growth. Readers still holding
    // the old body keep it alive through their own shared_ptr.
    it->second->second = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(result));
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
  metrics_.answer_insertions.Increment();
  const size_t capacity = ShardCapacity();
  while (shard.lru.size() > capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
    metrics_.answer_evictions.Increment();
  }
}

ServingCache::Counters ServingCache::counters() const {
  Counters out;
  out.generation = generation();
  for (const AnswerShard& shard : answer_shards_) {
    MutexLock lock(shard.mu);
    out.answer_hits += shard.hits;
    out.answer_misses += shard.misses;
    out.answer_insertions += shard.insertions;
    out.answer_evictions += shard.evictions;
    out.answer_entries += shard.lru.size();
  }
  plan::PlanCache::Stats plan = plan_cache_.stats();
  out.plan_hits = plan.hits;
  out.plan_misses = plan.misses;
  out.plan_invalidated = plan.invalidated;
  out.plan_entries = plan_cache_.size();
  return out;
}

}  // namespace trinit::serve
