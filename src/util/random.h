#ifndef TRINIT_UTIL_RANDOM_H_
#define TRINIT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace trinit {

/// Deterministic 64-bit PRNG (xoshiro-style splitmix core). All synthetic
/// data in TriniT flows from instances of this class so that every test,
/// example, and benchmark is reproducible bit-for-bit from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 -> uniform).
  /// Rank 0 is the most popular. Uses the classic inverse-CDF over the
  /// precomputed harmonic table owned by `ZipfTable`.
  class ZipfTable {
   public:
    ZipfTable(size_t n, double s);
    /// Samples a rank using `rng`.
    size_t Sample(Rng& rng) const;
    size_t size() const { return cdf_.size(); }

   private:
    std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  };

  /// Picks a uniformly random element index from a non-empty container size.
  template <typename Container>
  const typename Container::value_type& Pick(const Container& c) {
    return c[Uniform(c.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Uniform(i)]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace trinit

#endif  // TRINIT_UTIL_RANDOM_H_
