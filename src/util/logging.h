#ifndef TRINIT_UTIL_LOGGING_H_
#define TRINIT_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Minimal CHECK macros in the spirit of glog. Library invariants are
/// enforced with these; user-facing errors go through Status instead.

#define TRINIT_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                    \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#define TRINIT_CHECK_EQ(a, b) TRINIT_CHECK((a) == (b))
#define TRINIT_CHECK_NE(a, b) TRINIT_CHECK((a) != (b))
#define TRINIT_CHECK_LT(a, b) TRINIT_CHECK((a) < (b))
#define TRINIT_CHECK_LE(a, b) TRINIT_CHECK((a) <= (b))
#define TRINIT_CHECK_GT(a, b) TRINIT_CHECK((a) > (b))
#define TRINIT_CHECK_GE(a, b) TRINIT_CHECK((a) >= (b))

#define TRINIT_DCHECK(cond) \
  do {                      \
    if (!(cond)) {          \
    }                       \
  } while (false)

#ifndef NDEBUG
#undef TRINIT_DCHECK
#define TRINIT_DCHECK(cond) TRINIT_CHECK(cond)
#endif

#endif  // TRINIT_UTIL_LOGGING_H_
