#include "util/table.h"

#include <algorithm>

namespace trinit {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  if (rows_.back().empty()) {
    // An intentionally empty data row would be ambiguous with the
    // separator encoding; render it as a single empty cell instead.
    rows_.back().push_back("");
  }
}

void AsciiTable::AddSeparator() { rows_.emplace_back(); }

std::string AsciiTable::ToString() const {
  size_t cols = headers_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<size_t> width(cols, 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = std::max(width[c], headers_[c].size());
  }
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto rule = [&]() {
    std::string line = "+";
    for (size_t c = 0; c < cols; ++c) {
      line += std::string(width[c] + 2, '-') + "+";
    }
    return line + "\n";
  };

  std::string out = rule();
  out += render_row(headers_);
  out += rule();
  for (const auto& r : rows_) {
    out += r.empty() ? rule() : render_row(r);
  }
  out += rule();
  return out;
}

}  // namespace trinit
