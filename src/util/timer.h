#ifndef TRINIT_UTIL_TIMER_H_
#define TRINIT_UTIL_TIMER_H_

#include <chrono>

namespace trinit {

/// Monotonic wall-clock stopwatch used by the bench harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace trinit

#endif  // TRINIT_UTIL_TIMER_H_
