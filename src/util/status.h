#ifndef TRINIT_UTIL_STATUS_H_
#define TRINIT_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace trinit {

/// Error categories used across the TriniT library. Library code never
/// throws across its public API; fallible operations return a `Status`
/// (or a `Result<T>`, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,  ///< caller passed something malformed
  kNotFound = 2,         ///< requested item does not exist
  kAlreadyExists = 3,    ///< insertion would collide
  kOutOfRange = 4,       ///< index / offset beyond limits
  kFailedPrecondition = 5,  ///< object not in the required state
  kParseError = 6,       ///< malformed input text (queries, TSV, rules)
  kIoError = 7,          ///< file-system failure
  kResourceExhausted = 8,  ///< budget/limit exceeded
  kInternal = 9,         ///< invariant violation inside the library
  kUnimplemented = 10,   ///< feature intentionally not provided
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The success path carries no allocation: `Status::Ok()` is trivially
/// copyable state with an empty message. Error statuses carry a code and
/// a message describing the failure for the caller (not for end users).
///
/// `[[nodiscard]]`: silently dropping a returned Status is a latent-bug
/// class (a failed mutation that "succeeds"); the compiler flags every
/// discarded return, and `tools/lint.py` keeps the attribute from being
/// removed. Intentional discards must be explicit: `(void)Foo();` with a
/// comment saying why failure is acceptable there.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace trinit

/// Propagates an error Status out of the current function.
#define TRINIT_RETURN_IF_ERROR(expr)                    \
  do {                                                  \
    ::trinit::Status trinit_status_tmp_ = (expr);       \
    if (!trinit_status_tmp_.ok()) return trinit_status_tmp_; \
  } while (false)

#endif  // TRINIT_UTIL_STATUS_H_
