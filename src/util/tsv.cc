#include "util/tsv.h"

#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace trinit {
namespace {

Status ProcessLines(
    std::istream& in,
    const std::function<Status(size_t, const std::vector<std::string>&)>&
        row_fn) {
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    TRINIT_RETURN_IF_ERROR(row_fn(line_number, Split(line, '\t')));
  }
  return Status::Ok();
}

}  // namespace

Status TsvReader::ForEachRow(
    const std::string& path,
    const std::function<Status(size_t, const std::vector<std::string>&)>&
        row_fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return ForEachRowInString(content, row_fn);
}

Status TsvReader::ForEachRowInString(
    const std::string& content,
    const std::function<Status(size_t, const std::vector<std::string>&)>&
        row_fn) {
  std::istringstream in(content);
  return ProcessLines(in, row_fn);
}

TsvWriter::TsvWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

TsvWriter::~TsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void TsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return;
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back('\t');
    for (char c : fields[i]) {
      line.push_back(c == '\t' || c == '\n' ? ' ' : c);
    }
  }
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    status_ = Status::IoError("short write");
  }
}

void TsvWriter::WriteComment(const std::string& text) {
  if (!status_.ok()) return;
  std::string line = "# " + text + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    status_ = Status::IoError("short write");
  }
}

Status TsvWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
    file_ = nullptr;
  }
  return status_;
}

}  // namespace trinit
