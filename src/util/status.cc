#include "util/status.h"

namespace trinit {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace trinit
