#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace trinit {

uint64_t Rng::Next() {
  // splitmix64: passes BigCrush, trivially seedable, fast enough for data
  // generation (we are not doing cryptography).
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias for small bounds.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng::ZipfTable::ZipfTable(size_t n, double s) {
  cdf_.reserve(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_.push_back(sum);
  }
  for (double& v : cdf_) v /= sum;
}

size_t Rng::ZipfTable::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace trinit
