#ifndef TRINIT_UTIL_MUTEX_H_
#define TRINIT_UTIL_MUTEX_H_

#include <chrono>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace trinit {

/// The repo's annotated exclusive lock: a `std::timed_mutex` wearing the
/// Clang Thread Safety Analysis capability attributes, abseil-style.
/// Every mutex member in the library must be one of these (or
/// `SharedMutex` below) — `tools/lint.py` bans naked `std::mutex`
/// members precisely so the analysis can see every lock.
///
/// The timed base adds deadline acquisition (`TryLockFor`) for
/// serving-path callers that would rather shed a request than queue
/// behind a stuck writer; plain `Lock`/`Unlock` compile down to the
/// same pthread calls as `std::mutex` on the platforms we build.
class TRINIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TRINIT_ACQUIRE() { mu_.lock(); }
  void Unlock() TRINIT_RELEASE() { mu_.unlock(); }

  /// Non-blocking acquisition; true = acquired.
  bool TryLock() TRINIT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Blocks at most `timeout`; true = acquired. A non-positive timeout
  /// degenerates to `TryLock`.
  ///
  /// Deliberately `try_lock_until` on the system clock, not
  /// `try_lock_for`: libstdc++ implements the `_for` spelling with
  /// `pthread_mutex_clocklock`, which ThreadSanitizer (GCC 12's libtsan)
  /// does not intercept — a successful timed acquisition is invisible
  /// and the later unlock reports "unlock of an unlocked mutex". The
  /// `_until(system_clock)` path goes through the intercepted
  /// `pthread_mutex_timedlock`. The tradeoff (a wall-clock jump warps
  /// the deadline) is acceptable for the shed-don't-queue timeouts this
  /// exists for.
  bool TryLockFor(std::chrono::nanoseconds timeout) TRINIT_TRY_ACQUIRE(true) {
    if (timeout <= std::chrono::nanoseconds::zero()) return mu_.try_lock();
    return mu_.try_lock_until(std::chrono::system_clock::now() + timeout);
  }

 private:
  std::timed_mutex mu_;
};

/// Annotated reader-writer lock over `std::shared_timed_mutex`:
/// exclusive mode for mutators, shared mode for any number of
/// concurrent readers, both with deadline variants. This is the
/// engine-state lock shape (`core::Trinit`): queries share, mutators
/// exclude the world.
class TRINIT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // ------------------------------------------------------- exclusive
  void Lock() TRINIT_ACQUIRE() { mu_.lock(); }
  void Unlock() TRINIT_RELEASE() { mu_.unlock(); }
  bool TryLock() TRINIT_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  // `_until(system_clock)` rather than `_for` for the same TSan
  // interceptor reason as Mutex::TryLockFor above.
  bool TryLockFor(std::chrono::nanoseconds timeout) TRINIT_TRY_ACQUIRE(true) {
    if (timeout <= std::chrono::nanoseconds::zero()) return mu_.try_lock();
    return mu_.try_lock_until(std::chrono::system_clock::now() + timeout);
  }

  // ---------------------------------------------------------- shared
  void LockShared() TRINIT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() TRINIT_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRINIT_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }
  bool TryLockSharedFor(std::chrono::nanoseconds timeout)
      TRINIT_TRY_ACQUIRE_SHARED(true) {
    if (timeout <= std::chrono::nanoseconds::zero()) {
      return mu_.try_lock_shared();
    }
    return mu_.try_lock_shared_until(std::chrono::system_clock::now() +
                                     timeout);
  }

 private:
  std::shared_timed_mutex mu_;
};

/// RAII exclusive guard over `Mutex` (the annotated analogue of
/// `std::lock_guard`). Non-copyable, non-movable: the capability is
/// held for exactly this scope.
class TRINIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TRINIT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() TRINIT_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// RAII exclusive guard over `SharedMutex` (writer side).
class TRINIT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) TRINIT_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() TRINIT_RELEASE() { mu_.Unlock(); }

 private:
  SharedMutex& mu_;
};

/// RAII shared guard over `SharedMutex` (reader side).
class TRINIT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) TRINIT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  // Generic release: the scope holds the capability shared, and clang
  // rejects an exclusive-release annotation on a shared hold.
  ~ReaderMutexLock() TRINIT_RELEASE_GENERIC() { mu_.UnlockShared(); }

 private:
  SharedMutex& mu_;
};

}  // namespace trinit

#endif  // TRINIT_UTIL_MUTEX_H_
