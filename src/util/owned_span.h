#ifndef TRINIT_UTIL_OWNED_SPAN_H_
#define TRINIT_UTIL_OWNED_SPAN_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace trinit::util {

/// A read-only array that either owns its elements (vector-backed, the
/// build-from-TSV and decode paths) or views memory owned elsewhere (a
/// span over an mmap'd snapshot section). Index structures
/// (`rdf::TripleStore`, `rdf::ScoreOrderIndex`, `rdf::GraphStats`)
/// store their arrays through this type so the built and mapped
/// engines share one code path — every consumer just sees
/// `std::span<const T>`.
///
/// A viewing OwnedSpan does not manage the lifetime of the viewed
/// memory; whoever creates the view must keep the backing mapping
/// alive for as long as the structure is reachable (the storage layer
/// parks a `shared_ptr` to the mapping inside the loaded `xkg::Xkg` —
/// see docs/CONCURRENCY.md, "Mapping lifetime").
template <typename T>
class OwnedSpan {
 public:
  OwnedSpan() = default;

  /// Owning: adopts the vector. Implicit on purpose — every pre-mmap
  /// call site that produced a vector keeps compiling unchanged.
  OwnedSpan(std::vector<T> v)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(v)), view_(owned_) {}

  /// Non-owning view of memory kept alive by someone else.
  static OwnedSpan View(std::span<const T> s) {
    OwnedSpan out;
    out.view_ = s;
    return out;
  }

  // Moves must re-anchor the view when the elements are owned: the
  // vector's buffer pointer survives a move, but self-referencing
  // `view_` through `other.owned_` after the vector moved would be
  // fragile under SSO-like small-buffer implementations.
  OwnedSpan(OwnedSpan&& other) noexcept { MoveFrom(std::move(other)); }
  OwnedSpan& operator=(OwnedSpan&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }
  OwnedSpan(const OwnedSpan&) = delete;
  OwnedSpan& operator=(const OwnedSpan&) = delete;

  std::span<const T> span() const { return view_; }
  operator std::span<const T>() const {  // NOLINT
    return view_;
  }

  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }

  /// True when the elements live in the owned vector (false for views
  /// over a mapping — the basis of the load report's resident-bytes
  /// estimate).
  bool owns() const { return !owned_.empty(); }

  /// Bytes of private (per-process) memory held by this array: the
  /// owned buffer, or 0 for a view over shared mapped pages.
  size_t owned_bytes() const { return owned_.capacity() * sizeof(T); }

 private:
  void MoveFrom(OwnedSpan&& other) {
    const bool owned = other.owns();
    owned_ = std::move(other.owned_);
    view_ = owned ? std::span<const T>(owned_) : other.view_;
    other.owned_.clear();
    other.view_ = {};
  }

  std::vector<T> owned_;
  std::span<const T> view_;
};

}  // namespace trinit::util

#endif  // TRINIT_UTIL_OWNED_SPAN_H_
