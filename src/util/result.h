#ifndef TRINIT_UTIL_RESULT_H_
#define TRINIT_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace trinit {

/// Holds either a value of type `T` or an error `Status` (never both,
/// never neither). The TriniT analogue of absl::StatusOr / arrow::Result.
///
/// Usage:
///   Result<Dictionary> r = Dictionary::Load(path);
///   if (!r.ok()) return r.status();
///   Dictionary dict = std::move(r).value();
/// `[[nodiscard]]` for the same reason as `Status`: a dropped Result is
/// a dropped error (see status.h; `tools/lint.py` ratchets this).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The error (or OK when a value is held).
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // kOk iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace trinit

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds
/// the value to `lhs`.
#define TRINIT_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  TRINIT_ASSIGN_OR_RETURN_IMPL_(                                  \
      TRINIT_RESULT_CONCAT_(trinit_result_, __LINE__), lhs, rexpr)

#define TRINIT_RESULT_CONCAT_INNER_(a, b) a##b
#define TRINIT_RESULT_CONCAT_(a, b) TRINIT_RESULT_CONCAT_INNER_(a, b)
#define TRINIT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // TRINIT_UTIL_RESULT_H_
