#ifndef TRINIT_UTIL_THREAD_ANNOTATIONS_H_
#define TRINIT_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (-Wthread-safety), in the
/// style of abseil's thread_annotations.h. Under any compiler without
/// the capability attributes (GCC, MSVC) every macro expands to nothing,
/// so annotated code is zero-cost and portable; under clang the locking
/// discipline they declare is checked at compile time and CI escalates
/// violations to errors (see ci.sh and CMakeLists.txt's
/// TRINIT_HAS_THREAD_SAFETY feature detection).
///
/// The vocabulary, briefly:
///
///   TRINIT_CAPABILITY("mutex")   the class is a lockable capability
///   TRINIT_SCOPED_CAPABILITY     RAII guard that acquires/releases one
///   TRINIT_GUARDED_BY(mu)        member may only be touched holding mu
///   TRINIT_PT_GUARDED_BY(mu)     ...the pointee behind a stable pointer
///   TRINIT_REQUIRES(mu)          caller must hold mu (exclusive)
///   TRINIT_REQUIRES_SHARED(mu)   caller must hold mu (at least shared)
///   TRINIT_EXCLUDES(mu)          caller must NOT hold mu (deadlock fence)
///   TRINIT_ACQUIRE / _SHARED     function acquires the capability
///   TRINIT_RELEASE / _SHARED     function releases it
///   TRINIT_TRY_ACQUIRE(b)        acquires iff the return value is b
///   TRINIT_ACQUIRED_BEFORE/AFTER global lock-ordering declarations
///   TRINIT_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (escape
///                                hatch for deliberately unlocked
///                                accessors; always pair with a comment
///                                stating the external contract)
///
/// See docs/CONCURRENCY.md for the repo-wide locking model the
/// annotations encode.

#if defined(__clang__) && !defined(SWIG)
#define TRINIT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TRINIT_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

#define TRINIT_CAPABILITY(x) TRINIT_THREAD_ANNOTATION_(capability(x))

#define TRINIT_SCOPED_CAPABILITY TRINIT_THREAD_ANNOTATION_(scoped_lockable)

#define TRINIT_GUARDED_BY(x) TRINIT_THREAD_ANNOTATION_(guarded_by(x))

#define TRINIT_PT_GUARDED_BY(x) TRINIT_THREAD_ANNOTATION_(pt_guarded_by(x))

#define TRINIT_ACQUIRED_BEFORE(...) \
  TRINIT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define TRINIT_ACQUIRED_AFTER(...) \
  TRINIT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define TRINIT_REQUIRES(...) \
  TRINIT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define TRINIT_REQUIRES_SHARED(...) \
  TRINIT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define TRINIT_ACQUIRE(...) \
  TRINIT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define TRINIT_ACQUIRE_SHARED(...) \
  TRINIT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define TRINIT_RELEASE(...) \
  TRINIT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define TRINIT_RELEASE_SHARED(...) \
  TRINIT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define TRINIT_RELEASE_GENERIC(...) \
  TRINIT_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define TRINIT_TRY_ACQUIRE(...) \
  TRINIT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define TRINIT_TRY_ACQUIRE_SHARED(...) \
  TRINIT_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define TRINIT_EXCLUDES(...) \
  TRINIT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define TRINIT_ASSERT_CAPABILITY(x) \
  TRINIT_THREAD_ANNOTATION_(assert_capability(x))

#define TRINIT_ASSERT_SHARED_CAPABILITY(x) \
  TRINIT_THREAD_ANNOTATION_(assert_shared_capability(x))

#define TRINIT_RETURN_CAPABILITY(x) TRINIT_THREAD_ANNOTATION_(lock_returned(x))

#define TRINIT_NO_THREAD_SAFETY_ANALYSIS \
  TRINIT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // TRINIT_UTIL_THREAD_ANNOTATIONS_H_
