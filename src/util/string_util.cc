#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace trinit {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string WithThousands(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace trinit
