#ifndef TRINIT_UTIL_HASH_H_
#define TRINIT_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace trinit {

/// 64-bit FNV-1a over arbitrary bytes; stable across platforms and runs
/// (used for deterministic synthetic-world generation and hash joins).
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a 64-bit value (splitmix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace trinit

#endif  // TRINIT_UTIL_HASH_H_
