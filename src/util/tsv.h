#ifndef TRINIT_UTIL_TSV_H_
#define TRINIT_UTIL_TSV_H_

#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace trinit {

/// Streaming reader for tab-separated files (the serialization format of
/// KG and XKG dumps in this project, mirroring common RDF N-Triples-like
/// TSV exports). Lines starting with '#' and blank lines are skipped.
class TsvReader {
 public:
  /// Calls `row_fn(line_number, fields)` for every data row in `path`.
  /// Stops and propagates the first non-OK status returned by `row_fn`.
  static Status ForEachRow(
      const std::string& path,
      const std::function<Status(size_t, const std::vector<std::string>&)>&
          row_fn);

  /// Parses in-memory TSV content (used by tests).
  static Status ForEachRowInString(
      const std::string& content,
      const std::function<Status(size_t, const std::vector<std::string>&)>&
          row_fn);
};

/// Buffered writer producing tab-separated rows.
class TsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check `status()` before use.
  explicit TsvWriter(const std::string& path);
  ~TsvWriter();

  TsvWriter(const TsvWriter&) = delete;
  TsvWriter& operator=(const TsvWriter&) = delete;

  const Status& status() const { return status_; }

  /// Writes one row; embedded tabs/newlines in fields are replaced by
  /// spaces (labels never legitimately contain them).
  void WriteRow(const std::vector<std::string>& fields);

  /// Writes a '#'-prefixed comment line.
  void WriteComment(const std::string& text);

  /// Flushes and closes; returns the final status.
  Status Close();

 private:
  std::FILE* file_ = nullptr;
  Status status_;
};

}  // namespace trinit

#endif  // TRINIT_UTIL_TSV_H_
