#ifndef TRINIT_UTIL_STRING_UTIL_H_
#define TRINIT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace trinit {

/// Splits `s` on every occurrence of `sep`. Adjacent separators yield
/// empty fields; an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; never yields empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (KG labels and token phrases are ASCII in this
/// reproduction; full Unicode folding is out of scope).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

/// printf-style float formatting helpers used by table printers.
std::string FormatDouble(double v, int precision);

/// Renders 1234567 as "1,234,567" for human-readable bench output.
std::string WithThousands(long long v);

}  // namespace trinit

#endif  // TRINIT_UTIL_STRING_UTIL_H_
