#ifndef TRINIT_UTIL_TABLE_H_
#define TRINIT_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace trinit {

/// Renders paper-style result tables as aligned ASCII for the bench
/// binaries (every bench prints the rows/series of the exhibit it
/// reproduces; see DESIGN.md §3).
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a data row; missing cells render empty, extra cells are kept
  /// (the layout widens to the widest row).
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator line at the current position.
  void AddSeparator();

  /// Renders the full table with a header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace trinit

#endif  // TRINIT_UTIL_TABLE_H_
