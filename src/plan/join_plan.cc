#include "plan/join_plan.h"

namespace trinit::plan {
namespace {

void AppendSlot(const query::Term& slot, bool is_predicate,
                const query::VarTable& vars, std::string* out) {
  if (slot.is_variable()) {
    // Variables are identified by their dense id so that renamed but
    // isomorphic queries still hash apart only when the join shape
    // actually differs.
    std::optional<query::VarId> id = vars.Find(slot.text);
    out->push_back('v');
    *out += id.has_value() ? std::to_string(*id) : slot.text;
  } else {
    switch (slot.kind) {
      case query::Term::Kind::kResource:
        out->push_back('r');
        break;
      case query::Term::Kind::kToken:
        out->push_back('t');
        break;
      default:
        out->push_back('l');
        break;
    }
    if (is_predicate) {
      // Predicate identity stays in the key: it dominates cardinality
      // (GraphStats is per-predicate), so two queries that differ only
      // in predicate must not share a plan. Subject/object constants
      // remain erased — that is the reuse the cache exists for
      // (rule-produced variants substituting entities/literals).
      if (slot.id != rdf::kNullTerm) {
        *out += std::to_string(slot.id);
      } else {
        *out += slot.text;
      }
    }
  }
  out->push_back(',');
}

}  // namespace

std::string JoinPlan::StructureOf(const query::Query& q,
                                  const query::VarTable& vars) {
  std::string out;
  out.reserve(q.patterns().size() * 16);
  for (const query::TriplePattern& p : q.patterns()) {
    AppendSlot(p.s, false, vars, &out);
    AppendSlot(p.p, true, vars, &out);
    AppendSlot(p.o, false, vars, &out);
    out.push_back(';');
  }
  return out;
}

}  // namespace trinit::plan
