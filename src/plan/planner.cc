#include "plan/planner.h"

#include <algorithm>
#include <optional>

namespace trinit::plan {
namespace {

/// Index-metadata cardinality estimate for one pattern. Resource and
/// literal constants resolve against the dictionary (unresolvable ones
/// match nothing directly — relaxation is their rescue path, and the
/// cost order puts such patterns first since they bind for free); token
/// constants soft-match an unknown subset of a slot's vocabulary, so
/// they degrade to a wildcard upper bound.
PatternEstimate EstimatePattern(const xkg::Xkg& xkg,
                                const query::TriplePattern& pattern,
                                size_t index) {
  PatternEstimate est;
  est.pattern = index;
  est.shards = xkg.sharded() == nullptr
                   ? 1
                   : static_cast<uint32_t>(xkg.sharded()->shard_count());

  rdf::TermId ids[3] = {rdf::kNullTerm, rdf::kNullTerm, rdf::kNullTerm};
  const query::Term* slots[3] = {&pattern.s, &pattern.p, &pattern.o};
  for (int i = 0; i < 3; ++i) {
    const query::Term& t = *slots[i];
    if (t.is_variable()) continue;
    if (t.kind == query::Term::Kind::kToken) {
      est.exact = false;  // wildcard stand-in for the soft-match set
      continue;
    }
    rdf::TermId id = t.id;
    if (id == rdf::kNullTerm) {
      id = xkg.dict().Find(t.kind == query::Term::Kind::kResource
                               ? rdf::TermKind::kResource
                               : rdf::TermKind::kLiteral,
                           t.text);
    }
    if (id == rdf::kNullTerm) {
      // Unresolvable constant: the pattern matches nothing directly.
      est.cardinality = 0.0;
      est.mass = 0;
      return est;
    }
    ids[i] = id;
  }

  // A constant predicate's distinct subject/object counts feed the
  // fan-out-aware join cost: expected rows per bound subject binding is
  // cardinality / distinct_subjects (ditto objects).
  if (ids[1] != rdf::kNullTerm) {
    const rdf::GraphStats::PredicateStats* ps =
        xkg.stats().ForPredicate(ids[1]);
    if (ps != nullptr) {
      est.distinct_subjects = ps->distinct_subjects;
      est.distinct_objects = ps->distinct_objects;
    }
  }

  // GraphStats serves the common predicate-only shape in O(1) — its
  // per-predicate triple and evidence counts are exactly the P-block's
  // length and mass — without even touching (and thus lazily building)
  // the score-ordered P permutation. Every other shape is an O(log n)
  // score-ordered block search whose length and prefix-sum mass are the
  // estimate we want.
  if (ids[0] == rdf::kNullTerm && ids[1] != rdf::kNullTerm &&
      ids[2] == rdf::kNullTerm) {
    const rdf::GraphStats::PredicateStats* ps =
        xkg.stats().ForPredicate(ids[1]);
    if (ps != nullptr) {
      est.cardinality = ps->triple_count;
      est.mass = ps->evidence_count;
    }
    return est;
  }
  rdf::ScoreOrderIndex::List list =
      xkg.store().ScoreOrdered(ids[0], ids[1], ids[2]);
  est.cardinality = static_cast<double>(list.ids.size());
  est.mass = list.mass;
  return est;
}

std::vector<query::VarId> SharedVars(const std::vector<query::VarId>& a,
                                     const std::vector<query::VarId>& b) {
  std::vector<query::VarId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

std::shared_ptr<const JoinPlan> Planner::Compile(const query::Query& q,
                                                 const query::VarTable& vars,
                                                 const xkg::Xkg& xkg,
                                                 bool cost_order) {
  auto plan = std::make_shared<JoinPlan>();
  const size_t n = q.patterns().size();
  plan->structure = JoinPlan::StructureOf(q, vars);
  plan->estimates.reserve(n);
  std::vector<std::vector<query::VarId>> pattern_vars(n);
  for (size_t i = 0; i < n; ++i) {
    plan->estimates.push_back(EstimatePattern(xkg, q.patterns()[i], i));
    pattern_vars[i] = vars.IdsIn(q.patterns()[i]);
  }

  if (!cost_order) {
    // Parser order: estimates and signatures only (exec pos == index).
    plan->order.resize(n);
    for (size_t i = 0; i < n; ++i) plan->order[i] = i;
  }

  // Slot variables for the fan-out discount: a pattern whose subject
  // (object) variable is already bound by the ordered prefix joins at
  // its per-subject (per-object) fan-out, not its full cardinality.
  std::vector<std::optional<query::VarId>> svar(n), ovar(n);
  for (size_t i = 0; i < n; ++i) {
    const query::TriplePattern& pattern = q.patterns()[i];
    if (pattern.s.is_variable()) svar[i] = vars.Find(pattern.s.text);
    if (pattern.o.is_variable()) ovar[i] = vars.Find(pattern.o.text);
  }

  // Greedy cost order: cheapest first, connected-to-prefix preferred
  // over cheaper-but-disconnected (a cross product always costs more
  // than the connectivity it defers). The cost of a connected pattern
  // is its estimated join *output* — cardinality divided by the
  // predicate's distinct-subject/object count for each slot variable
  // the prefix already binds — falling back to raw cardinality when the
  // predicate has no stats. Ties by raw cardinality, then mass, then
  // original index for determinism.
  std::vector<bool> used(n, false);
  std::vector<query::VarId> bound_vars;
  auto effective_cost = [&](size_t i) {
    const PatternEstimate& e = plan->estimates[i];
    double cost = e.cardinality;
    if (svar[i].has_value() && e.distinct_subjects > 0 &&
        std::binary_search(bound_vars.begin(), bound_vars.end(),
                           *svar[i])) {
      cost /= e.distinct_subjects;
    }
    if (ovar[i].has_value() && e.distinct_objects > 0 &&
        std::binary_search(bound_vars.begin(), bound_vars.end(),
                           *ovar[i])) {
      cost /= e.distinct_objects;
    }
    return cost;
  };
  plan->order.reserve(n);
  for (size_t step = 0; cost_order && step < n; ++step) {
    size_t best = n;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected =
          step > 0 && !SharedVars(bound_vars, pattern_vars[i]).empty();
      if (best == n) {
        best = i;
        best_connected = connected;
        continue;
      }
      if (connected != best_connected) {
        if (connected) {
          best = i;
          best_connected = true;
        }
        continue;
      }
      const PatternEstimate& a = plan->estimates[i];
      const PatternEstimate& b = plan->estimates[best];
      const double cost_a = effective_cost(i);
      const double cost_b = effective_cost(best);
      if (cost_a != cost_b
              ? cost_a < cost_b
              : (a.cardinality != b.cardinality
                     ? a.cardinality < b.cardinality
                     : a.mass < b.mass)) {
        best = i;
      }
    }
    used[best] = true;
    plan->order.push_back(best);
    for (query::VarId v : pattern_vars[best]) {
      if (!std::binary_search(bound_vars.begin(), bound_vars.end(), v)) {
        bound_vars.insert(std::upper_bound(bound_vars.begin(),
                                           bound_vars.end(), v),
                          v);
      }
    }
  }

  // Pairwise join-key signatures and probe preference, by exec position.
  plan->join_keys.assign(n, std::vector<std::vector<query::VarId>>(n));
  plan->probe_preference.assign(n, {});
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      plan->join_keys[a][b] = SharedVars(pattern_vars[plan->order[a]],
                                         pattern_vars[plan->order[b]]);
    }
  }
  for (size_t b = 0; b < n; ++b) {
    std::vector<size_t>& pref = plan->probe_preference[b];
    for (size_t a = 0; a < n; ++a) {
      if (a != b && !plan->join_keys[b][a].empty()) pref.push_back(a);
    }
    std::stable_sort(pref.begin(), pref.end(), [&](size_t x, size_t y) {
      return plan->join_keys[b][x].size() > plan->join_keys[b][y].size();
    });
  }
  return plan;
}

PlanCache::PlanCache(size_t num_shards, uint64_t initial_generation)
    : generation_(initial_generation),
      shards_(num_shards == 0 ? 1 : num_shards) {}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const JoinPlan> PlanCache::Get(const query::Query& q,
                                               const query::VarTable& vars,
                                               const xkg::Xkg& xkg,
                                               bool cost_order,
                                               bool* was_hit) const {
  std::string key =
      (cost_order ? "C|" : "P|") + JoinPlan::StructureOf(q, vars);
  if (was_hit != nullptr) *was_hit = false;
  // Stamp the entry with the generation observed *before* compiling: if
  // a mutation bumps the generation mid-compile, the entry is born
  // stale and the next lookup recompiles against the new data.
  const uint64_t gen = generation();
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(shard.mu);
    if (shard.swept_generation != gen) {
      // First touch of this shard since a bump: reap every stale entry
      // (a rebuild may have moved the term ids inside the structural
      // keys, so stale entries would otherwise be orphaned under dead
      // keys forever). Amortized — one sweep per shard per mutation.
      for (auto it = shard.entries.begin(); it != shard.entries.end();) {
        if (it->second.generation != gen) {
          it = shard.entries.erase(it);
          ++shard.stats.invalidated;
          metric_invalidated_.Increment();
        } else {
          ++it;
        }
      }
      shard.swept_generation = gen;
    }
    auto it = shard.entries.find(key);
    if (it != shard.entries.end() && it->second.generation == gen) {
      ++shard.stats.hits;
      metric_hits_.Increment();
      if (was_hit != nullptr) *was_hit = true;
      return it->second.plan;
    }
    if (it != shard.entries.end()) {
      // A racing pre-bump compile slipped in after this shard's sweep;
      // never serve it.
      ++shard.stats.invalidated;
      metric_invalidated_.Increment();
      shard.entries.erase(it);
    }
    ++shard.stats.misses;
    metric_misses_.Increment();
  }
  // Compile outside the lock: planning is read-only over the XKG, and a
  // racing duplicate compile of the same structure is cheaper than
  // serializing every planner behind one mutex.
  std::shared_ptr<const JoinPlan> plan =
      Planner::Compile(q, vars, xkg, cost_order);
  MutexLock lock(shard.mu);
  Entry& entry = shard.entries[key];
  if (entry.plan == nullptr || entry.generation < gen) {
    entry = Entry{gen, std::move(plan)};
  }
  return entry.plan;
}

void PlanCache::BindMetrics(obs::Counter hits, obs::Counter misses,
                            obs::Counter invalidated) {
  metric_hits_ = hits;
  metric_misses_ = misses;
  metric_invalidated_ = invalidated;
}

PlanCache::Stats PlanCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.invalidated += shard.stats.invalidated;
  }
  return total;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace trinit::plan
