#ifndef TRINIT_PLAN_PLANNER_H_
#define TRINIT_PLAN_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "plan/join_plan.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "xkg/xkg.h"

namespace trinit::plan {

/// Compiles a (possibly rewritten) query into a `JoinPlan`.
///
/// Cardinality estimation is pure index metadata — a `ScoreOrdered`
/// block search per pattern (O(log n)) plus `GraphStats` lookups for
/// predicate-bound shapes — so planning never decodes a triple. The
/// pattern order is greedy: start from the most selective pattern, then
/// repeatedly append the cheapest pattern *connected* to the ordered
/// prefix by a shared variable; a disconnected pattern (cross product)
/// is only chosen when nothing connected remains. "Cheapest" is
/// fan-out-aware: for a connected pattern the cost is the estimated
/// join *output* — match cardinality divided by the predicate's
/// distinct subjects/objects for every slot variable the prefix
/// already binds (`PatternEstimate::distinct_*`) — so joins are ranked
/// by what they produce, not by input list length.
class Planner {
 public:
  /// `vars` must be the variable table of `q`. The plan holds no
  /// references into `q` or `xkg` and outlives both. With
  /// `cost_order == false` the execution order stays the parser's
  /// pattern order (the bench comparator that isolates ordering from
  /// hash partitioning); estimates and join-key signatures are computed
  /// either way.
  static std::shared_ptr<const JoinPlan> Compile(const query::Query& q,
                                                 const query::VarTable& vars,
                                                 const xkg::Xkg& xkg,
                                                 bool cost_order = true);
};

/// Thread-safe, sharded cache of compiled plans keyed by the query's
/// structural signature (`JoinPlan::StructureOf`): rewrite variants with
/// the same pattern shapes but different constants reuse one plan
/// instead of re-deriving order and join-key signatures per variant.
///
/// Lifetime: the cache lives as long as its owner. Since PR 4 the
/// serving path shares one engine-level cache across requests
/// (`serve::ServingCache` owns it; `TopKProcessor` *borrows* it), so
/// plans are amortized over the whole workload, not one request. A
/// processor constructed without a shared cache still owns a private
/// one (benches, tests, direct processor users).
///
/// Invalidation: entries are stamped with the cache's *generation* at
/// insert. `BumpGeneration()` (called on any XKG/rule mutation) is O(1)
/// and never blocks readers; each shard lazily reaps its stale entries
/// on its first lookup after the bump (`Stats::invalidated` counts
/// them), so nothing stale is ever served and orphaned keys (a rebuild
/// moves term ids inside structural signatures) cannot accumulate.
class PlanCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    /// Lookups that found an entry from an older generation; counted on
    /// top of the miss they turn into.
    size_t invalidated = 0;
  };

  /// `num_shards` splits the key space across independently locked
  /// maps; 1 (the default) is right for per-processor private caches,
  /// the engine-level serving cache uses more. `initial_generation`
  /// seeds the invalidation counter — a snapshot-restored engine
  /// continues the saved engine's generation sequence instead of
  /// restarting at 0 (see `serve::ServingCache`).
  explicit PlanCache(size_t num_shards = 1, uint64_t initial_generation = 0);

  /// Returns the cached plan for `q`'s structure, compiling (and
  /// caching) it on first sight. Safe for concurrent callers.
  /// Cost-ordered and parser-ordered plans cache under distinct keys.
  /// `was_hit` (optional) reports whether this call was served from
  /// cache — per-call, so concurrent callers can attribute hits/misses
  /// to their own run (the aggregate `stats()` is cache-global).
  std::shared_ptr<const JoinPlan> Get(const query::Query& q,
                                      const query::VarTable& vars,
                                      const xkg::Xkg& xkg,
                                      bool cost_order = true,
                                      bool* was_hit = nullptr) const;

  /// The current generation; entries from older generations are treated
  /// as absent (and recompiled) on lookup.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Invalidates every cached plan, lazily: bumps the generation so
  /// stale entries miss on their next lookup. Call after any mutation
  /// of the data the plans were compiled against.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  Stats stats() const;
  size_t size() const;  ///< entries held, including not-yet-reaped stale

  /// Mirrors hit/miss/invalidation counting onto engine registry
  /// metrics (in addition to the mutex-guarded `Stats`, which remain
  /// the exact per-cache numbers). Must be called before the cache is
  /// shared across threads — the engine binds at construction, under
  /// exclusive ownership. Unbound handles (the default, and every
  /// processor-private cache) cost one null check per event.
  void BindMetrics(obs::Counter hits, obs::Counter misses,
                   obs::Counter invalidated);

 private:
  struct Entry {
    uint64_t generation = 0;
    std::shared_ptr<const JoinPlan> plan;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, Entry> entries TRINIT_GUARDED_BY(mu);
    Stats stats TRINIT_GUARDED_BY(mu);
    /// Generation this shard last reaped stale entries for (a rebuild
    /// can move term ids inside structural keys, so stale entries must
    /// be swept, not just overwritten on key collision).
    uint64_t swept_generation TRINIT_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key) const;

  std::atomic<uint64_t> generation_{0};
  mutable std::vector<Shard> shards_;
  // Registry mirrors of Stats; written only by BindMetrics (pre-share).
  obs::Counter metric_hits_;
  obs::Counter metric_misses_;
  obs::Counter metric_invalidated_;
};

}  // namespace trinit::plan

#endif  // TRINIT_PLAN_PLANNER_H_
