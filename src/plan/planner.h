#ifndef TRINIT_PLAN_PLANNER_H_
#define TRINIT_PLAN_PLANNER_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "plan/join_plan.h"
#include "xkg/xkg.h"

namespace trinit::plan {

/// Compiles a (possibly rewritten) query into a `JoinPlan`.
///
/// Cardinality estimation is pure index metadata — a `ScoreOrdered`
/// block search per pattern (O(log n)) plus `GraphStats` lookups for
/// predicate-bound shapes — so planning never decodes a triple. The
/// pattern order is greedy: start from the most selective pattern, then
/// repeatedly append the cheapest pattern *connected* to the ordered
/// prefix by a shared variable; a disconnected pattern (cross product)
/// is only chosen when nothing connected remains.
class Planner {
 public:
  /// `vars` must be the variable table of `q`. The plan holds no
  /// references into `q` or `xkg` and outlives both. With
  /// `cost_order == false` the execution order stays the parser's
  /// pattern order (the bench comparator that isolates ordering from
  /// hash partitioning); estimates and join-key signatures are computed
  /// either way.
  static std::shared_ptr<const JoinPlan> Compile(const query::Query& q,
                                                 const query::VarTable& vars,
                                                 const xkg::Xkg& xkg,
                                                 bool cost_order = true);
};

/// Thread-safe cache of compiled plans keyed by the query's structural
/// signature (`JoinPlan::StructureOf`): rewrite variants with the same
/// pattern shapes but different constants reuse one plan instead of
/// re-deriving order and join-key signatures per variant.
///
/// Lifetime: the cache lives as long as its owner — `TopKProcessor`
/// holds one, so in the serving path (`Trinit::Execute` constructs a
/// processor per request) plans are shared across the variants of one
/// request and released with it. A longer-lived processor (benches,
/// tests) amortizes planning across every query it answers.
class PlanCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
  };

  /// Returns the cached plan for `q`'s structure, compiling (and
  /// caching) it on first sight. Safe for concurrent callers.
  /// Cost-ordered and parser-ordered plans cache under distinct keys.
  /// `was_hit` (optional) reports whether this call was served from
  /// cache — per-call, so concurrent callers can attribute hits/misses
  /// to their own run (the aggregate `stats()` is cache-global).
  std::shared_ptr<const JoinPlan> Get(const query::Query& q,
                                      const query::VarTable& vars,
                                      const xkg::Xkg& xkg,
                                      bool cost_order = true,
                                      bool* was_hit = nullptr) const;

  Stats stats() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, std::shared_ptr<const JoinPlan>>
      cache_;
  mutable Stats stats_;
};

}  // namespace trinit::plan

#endif  // TRINIT_PLAN_PLANNER_H_
