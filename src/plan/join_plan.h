#ifndef TRINIT_PLAN_JOIN_PLAN_H_
#define TRINIT_PLAN_JOIN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/binding.h"
#include "query/query.h"

namespace trinit::plan {

/// Selectivity estimate for one triple pattern, derived from index
/// metadata only (no decoding): the score-ordered block length is the
/// estimated match cardinality, its prefix-sum mass the total evidence
/// behind the block.
struct PatternEstimate {
  size_t pattern = 0;        ///< original pattern index in the query
  double cardinality = 0.0;  ///< estimated result-list length
  uint64_t mass = 0;         ///< score-ordered block evidence mass
  /// False when a token (soft-match) slot forced a wildcard guess; the
  /// cardinality is then a coarse upper bound rather than an exact
  /// count. Diagnostic (trace/tests) — the greedy order ranks exact and
  /// inexact estimates uniformly.
  bool exact = true;
  /// Fan-out statistics of the pattern's constant predicate, from
  /// `GraphStats` (0 when the predicate is a variable, a token, or
  /// unknown). The greedy order divides `cardinality` by these when the
  /// corresponding slot's variable is already bound by the ordered
  /// prefix: `cardinality / distinct_subjects` is the expected rows
  /// *per subject binding* — an estimate of join **output**, not input
  /// size, so a huge-but-narrow pattern (many triples, one object per
  /// subject) ranks ahead of a small-but-fanning one.
  double distinct_subjects = 0.0;
  double distinct_objects = 0.0;
  /// Shards of the XKG decomposition this estimate was taken over (1 =
  /// unsharded). Purely diagnostic: the stats the estimates derive from
  /// are the exact per-shard merge, so the cost order never varies with
  /// the shard count — this annotation lets traces and tests assert
  /// that.
  uint32_t shards = 1;
};

/// The compiled execution shape of one conjunctive query: a cost-based
/// pattern order plus the precomputed join-key signature (the shared
/// `VarId`s) for every stream pair, so the rank-join can hash-partition
/// its seen items instead of probing every one linearly.
///
/// All pairwise structures are indexed by *execution position* (the
/// order streams are actually built in), not by original pattern index;
/// `order[pos]` maps back. Plans are immutable once compiled and shared
/// by `shared_ptr` across variants and worker threads.
struct JoinPlan {
  /// Execution position -> original pattern index. Selective patterns
  /// first, preferring patterns connected (by a shared variable) to the
  /// already-ordered prefix so the join frontier stays narrow.
  std::vector<size_t> order;

  /// Per-pattern estimates, indexed by original pattern index.
  std::vector<PatternEstimate> estimates;

  /// `join_keys[a][b]` = sorted shared `VarId`s between the patterns at
  /// execution positions `a` and `b` (symmetric; empty when the pair
  /// shares no variable and joins as a cross product).
  std::vector<std::vector<std::vector<query::VarId>>> join_keys;

  /// For each execution position `b`, the counterpart positions with a
  /// non-empty join key, widest signature first — the order the join
  /// engine prefers its probe partner in.
  std::vector<std::vector<size_t>> probe_preference;

  /// Structural cache key of the query this plan was compiled for (see
  /// `StructureOf`).
  std::string structure;

  size_t num_patterns() const { return order.size(); }

  /// Shared `VarId`s between execution positions `a` and `b`.
  const std::vector<query::VarId>& JoinKey(size_t a, size_t b) const {
    return join_keys[a][b];
  }

  /// The *structural* signature of a query: per pattern, each slot's
  /// variable id or constant kind, plus the identity of constant
  /// *predicates* (they dominate cardinality; subject/object constant
  /// identity is erased). Structurally identical queries — the same
  /// pattern shapes and predicates with different entity/literal
  /// constants, as produced by rule rewrites — share one plan: the
  /// join-key signatures are identical by construction and the cost
  /// order transfers.
  static std::string StructureOf(const query::Query& q,
                                 const query::VarTable& vars);
};

}  // namespace trinit::plan

#endif  // TRINIT_PLAN_JOIN_PLAN_H_
