#include "openie/linker.h"

#include <algorithm>

#include "text/phrase.h"

namespace trinit::openie {

void Linker::AddAlias(std::string_view alias, std::string_view entity,
                      double popularity) {
  std::string key = text::NormalizePhrase(alias);
  if (key.empty()) return;
  std::vector<Candidate>& candidates = table_[key];
  for (Candidate& c : candidates) {
    if (c.entity == entity) {
      c.popularity = std::max(c.popularity, popularity);
      return;
    }
  }
  candidates.push_back({std::string(entity), popularity});
}

LinkResult Linker::Link(std::string_view phrase) const {
  LinkResult result;
  auto it = table_.find(text::NormalizePhrase(phrase));
  if (it == table_.end()) return result;
  const std::vector<Candidate>& candidates = it->second;
  result.candidates = candidates.size();
  if (candidates.size() == 1) {
    result.linked = true;
    result.entity = candidates[0].entity;
    result.confidence = options_.unambiguous_confidence;
    return result;
  }
  double total = 0.0;
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    total += c.popularity;
    if (best == nullptr || c.popularity > best->popularity) best = &c;
  }
  if (total > 0.0 && best->popularity / total >=
                         options_.dominance_threshold) {
    result.linked = true;
    result.entity = best->entity;
    result.confidence = options_.ambiguous_confidence;
  }
  return result;
}

}  // namespace trinit::openie
