#include "openie/chunker.h"

#include <array>
#include <cctype>

#include "util/string_util.h"

namespace trinit::openie {
namespace {

// Capitalized words that are function words, not names, when they open
// a sentence or follow punctuation.
constexpr std::array<std::string_view, 14> kFunctionWords = {
    "In", "The", "A",  "An",  "On",  "At",  "By",
    "He", "She", "It", "They", "His", "Her", "According"};

bool IsFunctionWord(std::string_view token) {
  for (std::string_view w : kFunctionWords) {
    if (w == token) return true;
  }
  return false;
}

// Raw whitespace tokenization preserving the original forms (the
// text::Tokenizer lowercases, which would destroy the capitalization
// signal the chunker needs). Punctuation is preserved — text spans need
// their commas for downstream clause trimming; NP chunks strip it when
// flushed.
std::vector<std::string> RawTokens(std::string_view sentence) {
  return SplitWhitespace(sentence);
}

bool HasTrailingPunct(const std::string& token) {
  return !token.empty() &&
         (token.back() == '.' || token.back() == ',' ||
          token.back() == '!' || token.back() == '?');
}

std::string StripTrailingPunct(std::string token) {
  while (HasTrailingPunct(token)) token.pop_back();
  return token;
}

}  // namespace

bool Chunker::IsNounPhraseToken(std::string_view token) {
  if (token.empty()) return false;
  char c = token.front();
  if (std::isupper(static_cast<unsigned char>(c))) return true;
  // Digits extend NPs ("University of Ulm3", "Keller Prize 4").
  if (std::isdigit(static_cast<unsigned char>(c))) return true;
  // "of" inside a capitalized run ("University of Graustadt") is NP glue;
  // the caller handles that contextually, not here.
  return false;
}

std::vector<Chunk> Chunker::Segment(std::string_view sentence) {
  std::vector<std::string> tokens = RawTokens(sentence);
  std::vector<Chunk> chunks;

  auto flush = [&chunks, &tokens](Chunk::Kind kind, size_t begin,
                                  size_t end) {
    if (begin >= end) return;
    Chunk chunk;
    chunk.kind = kind;
    chunk.token_begin = begin;
    chunk.token_end = end;
    for (size_t i = begin; i < end; ++i) {
      if (i > begin) chunk.text += " ";
      // Noun phrases are canonical mention text (no punctuation); text
      // spans keep commas so clause boundaries survive.
      chunk.text += kind == Chunk::Kind::kNounPhrase
                        ? StripTrailingPunct(tokens[i])
                        : tokens[i];
    }
    // Drop a trailing sentence terminator from text spans.
    if (kind == Chunk::Kind::kText && !chunk.text.empty() &&
        (chunk.text.back() == '.' || chunk.text.back() == '!' ||
         chunk.text.back() == '?')) {
      chunk.text.pop_back();
    }
    chunks.push_back(std::move(chunk));
  };

  size_t i = 0;
  size_t span_start = 0;
  while (i < tokens.size()) {
    // An NP must *start* with a capitalized word (digits may only extend
    // it — "In 1880," must not open a noun phrase), and sentence-initial
    // capitalized function words don't count.
    bool np_start =
        !tokens[i].empty() &&
        std::isupper(static_cast<unsigned char>(tokens[i].front())) &&
        !(i == 0 && IsFunctionWord(tokens[i]));
    if (!np_start) {
      ++i;
      continue;
    }
    // Flush the text span before this NP.
    flush(Chunk::Kind::kText, span_start, i);
    size_t np_begin = i;
    while (i < tokens.size()) {
      if (IsNounPhraseToken(tokens[i])) {
        bool ends_clause = HasTrailingPunct(tokens[i]);
        ++i;
        if (ends_clause) break;  // "Keller," closes the noun phrase
        continue;
      }
      // "of" glues two capitalized parts: "University of Graustadt".
      if (tokens[i] == "of" && i + 1 < tokens.size() &&
          IsNounPhraseToken(tokens[i + 1])) {
        i += 2;
        if (HasTrailingPunct(tokens[i - 1])) break;
        continue;
      }
      break;
    }
    flush(Chunk::Kind::kNounPhrase, np_begin, i);
    span_start = i;
  }
  flush(Chunk::Kind::kText, span_start, tokens.size());
  return chunks;
}

}  // namespace trinit::openie
