#include "openie/pipeline.h"

#include "text/phrase.h"
#include "text/tokenizer.h"

namespace trinit::openie {

Pipeline::Stats Pipeline::Run(const std::vector<synth::Document>& docs,
                              xkg::XkgBuilder* builder) const {
  Stats stats;
  for (const synth::Document& doc : docs) {
    ++stats.documents;
    std::vector<std::string> sentences =
        text::Tokenizer::SplitSentences(doc.text);
    for (uint32_t si = 0; si < sentences.size(); ++si) {
      ++stats.sentences;
      for (const Extraction& ex :
           extractor_.ExtractSentence(sentences[si])) {
        ++stats.extractions;

        // Subject argument.
        LinkResult s_link = linker_.Link(ex.arg1);
        rdf::TermId s =
            s_link.linked
                ? builder->dict().InternResource(s_link.entity)
                : builder->dict().InternToken(
                      text::NormalizePhrase(ex.arg1));
        (s_link.linked ? stats.arguments_linked : stats.arguments_token)++;

        // Object argument: clause tails are never linked.
        LinkResult o_link;
        if (ex.arg2_is_np) o_link = linker_.Link(ex.arg2);
        rdf::TermId o =
            o_link.linked
                ? builder->dict().InternResource(o_link.entity)
                : builder->dict().InternToken(
                      text::NormalizePhrase(ex.arg2));
        (o_link.linked ? stats.arguments_linked : stats.arguments_token)++;

        rdf::TermId p = builder->dict().InternToken(
            text::NormalizePhrase(ex.relation));
        if (s == rdf::kNullTerm || p == rdf::kNullTerm ||
            o == rdf::kNullTerm) {
          continue;  // degenerate phrase normalized to nothing
        }

        double confidence = ex.confidence;
        if (s_link.linked) confidence *= s_link.confidence;
        if (o_link.linked) confidence *= o_link.confidence;

        xkg::Provenance prov;
        prov.doc_id = doc.id;
        prov.sentence_idx = si;
        prov.sentence = sentences[si];
        prov.extraction_confidence = ex.confidence;
        builder->AddExtraction(s, p, o, static_cast<float>(confidence),
                               std::move(prov));
      }
    }
  }
  return stats;
}

Linker Pipeline::LinkerForWorld(const synth::World& world,
                                Linker::Options options) {
  Linker linker(options);
  for (const synth::Entity& e : world.entities) {
    for (const std::string& alias : e.aliases) {
      linker.AddAlias(alias, e.name, e.popularity);
    }
    // The canonical label itself (underscored) is also a surface form.
    linker.AddAlias(e.name, e.name, e.popularity);
  }
  return linker;
}

}  // namespace trinit::openie
