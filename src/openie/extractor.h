#ifndef TRINIT_OPENIE_EXTRACTOR_H_
#define TRINIT_OPENIE_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "openie/chunker.h"

namespace trinit::openie {

/// A raw Open IE extraction: two argument phrases connected by a verbal
/// phrase, before entity linking. Argument phrases are surface text;
/// the relation phrase is kept verbatim (normalization happens when it
/// is interned as a token term).
struct Extraction {
  std::string arg1;      ///< subject phrase (NP surface form)
  std::string relation;  ///< verbal phrase between the arguments
  std::string arg2;      ///< object phrase (NP or lowercase tail)
  double confidence = 1.0;
  bool arg2_is_np = true;  ///< false: arg2 is a clause tail ("work on
                           ///< physics"), never linkable to an entity
};

/// ReVerb-style triple extractor over chunked sentences (DESIGN.md §4).
///
/// Patterns produced:
///  1. NP — text — NP  for consecutive noun phrases with a short verbal
///     connective ("Anna Keller works at University of Graustadt");
///  2. NP — text+NP+"for" — tail for prize-rationale shapes ("X won the
///     Keller Prize for work on physics" yields (X, 'won the Keller
///     Prize for', 'work on physics')), mirroring the Figure 3
///     photoelectric-effect triple.
///
/// Confidence decreases with connective length and sentence complexity,
/// mimicking ReVerb's confidence function shape.
class Extractor {
 public:
  struct Options {
    size_t max_relation_tokens = 6;
    size_t max_tail_tokens = 8;
    double base_confidence = 0.9;
    double min_confidence = 0.3;
  };

  Extractor() : Extractor(Options()) {}
  explicit Extractor(Options options) : options_(options) {}

  /// Extracts triples from one raw sentence.
  std::vector<Extraction> ExtractSentence(std::string_view sentence) const;

  const Options& options() const { return options_; }

 private:
  double Confidence(size_t relation_tokens, size_t nps_in_sentence) const;

  Options options_;
};

}  // namespace trinit::openie

#endif  // TRINIT_OPENIE_EXTRACTOR_H_
