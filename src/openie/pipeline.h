#ifndef TRINIT_OPENIE_PIPELINE_H_
#define TRINIT_OPENIE_PIPELINE_H_

#include <vector>

#include "openie/extractor.h"
#include "openie/linker.h"
#include "synth/corpus_generator.h"
#include "xkg/xkg_builder.h"

namespace trinit::openie {

/// End-to-end Open IE over a document corpus: sentence splitting,
/// chunking, extraction, entity linking, and XKG population with
/// per-extraction provenance — the "run Open IE on Web sources and
/// collect textual triples" stage of the paper (§2).
class Pipeline {
 public:
  struct Stats {
    size_t documents = 0;
    size_t sentences = 0;
    size_t extractions = 0;
    size_t arguments_linked = 0;   ///< NP arguments resolved to entities
    size_t arguments_token = 0;    ///< NP/tail arguments kept as tokens
  };

  Pipeline(Extractor extractor, Linker linker)
      : extractor_(std::move(extractor)), linker_(std::move(linker)) {}

  /// Runs the pipeline over `docs`, adding every extraction to
  /// `builder` (subjects/objects linked where possible, relation always
  /// a token term).
  Stats Run(const std::vector<synth::Document>& docs,
            xkg::XkgBuilder* builder) const;

  /// Builds a linker whose alias table covers every entity of `world`
  /// (what FACC1 annotations provided over ClueWeb).
  static Linker LinkerForWorld(const synth::World& world,
                               Linker::Options options = {});

  const Linker& linker() const { return linker_; }

 private:
  Extractor extractor_;
  Linker linker_;
};

}  // namespace trinit::openie

#endif  // TRINIT_OPENIE_PIPELINE_H_
