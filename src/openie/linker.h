#ifndef TRINIT_OPENIE_LINKER_H_
#define TRINIT_OPENIE_LINKER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace trinit::openie {

/// Outcome of linking one argument phrase.
struct LinkResult {
  bool linked = false;
  std::string entity;     ///< canonical resource label when linked
  double confidence = 0.0;
  size_t candidates = 0;  ///< how many entities share the alias
};

/// Dictionary-based named-entity disambiguation — the stand-in for
/// AIDA/Spotlight/TagMe + the FACC1 annotations (DESIGN.md §4).
///
/// An alias table maps normalized surface forms to candidate entities
/// with popularity priors. Unambiguous aliases link with high
/// confidence; ambiguous ones link to the dominant candidate only when
/// its prior outweighs the rest, otherwise the phrase stays a textual
/// token in the XKG (which is exactly what the extended data model is
/// for).
class Linker {
 public:
  struct Options {
    double unambiguous_confidence = 0.95;
    /// Minimum share of total candidate popularity the top candidate
    /// needs for an ambiguous alias to link at all.
    double dominance_threshold = 0.6;
    double ambiguous_confidence = 0.7;
  };

  Linker() : Linker(Options()) {}
  explicit Linker(Options options) : options_(options) {}

  /// Registers `alias` as a surface form of `entity` (canonical label)
  /// with the given popularity prior. Aliases are normalized internally.
  void AddAlias(std::string_view alias, std::string_view entity,
                double popularity);

  /// Links a phrase, or reports it unlinkable.
  LinkResult Link(std::string_view phrase) const;

  size_t alias_count() const { return table_.size(); }

 private:
  struct Candidate {
    std::string entity;
    double popularity;
  };
  Options options_;
  std::unordered_map<std::string, std::vector<Candidate>> table_;
};

}  // namespace trinit::openie

#endif  // TRINIT_OPENIE_LINKER_H_
