#include "openie/extractor.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace trinit::openie {
namespace {

// A connective span qualifies as a relation phrase if it is short and
// contains at least one content (non-stopword) token — mirroring
// ReVerb's requirement that relation phrases contain a verb.
bool IsRelationPhrase(const std::string& text, size_t max_tokens) {
  std::vector<std::string> tokens = text::Tokenizer::Tokenize(text);
  if (tokens.empty() || tokens.size() > max_tokens) return false;
  for (const std::string& t : tokens) {
    if (!text::Tokenizer::IsStopword(t)) return true;
  }
  // All-stopword connectives like "is in" still qualify if very short.
  return tokens.size() <= 2;
}

size_t TokenCount(const std::string& text) {
  return text::Tokenizer::Tokenize(text).size();
}

// Removes a leading preposition tail marker: "for work on physics" ->
// ("for", "work on physics"); returns empty prep if no marker.
std::pair<std::string, std::string> SplitTail(const std::string& text) {
  std::vector<std::string> tokens = SplitWhitespace(text);
  if (tokens.size() < 2) return {"", ""};
  std::string head = ToLower(tokens[0]);
  if (head != "for" && head != "about" && head != "on") return {"", ""};
  std::string rest;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (i > 1) rest += " ";
    rest += tokens[i];
  }
  return {head, rest};
}

// Trims trailing subordinate fluff from a tail (", according to ...").
std::string TrimTailClause(std::string tail) {
  size_t comma = tail.find(',');
  if (comma != std::string::npos) tail.resize(comma);
  return std::string(Trim(tail));
}

}  // namespace

double Extractor::Confidence(size_t relation_tokens,
                             size_t nps_in_sentence) const {
  double conf = options_.base_confidence;
  if (relation_tokens > 2) {
    conf -= 0.07 * static_cast<double>(relation_tokens - 2);
  }
  if (nps_in_sentence > 2) conf -= 0.1;
  return std::max(conf, options_.min_confidence);
}

std::vector<Extraction> Extractor::ExtractSentence(
    std::string_view sentence) const {
  std::vector<Chunk> chunks = Chunker::Segment(sentence);
  size_t nps = static_cast<size_t>(
      std::count_if(chunks.begin(), chunks.end(), [](const Chunk& c) {
        return c.kind == Chunk::Kind::kNounPhrase;
      }));

  std::vector<Extraction> out;
  for (size_t i = 0; i + 2 < chunks.size(); ++i) {
    if (chunks[i].kind != Chunk::Kind::kNounPhrase) continue;
    if (chunks[i + 1].kind != Chunk::Kind::kText) continue;
    if (chunks[i + 2].kind != Chunk::Kind::kNounPhrase) continue;
    const std::string& relation = chunks[i + 1].text;
    if (!IsRelationPhrase(relation, options_.max_relation_tokens)) continue;

    size_t rel_tokens = TokenCount(relation);
    Extraction extraction;
    extraction.arg1 = chunks[i].text;
    extraction.relation = relation;
    extraction.arg2 = chunks[i + 2].text;
    extraction.confidence = Confidence(rel_tokens, nps);
    extraction.arg2_is_np = true;
    out.push_back(extraction);

    // Rationale pattern: NP VP NP2 "for <tail>" -> token-object triple
    // (NP, "VP NP2 for", tail). Mirrors ReVerb relation phrases that
    // embed nouns ("won a Nobel for").
    if (i + 3 < chunks.size() &&
        chunks[i + 3].kind == Chunk::Kind::kText) {
      auto [prep, tail] = SplitTail(chunks[i + 3].text);
      tail = TrimTailClause(tail);
      if (!prep.empty() && !tail.empty() &&
          TokenCount(tail) <= options_.max_tail_tokens) {
        Extraction rationale;
        rationale.arg1 = chunks[i].text;
        rationale.relation =
            relation + " " + chunks[i + 2].text + " " + prep;
        rationale.arg2 = tail;
        rationale.confidence =
            Confidence(rel_tokens + TokenCount(tail), nps) * 0.9;
        rationale.arg2_is_np = false;
        out.push_back(std::move(rationale));
      }
    }
  }
  return out;
}

}  // namespace trinit::openie
