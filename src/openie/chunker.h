#ifndef TRINIT_OPENIE_CHUNKER_H_
#define TRINIT_OPENIE_CHUNKER_H_

#include <string>
#include <string_view>
#include <vector>

namespace trinit::openie {

/// A span of a sentence classified as a noun-phrase candidate or
/// connective text.
struct Chunk {
  enum class Kind {
    kNounPhrase,  ///< capitalized run: entity-mention candidate
    kText,        ///< everything else (verb phrases, tails, fluff)
  };
  Kind kind = Kind::kText;
  std::string text;          ///< raw surface text of the span
  size_t token_begin = 0;    ///< token offsets within the sentence
  size_t token_end = 0;      ///< exclusive
};

/// Deterministic shallow chunker: segments a sentence into noun-phrase
/// candidates (maximal runs of capitalized tokens, the convention the
/// synthetic corpus and most proper-noun mentions follow) and connective
/// text spans.
///
/// This replaces the POS-tagger+regex stage of ReVerb (DESIGN.md §4):
/// same contract — NP candidates with connective spans between them —
/// with deterministic behaviour so extraction tests are exact.
class Chunker {
 public:
  /// Chunks a raw (untokenized) sentence. Sentence-initial function
  /// words ("In", "The", ...) are not NP material despite their
  /// capitalization.
  static std::vector<Chunk> Segment(std::string_view sentence);

  /// True if `token` (raw, capitalized-or-not) can start/extend an NP.
  static bool IsNounPhraseToken(std::string_view token);
};

}  // namespace trinit::openie

#endif  // TRINIT_OPENIE_CHUNKER_H_
