#include "scoring/lm_scorer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rdf/score_order_index.h"
#include "xkg/xkg_builder.h"

namespace trinit::scoring {
namespace {

xkg::Xkg SmallWorld() {
  xkg::XkgBuilder b;
  b.AddKgFact("A", "p", "B");
  b.AddExtraction("A", true, "works at", "C", true, 0.5f,
                  {1, 0, "A works at C.", 0.5});
  b.AddExtraction("A", true, "works at", "C", true, 0.5f,
                  {2, 0, "A works at C!", 0.5});
  b.AddExtraction("D", true, "works at", "C", true, 1.0f,
                  {3, 0, "D works at C.", 1.0});
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(LmScorerTest, PatternMassSumsCounts) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  auto all = xkg.store().Match(rdf::kNullTerm, rdf::kNullTerm,
                               rdf::kNullTerm);
  EXPECT_EQ(scorer.PatternMass(all), 4u);  // 1 + 2 + 1
}

TEST(LmScorerTest, ScoreIsLogProbability) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple t;
  t.count = 2;
  t.confidence = 0.5f;
  // p = (2 * 0.5) / 4 = 0.25.
  EXPECT_NEAR(scorer.ScoreTriple(t, 4), std::log(0.25), 1e-12);
}

TEST(LmScorerTest, TfEffectPrefersFrequentTriples) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple frequent;
  frequent.count = 3;
  rdf::Triple rare;
  rare.count = 1;
  EXPECT_GT(scorer.ScoreTriple(frequent, 10), scorer.ScoreTriple(rare, 10));
}

TEST(LmScorerTest, IdfEffectPenalizesUnselectivePatterns) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple t;
  t.count = 1;
  EXPECT_GT(scorer.ScoreTriple(t, 2), scorer.ScoreTriple(t, 100));
}

TEST(LmScorerTest, ConfidenceAttenuates) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple sure;
  sure.confidence = 1.0f;
  rdf::Triple shaky;
  shaky.confidence = 0.3f;
  EXPECT_GT(scorer.ScoreTriple(sure, 5), scorer.ScoreTriple(shaky, 5));
}

TEST(LmScorerTest, AblationSwitchesChangeBehaviour) {
  xkg::Xkg xkg = SmallWorld();
  rdf::Triple t;
  t.count = 3;
  t.confidence = 0.5f;

  ScorerOptions no_tf;
  no_tf.use_tf = false;
  LmScorer s1(xkg, no_tf);
  EXPECT_NEAR(s1.ScoreTriple(t, 4), std::log(0.5 / 4), 1e-12);

  ScorerOptions no_conf;
  no_conf.use_confidence = false;
  LmScorer s2(xkg, no_conf);
  EXPECT_NEAR(s2.ScoreTriple(t, 4), std::log(3.0 / 4), 1e-12);

  ScorerOptions no_idf;
  no_idf.use_idf = false;
  LmScorer s3(xkg, no_idf);
  // Denominator becomes the collection mass (4).
  EXPECT_NEAR(s3.ScoreTriple(t, 2), std::log(1.5 / 4), 1e-12);
}

TEST(LmScorerTest, ScoresNeverExceedUpperBound) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  for (uint32_t count : {1u, 2u, 5u}) {
    for (float conf : {0.1f, 0.5f, 1.0f}) {
      rdf::Triple t;
      t.count = count;
      t.confidence = conf;
      EXPECT_LE(scorer.ScoreTriple(t, count),  // mass == count: p <= 1
                LmScorer::kMaxPatternScore);
    }
  }
}

TEST(LmScorerTest, ZeroMassAndZeroConfidenceAreFinite) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple t;
  t.confidence = 0.0f;
  double s = scorer.ScoreTriple(t, 0);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_LE(s, LmScorer::kMinScore);
}

TEST(LmScorerTest, UpperBoundForListDominatesEveryConfig) {
  // The list bound must dominate ScoreTriple for every triple whose
  // emission weight is <= the bound's weight argument, under all four
  // tf/confidence ablation combinations (and both idf settings) — the
  // soundness contract lazy streams rely on.
  xkg::Xkg xkg = SmallWorld();
  for (bool use_tf : {true, false}) {
    for (bool use_confidence : {true, false}) {
      for (bool use_idf : {true, false}) {
        ScorerOptions opts;
        opts.use_tf = use_tf;
        opts.use_confidence = use_confidence;
        opts.use_idf = use_idf;
        LmScorer scorer(xkg, opts);
        auto all = xkg.store().ScoreOrdered(rdf::kNullTerm, rdf::kNullTerm,
                                            rdf::kNullTerm);
        // Every suffix: the bound keyed by the suffix head's weight
        // covers every triple at or below it.
        for (size_t i = 0; i < all.ids.size(); ++i) {
          double w = rdf::ScoreOrderIndex::WeightOf(
              xkg.store().triple(all.ids[i]));
          double bound = scorer.UpperBoundForList(w, all.mass);
          for (size_t j = i; j < all.ids.size(); ++j) {
            const rdf::Triple& t = xkg.store().triple(all.ids[j]);
            EXPECT_LE(scorer.ScoreTriple(t, all.mass), bound + 1e-12)
                << "tf=" << use_tf << " conf=" << use_confidence
                << " idf=" << use_idf << " i=" << i << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(LmScorerTest, UpperBoundSoundForZeroConfidenceInTfOnlyConfig) {
  // Regression: a zero-confidence triple sorts last in the weight-ordered
  // posting lists (weight = count × 0 = 0), but with confidence ablated
  // off it still scores log(count/denominator) — near the top of the
  // real ranking when its count is large. The bound keyed by weight 0
  // must cover it instead of collapsing to kMinScore.
  xkg::XkgBuilder b;
  b.AddKgFact("A", "p", "B");
  for (int i = 0; i < 5; ++i) {
    b.AddExtraction("A", true, "rumored at", "C", true, 0.0f,
                    {static_cast<uint32_t>(i), 0, "A ... C", 0.0});
  }
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  ScorerOptions tf_only;
  tf_only.use_confidence = false;
  LmScorer scorer(*r, tf_only);

  auto all = r->store().ScoreOrdered(rdf::kNullTerm, rdf::kNullTerm,
                                     rdf::kNullTerm);
  const rdf::Triple& last = r->store().triple(all.ids.back());
  ASSERT_EQ(last.confidence, 0.0f);
  ASSERT_EQ(last.count, 5u);
  double bound = scorer.UpperBoundForList(
      rdf::ScoreOrderIndex::WeightOf(last), all.mass);
  EXPECT_LE(scorer.ScoreTriple(last, all.mass), bound + 1e-12);
  EXPECT_GT(bound, LmScorer::kMinScore);
}

TEST(LmScorerTest, UpperBoundForListIsMonotoneInWeight) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  double prev = LmScorer::kMinScore;
  for (double w : {0.25, 0.5, 1.0, 2.0}) {
    double bound = scorer.UpperBoundForList(w, /*pattern_mass=*/4);
    EXPECT_GE(bound, prev);
    prev = bound;
  }
  // Production config: the bound is exactly the emission probability of
  // a triple with that weight (clamped at 0).
  EXPECT_NEAR(scorer.UpperBoundForList(1.0, 4), std::log(0.25), 1e-12);
  EXPECT_DOUBLE_EQ(scorer.UpperBoundForList(0.0, 4), LmScorer::kMinScore);
}

TEST(LogWeightTest, MonotoneAndClamped) {
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(1.0), 0.0);
  EXPECT_LT(LmScorer::LogWeight(0.5), 0.0);
  EXPECT_LT(LmScorer::LogWeight(0.1), LmScorer::LogWeight(0.5));
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(0.0), LmScorer::kMinScore);
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(-1.0), LmScorer::kMinScore);
  // Weights above 1 clamp to 0 (probabilities cannot amplify).
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(2.0), 0.0);
}

}  // namespace
}  // namespace trinit::scoring
