#include "scoring/lm_scorer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xkg/xkg_builder.h"

namespace trinit::scoring {
namespace {

xkg::Xkg SmallWorld() {
  xkg::XkgBuilder b;
  b.AddKgFact("A", "p", "B");
  b.AddExtraction("A", true, "works at", "C", true, 0.5f,
                  {1, 0, "A works at C.", 0.5});
  b.AddExtraction("A", true, "works at", "C", true, 0.5f,
                  {2, 0, "A works at C!", 0.5});
  b.AddExtraction("D", true, "works at", "C", true, 1.0f,
                  {3, 0, "D works at C.", 1.0});
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(LmScorerTest, PatternMassSumsCounts) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  auto all = xkg.store().Match(rdf::kNullTerm, rdf::kNullTerm,
                               rdf::kNullTerm);
  EXPECT_EQ(scorer.PatternMass(all), 4u);  // 1 + 2 + 1
}

TEST(LmScorerTest, ScoreIsLogProbability) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple t;
  t.count = 2;
  t.confidence = 0.5f;
  // p = (2 * 0.5) / 4 = 0.25.
  EXPECT_NEAR(scorer.ScoreTriple(t, 4), std::log(0.25), 1e-12);
}

TEST(LmScorerTest, TfEffectPrefersFrequentTriples) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple frequent;
  frequent.count = 3;
  rdf::Triple rare;
  rare.count = 1;
  EXPECT_GT(scorer.ScoreTriple(frequent, 10), scorer.ScoreTriple(rare, 10));
}

TEST(LmScorerTest, IdfEffectPenalizesUnselectivePatterns) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple t;
  t.count = 1;
  EXPECT_GT(scorer.ScoreTriple(t, 2), scorer.ScoreTriple(t, 100));
}

TEST(LmScorerTest, ConfidenceAttenuates) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple sure;
  sure.confidence = 1.0f;
  rdf::Triple shaky;
  shaky.confidence = 0.3f;
  EXPECT_GT(scorer.ScoreTriple(sure, 5), scorer.ScoreTriple(shaky, 5));
}

TEST(LmScorerTest, AblationSwitchesChangeBehaviour) {
  xkg::Xkg xkg = SmallWorld();
  rdf::Triple t;
  t.count = 3;
  t.confidence = 0.5f;

  ScorerOptions no_tf;
  no_tf.use_tf = false;
  LmScorer s1(xkg, no_tf);
  EXPECT_NEAR(s1.ScoreTriple(t, 4), std::log(0.5 / 4), 1e-12);

  ScorerOptions no_conf;
  no_conf.use_confidence = false;
  LmScorer s2(xkg, no_conf);
  EXPECT_NEAR(s2.ScoreTriple(t, 4), std::log(3.0 / 4), 1e-12);

  ScorerOptions no_idf;
  no_idf.use_idf = false;
  LmScorer s3(xkg, no_idf);
  // Denominator becomes the collection mass (4).
  EXPECT_NEAR(s3.ScoreTriple(t, 2), std::log(1.5 / 4), 1e-12);
}

TEST(LmScorerTest, ScoresNeverExceedUpperBound) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  for (uint32_t count : {1u, 2u, 5u}) {
    for (float conf : {0.1f, 0.5f, 1.0f}) {
      rdf::Triple t;
      t.count = count;
      t.confidence = conf;
      EXPECT_LE(scorer.ScoreTriple(t, count),  // mass == count: p <= 1
                LmScorer::kMaxPatternScore);
    }
  }
}

TEST(LmScorerTest, ZeroMassAndZeroConfidenceAreFinite) {
  xkg::Xkg xkg = SmallWorld();
  LmScorer scorer(xkg);
  rdf::Triple t;
  t.confidence = 0.0f;
  double s = scorer.ScoreTriple(t, 0);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_LE(s, LmScorer::kMinScore);
}

TEST(LogWeightTest, MonotoneAndClamped) {
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(1.0), 0.0);
  EXPECT_LT(LmScorer::LogWeight(0.5), 0.0);
  EXPECT_LT(LmScorer::LogWeight(0.1), LmScorer::LogWeight(0.5));
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(0.0), LmScorer::kMinScore);
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(-1.0), LmScorer::kMinScore);
  // Weights above 1 clamp to 0 (probabilities cannot amplify).
  EXPECT_DOUBLE_EQ(LmScorer::LogWeight(2.0), 0.0);
}

}  // namespace
}  // namespace trinit::scoring
