#include "text/similarity.h"

#include <gtest/gtest.h>

namespace trinit::text {
namespace {

using Tokens = std::vector<std::string>;

TEST(JaccardTest, IdenticalSetsAreOne) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "a"}), 1.0);
}

TEST(JaccardTest, DisjointSetsAreZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
}

TEST(JaccardTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"won", "nobel"}, {"won", "prize"}),
                   1.0 / 3.0);
}

TEST(JaccardTest, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 0.0);
}

TEST(JaccardTest, DuplicatesCollapse) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b", "b"}), 1.0);
}

TEST(ContainmentTest, AsymmetricByDesign) {
  Tokens small{"nobel"};
  Tokens large{"won", "nobel", "prize"};
  EXPECT_DOUBLE_EQ(Containment(small, large), 1.0);
  EXPECT_DOUBLE_EQ(Containment(large, small), 1.0 / 3.0);
}

TEST(ContainmentTest, EmptyProbeIsFullyContained) {
  EXPECT_DOUBLE_EQ(Containment({}, {"x"}), 1.0);
}

TEST(DiceTest, Basics) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 0.0);
}

TEST(PhraseSimilarityTest, StopwordsIgnored) {
  // After stopword removal both sides are {won, nobel} vs {won, nobel}.
  EXPECT_DOUBLE_EQ(PhraseSimilarity("won a nobel for", "won the nobel"), 1.0);
}

TEST(PhraseSimilarityTest, RelatedPhrasesScoreBetweenZeroAndOne) {
  double sim = PhraseSimilarity("won nobel prize", "won a nobel for");
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
}

TEST(PhraseSimilarityTest, UnrelatedPhrasesScoreZero) {
  EXPECT_DOUBLE_EQ(PhraseSimilarity("lectured at", "married to"), 0.0);
}

// Property sweep: similarity measures stay within [0,1] and are
// symmetric (Jaccard/Dice) over generated token sets.
class SimilarityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityPropertyTest, BoundedAndSymmetric) {
  int n = GetParam();
  Tokens a, b;
  for (int i = 0; i < n; ++i) {
    a.push_back("t" + std::to_string(i));
    b.push_back("t" + std::to_string(i + n / 2));
  }
  double j1 = JaccardSimilarity(a, b), j2 = JaccardSimilarity(b, a);
  double d1 = DiceSimilarity(a, b), d2 = DiceSimilarity(b, a);
  EXPECT_DOUBLE_EQ(j1, j2);
  EXPECT_DOUBLE_EQ(d1, d2);
  for (double v : {j1, d1, Containment(a, b)}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Jaccard <= Dice <= 2*Jaccard/(1+Jaccard) relation sanity: Jaccard <= Dice.
  EXPECT_LE(j1, d1 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimilarityPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50));

}  // namespace
}  // namespace trinit::text
