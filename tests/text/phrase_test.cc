#include "text/phrase.h"

#include <gtest/gtest.h>

namespace trinit::text {
namespace {

TEST(NormalizePhraseTest, CanonicalizesCaseAndSpacing) {
  EXPECT_EQ(NormalizePhrase("Won  a NOBEL for"), "won a nobel for");
  EXPECT_EQ(NormalizePhrase("  housed in "), "housed in");
}

TEST(NormalizePhraseTest, StripsPunctuation) {
  EXPECT_EQ(NormalizePhrase("won a Nobel, for!"), "won a nobel for");
}

TEST(NormalizePhraseTest, EmptyForNonWordInput) {
  EXPECT_EQ(NormalizePhrase("..."), "");
  EXPECT_EQ(NormalizePhrase(""), "");
}

TEST(NormalizePhraseTest, Idempotent) {
  std::string once = NormalizePhrase("Met His  Teacher");
  EXPECT_EQ(NormalizePhrase(once), once);
}

TEST(PhraseTokensTest, SplitsNormalizedPhrase) {
  EXPECT_EQ(PhraseTokens("won a nobel for"),
            (std::vector<std::string>{"won", "a", "nobel", "for"}));
}

TEST(ContentTokensTest, DropsStopwords) {
  EXPECT_EQ(ContentTokens("won a nobel for"),
            (std::vector<std::string>{"won", "nobel"}));
}

TEST(ContentTokensTest, FallsBackWhenAllStopwords) {
  // "is in" is all stopwords; the fallback keeps them so the phrase
  // still has a token signature.
  EXPECT_EQ(ContentTokens("is in"), (std::vector<std::string>{"is", "in"}));
}

}  // namespace
}  // namespace trinit::text
