#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace trinit::text {
namespace {

TEST(TokenizerTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(Tokenizer::Tokenize("Einstein won a Nobel!"),
            (std::vector<std::string>{"einstein", "won", "a", "nobel"}));
}

TEST(TokenizerTest, KeepsIntraWordHyphenAndApostrophe) {
  EXPECT_EQ(Tokenizer::Tokenize("state-of-the-art O'Neill"),
            (std::vector<std::string>{"state-of-the-art", "o'neill"}));
}

TEST(TokenizerTest, TrailingHyphenDropped) {
  EXPECT_EQ(Tokenizer::Tokenize("well- known"),
            (std::vector<std::string>{"well", "known"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenizer::Tokenize("").empty());
  EXPECT_TRUE(Tokenizer::Tokenize("?!.,;").empty());
}

TEST(TokenizerTest, NumbersAndDates) {
  EXPECT_EQ(Tokenizer::Tokenize("born 1879-03-14."),
            (std::vector<std::string>{"born", "1879-03-14"}));
}

TEST(SentenceSplitTest, SplitsOnTerminators) {
  auto s = Tokenizer::SplitSentences(
      "Einstein was born in Ulm. He worked at the IAS! Where did he "
      "lecture? At Princeton.");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], "Einstein was born in Ulm.");
  EXPECT_EQ(s[1], "He worked at the IAS!");
  EXPECT_EQ(s[2], "Where did he lecture?");
  EXPECT_EQ(s[3], "At Princeton.");
}

TEST(SentenceSplitTest, KeepsUnterminatedTail) {
  auto s = Tokenizer::SplitSentences("First. trailing fragment");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], "trailing fragment");
}

TEST(SentenceSplitTest, DoesNotSplitInsideNumbers) {
  auto s = Tokenizer::SplitSentences("Pi is 3.14 roughly.");
  ASSERT_EQ(s.size(), 1u);
}

TEST(StopwordTest, CommonFunctionWords) {
  EXPECT_TRUE(Tokenizer::IsStopword("the"));
  EXPECT_TRUE(Tokenizer::IsStopword("of"));
  EXPECT_TRUE(Tokenizer::IsStopword("was"));
  EXPECT_FALSE(Tokenizer::IsStopword("nobel"));
  EXPECT_FALSE(Tokenizer::IsStopword("einstein"));
}

}  // namespace
}  // namespace trinit::text
