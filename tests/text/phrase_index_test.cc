#include "text/phrase_index.h"

#include <gtest/gtest.h>

#include "rdf/dictionary.h"

namespace trinit::text {
namespace {

class PhraseIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    won_nobel_ = dict_.InternToken("won a nobel for");
    won_prize_ = dict_.InternToken("won the nobel prize for");
    lectured_ = dict_.InternToken("lectured at");
    housed_ = dict_.InternToken("housed in");
    // Resources must not be indexed.
    dict_.InternResource("NobelPrize");
    index_.emplace(PhraseIndex::Build(dict_));
  }

  rdf::Dictionary dict_;
  rdf::TermId won_nobel_, won_prize_, lectured_, housed_;
  std::optional<PhraseIndex> index_;
};

TEST_F(PhraseIndexTest, CountsOnlyTokenTerms) {
  EXPECT_EQ(index_->phrase_count(), 4u);
}

TEST_F(PhraseIndexTest, PostingsForContentToken) {
  const auto& postings = index_->PostingsFor("nobel");
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], won_nobel_);
  EXPECT_EQ(postings[1], won_prize_);
}

TEST_F(PhraseIndexTest, StopwordsNotIndexedForMixedPhrases) {
  // "a", "the", "for" are stopwords inside phrases that also carry
  // content tokens, so they get no postings from those phrases.
  EXPECT_TRUE(index_->PostingsFor("a").empty());
  EXPECT_TRUE(index_->PostingsFor("the").empty());
}

TEST_F(PhraseIndexTest, UnknownTokenHasEmptyPostings) {
  EXPECT_TRUE(index_->PostingsFor("quantum").empty());
}

TEST_F(PhraseIndexTest, FindSimilarRanksExactFirst) {
  auto cands = index_->FindSimilar("won a nobel for", 0.01);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].term, won_nobel_);
  EXPECT_DOUBLE_EQ(cands[0].similarity, 1.0);
  EXPECT_EQ(cands[1].term, won_prize_);
  EXPECT_LT(cands[1].similarity, 1.0);
}

TEST_F(PhraseIndexTest, FindSimilarHonorsThreshold) {
  auto all = index_->FindSimilar("won nobel", 0.0);
  auto strict = index_->FindSimilar("won nobel", 0.99);
  EXPECT_GE(all.size(), strict.size());
  for (const auto& c : strict) {
    EXPECT_GE(c.similarity, 0.99);
  }
}

TEST_F(PhraseIndexTest, FindSimilarUnrelatedProbeIsEmpty) {
  EXPECT_TRUE(index_->FindSimilar("married to", 0.01).empty());
}

TEST_F(PhraseIndexTest, ProbeNeedNotBeInterned) {
  auto cands = index_->FindSimilar("nobel prize winner", 0.01);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands[0].term, won_prize_);
}

TEST(PhraseIndexEmptyTest, EmptyDictionary) {
  rdf::Dictionary dict;
  PhraseIndex index = PhraseIndex::Build(dict);
  EXPECT_EQ(index.phrase_count(), 0u);
  EXPECT_TRUE(index.FindSimilar("anything", 0.0).empty());
}

}  // namespace
}  // namespace trinit::text
