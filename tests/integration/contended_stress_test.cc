// Contended stress tests — the TSan exhibits. Each test pins one of the
// concurrency scenarios docs/CONCURRENCY.md guarantees, at thread
// counts ThreadSanitizer can exhaust in CI (`ci.sh --tsan` runs this
// whole suite under -fsanitize=thread):
//
//   * ExecuteBatch herd racing ExtendKg/AddManualRules generation bumps
//     (pre-PR-6 this was a genuine data race: the XKG pointee was
//     rebuilt under live readers; the engine-state reader-writer lock
//     now serializes mutators against the query herd),
//   * concurrent Save during serving and during mutation,
//   * concurrent first touch of lazy score-ordered shapes,
//   * answer-cache store/lookup/evict races under a capacity small
//     enough to evict constantly,
//   * metrics scrapes racing the query herd and a KG mutator (the
//     registry's relaxed-atomic cells plus the slow-query log's ring
//     under concurrent writes).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/trinit.h"
#include "testing/paper_world.h"

namespace trinit::core {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> Rendered(const Trinit& engine,
                                  const topk::TopKResult& result) {
  std::vector<std::string> out;
  for (size_t i = 0; i < result.answers.size(); ++i) {
    out.push_back(engine.RenderAnswer(result, i));
  }
  return out;
}

Result<Trinit> BuildEngine(TrinitOptions options = {}) {
  auto engine = Trinit::Open(testing::BuildPaperXkg(), options);
  if (engine.ok()) {
    Status s = engine->AddManualRules(testing::kPaperRulesText);
    if (!s.ok()) return s;
  }
  return engine;
}

const char* kHerdQueries[] = {
    "?x bornIn Germany",
    "AlbertEinstein hasAdvisor ?x",
    "AlbertEinstein 'won nobel for' ?x",
    "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
};

// The scenario the PR-6 lock exists for: a query herd hammering the
// engine while a mutator thread keeps extending the KG (every extension
// rebuilds the XKG pointee and bumps the serving-cache generation).
// Every request must succeed against a coherent engine — strictly
// before or strictly after each rebuild — and the final state must be
// byte-equal to applying the same mutations serially.
TEST(ContendedStressTest, ExecuteBatchHerdVsExtendKg) {
  auto engine = BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();
  const uint64_t start_generation = engine->serving_cache().generation();

  constexpr int kQueryThreads = 3;
  constexpr int kRounds = 6;
  constexpr int kMutations = 5;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};

  std::thread mutator([&] {
    for (int i = 0; i < kMutations; ++i) {
      std::string fact = "StressNode" + std::to_string(i) +
                         " stressLink StressHub\n";
      if (!engine->ExtendKg(fact).ok()) failures.fetch_add(1);
    }
    stop.store(true);
  });

  std::vector<std::thread> herd;
  for (int t = 0; t < kQueryThreads; ++t) {
    herd.emplace_back([&] {
      // Keep querying at least until the mutator is done so rebuilds
      // really land under live readers; bounded rounds after that so
      // reader-preferring rwlocks cannot starve anyone forever.
      for (int round = 0; round < kRounds || !stop.load(); ++round) {
        std::vector<QueryRequest> batch;
        for (const char* text : kHerdQueries) {
          batch.push_back(QueryRequest::Text(text, 5));
        }
        auto results = engine->ExecuteBatch(batch, /*num_threads=*/2);
        for (const auto& r : results) {
          if (!r.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  mutator.join();
  for (std::thread& th : herd) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every mutation bumped the generation exactly once (rules added at
  // build time already advanced it past 0).
  EXPECT_EQ(engine->serving_cache().generation(),
            start_generation + kMutations);

  // Race-free end state: identical to the same history applied with no
  // concurrency at all.
  auto reference = BuildEngine();
  ASSERT_TRUE(reference.ok());
  for (int i = 0; i < kMutations; ++i) {
    ASSERT_TRUE(reference
                    ->ExtendKg("StressNode" + std::to_string(i) +
                               " stressLink StressHub\n")
                    .ok());
  }
  for (const char* text : kHerdQueries) {
    auto got = engine->Execute(QueryRequest::Text(text, 5));
    auto want = reference->Execute(QueryRequest::Text(text, 5));
    ASSERT_TRUE(got.ok() && want.ok()) << text;
    EXPECT_EQ(Rendered(*engine, got->result()),
              Rendered(*reference, want->result()))
        << text;
  }
  auto stress = engine->Execute(
      QueryRequest::Text("?x stressLink StressHub", kMutations + 1));
  ASSERT_TRUE(stress.ok());
  EXPECT_EQ(stress->result().answers.size(), size_t{kMutations});
}

// Writer-vs-writer: concurrent mutators must serialize, not interleave
// mid-rebuild; all facts from all threads survive.
TEST(ContendedStressTest, ConcurrentMutatorsAllLand) {
  auto engine = BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();

  constexpr int kWriters = 3;
  constexpr int kFactsPerWriter = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kFactsPerWriter; ++i) {
        std::string fact = "HerdNode" + std::to_string(w) + "x" +
                           std::to_string(i) + " herdLink HerdHub\n";
        if (!engine->ExtendKg(fact).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : writers) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto all = engine->Execute(QueryRequest::Text(
      "?x herdLink HerdHub", kWriters * kFactsPerWriter + 1));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->result().answers.size(),
            size_t{kWriters * kFactsPerWriter});
}

// Snapshot save racing the query herd AND a mutator: every save must
// capture a coherent engine (reopenable, answers a probe) — never a
// torn mid-rebuild state.
TEST(ContendedStressTest, ConcurrentSaveDuringServingAndMutation) {
  auto engine = BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();

  constexpr int kSaves = 4;
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};

  std::thread saver([&] {
    for (int i = 0; i < kSaves; ++i) {
      std::string path = TempPath("contended_save_" + std::to_string(i) +
                                  ".trntsnap");
      if (!engine->Save(path).ok()) {
        failures.fetch_add(1);
        continue;
      }
      auto reopened = Trinit::Open(path);
      if (!reopened.ok()) {
        failures.fetch_add(1);
        continue;
      }
      auto probe = reopened->Execute(
          QueryRequest::Text("AlbertEinstein hasAdvisor ?x", 3));
      if (!probe.ok() || probe->result().answers.empty()) {
        failures.fetch_add(1);
      }
    }
  });
  std::thread mutator([&] {
    for (int i = 0; i < 3; ++i) {
      if (!engine->ExtendKg("SaveNode" + std::to_string(i) +
                            " saveLink SaveHub\n")
               .ok()) {
        failures.fetch_add(1);
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> herd;
  for (int t = 0; t < 2; ++t) {
    herd.emplace_back([&] {
      for (int round = 0; round < 4 || !stop.load(); ++round) {
        for (const char* text : kHerdQueries) {
          if (!engine->Execute(QueryRequest::Text(text, 5)).ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  saver.join();
  mutator.join();
  for (std::thread& th : herd) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent first touch of the lazy score-ordered shape permutations:
// one query per bound-slot shape, all at once, against an engine that
// has built nothing yet. The once-flag build must serialize per shape
// and the answers must equal a serial run on an identical fresh engine.
TEST(ContendedStressTest, ConcurrentLazyShapeFirstTouch) {
  const char* shape_queries[] = {
      "AlbertEinstein ?p ?o",        // S-bound
      "?x bornIn ?y",                // P-bound
      "?x ?p Ulm",                   // O-bound
      "AlbertEinstein bornIn ?x",    // SP-bound
      "AlbertEinstein ?p Ulm",       // SO-bound
      "?x bornIn Ulm",               // PO-bound
  };

  auto serial = BuildEngine();
  ASSERT_TRUE(serial.ok());
  std::vector<std::vector<std::string>> expected;
  for (const char* text : shape_queries) {
    auto response = serial->Execute(QueryRequest::Text(text, 5));
    ASSERT_TRUE(response.ok()) << text;
    expected.push_back(Rendered(*serial, response->result()));
  }

  auto engine = BuildEngine();
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(engine->xkg().store().score_shapes_built(), 0u)
      << "engine build must not pre-touch lazy shapes";

  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (size_t qi = 0; qi < std::size(shape_queries); ++qi) {
    pool.emplace_back([&, qi] {
      // Two passes: the first races the other shapes' first builds,
      // the second reads freshly published permutations.
      for (int pass = 0; pass < 2; ++pass) {
        auto response =
            engine->Execute(QueryRequest::Text(shape_queries[qi], 5));
        if (!response.ok() ||
            Rendered(*engine, response->result()) != expected[qi]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(engine->xkg().store().score_shapes_built(), 0u);
}

// Answer-cache shards under constant eviction pressure: capacity far
// below the working set, every thread cycling the same query list, so
// store/lookup/evict interleave on the same shards. Counters must
// reconcile and answers must stay byte-identical to an uncached run.
TEST(ContendedStressTest, AnswerCacheEvictionHerd) {
  TrinitOptions options;
  options.serving.answer_capacity = 4;  // working set is ~10 queries
  auto engine = BuildEngine(options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  TrinitOptions uncached_options;
  uncached_options.serving.enabled = false;
  auto reference = BuildEngine(uncached_options);
  ASSERT_TRUE(reference.ok());

  std::vector<std::string> queries;
  for (const char* text : kHerdQueries) queries.push_back(text);
  for (int i = 0; i < 6; ++i) {
    // Distinct k values make distinct cache keys: more keys than
    // capacity guarantees steady eviction traffic.
    queries.push_back("AlbertEinstein ?p ?o");
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 4;
  std::atomic<int> mismatches{0};
  std::atomic<size_t> executed{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          int k = 1 + static_cast<int>((qi + t + round) % 5);
          auto got =
              engine->Execute(QueryRequest::Text(queries[qi], k));
          executed.fetch_add(1);
          auto want =
              reference->Execute(QueryRequest::Text(queries[qi], k));
          if (!got.ok() || !want.ok() ||
              Rendered(*engine, got->result()) !=
                  Rendered(*reference, want->result())) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  const serve::ServingCache::Counters counters =
      engine->serving_cache().counters();
  // Exactly one lookup per Execute; every miss that completed stored.
  EXPECT_EQ(counters.answer_hits + counters.answer_misses, executed.load());
  EXPECT_LE(counters.answer_insertions, counters.answer_misses);
  EXPECT_GT(counters.answer_evictions, 0u) << "capacity never pressured";
  EXPECT_LE(counters.answer_entries, options.serving.answer_capacity);
}

// Metrics scrapes racing the serving herd and a mutator: Snapshot()
// walks every registered cell with relaxed reads while ExecuteBatch
// workers increment them and ExtendKg rebinds score-shape handles under
// the exclusive state lock; a tiny slow-query threshold keeps the
// slow-log ring under concurrent Record pressure too. Each counter must
// stay monotone across scrapes, and the final scrape must reconcile
// exactly with the work submitted.
TEST(ContendedStressTest, ConcurrentMetricsScrapeDuringServingAndMutation) {
  TrinitOptions options;
  options.obs.slow_query_ms = 1e-6;  // every request records
  options.obs.slow_log_capacity = 8;
  auto engine = BuildEngine(options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  constexpr int kQueryThreads = 2;
  constexpr int kRounds = 5;
  std::atomic<int> failures{0};
  std::atomic<size_t> executed{0};
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    uint64_t last_requests = 0;
    while (!stop.load()) {
      const obs::MetricsSnapshot snapshot = engine->MetricsSnapshot();
      const auto* requests = snapshot.Find("trinit_engine_requests_total");
      if (requests == nullptr ||
          static_cast<uint64_t>(requests->value) < last_requests) {
        failures.fetch_add(1);  // counter went backwards mid-storm
      } else {
        last_requests = static_cast<uint64_t>(requests->value);
      }
      // The slow log is being written concurrently; Entries() must
      // always hand back a coherent, capacity-bounded copy.
      if (engine->slow_query_log().Entries().size() >
          options.obs.slow_log_capacity) {
        failures.fetch_add(1);
      }
    }
  });
  std::thread mutator([&] {
    for (int i = 0; i < 3; ++i) {
      if (!engine->ExtendKg("ScrapeNode" + std::to_string(i) +
                            " scrapeLink ScrapeHub\n")
               .ok()) {
        failures.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> herd;
  for (int t = 0; t < kQueryThreads; ++t) {
    herd.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<QueryRequest> batch;
        for (const char* text : kHerdQueries) {
          batch.push_back(QueryRequest::Text(text, 5));
        }
        auto results = engine->ExecuteBatch(batch, /*num_threads=*/2);
        executed.fetch_add(results.size());
        for (const auto& r : results) {
          if (!r.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  mutator.join();
  for (std::thread& th : herd) th.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent reconciliation: the registry counted every request, and
  // the slow log kept its ring bounded while recording all of them.
  const obs::MetricsSnapshot final_snapshot = engine->MetricsSnapshot();
  const auto* requests = final_snapshot.Find("trinit_engine_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(static_cast<size_t>(requests->value), executed.load());
  const auto* active = final_snapshot.Find("trinit_engine_active_requests");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->value, 0.0);
  const auto* peak =
      final_snapshot.Find("trinit_engine_concurrent_requests_peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_GE(peak->value, 1.0);
  EXPECT_EQ(engine->slow_query_log().total_recorded(), executed.load());
  EXPECT_EQ(engine->slow_query_log().Entries().size(),
            options.obs.slow_log_capacity);
}

}  // namespace
}  // namespace trinit::core
