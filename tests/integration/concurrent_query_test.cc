// Concurrency smoke test for the thread-safe engine front door: many
// threads hammering Execute on one shared engine must produce exactly
// the answers serial execution produces, and ExecuteBatch must line its
// results up with its requests.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/trinit.h"
#include "testing/paper_world.h"

namespace trinit::core {
namespace {

std::vector<std::string> Rendered(const Trinit& engine,
                                  const topk::TopKResult& result) {
  std::vector<std::string> out;
  for (size_t i = 0; i < result.answers.size(); ++i) {
    out.push_back(engine.RenderAnswer(result, i));
  }
  return out;
}

Result<Trinit> BuildEngine() {
  auto engine = Trinit::Open(testing::BuildPaperXkg());
  if (engine.ok()) {
    Status s = engine->AddManualRules(testing::kPaperRulesText);
    if (!s.ok()) return s;
  }
  return engine;
}

const char* kQueries[] = {
    "?x bornIn Germany",
    "AlbertEinstein hasAdvisor ?x",
    "AlbertEinstein 'won nobel for' ?x",
    "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
    "AlbertEinstein ?p ?o",
    "?x 'lectured' ?y",
};

TEST(ConcurrentQueryTest, ThreadedExecuteMatchesSerial) {
  auto engine = BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();

  // Serial reference run.
  std::vector<std::vector<std::string>> expected;
  for (const char* text : kQueries) {
    auto response = engine->Execute(QueryRequest::Text(text, 5));
    ASSERT_TRUE(response.ok()) << text;
    expected.push_back(Rendered(*engine, response->result()));
  }

  // N threads, each running every query several times against the one
  // shared engine.
  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
          auto response =
              engine->Execute(QueryRequest::Text(kQueries[qi], 5));
          if (!response.ok() ||
              Rendered(*engine, response->result()) != expected[qi]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentQueryTest, ExecuteBatchAlignsResultsWithRequests) {
  auto engine = BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();

  // A batch interleaving every query (including a malformed one, which
  // must fail in place without disturbing its neighbours).
  std::vector<QueryRequest> requests;
  for (int round = 0; round < 4; ++round) {
    for (const char* text : kQueries) {
      requests.push_back(QueryRequest::Text(text, 5));
    }
    requests.push_back(QueryRequest::Text("?x bornIn", 5));  // parse error
  }

  auto results = engine->ExecuteBatch(requests, /*num_threads=*/4);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].text == "?x bornIn") {
      EXPECT_FALSE(results[i].ok()) << i;
      continue;
    }
    ASSERT_TRUE(results[i].ok()) << requests[i].text;
    auto serial = engine->Execute(requests[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(Rendered(*engine, results[i]->result()),
              Rendered(*engine, serial->result()))
        << requests[i].text;
  }
}

TEST(ConcurrentQueryTest, ExecuteBatchMixedPerRequestOptions) {
  auto engine = BuildEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();

  // Same query, different per-request settings, one batch.
  QueryRequest relaxed = QueryRequest::Text("?x bornIn Germany", 5);
  QueryRequest strict = relaxed;
  strict.enable_relaxation = false;
  QueryRequest single = relaxed;
  single.k = 1;
  std::vector<QueryRequest> requests = {relaxed, strict, single};

  auto results = engine->ExecuteBatch(requests, /*num_threads=*/3);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) ASSERT_TRUE(result.ok());
  EXPECT_FALSE(results[0]->result().answers.empty());  // relaxation finds Ulm
  EXPECT_TRUE(results[1]->result().answers.empty());   // strict finds nothing
  EXPECT_EQ(results[2]->result().answers.size(), 1u);
  EXPECT_EQ(Rendered(*engine, results[2]->result())[0],
            Rendered(*engine, results[0]->result())[0]);
}

}  // namespace
}  // namespace trinit::core
