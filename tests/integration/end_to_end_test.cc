// Cross-module integration and failure-injection tests: the full
// world -> corpus -> Open IE -> XKG -> rules -> query pipeline under
// varying noise and degradation conditions, plus serialization
// round-trips of whole pipeline outputs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "core/trinit.h"
#include "eval/runner.h"
#include "query/parser.h"
#include "relax/paraphrase_operator.h"
#include "synth/corpus_generator.h"
#include "xkg/tsv_io.h"

namespace trinit {
namespace {

synth::WorldSpec Spec(uint64_t seed) {
  synth::WorldSpec spec;
  spec.seed = seed;
  spec.num_persons = 70;
  spec.num_universities = 9;
  spec.num_institutes = 5;
  spec.num_cities = 14;
  spec.num_countries = 4;
  spec.num_prizes = 4;
  spec.num_fields = 6;
  spec.predicates = synth::WorldSpec::DefaultPredicates();
  return spec;
}

TEST(EndToEndTest, XkgSurvivesTsvRoundTripWithIdenticalAnswers) {
  synth::World world = synth::KgGenerator::Generate(Spec(71));
  auto original = core::Trinit::FromWorld(world);
  ASSERT_TRUE(original.ok());

  std::string path =
      (std::filesystem::temp_directory_path() / "trinit_e2e_xkg.tsv")
          .string();
  ASSERT_TRUE(xkg::XkgTsv::Save(original->xkg(), path).ok());
  auto reloaded_xkg = xkg::XkgTsv::Load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(reloaded_xkg.ok()) << reloaded_xkg.status();
  EXPECT_EQ(reloaded_xkg->store().size(), original->xkg().store().size());
  EXPECT_EQ(reloaded_xkg->kg_triple_count(),
            original->xkg().kg_triple_count());

  auto reloaded = core::Trinit::Open(std::move(reloaded_xkg).value());
  ASSERT_TRUE(reloaded.ok());
  // Same mined rule inventory (mining is a pure function of the XKG).
  EXPECT_EQ(reloaded->rules().size(), original->rules().size());

  // Same answers for a handful of queries. Confidences round-trip at 6
  // decimals, which can swap exact ties, so compare answer *sets* and
  // allow the corresponding tolerance on scores.
  const auto& unis = world.OfClass(synth::EntityClass::kUniversity);
  for (size_t i = 0; i < 3 && i < unis.size(); ++i) {
    std::string text = "?x 'works at' " + world.entities[unis[i]].name;
    auto a = original->Query(text, 5);
    auto b = reloaded->Query(text, 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->answers.size(), b->answers.size()) << text;
    // Ties at the k-th score may resolve differently after reload
    // (dictionary ids change); compare scores rank-by-rank, and labels
    // only for answers strictly above the cutoff.
    double cutoff = a->answers.empty() ? 0.0 : a->answers.back().score;
    std::multiset<std::string> labels_a, labels_b;
    for (size_t r = 0; r < a->answers.size(); ++r) {
      EXPECT_NEAR(a->answers[r].score, b->answers[r].score, 1e-4);
      if (a->answers[r].score > cutoff + 1e-4) {
        labels_a.insert(original->RenderAnswer(*a, r));
      }
      if (b->answers[r].score > cutoff + 1e-4) {
        labels_b.insert(reloaded->RenderAnswer(*b, r));
      }
    }
    EXPECT_EQ(labels_a, labels_b) << text;
  }
}

TEST(EndToEndTest, ExtractorNoiseDegradesButDoesNotBreak) {
  synth::World world = synth::KgGenerator::Generate(Spec(72));
  auto docs = synth::CorpusGenerator::Generate(world);

  // Failure injection: a sloppy extractor with rock-bottom confidence
  // floor and very permissive relation phrases.
  openie::Extractor::Options sloppy;
  sloppy.max_relation_tokens = 12;
  sloppy.base_confidence = 0.4;
  sloppy.min_confidence = 0.05;
  xkg::XkgBuilder builder;
  synth::KgGenerator::PopulateKg(world, &builder);
  openie::Pipeline pipeline(openie::Extractor(sloppy),
                            openie::Pipeline::LinkerForWorld(world));
  pipeline.Run(docs, &builder);
  auto noisy_xkg = builder.Build();
  ASSERT_TRUE(noisy_xkg.ok());

  auto engine = core::Trinit::Open(std::move(noisy_xkg).value());
  ASSERT_TRUE(engine.ok());
  // Queries still answer; scores remain finite and ordered.
  const auto& persons = world.OfClass(synth::EntityClass::kPerson);
  auto result = engine->Query(world.entities[persons[0]].name + " ?p ?o",
                              10);
  ASSERT_TRUE(result.ok());
  double prev = 0.0;
  for (size_t i = 0; i < result->answers.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result->answers[i].score));
    if (i > 0) EXPECT_LE(result->answers[i].score, prev + 1e-9);
    prev = result->answers[i].score;
  }
}

TEST(EndToEndTest, BrokenLinkerLeavesTokensNotCrashes) {
  synth::World world = synth::KgGenerator::Generate(Spec(73));
  auto docs = synth::CorpusGenerator::Generate(world);
  xkg::XkgBuilder builder;
  synth::KgGenerator::PopulateKg(world, &builder);
  // Failure injection: an empty linker (NED totally unavailable).
  openie::Pipeline pipeline{openie::Extractor(), openie::Linker()};
  openie::Pipeline::Stats stats = pipeline.Run(docs, &builder);
  EXPECT_EQ(stats.arguments_linked, 0u);
  EXPECT_GT(stats.arguments_token, 0u);
  auto xkg = builder.Build();
  ASSERT_TRUE(xkg.ok());
  // All extraction subjects/objects are token terms now; the XKG still
  // builds and token queries still work.
  auto engine = core::Trinit::Open(std::move(xkg).value());
  ASSERT_TRUE(engine.ok());
  auto result = engine->Query("?x 'works at' ?y", 5);
  ASSERT_TRUE(result.ok());
}

TEST(EndToEndTest, ParaphraseOperatorLiftsRecallWithoutMining) {
  synth::World world = synth::KgGenerator::Generate(Spec(74));
  // Disable every miner: rules come only from the paraphrase repository.
  core::TrinitOptions options;
  options.mine_synonyms = false;
  options.mine_inversions = false;
  options.mine_expansions = false;
  auto engine = core::Trinit::FromWorld(world, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(engine->rules().size(), 0u);

  // A held-out prize fact is unreachable without vocabulary translation.
  size_t pi = world.PredicateIndex("wonPrize");
  const synth::Fact* held = nullptr;
  for (const synth::Fact& f : world.facts) {
    if (f.predicate == pi && !f.in_kg) {
      held = &f;
      break;
    }
  }
  ASSERT_NE(held, nullptr);
  std::string text = world.entities[held->subject].name + " wonPrize ?x";
  auto before = engine->Query(text, 5);
  ASSERT_TRUE(before.ok());

  auto op = relax::ParaphraseOperator::FromText(
      relax::ParaphraseOperator::BuiltinRepository());
  ASSERT_TRUE(op.ok());
  ASSERT_TRUE(engine->RunOperator(*op).ok());
  EXPECT_GT(engine->rules().size(), 0u);
  auto after = engine->Query(text, 5);
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->answers.size(), before->answers.size());
}

TEST(EndToEndTest, DeterministicAcrossFullPipeline) {
  synth::World world = synth::KgGenerator::Generate(Spec(75));
  auto a = core::Trinit::FromWorld(world);
  auto b = core::Trinit::FromWorld(world);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->xkg().store().size(), b->xkg().store().size());
  EXPECT_EQ(a->rules().size(), b->rules().size());
  auto qa = a->Query("?x 'was born in' ?y", 10);
  auto qb = b->Query("?x 'was born in' ?y", 10);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  ASSERT_EQ(qa->answers.size(), qb->answers.size());
  for (size_t i = 0; i < qa->answers.size(); ++i) {
    EXPECT_NEAR(qa->answers[i].score, qb->answers[i].score, 1e-12);
  }
}

}  // namespace
}  // namespace trinit
