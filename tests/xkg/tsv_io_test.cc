#include "xkg/tsv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "xkg/xkg_builder.h"

namespace trinit::xkg {
namespace {

Xkg MakeSample() {
  XkgBuilder b;
  b.AddKgFact("AlbertEinstein", "bornIn", "Ulm");
  b.AddKgFact("AlbertEinstein", "bornOn", "1879-03-14", true);
  b.AddExtraction("IAS", true, "housed in", "PrincetonUniversity", true,
                  0.9f, {7, 2, "The IAS is housed in Princeton.", 0.9});
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(XkgTsvTest, SaveLoadRoundTrip) {
  Xkg original = MakeSample();
  std::string path =
      (std::filesystem::temp_directory_path() / "trinit_xkg_io.tsv").string();
  ASSERT_TRUE(XkgTsv::Save(original, path).ok());

  auto loaded = XkgTsv::Load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->store().size(), original.store().size());
  EXPECT_EQ(loaded->kg_triple_count(), original.kg_triple_count());
  EXPECT_EQ(loaded->extraction_triple_count(),
            original.extraction_triple_count());

  const auto& dict = loaded->dict();
  rdf::TermId ias = dict.Find(rdf::TermKind::kResource, "IAS");
  rdf::TermId housed = dict.Find(rdf::TermKind::kToken, "housed in");
  rdf::TermId princeton =
      dict.Find(rdf::TermKind::kResource, "PrincetonUniversity");
  rdf::TripleId id = loaded->store().Find(ias, housed, princeton);
  ASSERT_NE(id, rdf::kInvalidTriple);
  const auto& prov = loaded->ProvenanceFor(id);
  ASSERT_EQ(prov.size(), 1u);
  EXPECT_EQ(prov[0].doc_id, 7u);
  EXPECT_EQ(prov[0].sentence_idx, 2u);
  EXPECT_EQ(prov[0].sentence, "The IAS is housed in Princeton.");
  EXPECT_NEAR(prov[0].extraction_confidence, 0.9, 1e-6);

  // Literal kind survives.
  EXPECT_NE(dict.Find(rdf::TermKind::kLiteral, "1879-03-14"),
            rdf::kNullTerm);
  EXPECT_EQ(dict.Find(rdf::TermKind::kResource, "1879-03-14"),
            rdf::kNullTerm);
}

TEST(XkgTsvTest, LoadFromStringMinimal) {
  auto r = XkgTsv::LoadFromString(
      "# comment\n"
      "T\tR:A\tR:p\tR:B\n"
      "T\tR:A\tK:works at\tR:C\t0.75\t2\n"
      "P\t3\t1\t0.75\tA works at C.\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->store().size(), 2u);
  EXPECT_EQ(r->kg_triple_count(), 1u);
}

TEST(XkgTsvTest, RejectsProvenanceWithoutTriple) {
  auto r = XkgTsv::LoadFromString("P\t1\t0\t0.5\torphan sentence\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XkgTsvTest, RejectsBadTermEncoding) {
  auto r = XkgTsv::LoadFromString("T\tX:A\tR:p\tR:B\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XkgTsvTest, RejectsShortTripleRow) {
  auto r = XkgTsv::LoadFromString("T\tR:A\tR:p\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XkgTsvTest, RejectsUnknownTag) {
  auto r = XkgTsv::LoadFromString("Z\tfoo\n");
  ASSERT_FALSE(r.ok());
}

TEST(XkgTsvTest, LoadMissingFileIsIoError) {
  auto r = XkgTsv::Load("/nonexistent/xkg.tsv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace trinit::xkg
