#include "xkg/xkg.h"

#include <gtest/gtest.h>

#include "xkg/xkg_builder.h"

namespace trinit::xkg {
namespace {

// Builds the paper's Figure 1 KG + Figure 3 extension.
class XkgFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    XkgBuilder b;
    // Figure 1.
    b.AddKgFact("AlbertEinstein", "bornIn", "Ulm");
    b.AddKgFact("Ulm", "locatedIn", "Germany");
    b.AddKgFact("AlbertEinstein", "bornOn", "1879-03-14",
                /*object_literal=*/true);
    b.AddKgFact("AlfredKleiner", "hasStudent", "AlbertEinstein");
    b.AddKgFact("AlbertEinstein", "affiliation", "IAS");
    b.AddKgFact("PrincetonUniversity", "member", "IvyLeague");
    // Figure 3.
    b.AddExtraction("AlbertEinstein", true, "won Nobel for",
                    "discovery of the photoelectric effect", false, 0.8f,
                    {1, 0,
                     "Einstein won a Nobel for his discovery of the "
                     "photoelectric effect",
                     0.8});
    b.AddExtraction("IAS", true, "housed in", "PrincetonUniversity", true,
                    0.9f, {2, 3, "The IAS is housed in Princeton.", 0.9});
    b.AddExtraction("AlbertEinstein", true, "lectured at",
                    "PrincetonUniversity", true, 0.7f,
                    {3, 1, "Einstein lectured at Princeton University.",
                     0.7});
    b.AddExtraction("AlbertEinstein", true, "met his teacher",
                    "Prof. Kleiner", false, 0.5f,
                    {4, 2, "Einstein met his teacher Prof. Kleiner.", 0.5});
    auto r = b.Build();
    ASSERT_TRUE(r.ok()) << r.status();
    xkg_.emplace(std::move(r).value());
  }

  std::optional<Xkg> xkg_;
};

TEST_F(XkgFixture, CountsKgAndExtractionLayers) {
  EXPECT_EQ(xkg_->store().size(), 10u);
  EXPECT_EQ(xkg_->kg_triple_count(), 6u);
  EXPECT_EQ(xkg_->extraction_triple_count(), 4u);
}

TEST_F(XkgFixture, KgTriplesHaveKgProvenance) {
  const auto& dict = xkg_->dict();
  rdf::TermId einstein = dict.Find(rdf::TermKind::kResource, "AlbertEinstein");
  rdf::TermId born_in = dict.Find(rdf::TermKind::kResource, "bornIn");
  rdf::TermId ulm = dict.Find(rdf::TermKind::kResource, "Ulm");
  rdf::TripleId id = xkg_->store().Find(einstein, born_in, ulm);
  ASSERT_NE(id, rdf::kInvalidTriple);
  EXPECT_TRUE(xkg_->IsKgTriple(id));
  EXPECT_TRUE(xkg_->ProvenanceFor(id).empty());
}

TEST_F(XkgFixture, ExtractionTriplesCarryProvenance) {
  const auto& dict = xkg_->dict();
  rdf::TermId ias = dict.Find(rdf::TermKind::kResource, "IAS");
  rdf::TermId housed = dict.Find(rdf::TermKind::kToken, "housed in");
  rdf::TermId princeton =
      dict.Find(rdf::TermKind::kResource, "PrincetonUniversity");
  ASSERT_NE(housed, rdf::kNullTerm);
  rdf::TripleId id = xkg_->store().Find(ias, housed, princeton);
  ASSERT_NE(id, rdf::kInvalidTriple);
  EXPECT_FALSE(xkg_->IsKgTriple(id));
  const auto& prov = xkg_->ProvenanceFor(id);
  ASSERT_EQ(prov.size(), 1u);
  EXPECT_EQ(prov[0].doc_id, 2u);
  EXPECT_EQ(prov[0].sentence, "The IAS is housed in Princeton.");
}

TEST_F(XkgFixture, TokenPhrasesAreNormalized) {
  // "won Nobel for" was interned via NormalizePhrase -> "won nobel for".
  EXPECT_NE(xkg_->dict().Find(rdf::TermKind::kToken, "won nobel for"),
            rdf::kNullTerm);
  EXPECT_EQ(xkg_->dict().Find(rdf::TermKind::kToken, "won Nobel for"),
            rdf::kNullTerm);
}

TEST_F(XkgFixture, PhraseIndexCoversExtractionVocabulary) {
  auto cands = xkg_->phrase_index().FindSimilar("nobel", 0.01);
  ASSERT_FALSE(cands.empty());
}

TEST_F(XkgFixture, StatsCoverBothLayers) {
  const auto& dict = xkg_->dict();
  rdf::TermId housed = dict.Find(rdf::TermKind::kToken, "housed in");
  EXPECT_NE(xkg_->stats().ForPredicate(housed), nullptr);
  rdf::TermId born_in = dict.Find(rdf::TermKind::kResource, "bornIn");
  EXPECT_NE(xkg_->stats().ForPredicate(born_in), nullptr);
}

TEST_F(XkgFixture, RenderTripleUsesQuotedTokens) {
  const auto& dict = xkg_->dict();
  rdf::TermId ias = dict.Find(rdf::TermKind::kResource, "IAS");
  rdf::TermId housed = dict.Find(rdf::TermKind::kToken, "housed in");
  rdf::TermId princeton =
      dict.Find(rdf::TermKind::kResource, "PrincetonUniversity");
  rdf::TripleId id = xkg_->store().Find(ias, housed, princeton);
  EXPECT_EQ(xkg_->RenderTriple(id),
            "IAS --'housed in'--> PrincetonUniversity");
}

TEST(XkgBuilderTest, DuplicateExtractionsAggregateEvidence) {
  XkgBuilder b;
  b.AddExtraction("E1", true, "works at", "U1", true, 0.6f,
                  {1, 0, "E1 works at U1.", 0.6});
  b.AddExtraction("E1", true, "works at", "U1", true, 0.8f,
                  {2, 0, "E1 has worked at U1.", 0.8});
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->store().size(), 1u);
  const rdf::Triple& t = r->store().triple(0);
  EXPECT_EQ(t.count, 2u);  // tf evidence accumulates
  EXPECT_FLOAT_EQ(t.confidence, 0.8f);
  EXPECT_EQ(r->ProvenanceFor(0).size(), 2u);
}

TEST(XkgBuilderTest, KgWinsProvenanceOverExtraction) {
  XkgBuilder b;
  b.AddExtraction("E1", true, "livesIn", "C1", true, 0.5f,
                  {1, 0, "E1 lives in C1.", 0.5});
  // Same fact also curated (extraction P slot is a token, so use ids to
  // force the exact same triple).
  rdf::TermId e1 = b.dict().Find(rdf::TermKind::kResource, "E1");
  rdf::TermId p = b.dict().Find(rdf::TermKind::kToken, "livesin");
  rdf::TermId c1 = b.dict().Find(rdf::TermKind::kResource, "C1");
  ASSERT_NE(p, rdf::kNullTerm);
  b.AddKgFact(e1, p, c1);
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->store().size(), 1u);
  EXPECT_TRUE(r->IsKgTriple(0));
  EXPECT_EQ(r->kg_triple_count(), 1u);
  // Provenance of the extraction is still retrievable.
  EXPECT_EQ(r->ProvenanceFor(0).size(), 1u);
}

TEST(XkgBuilderTest, EmptyBuildSucceeds) {
  XkgBuilder b;
  auto r = b.Build();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->store().size(), 0u);
  EXPECT_EQ(r->kg_triple_count(), 0u);
}

}  // namespace
}  // namespace trinit::xkg
