// Binary snapshot format: round-trip fidelity (dictionary, triples,
// provenance, graph stats, score-ordered shapes in their exact laziness
// state, rules, generation), and rejection of foreign, truncated,
// version-mismatched, and bit-flipped files with typed errors — never a
// crash, never UB.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "testing/paper_world.h"

namespace trinit::storage {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Paper world + rules, with two score-ordered shapes forced built so
/// the snapshot has a nontrivial laziness state to preserve.
struct Fixture {
  xkg::Xkg xkg = trinit::testing::BuildPaperXkg();
  relax::RuleSet rules = trinit::testing::BuildPaperRules();

  Fixture() {
    rules.ResolveAgainst(xkg.dict());
    // Touch the P and PO shapes (predicate-bound lookups).
    rdf::TermId born = xkg.dict().Find(rdf::TermKind::kResource, "bornIn");
    rdf::TermId ulm = xkg.dict().Find(rdf::TermKind::kResource, "Ulm");
    (void)xkg.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
    (void)xkg.store().ScoreOrdered(rdf::kNullTerm, born, ulm);
    EXPECT_EQ(xkg.store().score_shapes_built(), 2u);
  }
};

TEST(SnapshotTest, RoundTripPreservesEverything) {
  Fixture f;
  const std::string path = TempPath("roundtrip.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, /*generation=*/7, path)
                  .ok());

  auto loaded = SnapshotReader::Read(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const xkg::Xkg& out = loaded->xkg;

  // Dictionary: same size, same (id -> kind, label) mapping.
  ASSERT_EQ(out.dict().size(), f.xkg.dict().size());
  f.xkg.dict().ForEach([&](rdf::TermId id) {
    EXPECT_EQ(out.dict().label(id), f.xkg.dict().label(id));
    EXPECT_EQ(out.dict().kind(id), f.xkg.dict().kind(id));
  });

  // Triples with full payloads, in identical id order.
  ASSERT_EQ(out.store().size(), f.xkg.store().size());
  for (rdf::TripleId id = 0; id < f.xkg.store().size(); ++id) {
    const rdf::Triple& a = f.xkg.store().triple(id);
    const rdf::Triple& b = out.store().triple(id);
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.o, b.o);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.source, b.source);
  }
  EXPECT_EQ(out.kg_triple_count(), f.xkg.kg_triple_count());
  EXPECT_EQ(out.store().total_count(), f.xkg.store().total_count());
  EXPECT_EQ(out.store().max_count(), f.xkg.store().max_count());

  // The laziness state travels: exactly the two pre-built shapes are
  // built after load — no rebuild, no eager extra work.
  EXPECT_EQ(out.store().score_shapes_built(), 2u);
  rdf::TermId born = out.dict().Find(rdf::TermKind::kResource, "bornIn");
  rdf::ScoreOrderIndex::List a =
      f.xkg.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
  rdf::ScoreOrderIndex::List b =
      out.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
  ASSERT_EQ(a.ids.size(), b.ids.size());
  EXPECT_EQ(a.mass, b.mass);
  for (size_t i = 0; i < a.ids.size(); ++i) EXPECT_EQ(a.ids[i], b.ids[i]);
  EXPECT_EQ(out.store().score_shapes_built(), 2u);  // lookup built nothing

  // Graph statistics, args included.
  ASSERT_EQ(out.stats().predicates(), f.xkg.stats().predicates());
  for (rdf::TermId p : f.xkg.stats().predicates()) {
    const auto* sa = f.xkg.stats().ForPredicate(p);
    const auto* sb = out.stats().ForPredicate(p);
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(sa->triple_count, sb->triple_count);
    EXPECT_EQ(sa->evidence_count, sb->evidence_count);
    EXPECT_EQ(sa->distinct_subjects, sb->distinct_subjects);
    EXPECT_EQ(sa->distinct_objects, sb->distinct_objects);
    EXPECT_EQ(f.xkg.stats().Args(p), out.stats().Args(p));
  }

  // Provenance, sentence text included.
  for (rdf::TripleId id = 0; id < f.xkg.store().size(); ++id) {
    const auto& pa = f.xkg.ProvenanceFor(id);
    const auto& pb = out.ProvenanceFor(id);
    ASSERT_EQ(pa.size(), pb.size()) << "triple " << id;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].doc_id, pb[i].doc_id);
      EXPECT_EQ(pa[i].sentence_idx, pb[i].sentence_idx);
      EXPECT_EQ(pa[i].sentence, pb[i].sentence);
      EXPECT_EQ(pa[i].extraction_confidence, pb[i].extraction_confidence);
    }
  }

  // Rules: same renderings, kinds, and weights (no re-mining needed).
  ASSERT_EQ(loaded->rules.size(), f.rules.size());
  for (size_t i = 0; i < f.rules.size(); ++i) {
    EXPECT_EQ(loaded->rules.rules()[i].ToString(),
              f.rules.rules()[i].ToString());
    EXPECT_EQ(loaded->rules.rules()[i].kind, f.rules.rules()[i].kind);
  }

  EXPECT_EQ(loaded->generation, 7u);
  EXPECT_EQ(loaded->report.terms, f.xkg.dict().size());
  EXPECT_EQ(loaded->report.triples, f.xkg.store().size());
  EXPECT_EQ(loaded->report.permutations_restored, 5u);
  EXPECT_EQ(loaded->report.score_shapes_restored, 2u);
  EXPECT_EQ(loaded->report.rules, f.rules.size());
  EXPECT_EQ(loaded->report.index_rebuilds, 0u);
}

TEST(SnapshotTest, MissingFileIsIoError) {
  auto r = SnapshotReader::Read(TempPath("does_not_exist.trinit"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SnapshotTest, ForeignFileIsRejectedByMagic) {
  const std::string path = TempPath("foreign.trinit");
  Spit(path, "T\tR:AlbertEinstein\tR:bornIn\tR:Ulm\t1\t1\n");  // a TSV dump
  auto r = SnapshotReader::Read(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  Spit(path, "");  // empty file
  r = SnapshotReader::Read(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, WrongVersionIsFailedPrecondition) {
  Fixture f;
  const std::string path = TempPath("version.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  std::string bytes = Slurp(path);
  // The version field sits right after the 8-byte magic.
  uint32_t bumped = kSnapshotVersion + 1;
  std::memcpy(bytes.data() + 8, &bumped, sizeof(bumped));
  Spit(path, bytes);
  auto r = SnapshotReader::Read(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, TruncationsAreRejectedCleanly) {
  Fixture f;
  const std::string path = TempPath("truncated.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, 0, path).ok());
  const std::string bytes = Slurp(path);
  ASSERT_GT(bytes.size(), 64u);

  // Cut the file at a spread of lengths, including mid-header,
  // mid-table, and one byte short: every cut must produce a typed
  // error, never a crash (asan/ubsan runs this too).
  const size_t cuts[] = {0,  4,  8,  12, 16,  31,  32,  63,
                         64, 100, bytes.size() / 2, bytes.size() - 1};
  for (size_t cut : cuts) {
    Spit(path, bytes.substr(0, cut));
    auto r = SnapshotReader::Read(path);
    ASSERT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                r.status().code() == StatusCode::kParseError)
        << "cut at " << cut << ": " << r.status();
  }
}

TEST(SnapshotTest, FlippedBytesNeverLoadSilentlyWrong) {
  Fixture f;
  const std::string path = TempPath("flipped.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(f.xkg, f.rules, /*generation=*/3, path)
                  .ok());
  const std::string bytes = Slurp(path);

  // Flip one byte at a stride across the whole file. Every payload byte
  // is under a section checksum and must fail; a flip in the header or
  // table must fail too (magic/version/bounds/checksum). Padding bytes
  // between sections are outside any checksum, so the load may succeed
  // there — but then it must equal the pristine state (generation 3).
  size_t failures = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += 37) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    Spit(path, mutated);
    auto r = SnapshotReader::Read(path);
    if (!r.ok()) {
      ++failures;
      EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                  r.status().code() == StatusCode::kParseError ||
                  r.status().code() == StatusCode::kFailedPrecondition)
          << "flip at " << pos << ": " << r.status();
    } else {
      EXPECT_EQ(r->xkg.store().size(), f.xkg.store().size())
          << "flip at " << pos;
      EXPECT_EQ(r->generation, 3u) << "flip at " << pos;
    }
  }
  // The vast majority of positions are covered payload/header bytes.
  EXPECT_GT(failures, bytes.size() / 37 / 2);

  // The generation field (header bytes 16-23) is covered by no section
  // checksum; the header's own checksum must reject every flip there —
  // a wrong generation must never load silently.
  for (size_t pos = 16; pos < 24; ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x01);
    Spit(path, mutated);
    auto r = SnapshotReader::Read(path);
    ASSERT_FALSE(r.ok()) << "generation flip at " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

TEST(SnapshotTest, UnbuiltIndexStaysLazyAfterLoad) {
  xkg::Xkg xkg = trinit::testing::BuildPaperXkg();  // nothing touched
  relax::RuleSet rules;
  const std::string path = TempPath("lazy.trinit");
  ASSERT_TRUE(SnapshotWriter::Write(xkg, rules, 0, path).ok());
  auto loaded = SnapshotReader::Read(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->report.score_shapes_restored, 0u);
  EXPECT_EQ(loaded->xkg.store().score_shapes_built(), 0u);
  // First-touch builds still work on the loaded store.
  rdf::TermId born =
      loaded->xkg.dict().Find(rdf::TermKind::kResource, "bornIn");
  rdf::ScoreOrderIndex::List list =
      loaded->xkg.store().ScoreOrdered(rdf::kNullTerm, born, rdf::kNullTerm);
  EXPECT_FALSE(list.ids.empty());
  EXPECT_EQ(loaded->xkg.store().score_shapes_built(), 1u);
}

}  // namespace
}  // namespace trinit::storage
